#include "arch/protocol.hh"

namespace macrosim
{

std::string_view
to_string(CacheState s)
{
    switch (s) {
      case CacheState::Invalid: return "I";
      case CacheState::Shared: return "S";
      case CacheState::Exclusive: return "E";
      case CacheState::Owned: return "O";
      case CacheState::Modified: return "M";
    }
    return "?";
}

std::string_view
to_string(CoherenceOp op)
{
    switch (op) {
      case CoherenceOp::GetS: return "GetS";
      case CoherenceOp::GetM: return "GetM";
      case CoherenceOp::Upgrade: return "Upgrade";
      case CoherenceOp::PutM: return "PutM";
    }
    return "?";
}

std::string_view
to_string(CoherenceMsg m)
{
    switch (m) {
      case CoherenceMsg::Request: return "Request";
      case CoherenceMsg::FwdRequest: return "FwdRequest";
      case CoherenceMsg::Invalidate: return "Invalidate";
      case CoherenceMsg::InvAck: return "InvAck";
      case CoherenceMsg::Data: return "Data";
      case CoherenceMsg::WritebackAck: return "WritebackAck";
    }
    return "?";
}

} // namespace macrosim
