#include "arch/geometry.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace macrosim
{

MacrochipGeometry::MacrochipGeometry(std::uint32_t rows,
                                     std::uint32_t cols,
                                     double site_pitch_cm)
    : rows_(rows), cols_(cols), pitchCm_(site_pitch_cm)
{
    if (rows == 0 || cols == 0)
        fatal("MacrochipGeometry: grid must be non-empty");
    if (site_pitch_cm <= 0.0)
        fatal("MacrochipGeometry: site pitch must be positive");
}

SiteCoord
MacrochipGeometry::coordOf(SiteId id) const
{
    if (id >= siteCount())
        panic("coordOf: site id ", id, " out of range");
    return {id / cols_, id % cols_};
}

SiteId
MacrochipGeometry::idOf(SiteCoord c) const
{
    if (c.row >= rows_ || c.col >= cols_)
        panic("idOf: coord (", c.row, ",", c.col, ") out of range");
    return c.row * cols_ + c.col;
}

double
MacrochipGeometry::routeLengthCm(SiteId src, SiteId dst) const
{
    const SiteCoord a = coordOf(src);
    const SiteCoord b = coordOf(dst);
    const auto dr = static_cast<double>(
        a.row > b.row ? a.row - b.row : b.row - a.row);
    const auto dc = static_cast<double>(
        a.col > b.col ? a.col - b.col : b.col - a.col);
    return (dr + dc) * pitchCm_;
}

Tick
MacrochipGeometry::propagationDelay(SiteId src, SiteId dst) const
{
    return waveguideDelay(routeLengthCm(src, dst));
}

std::uint32_t
MacrochipGeometry::torusHops(SiteId src, SiteId dst) const
{
    const SiteCoord a = coordOf(src);
    const SiteCoord b = coordOf(dst);
    const std::uint32_t dr =
        a.row > b.row ? a.row - b.row : b.row - a.row;
    const std::uint32_t dc =
        a.col > b.col ? a.col - b.col : b.col - a.col;
    return std::min(dr, rows_ - dr) + std::min(dc, cols_ - dc);
}

} // namespace macrosim
