/**
 * @file
 * Distributed full-map coherence directory.
 *
 * Each cache line has a home site determined by address interleaving.
 * The home's directory slice tracks the line's global state, its owner
 * site (for M/O/E lines) and a sharer bit-vector over the 64 sites.
 * The coherence engine consults and updates this state to decide which
 * network messages a transaction needs.
 */

#ifndef MACROSIM_ARCH_DIRECTORY_HH
#define MACROSIM_ARCH_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "arch/cache.hh"
#include "arch/geometry.hh"
#include "arch/protocol.hh"
#include "sim/flat_map.hh"

namespace macrosim
{

/** Compact set of sites (sharers), up to 64 sites. */
class SiteSet
{
  public:
    void add(SiteId s) { bits_ |= (std::uint64_t{1} << s); }
    void remove(SiteId s) { bits_ &= ~(std::uint64_t{1} << s); }
    bool contains(SiteId s) const
    {
        return (bits_ >> s) & 1;
    }
    void clear() { bits_ = 0; }
    bool empty() const { return bits_ == 0; }
    std::uint32_t
    count() const
    {
        return static_cast<std::uint32_t>(__builtin_popcountll(bits_));
    }
    std::uint64_t raw() const { return bits_; }

    /** Enumerate members in ascending site order. */
    std::vector<SiteId> members() const;

    bool operator==(const SiteSet &) const = default;

  private:
    std::uint64_t bits_ = 0;
};

/** Directory-side state of one line. */
enum class DirState : std::uint8_t
{
    Uncached,  ///< No on-macrochip copy; memory is the owner.
    Shared,    ///< One or more read-only copies; memory up to date.
    Owned,     ///< A dirty owner plus possible sharers.
    Exclusive, ///< Exactly one site holds the line (E or M).
};

/** One line's directory entry. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    SiteId owner = 0;     ///< Valid when state is Owned/Exclusive.
    SiteSet sharers;      ///< Sites with read copies (excludes owner).
};

/**
 * A single site's directory slice; the full directory is one slice
 * per site, indexed by homeSite().
 */
class Directory
{
  public:
    explicit Directory(std::uint32_t site_count)
        : siteCount_(site_count)
    {}

    /** Home site of an address: line-interleaved across sites. */
    SiteId
    homeSite(Addr addr, std::uint32_t line_bytes) const
    {
        return static_cast<SiteId>((addr / line_bytes) % siteCount_);
    }

    /** Look up (or create Uncached) entry for a line address. */
    DirEntry &entry(Addr line_addr) { return entries_[line_addr]; }

    /**
     * Drop the entry for @p line_addr if it has decayed back to
     * Uncached with no sharers — the state an untracked line decodes
     * to anyway, so reclaiming is invisible to the protocol. Without
     * this, a writeback leaves a dead Uncached entry behind forever
     * and the slice grows with every line ever touched.
     */
    void
    reclaim(Addr line_addr)
    {
        auto it = entries_.find(line_addr);
        if (it != entries_.end()
            && it->second.state == DirState::Uncached
            && it->second.sharers.empty()) {
            entries_.erase(it);
        }
    }

    /** Read-only probe; returns Uncached default if absent. */
    DirEntry
    probe(Addr line_addr) const
    {
        if (auto it = entries_.find(line_addr); it != entries_.end())
            return it->second;
        return DirEntry{};
    }

    std::size_t trackedLines() const { return entries_.size(); }

    /** Visit every tracked (line, entry) pair; order unspecified. */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const auto &[line, entry] : entries_)
            fn(line, entry);
    }

  private:
    std::uint32_t siteCount_;
    FlatMap<Addr, DirEntry> entries_;
};

} // namespace macrosim

#endif // MACROSIM_ARCH_DIRECTORY_HH
