/**
 * @file
 * Distributed full-map coherence directory.
 *
 * Each cache line has a home site determined by address interleaving.
 * The home's directory slice tracks the line's global state, its owner
 * site (for M/O/E lines) and a sharer bit-vector over the 64 sites.
 * The coherence engine consults and updates this state to decide which
 * network messages a transaction needs.
 */

#ifndef MACROSIM_ARCH_DIRECTORY_HH
#define MACROSIM_ARCH_DIRECTORY_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/cache.hh"
#include "arch/geometry.hh"
#include "arch/protocol.hh"
#include "sim/flat_map.hh"

namespace macrosim
{

/**
 * Compact set of sites (sharers) for an arbitrary R x C grid. The
 * first 64 sites live in one inline word — the whole paper-scale
 * (8x8) macrochip fits there, so directory entries on the Table 4
 * configuration stay allocation-free (the PR 5 hot-path contract).
 * Larger grids (16x16, 24x24 scaling studies) spill sites >= 64 into
 * an overflow word vector that grows on first touch and keeps its
 * capacity across clear(), so pooled coherence records still reuse
 * their storage in steady state.
 */
class SiteSet
{
  public:
    void
    add(SiteId s)
    {
        if (s < bitsPerWord) {
            low_ |= (std::uint64_t{1} << s);
            return;
        }
        const std::size_t w = s / bitsPerWord - 1;
        if (w >= ext_.size())
            ext_.resize(w + 1, 0);
        ext_[w] |= (std::uint64_t{1} << (s % bitsPerWord));
    }

    void
    remove(SiteId s)
    {
        if (s < bitsPerWord) {
            low_ &= ~(std::uint64_t{1} << s);
            return;
        }
        const std::size_t w = s / bitsPerWord - 1;
        if (w < ext_.size())
            ext_[w] &= ~(std::uint64_t{1} << (s % bitsPerWord));
    }

    bool
    contains(SiteId s) const
    {
        if (s < bitsPerWord)
            return (low_ >> s) & 1;
        const std::size_t w = s / bitsPerWord - 1;
        return w < ext_.size()
            && ((ext_[w] >> (s % bitsPerWord)) & 1);
    }

    /** Empty the set; overflow capacity is kept for reuse. */
    void
    clear()
    {
        low_ = 0;
        for (std::uint64_t &w : ext_)
            w = 0;
    }

    bool
    empty() const
    {
        if (low_ != 0)
            return false;
        for (const std::uint64_t w : ext_)
            if (w != 0)
                return false;
        return true;
    }

    std::uint32_t
    count() const
    {
        std::uint32_t n = static_cast<std::uint32_t>(
            __builtin_popcountll(low_));
        for (const std::uint64_t w : ext_)
            n += static_cast<std::uint32_t>(__builtin_popcountll(w));
        return n;
    }

    /** The low 64 sites as a bitmask (paper-scale fast path). */
    std::uint64_t raw() const { return low_; }

    /** Enumerate members in ascending site order. */
    std::vector<SiteId> members() const;

    /** Value equality; an all-zero overflow equals no overflow. */
    bool
    operator==(const SiteSet &o) const
    {
        if (low_ != o.low_)
            return false;
        const std::size_t n = std::max(ext_.size(), o.ext_.size());
        for (std::size_t w = 0; w < n; ++w) {
            const std::uint64_t a = w < ext_.size() ? ext_[w] : 0;
            const std::uint64_t b = w < o.ext_.size() ? o.ext_[w] : 0;
            if (a != b)
                return false;
        }
        return true;
    }

  private:
    static constexpr std::uint32_t bitsPerWord = 64;

    std::uint64_t low_ = 0;
    /** Words for sites [64, 128), [128, 192), ... — empty on the
     *  paper-scale grid. */
    std::vector<std::uint64_t> ext_;
};

/** Directory-side state of one line. */
enum class DirState : std::uint8_t
{
    Uncached,  ///< No on-macrochip copy; memory is the owner.
    Shared,    ///< One or more read-only copies; memory up to date.
    Owned,     ///< A dirty owner plus possible sharers.
    Exclusive, ///< Exactly one site holds the line (E or M).
};

/** One line's directory entry. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    SiteId owner = 0;     ///< Valid when state is Owned/Exclusive.
    SiteSet sharers;      ///< Sites with read copies (excludes owner).
};

/**
 * A single site's directory slice; the full directory is one slice
 * per site, indexed by homeSite().
 */
class Directory
{
  public:
    explicit Directory(std::uint32_t site_count)
        : siteCount_(site_count)
    {}

    /** Home site of an address: line-interleaved across sites. */
    SiteId
    homeSite(Addr addr, std::uint32_t line_bytes) const
    {
        return static_cast<SiteId>((addr / line_bytes) % siteCount_);
    }

    /** Look up (or create Uncached) entry for a line address. */
    DirEntry &entry(Addr line_addr) { return entries_[line_addr]; }

    /**
     * Drop the entry for @p line_addr if it has decayed back to
     * Uncached with no sharers — the state an untracked line decodes
     * to anyway, so reclaiming is invisible to the protocol. Without
     * this, a writeback leaves a dead Uncached entry behind forever
     * and the slice grows with every line ever touched.
     */
    void
    reclaim(Addr line_addr)
    {
        auto it = entries_.find(line_addr);
        if (it != entries_.end()
            && it->second.state == DirState::Uncached
            && it->second.sharers.empty()) {
            entries_.erase(it);
        }
    }

    /** Read-only probe; returns Uncached default if absent. */
    DirEntry
    probe(Addr line_addr) const
    {
        if (auto it = entries_.find(line_addr); it != entries_.end())
            return it->second;
        return DirEntry{};
    }

    std::size_t trackedLines() const { return entries_.size(); }

    /** Visit every tracked (line, entry) pair; order unspecified. */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const auto &[line, entry] : entries_)
            fn(line, entry);
    }

  private:
    std::uint32_t siteCount_;
    FlatMap<Addr, DirEntry> entries_;
};

} // namespace macrosim

#endif // MACROSIM_ARCH_DIRECTORY_HH
