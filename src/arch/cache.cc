#include "arch/cache.hh"

#include "sim/logging.hh"

namespace macrosim
{

SetAssocCache::SetAssocCache(std::uint32_t size_bytes,
                             std::uint32_t associativity,
                             std::uint32_t line_bytes)
    : ways_(associativity), lineBytes_(line_bytes)
{
    if (associativity == 0 || line_bytes == 0)
        fatal("SetAssocCache: associativity and line size must be > 0");
    if (size_bytes % (associativity * line_bytes) != 0)
        fatal("SetAssocCache: size ", size_bytes,
              " not divisible by way size");
    sets_ = size_bytes / (associativity * line_bytes);
    if (sets_ == 0)
        fatal("SetAssocCache: zero sets");
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].state != CacheState::Invalid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

std::optional<CacheState>
SetAssocCache::probe(Addr addr) const
{
    if (const Line *l = findLine(addr))
        return l->state;
    return std::nullopt;
}

bool
SetAssocCache::touch(Addr addr)
{
    if (Line *l = findLine(addr)) {
        l->lastUse = ++useClock_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

SetAssocCache::AccessResult
SetAssocCache::install(Addr addr, CacheState state)
{
    AccessResult res;
    if (Line *l = findLine(addr)) {
        // Re-install of a resident line: just update state and LRU.
        l->state = state;
        l->lastUse = ++useClock_;
        res.hit = true;
        res.state = state;
        return res;
    }

    const std::uint32_t set = setIndex(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].state == CacheState::Invalid) {
            victim = &base[w];
            break;
        }
        if (victim == nullptr || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    if (victim->state != CacheState::Invalid) {
        const Addr victim_addr = addrOf(set, victim->tag);
        res.evicted = victim_addr;
        if (isDirty(victim->state))
            res.writeback = victim_addr;
    }

    victim->tag = tagOf(addr);
    victim->state = state;
    victim->lastUse = ++useClock_;
    res.state = state;
    return res;
}

bool
SetAssocCache::setState(Addr addr, CacheState state)
{
    if (Line *l = findLine(addr)) {
        l->state = state;
        return true;
    }
    return false;
}

std::optional<CacheState>
SetAssocCache::invalidate(Addr addr)
{
    if (Line *l = findLine(addr)) {
        const CacheState s = l->state;
        l->state = CacheState::Invalid;
        return s;
    }
    return std::nullopt;
}

} // namespace macrosim
