/**
 * @file
 * MOESI coherence protocol vocabulary shared by caches, the directory
 * and the coherence engine (paper section 5: "models an MOESI
 * coherence protocol").
 */

#ifndef MACROSIM_ARCH_PROTOCOL_HH
#define MACROSIM_ARCH_PROTOCOL_HH

#include <cstdint>
#include <string_view>

namespace macrosim
{

/** Cache-line states of the MOESI protocol. */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

constexpr bool
isDirty(CacheState s)
{
    return s == CacheState::Modified || s == CacheState::Owned;
}

constexpr bool
canRead(CacheState s)
{
    return s != CacheState::Invalid;
}

constexpr bool
canWrite(CacheState s)
{
    return s == CacheState::Modified || s == CacheState::Exclusive;
}

std::string_view to_string(CacheState s);

/** Processor-side request classes reaching the L2. */
enum class MemOp : std::uint8_t
{
    Read,
    Write,
};

/** Coherence transaction classes issued by an L2 on a miss. */
enum class CoherenceOp : std::uint8_t
{
    GetS,      ///< Read miss: need a readable copy.
    GetM,      ///< Write miss: need an exclusive copy.
    Upgrade,   ///< Write hit on Shared/Owned: need ownership only.
    PutM,      ///< Writeback of a dirty evicted line.
};

std::string_view to_string(CoherenceOp op);

/** Network message types used by the protocol. */
enum class CoherenceMsg : std::uint8_t
{
    Request,      ///< Requester -> home (GetS/GetM/Upgrade/PutM).
    FwdRequest,   ///< Home -> current owner, forwarding a request.
    Invalidate,   ///< Home -> sharer.
    InvAck,       ///< Sharer -> requester.
    Data,         ///< Owner or home -> requester (carries the line).
    WritebackAck, ///< Home -> writer after a PutM.
};

std::string_view to_string(CoherenceMsg m);

/** Whether a message type carries a full cache line. */
constexpr bool
carriesData(CoherenceMsg m)
{
    return m == CoherenceMsg::Data;
}

/** Message sizes (bytes on the wire), section 5 / 6.1. */
constexpr std::uint32_t controlMessageBytes = 8;
constexpr std::uint32_t dataMessageBytes = 72; // 64 B line + 8 B header

} // namespace macrosim

#endif // MACROSIM_ARCH_PROTOCOL_HH
