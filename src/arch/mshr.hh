/**
 * @file
 * Miss Status Holding Registers.
 *
 * The paper models "finite MSHRs" (section 5): each core may have at
 * most mshrsPerCore outstanding coherence transactions; a core whose
 * bank is full stalls until one retires. This is the feedback path
 * that turns network latency into application slowdown (section 6.2).
 */

#ifndef MACROSIM_ARCH_MSHR_HH
#define MACROSIM_ARCH_MSHR_HH

#include <cstdint>

namespace macrosim
{

class MshrBank
{
  public:
    explicit MshrBank(std::uint32_t capacity) : capacity_(capacity) {}

    bool full() const { return inUse_ >= capacity_; }
    std::uint32_t inUse() const { return inUse_; }
    std::uint32_t capacity() const { return capacity_; }

    /** Reserve an entry. @return false if the bank is full. */
    bool
    allocate()
    {
        if (full())
            return false;
        ++inUse_;
        ++allocations_;
        return true;
    }

    /** Release an entry on transaction completion. */
    void
    release()
    {
        if (inUse_ == 0)
            return; // tolerated for robustness; callers assert
        --inUse_;
    }

    std::uint64_t allocations() const { return allocations_; }

  private:
    std::uint32_t capacity_;
    std::uint32_t inUse_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace macrosim

#endif // MACROSIM_ARCH_MSHR_HH
