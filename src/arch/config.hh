/**
 * @file
 * Macrochip system configuration.
 *
 * simulatedConfig() is the scaled-down system of section 4 / Table 4
 * that every experiment in the paper runs (64 sites, 8 cores/site,
 * 128 Tx + 128 Rx per site at 20 Gb/s each, 8 wavelengths per
 * waveguide, 320 GB/s per site, 20 TB/s peak).
 *
 * fullScaleConfig() is the 2015-vision system of section 3 (64
 * cores/site, 1024 Tx/Rx per site, 16 wavelengths per waveguide,
 * 2.56 TB/s per site, 160 TB/s aggregate), used by scalability and
 * power-projection examples.
 */

#ifndef MACROSIM_ARCH_CONFIG_HH
#define MACROSIM_ARCH_CONFIG_HH

#include <cstdint>

#include "arch/geometry.hh"
#include "photonics/components.hh"
#include "sim/ticks.hh"

namespace macrosim
{

struct MacrochipConfig
{
    std::uint32_t rows = 8;
    std::uint32_t cols = 8;
    std::uint32_t coresPerSite = 8;
    std::uint32_t threadsPerCore = 1;

    /** Shared L2 per site (Table 4: 256 KB). */
    std::uint32_t l2CacheBytes = 256 * 1024;
    std::uint32_t l2Associativity = 8;
    std::uint32_t cacheLineBytes = 64;

    /** Optical transmitters / receivers per site, 20 Gb/s each. */
    std::uint32_t txPerSite = 128;
    std::uint32_t rxPerSite = 128;
    std::uint32_t wavelengthsPerWaveguide = 8;

    /** Clock period in ticks (5 GHz -> 200 ps). */
    Tick clockPeriod = 200;

    /** Site pitch, cm (see MacrochipGeometry). */
    double sitePitchCm = 2.5;

    /** MSHRs (outstanding misses) per core. */
    std::uint32_t mshrsPerCore = 8;

    /** Per-core power including caches and memory controller
     *  (section 3: 1 W/core, 64 W/site). */
    double wattsPerCore = 1.0;

    /** Directory/L2 lookup latency at the home site. */
    Tick directoryLatency = 10 * tickNs;

    /** Flat off-macrochip (fiber-attached) memory access latency. */
    Tick memoryLatency = 50 * tickNs;

    /** Independent fiber memory channels per site (section 3: edge
     *  fiber connections carry off-macrochip memory traffic). */
    std::uint32_t memoryPortsPerSite = 4;

    /**
     * Total fiber memory channels on the macrochip; 0 (the default)
     * means the uniform siteCount() x memoryPortsPerSite placement of
     * Table 4. A non-zero total models a fixed edge-fiber budget that
     * need not divide the site count: memoryPortsAt() spreads it so
     * no two sites differ by more than one port.
     */
    std::uint32_t memoryPortsTotal = 0;

    /** Bandwidth of one fiber memory channel, bytes/ns (8 lambdas
     *  at 20 Gb/s = 20 GB/s). */
    double memoryPortBytesPerNs = 20.0;

    std::uint32_t siteCount() const { return rows * cols; }
    std::uint32_t coreCount() const { return siteCount() * coresPerSite; }

    /** Fiber memory channels on the whole macrochip. */
    std::uint32_t
    memoryPortCount() const
    {
        return memoryPortsTotal != 0
            ? memoryPortsTotal
            : siteCount() * memoryPortsPerSite;
    }

    /**
     * Fiber memory channels homed at @p site under the balanced
     * placement: every site gets total/sites ports and the first
     * total%sites sites carry the remainder, so per-site counts never
     * differ by more than one.
     */
    std::uint32_t
    memoryPortsAt(SiteId site) const
    {
        const std::uint32_t n = siteCount();
        const std::uint32_t total = memoryPortCount();
        return total / n + (site < total % n ? 1 : 0);
    }

    /** Index of @p site's first port in the flattened port array. */
    std::uint32_t
    memoryPortBase(SiteId site) const
    {
        const std::uint32_t n = siteCount();
        const std::uint32_t total = memoryPortCount();
        const std::uint32_t rem = total % n;
        return site * (total / n) + (site < rem ? site : rem);
    }

    /** Per-site injection bandwidth in bytes/ns (Table 4: 320). */
    double
    siteBandwidthBytesPerNs() const
    {
        return static_cast<double>(txPerSite) * bytesPerNsPerWavelength;
    }

    /** Total peak network bandwidth in TB/s (Table 4: 20). */
    double
    peakBandwidthTBs() const
    {
        return siteBandwidthBytesPerNs()
            * static_cast<double>(siteCount()) / 1000.0;
    }

    MacrochipGeometry
    geometry() const
    {
        return MacrochipGeometry(rows, cols, sitePitchCm);
    }

    ClockDomain clock() const { return ClockDomain(clockPeriod); }
};

/** The Table 4 simulated system. */
inline MacrochipConfig
simulatedConfig()
{
    return MacrochipConfig{};
}

/**
 * The Table 4 system re-scaled to an arbitrary R x C site grid by
 * the paper's own provisioning rule: two wavelengths (5 GB/s) per
 * ordered destination site, so txPerSite = 2 x sites. At 8x8 this
 * is exactly simulatedConfig() (128 Tx/site, 320 GB/s/site); larger
 * grids keep the per-destination bandwidth of Table 4 while the
 * scaling studies vary rows and cols. All other Table 4 knobs
 * (cores/site, L2, WDM degree, clock, pitch) are inherited and may
 * be overridden afterwards.
 */
inline MacrochipConfig
scaledConfig(std::uint32_t rows, std::uint32_t cols)
{
    MacrochipConfig c;
    c.rows = rows;
    c.cols = cols;
    c.txPerSite = 2 * rows * cols;
    c.rxPerSite = c.txPerSite;
    return c;
}

/** The full-scale 2015 target of section 3. */
inline MacrochipConfig
fullScaleConfig()
{
    MacrochipConfig c;
    c.coresPerSite = 64;
    c.txPerSite = 1024;
    c.rxPerSite = 1024;
    c.wavelengthsPerWaveguide = 16;
    return c;
}

} // namespace macrosim

#endif // MACROSIM_ARCH_CONFIG_HH
