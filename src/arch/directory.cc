#include "arch/directory.hh"

namespace macrosim
{

std::vector<SiteId>
SiteSet::members() const
{
    std::vector<SiteId> out;
    out.reserve(count());
    const auto drain = [&out](std::uint64_t word, SiteId base) {
        while (word != 0) {
            const int idx = __builtin_ctzll(word);
            out.push_back(base + static_cast<SiteId>(idx));
            word &= word - 1;
        }
    };
    drain(low_, 0);
    for (std::size_t w = 0; w < ext_.size(); ++w)
        drain(ext_[w], static_cast<SiteId>((w + 1) * bitsPerWord));
    return out;
}

} // namespace macrosim
