#include "arch/directory.hh"

namespace macrosim
{

std::vector<SiteId>
SiteSet::members() const
{
    std::vector<SiteId> out;
    out.reserve(count());
    std::uint64_t b = bits_;
    while (b != 0) {
        const int idx = __builtin_ctzll(b);
        out.push_back(static_cast<SiteId>(idx));
        b &= b - 1;
    }
    return out;
}

} // namespace macrosim
