/**
 * @file
 * Macrochip physical geometry (paper section 3, figure 1).
 *
 * The macrochip is a rows x cols array of sites on an SOI routing
 * substrate. Horizontal waveguides run between rows on the bottom
 * routing layer, vertical waveguides between columns on the top layer,
 * joined by inter-layer couplers — so optical routes are Manhattan.
 * Geometry determines waveguide lengths, hence propagation delays
 * (0.1 ns/cm) and waveguide losses (0.1 dB/cm global).
 */

#ifndef MACROSIM_ARCH_GEOMETRY_HH
#define MACROSIM_ARCH_GEOMETRY_HH

#include <cstdint>

#include "photonics/components.hh"
#include "sim/ticks.hh"

namespace macrosim
{

/** Dense site index in [0, rows*cols). */
using SiteId = std::uint32_t;

/** Grid position of a site. */
struct SiteCoord
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;

    bool operator==(const SiteCoord &) const = default;
};

class MacrochipGeometry
{
  public:
    /**
     * @param rows Number of site rows (8 in the paper).
     * @param cols Number of site columns (8 in the paper).
     * @param site_pitch_cm Centre-to-centre site spacing. 2.5 cm
     *        reproduces the paper's scaled token round trip: a ring
     *        visiting all 64 sites is 160 cm, i.e. 16 ns at
     *        0.1 ns/cm = 80 cycles at 5 GHz.
     */
    MacrochipGeometry(std::uint32_t rows, std::uint32_t cols,
                      double site_pitch_cm = 2.5);

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::uint32_t siteCount() const { return rows_ * cols_; }
    double sitePitchCm() const { return pitchCm_; }

    SiteCoord coordOf(SiteId id) const;
    SiteId idOf(SiteCoord c) const;

    bool
    sameRow(SiteId a, SiteId b) const
    {
        return coordOf(a).row == coordOf(b).row;
    }

    bool
    sameCol(SiteId a, SiteId b) const
    {
        return coordOf(a).col == coordOf(b).col;
    }

    /** Manhattan waveguide route length between two sites, in cm. */
    double routeLengthCm(SiteId src, SiteId dst) const;

    /** Optical propagation delay along the Manhattan route. */
    Tick propagationDelay(SiteId src, SiteId dst) const;

    /** Propagation delay for a waveguide of the given length. */
    static Tick
    waveguideDelay(double cm)
    {
        return nsToTicks(cm * propagationNsPerCm);
    }

    /** Length of a serpentine ring visiting every site once, in cm. */
    double
    ringLengthCm() const
    {
        return pitchCm_ * static_cast<double>(siteCount());
    }

    /** Delay for a token to traverse the full ring. */
    Tick
    ringRoundTrip() const
    {
        return waveguideDelay(ringLengthCm());
    }

    /** Ring (token) propagation time between consecutive sites. */
    Tick
    ringHopDelay() const
    {
        return waveguideDelay(pitchCm_);
    }

    /** Torus hop count between two sites with wraparound XY routing. */
    std::uint32_t torusHops(SiteId src, SiteId dst) const;

    /** Worst-case Manhattan route length on this grid, in cm. */
    double
    worstCaseRouteCm() const
    {
        return pitchCm_ * static_cast<double>((rows_ - 1) + (cols_ - 1));
    }

  private:
    std::uint32_t rows_;
    std::uint32_t cols_;
    double pitchCm_;
};

} // namespace macrosim

#endif // MACROSIM_ARCH_GEOMETRY_HH
