/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Models the per-site shared L2 of Table 4. Tracks MOESI line states
 * so the coherence engine can decide whether a miss needs the
 * directory and whether an eviction produces a writeback message.
 */

#ifndef MACROSIM_ARCH_CACHE_HH
#define MACROSIM_ARCH_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/protocol.hh"

namespace macrosim
{

/** A physical (line-aligned) address. */
using Addr = std::uint64_t;

class SetAssocCache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param associativity Ways per set.
     * @param line_bytes Cache line size.
     */
    SetAssocCache(std::uint32_t size_bytes, std::uint32_t associativity,
                  std::uint32_t line_bytes);

    /** Result of a lookup-with-allocate. */
    struct AccessResult
    {
        bool hit = false;
        /** State of the line if hit (and, for writes, pre-upgrade). */
        CacheState state = CacheState::Invalid;
        /**
         * If an allocation evicted a line whose state obliges a
         * writeback (M or O), its address.
         */
        std::optional<Addr> writeback;
        /** Address of any evicted line (clean or dirty). */
        std::optional<Addr> evicted;
    };

    /** Probe without side effects. */
    std::optional<CacheState> probe(Addr addr) const;

    /** Touch a resident line (LRU update). Returns false on miss. */
    bool touch(Addr addr);

    /**
     * Install a line in the given state, evicting the set's LRU line
     * if needed. @return eviction information.
     */
    AccessResult install(Addr addr, CacheState state);

    /** Change the state of a resident line. Returns false on miss. */
    bool setState(Addr addr, CacheState state);

    /** Remove a line (invalidation). Returns its state if present. */
    std::optional<CacheState> invalidate(Addr addr);

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        Addr tag = 0;
        CacheState state = CacheState::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr / lineBytes_) % sets_);
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr / lineBytes_ / sets_;
    }

    Addr
    addrOf(std::uint32_t set, Addr tag) const
    {
        return (tag * sets_ + set) * lineBytes_;
    }

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    std::uint32_t ways_;
    std::uint32_t sets_;
    std::uint32_t lineBytes_;
    std::uint64_t useClock_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    std::vector<Line> lines_; // sets_ * ways_, row-major by set
};

} // namespace macrosim

#endif // MACROSIM_ARCH_CACHE_HH
