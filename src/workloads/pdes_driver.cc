#include "workloads/pdes_driver.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace macrosim
{

PdesModel
buildPdesModel(const PdesNetworkFactory &make_net, std::uint32_t lps,
               std::size_t threads, std::uint64_t seed)
{
    if (!make_net)
        panic("buildPdesModel: empty network factory");
    if (lps == 0)
        lps = 1;

    // Probe replica: partitionability and site count are config
    // properties, identical across replicas.
    std::uint32_t sites = 0;
    PdesPartition partition = PdesPartition::Colocated;
    {
        Simulator probe(seed);
        std::unique_ptr<Network> net = make_net(probe);
        sites = net->config().siteCount();
        partition = net->pdesPartition();
    }

    PdesModel model;
    model.effectiveLps = partition == PdesPartition::BySourceSite
        ? std::min(lps, sites)
        : 1;
    model.sched = std::make_unique<PdesScheduler>(model.effectiveLps,
                                                  threads, seed);
    model.sched->setSitePartition(
        PdesScheduler::blockPartition(sites, model.effectiveLps));
    model.nets.reserve(model.effectiveLps);
    for (std::uint32_t i = 0; i < model.effectiveLps; ++i) {
        model.nets.push_back(make_net(model.sched->simOf(i)));
        model.nets.back()->bindPdes(*model.sched, i);
    }
    model.sched->setLookahead(model.nets.front()->pdesLookahead());
    return model;
}

std::unique_ptr<PdesTracer>
armPdesObservability(PdesModel &model, const PdesObservability *obs)
{
    if (obs == nullptr)
        return nullptr;
    model.sched->setMetricsTiming(obs->timing);
    if (obs->profile) {
        for (std::uint32_t i = 0; i < model.effectiveLps; ++i)
            model.sched->simOf(i).events().setProfiling(true);
    }
    if (obs->trace != nullptr) {
        return std::make_unique<PdesTracer>(*model.sched,
                                            obs->traceShardCapacity,
                                            obs->flowSampleMask);
    }
    return nullptr;
}

void
finishPdesObservability(PdesModel &model,
                        const PdesObservability *obs,
                        std::unique_ptr<PdesTracer> tracer)
{
    if (obs == nullptr)
        return;
    if (tracer != nullptr && obs->trace != nullptr)
        tracer->finish(*obs->trace);
    if (obs->profile && obs->profileOut != nullptr) {
        // Fixed LP order: the fold's *layout* is thread-count
        // invariant even though the wall times inside are not.
        std::ostringstream os;
        for (std::uint32_t i = 0; i < model.effectiveLps; ++i) {
            os << "[pdes lp" << i << " event profile]\n";
            model.sched->simOf(i).events().dumpProfile(os);
        }
        *obs->profileOut = os.str();
    }
    if (obs->metricsOut != nullptr) {
        std::ostringstream os;
        model.sched->telemetry().dump(os);
        *obs->metricsOut = os.str();
    }
}

} // namespace macrosim
