/**
 * @file
 * Synthetic traffic patterns (paper section 5, Table 3).
 *
 *   Uniform    - destination drawn uniformly at random per packet.
 *   Transpose  - the first half of the source site-id's bits is
 *                swapped with the second half (a fixed permutation).
 *   Butterfly  - the LSB and MSB of the source site-id are swapped
 *                (fixed permutation; half the sites map to
 *                themselves, which becomes loopback traffic).
 *   Neighbor   - one of the four grid neighbors (x,y±1), (x±1,y) is
 *                chosen at random per packet (toroidal wrap at the
 *                edges so every site has four neighbors).
 *   AllToAll   - each site cycles round-robin over every other site
 *                (the heaviest-load pattern of section 6.2).
 */

#ifndef MACROSIM_WORKLOADS_PATTERNS_HH
#define MACROSIM_WORKLOADS_PATTERNS_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/geometry.hh"
#include "sim/random.hh"

namespace macrosim
{

enum class TrafficPattern
{
    Uniform,
    Transpose,
    Butterfly,
    Neighbor,
    AllToAll,
};

std::string_view to_string(TrafficPattern p);

/**
 * Inverse of to_string(): parse a pattern name ("uniform",
 * "transpose", "butterfly", "neighbor", "all-to-all").
 * @return Whether @p name was recognized; *out untouched otherwise.
 */
bool patternFromString(std::string_view name, TrafficPattern *out);

/** The fixed transpose permutation on @p bits-bit site ids. */
SiteId transposeOf(SiteId src, std::uint32_t bits);

/** The fixed butterfly permutation on @p bits-bit site ids. */
SiteId butterflyOf(SiteId src, std::uint32_t bits);

/**
 * Stateful per-source destination generator. Stateless patterns
 * ignore the internal cursor; AllToAll uses one cursor per source.
 */
class DestinationGenerator
{
  public:
    DestinationGenerator(TrafficPattern pattern,
                         const MacrochipGeometry &geom);

    TrafficPattern pattern() const { return pattern_; }

    /** Next destination for a packet from @p src. */
    SiteId next(SiteId src, Rng &rng);

  private:
    TrafficPattern pattern_;
    MacrochipGeometry geom_;
    std::uint32_t idBits_;
    std::vector<SiteId> cursor_; ///< AllToAll round-robin state.
};

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_PATTERNS_HH
