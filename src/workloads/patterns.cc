#include "workloads/patterns.hh"

#include "sim/logging.hh"

namespace macrosim
{

std::string_view
to_string(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::Uniform: return "uniform";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::Butterfly: return "butterfly";
      case TrafficPattern::Neighbor: return "neighbor";
      case TrafficPattern::AllToAll: return "all-to-all";
    }
    return "?";
}

bool
patternFromString(std::string_view name, TrafficPattern *out)
{
    for (const TrafficPattern p :
         {TrafficPattern::Uniform, TrafficPattern::Transpose,
          TrafficPattern::Butterfly, TrafficPattern::Neighbor,
          TrafficPattern::AllToAll}) {
        if (to_string(p) == name) {
            *out = p;
            return true;
        }
    }
    return false;
}

SiteId
transposeOf(SiteId src, std::uint32_t bits)
{
    const std::uint32_t half = bits / 2;
    const SiteId mask = (SiteId{1} << half) - 1;
    const SiteId low = src & mask;
    const SiteId high = src >> half;
    return (low << half) | high;
}

SiteId
butterflyOf(SiteId src, std::uint32_t bits)
{
    const SiteId lsb = src & 1;
    const SiteId msb = (src >> (bits - 1)) & 1;
    SiteId dst = src & ~((SiteId{1} << (bits - 1)) | SiteId{1});
    dst |= (lsb << (bits - 1)) | msb;
    return dst;
}

namespace
{

std::uint32_t
log2Exact(std::uint32_t n)
{
    std::uint32_t bits = 0;
    while ((1u << bits) < n)
        ++bits;
    return bits;
}

} // namespace

DestinationGenerator::DestinationGenerator(TrafficPattern pattern,
                                           const MacrochipGeometry &geom)
    : pattern_(pattern), geom_(geom),
      idBits_(log2Exact(geom.siteCount())),
      cursor_(geom.siteCount(), 0)
{
    if ((1u << idBits_) != geom_.siteCount()
        && (pattern == TrafficPattern::Transpose
            || pattern == TrafficPattern::Butterfly)) {
        fatal("DestinationGenerator: ", to_string(pattern),
              " needs a power-of-two site count, got ",
              geom_.siteCount());
    }
}

SiteId
DestinationGenerator::next(SiteId src, Rng &rng)
{
    switch (pattern_) {
      case TrafficPattern::Uniform:
        return static_cast<SiteId>(rng.below(geom_.siteCount()));

      case TrafficPattern::Transpose:
        return transposeOf(src, idBits_);

      case TrafficPattern::Butterfly:
        return butterflyOf(src, idBits_);

      case TrafficPattern::Neighbor: {
        const SiteCoord c = geom_.coordOf(src);
        const std::uint32_t rows = geom_.rows();
        const std::uint32_t cols = geom_.cols();
        switch (rng.below(4)) {
          case 0:
            return geom_.idOf({c.row, (c.col + 1) % cols});
          case 1:
            return geom_.idOf({c.row, (c.col + cols - 1) % cols});
          case 2:
            return geom_.idOf({(c.row + 1) % rows, c.col});
          default:
            return geom_.idOf({(c.row + rows - 1) % rows, c.col});
        }
      }

      case TrafficPattern::AllToAll: {
        // Round-robin over the other sites.
        SiteId &cur = cursor_[src];
        cur = (cur + 1) % geom_.siteCount();
        if (cur == src)
            cur = (cur + 1) % geom_.siteCount();
        return cur;
      }
    }
    panic("DestinationGenerator: unhandled pattern");
}

} // namespace macrosim
