#include "workloads/coherence.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace macrosim
{

CoherenceEngine::CoherenceEngine(Simulator &sim, Network &net,
                                 bool directory_mode)
    : sim_(sim), net_(net), directoryMode_(directory_mode),
      directoryLatency_(net.config().directoryLatency),
      memoryLatency_(net.config().memoryLatency),
      lineBytes_(net.config().cacheLineBytes)
{
    const auto sites = net_.config().siteCount();
    // One line transfer occupies a fiber memory channel for
    // lineBytes / channel bandwidth (3.2 ns at 64 B and 20 GB/s).
    memoryOccupancy_ = nsToTicks(
        static_cast<double>(lineBytes_)
        / net_.config().memoryPortBytesPerNs);
    memoryChannels_.resize(net_.config().memoryPortCount());
    // Reserve the hot-path tables up front so steady-state traffic
    // never rehashes (see flat_map.hh's contract).
    txns_.reserve(1024);
    lineLocks_.reserve(1024);
    outstanding_.reserve(1024);
    for (SiteId s = 0; s < sites; ++s) {
        net_.setDeliveryHandler(s, [this](const Message &m) {
            onDelivery(m);
        });
    }
    if (directoryMode_) {
        l2s_.reserve(sites);
        dirs_.reserve(sites);
        for (SiteId s = 0; s < sites; ++s) {
            l2s_.push_back(std::make_unique<SetAssocCache>(
                net_.config().l2CacheBytes,
                net_.config().l2Associativity, lineBytes_));
            dirs_.push_back(std::make_unique<Directory>(sites));
        }
    }
    registerTelemetry();
}

void
CoherenceEngine::registerTelemetry()
{
    StatScope arch(sim_.telemetry(),
                   sim_.telemetry().uniquePrefix("arch"));
    arch.add("txn.started", [this] {
        return static_cast<double>(started_);
    });
    arch.add("txn.completed", [this] {
        return static_cast<double>(completed_);
    });
    arch.add("txn.in_flight", [this] {
        return static_cast<double>(inFlight());
    });
    arch.add("txn.messages", [this] {
        return static_cast<double>(messagesSent_);
    });
    arch.add("txn.writebacks", [this] {
        return static_cast<double>(writebacks_);
    });
    arch.add("txn.coalesced", [this] {
        return static_cast<double>(coalesced_);
    });
    arch.add("txn.retries", [this] {
        return static_cast<double>(txnRetries_);
    });
    arch.add("txn.aborted", [this] {
        return static_cast<double>(aborted_);
    });
    arch.add("txn.stale_acks", [this] {
        return static_cast<double>(staleAcks_);
    });
    arch.addMean("txn.latency_ns", opLatency_);
    if (!directoryMode_)
        return;
    for (SiteId s = 0; s < net_.config().siteCount(); ++s) {
        const StatScope site =
            arch.scope("site" + std::to_string(s));
        const SetAssocCache *l2 = l2s_[s].get();
        site.add("l2.hits", [l2] {
            return static_cast<double>(l2->hits());
        });
        site.add("l2.misses", [l2] {
            return static_cast<double>(l2->misses());
        });
        const Directory *dir = dirs_[s].get();
        site.add("dir.tracked_lines", [dir] {
            return static_cast<double>(dir->trackedLines());
        });
    }
}

CoherenceEngine::Txn *
CoherenceEngine::findTxn(TxnId id)
{
    auto it = txns_.find(id);
    return it == txns_.end() ? nullptr : &txnPool_[it->second];
}

CoherenceEngine::Txn &
CoherenceEngine::allocTxn()
{
    std::uint32_t idx;
    if (!txnFree_.empty()) {
        idx = txnFree_.back();
        txnFree_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(txnPool_.size());
        txnPool_.emplace_back();
    }
    Txn &txn = txnPool_[idx];
    txn.poolIndex = idx;
    return txn;
}

void
CoherenceEngine::releaseTxn(TxnId id)
{
    auto it = txns_.find(id);
    if (it == txns_.end())
        return;
    const std::uint32_t idx = it->second;
    txns_.erase(it);
    // Scrub back to the default state, keeping the vectors' capacity
    // (clear(), not shrink) so the recycled record issues without
    // touching the heap.
    Txn &txn = txnPool_[idx];
    txn.id = 0;
    txn.requester = 0;
    txn.home = 0;
    txn.op = CoherenceOp::GetS;
    txn.line = 0;
    txn.needsData = true;
    txn.dataReceived = false;
    txn.pendingAcks = 0;
    txn.expanded = false;
    txn.start = 0;
    txn.installState = CacheState::Shared;
    txn.sharers.clear();
    txn.done = nullptr;
    txn.coalescedDone.clear();
    txn.attempts = 0;
    txn.retryEvent = invalidEventId;
    txnFree_.push_back(idx);
}

void
CoherenceEngine::send(SiteId src, SiteId dst, CoherenceMsg type,
                      std::uint32_t bytes, TxnId txn)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = type;
    m.bytes = bytes;
    m.txn = txn;
    switch (type) {
      case CoherenceMsg::Request:
      case CoherenceMsg::FwdRequest:
      case CoherenceMsg::Invalidate:
        m.cls = MsgClass::Request;
        break;
      case CoherenceMsg::Data:
        m.cls = MsgClass::Data;
        break;
      default:
        m.cls = MsgClass::Response;
        break;
    }
    ++messagesSent_;
    net_.inject(std::move(m));
}

TxnId
CoherenceEngine::startSynthetic(SiteId requester, SiteId home,
                                CoherenceOp op,
                                const std::vector<SiteId> &sharers,
                                CompletionFn done)
{
    if (directoryMode_)
        panic("startSynthetic called on a directory-mode engine");
    Txn &txn = allocTxn();
    txn.id = nextTxn_++;
    txn.requester = requester;
    txn.home = home;
    txn.op = op;
    txn.sharers = sharers; // copy-assign reuses the pooled capacity
    txn.needsData = (op == CoherenceOp::GetS || op == CoherenceOp::GetM);
    txn.start = sim_.now();
    txn.done = std::move(done);
    const TxnId id = txn.id;
    txns_.try_emplace(id, txn.poolIndex);
    ++started_;

    sendRequest(txn);
    armTimeout(txn);
    return id;
}

void
CoherenceEngine::sendRequest(const Txn &txn)
{
    const std::uint32_t req_bytes =
        (txn.op == CoherenceOp::PutM) ? dataMessageBytes
                                      : controlMessageBytes;
    send(txn.requester, txn.home, CoherenceMsg::Request, req_bytes,
         txn.id);
}

void
CoherenceEngine::armTimeout(Txn &txn)
{
    if (!resilience_.enabled || resilience_.timeout == 0)
        return;
    const Tick wait = resilience_.timeout << txn.attempts;
    const TxnId id = txn.id;
    txn.retryEvent = sim_.events().scheduleAfter(
        wait, [this, id] { onTimeout(id); }, "arch.txn_timeout");
}

void
CoherenceEngine::onTimeout(TxnId id)
{
    Txn *found = findTxn(id);
    if (!found)
        return;
    Txn &txn = *found;
    txn.retryEvent = invalidEventId;
    if (txn.attempts >= resilience_.maxRetries) {
        abortTxn(txn);
        return;
    }
    // Reset to pre-expansion state and re-issue the request. The
    // home re-expands it (its line lock recognises the holder's own
    // retry); responses already in flight from the slow first
    // attempt are tolerated as stale.
    ++txn.attempts;
    ++txnRetries_;
    txn.expanded = false;
    txn.dataReceived = false;
    txn.pendingAcks = 0;
    sendRequest(txn);
    armTimeout(txn);
}

void
CoherenceEngine::abortTxn(Txn &txn)
{
    ++aborted_;
    const Tick latency = sim_.now() - txn.start;
    CompletionFn done = std::move(txn.done);
    std::vector<CompletionFn> coalesced = std::move(txn.coalescedDone);
    const TxnId id = txn.id;
    const Addr line = txn.line;
    const SiteId requester = txn.requester;
    releaseTxn(id);

    if (directoryMode_) {
        const std::uint64_t key = outstandingKey(requester, line);
        if (auto out = outstanding_.find(key);
            out != outstanding_.end() && out->second == id) {
            outstanding_.erase(out);
        }
        releaseLineLock(line, id);
    }

    // Completion callbacks still fire so closed-loop drivers drain;
    // the abort is visible through abortedTransactions() and the
    // "arch.txn.aborted" stat rather than a hang.
    if (done)
        done(id, latency);
    for (CompletionFn &fn : coalesced) {
        if (fn)
            fn(id, latency);
    }
}

void
CoherenceEngine::releaseLineLock(Addr line, TxnId id)
{
    auto it = lineLocks_.find(line);
    if (it == lineLocks_.end())
        return;
    LineLock &lock = it->second;
    if (lock.holder != id) {
        // Aborted while still queued behind another holder.
        auto w = std::find(lock.waiters.begin(), lock.waiters.end(),
                           id);
        if (w != lock.waiters.end())
            lock.waiters.erase(w);
        return;
    }
    if (lock.waiters.empty()) {
        lineLocks_.erase(it);
    } else {
        const TxnId next = lock.waiters.front();
        lock.waiters.erase(lock.waiters.begin());
        lock.holder = next;
        scheduleExpansion(next);
    }
}

std::optional<TxnId>
CoherenceEngine::startAccess(SiteId site, Addr addr, MemOp op,
                             CompletionFn done)
{
    if (!directoryMode_)
        panic("startAccess called on a synthetic-mode engine");
    const Addr line = addr / lineBytes_ * lineBytes_;
    SetAssocCache &l2 = *l2s_[site];

    CoherenceOp coherence_op;
    if (const auto state = l2.probe(line); state.has_value()) {
        if (op == MemOp::Read) {
            l2.touch(line);
            return std::nullopt;
        }
        // Write hit paths.
        if (*state == CacheState::Modified) {
            l2.touch(line);
            return std::nullopt;
        }
        if (*state == CacheState::Exclusive) {
            // Silent E -> M upgrade.
            l2.touch(line);
            l2.setState(line, CacheState::Modified);
            return std::nullopt;
        }
        // Shared or Owned: ownership upgrade via the directory.
        coherence_op = CoherenceOp::Upgrade;
    } else {
        coherence_op = (op == MemOp::Read) ? CoherenceOp::GetS
                                           : CoherenceOp::GetM;
    }

    // MSHR coalescing: attach to an outstanding fetch of the same
    // line when its permission suffices for this access.
    const std::uint64_t key = outstandingKey(site, line);
    if (auto out = outstanding_.find(key); out != outstanding_.end()) {
        if (Txn *pending_txn = findTxn(out->second)) {
            Txn &pending = *pending_txn;
            const bool strong_enough =
                op == MemOp::Read
                || pending.op == CoherenceOp::GetM
                || pending.op == CoherenceOp::Upgrade;
            if (strong_enough) {
                ++coalesced_;
                if (done)
                    pending.coalescedDone.push_back(std::move(done));
                return pending.id;
            }
        }
    }

    Txn &txn = allocTxn();
    txn.id = nextTxn_++;
    txn.requester = site;
    txn.home = dirs_[0]->homeSite(line, lineBytes_);
    txn.op = coherence_op;
    txn.line = line;
    txn.needsData = (coherence_op != CoherenceOp::Upgrade);
    txn.start = sim_.now();
    txn.done = std::move(done);
    const TxnId id = txn.id;
    txns_.try_emplace(id, txn.poolIndex);
    ++started_;
    outstanding_[key] = id;

    sendRequest(txn);
    armTimeout(txn);
    return id;
}

void
CoherenceEngine::replyFromMemory(SiteId home, SiteId requester,
                                 TxnId txn)
{
    // Claim the least-loaded of the home's fiber memory channels
    // (balanced placement: memoryPortsAt() ports starting at
    // memoryPortBase()), then pay the flat access latency on top of
    // the transfer slot. A home with no port of its own — possible
    // when a fixed edge-fiber budget is spread over more sites than
    // ports — pays only the flat latency, modelling a remote
    // edge-fiber reached over already-simulated network hops.
    const std::uint32_t ports = net_.config().memoryPortsAt(home);
    Tick data_ready = sim_.now() + memoryLatency_;
    if (ports > 0) {
        const std::size_t base = net_.config().memoryPortBase(home);
        std::size_t port = base;
        for (std::size_t p = base + 1; p < base + ports; ++p) {
            if (memoryChannels_[p].busyUntil()
                < memoryChannels_[port].busyUntil())
                port = p;
        }
        const Tick start = memoryChannels_[port].reserve(
            sim_.now(), memoryOccupancy_);
        data_ready = start + memoryOccupancy_ + memoryLatency_;
    }
    sim_.events().schedule(data_ready, [this, home, requester, txn] {
        send(home, requester, CoherenceMsg::Data, dataMessageBytes,
             txn);
    }, "arch.memory");
}

void
CoherenceEngine::onDelivery(const Message &msg)
{
    switch (msg.type) {
      case CoherenceMsg::Request:
        onRequestAtHome(msg);
        break;
      case CoherenceMsg::FwdRequest:
        onFwdAtOwner(msg);
        break;
      case CoherenceMsg::Invalidate:
        onInvalidateAtSharer(msg);
        break;
      case CoherenceMsg::Data:
        onDataAtRequester(msg);
        break;
      case CoherenceMsg::InvAck:
      case CoherenceMsg::WritebackAck:
        onAckAtRequester(msg);
        break;
    }
}

void
CoherenceEngine::onRequestAtHome(const Message &msg)
{
    if (directoryMode_) {
        // Per-line serialization at the home: if another transaction
        // on this line is outstanding, this request waits its turn —
        // the classic directory mechanism that preserves the
        // single-writer invariant under races.
        Txn *txn = findTxn(msg.txn);
        if (!txn)
            return;
        const Addr line = txn->line;
        auto [lock_it, inserted] = lineLocks_.try_emplace(line);
        if (inserted) {
            lock_it->second.holder = msg.txn;
        } else if (lock_it->second.holder != msg.txn) {
            // Queue behind the current holder — once per txn, so a
            // retried duplicate of a waiter doesn't enqueue twice.
            auto &w = lock_it->second.waiters;
            if (std::find(w.begin(), w.end(), msg.txn) == w.end())
                w.push_back(msg.txn);
            return;
        }
        // The holder's own re-sent request (a resilience retry)
        // falls through to re-expansion.
    }
    scheduleExpansion(msg.txn);
}

void
CoherenceEngine::scheduleExpansion(TxnId id)
{
    // The home performs a directory/L2 lookup before acting.
    sim_.events().scheduleAfter(directoryLatency_, [this, id] {
        Txn *txn = findTxn(id);
        if (!txn)
            return;
        if (directoryMode_)
            expandDirectory(*txn);
        else
            expandSynthetic(*txn);
    }, "arch.dir_lookup");
}

void
CoherenceEngine::expandSynthetic(Txn &txn)
{
    txn.expanded = true;
    switch (txn.op) {
      case CoherenceOp::GetS:
        if (txn.sharers.empty()) {
            // No on-chip copy: fetch from the home's fiber-attached
            // memory, then reply with data.
            replyFromMemory(txn.home, txn.requester, txn.id);
        } else {
            // The first sharer is the owner and forwards the line.
            send(txn.home, txn.sharers.front(),
                 CoherenceMsg::FwdRequest, controlMessageBytes,
                 txn.id);
        }
        break;

      case CoherenceOp::GetM:
        if (txn.sharers.empty()) {
            replyFromMemory(txn.home, txn.requester, txn.id);
        } else {
            // Owner forwards data; the remaining sharers are
            // invalidated and ack directly to the requester.
            send(txn.home, txn.sharers.front(),
                 CoherenceMsg::FwdRequest, controlMessageBytes,
                 txn.id);
            txn.pendingAcks =
                static_cast<std::uint32_t>(txn.sharers.size()) - 1;
            for (std::size_t i = 1; i < txn.sharers.size(); ++i) {
                send(txn.home, txn.sharers[i],
                     CoherenceMsg::Invalidate, controlMessageBytes,
                     txn.id);
            }
        }
        break;

      case CoherenceOp::Upgrade:
        // Grant ownership; invalidate every sharer.
        txn.pendingAcks =
            static_cast<std::uint32_t>(txn.sharers.size());
        for (const SiteId s : txn.sharers) {
            send(txn.home, s, CoherenceMsg::Invalidate,
                 controlMessageBytes, txn.id);
        }
        send(txn.home, txn.requester, CoherenceMsg::WritebackAck,
             controlMessageBytes, txn.id);
        break;

      case CoherenceOp::PutM:
        send(txn.home, txn.requester, CoherenceMsg::WritebackAck,
             controlMessageBytes, txn.id);
        break;
    }
    maybeComplete(txn);
}

void
CoherenceEngine::expandDirectory(Txn &txn)
{
    txn.expanded = true;
    Directory &dir = *dirs_[txn.home];
    DirEntry &e = dir.entry(txn.line);

    auto reply_from_memory = [&] {
        replyFromMemory(txn.home, txn.requester, txn.id);
    };

    switch (txn.op) {
      case CoherenceOp::GetS:
        switch (e.state) {
          case DirState::Uncached:
            // Sole copy: grant Exclusive so later writes upgrade
            // silently (the MOESI E optimization).
            reply_from_memory();
            txn.installState = CacheState::Exclusive;
            e.state = DirState::Exclusive;
            e.owner = txn.requester;
            e.sharers.clear();
            break;
          case DirState::Shared:
            // Memory (reachable behind the home) is up to date; the
            // directory lookup latency already covers the access.
            send(txn.home, txn.requester, CoherenceMsg::Data,
                 dataMessageBytes, txn.id);
            txn.installState = CacheState::Shared;
            e.sharers.add(txn.requester);
            break;
          case DirState::Exclusive:
          case DirState::Owned:
            // Forward to the owner, which is demoted (O if dirty,
            // S if clean) and supplies the line.
            send(txn.home, e.owner, CoherenceMsg::FwdRequest,
                 controlMessageBytes, txn.id);
            txn.installState = CacheState::Shared;
            e.state = DirState::Owned;
            e.sharers.add(txn.requester);
            break;
        }
        break;

      case CoherenceOp::GetM: {
        std::vector<SiteId> to_invalidate;
        for (const SiteId s : e.sharers.members()) {
            if (s != txn.requester)
                to_invalidate.push_back(s);
        }
        const bool owner_valid = (e.state == DirState::Exclusive
                                  || e.state == DirState::Owned)
            && e.owner != txn.requester;
        if (owner_valid) {
            send(txn.home, e.owner, CoherenceMsg::FwdRequest,
                 controlMessageBytes, txn.id);
        } else if (e.state == DirState::Uncached) {
            reply_from_memory();
        } else {
            send(txn.home, txn.requester, CoherenceMsg::Data,
                 dataMessageBytes, txn.id);
        }
        txn.pendingAcks =
            static_cast<std::uint32_t>(to_invalidate.size());
        for (const SiteId s : to_invalidate) {
            send(txn.home, s, CoherenceMsg::Invalidate,
                 controlMessageBytes, txn.id);
        }
        e.state = DirState::Exclusive;
        e.owner = txn.requester;
        e.sharers.clear();
        break;
      }

      case CoherenceOp::Upgrade: {
        std::vector<SiteId> to_invalidate;
        for (const SiteId s : e.sharers.members()) {
            if (s != txn.requester)
                to_invalidate.push_back(s);
        }
        if ((e.state == DirState::Owned
             || e.state == DirState::Exclusive)
            && e.owner != txn.requester) {
            to_invalidate.push_back(e.owner);
        }
        txn.pendingAcks =
            static_cast<std::uint32_t>(to_invalidate.size());
        for (const SiteId s : to_invalidate) {
            send(txn.home, s, CoherenceMsg::Invalidate,
                 controlMessageBytes, txn.id);
        }
        send(txn.home, txn.requester, CoherenceMsg::WritebackAck,
             controlMessageBytes, txn.id);
        e.state = DirState::Exclusive;
        e.owner = txn.requester;
        e.sharers.clear();
        break;
      }

      case CoherenceOp::PutM:
        if ((e.state == DirState::Exclusive
             || e.state == DirState::Owned)
            && e.owner == txn.requester) {
            e.state = e.sharers.empty() ? DirState::Uncached
                                        : DirState::Shared;
        }
        send(txn.home, txn.requester, CoherenceMsg::WritebackAck,
             controlMessageBytes, txn.id);
        // A line written back with no sharers is Uncached — exactly
        // what an absent entry decodes to, so drop it instead of
        // letting dead entries accumulate. `e` is dangling after
        // this; the case must not touch it again.
        dir.reclaim(txn.line);
        break;
    }
    maybeComplete(txn);
}

void
CoherenceEngine::onFwdAtOwner(const Message &msg)
{
    Txn *found = findTxn(msg.txn);
    if (!found)
        return;
    Txn &txn = *found;
    const SiteId owner = msg.dst;
    if (directoryMode_) {
        SetAssocCache &l2 = *l2s_[owner];
        if (txn.op == CoherenceOp::GetM) {
            l2.invalidate(txn.line);
        } else if (const auto st = l2.probe(txn.line);
                   st.has_value()) {
            // Dirty owners keep responsibility for the line (O);
            // a clean Exclusive owner demotes to Shared so it can
            // no longer upgrade silently.
            l2.setState(txn.line, isDirty(*st) ? CacheState::Owned
                                               : CacheState::Shared);
        }
    }
    send(owner, txn.requester, CoherenceMsg::Data, dataMessageBytes,
         txn.id);
}

void
CoherenceEngine::onInvalidateAtSharer(const Message &msg)
{
    Txn *found = findTxn(msg.txn);
    if (!found)
        return;
    Txn &txn = *found;
    const SiteId sharer = msg.dst;
    if (directoryMode_)
        l2s_[sharer]->invalidate(txn.line);
    send(sharer, txn.requester, CoherenceMsg::InvAck,
         controlMessageBytes, txn.id);
}

void
CoherenceEngine::onDataAtRequester(const Message &msg)
{
    Txn *found = findTxn(msg.txn);
    if (!found)
        return;
    Txn &txn = *found;
    txn.dataReceived = true;
    if (directoryMode_) {
        const CacheState install =
            (txn.op == CoherenceOp::GetM) ? CacheState::Modified
                                          : txn.installState;
        installLine(txn.requester, txn.line, install);
    }
    maybeComplete(txn);
}

void
CoherenceEngine::onAckAtRequester(const Message &msg)
{
    Txn *found = findTxn(msg.txn);
    if (!found)
        return;
    Txn &txn = *found;
    if (msg.type == CoherenceMsg::WritebackAck) {
        // Upgrade grant or writeback completion.
        txn.dataReceived = true;
        if (directoryMode_ && txn.op == CoherenceOp::Upgrade)
            l2s_[txn.requester]->setState(txn.line,
                                          CacheState::Modified);
    } else {
        if (txn.pendingAcks == 0) {
            if (resilience_.enabled) {
                // A retry reset the ack count while this ack was in
                // flight from the slow first attempt; tolerate it.
                ++staleAcks_;
                return;
            }
            panic("CoherenceEngine: unexpected InvAck for txn ",
                  txn.id);
        }
        --txn.pendingAcks;
    }
    maybeComplete(txn);
}

void
CoherenceEngine::maybeComplete(Txn &txn)
{
    if (!txn.expanded || txn.pendingAcks != 0)
        return;
    if (txn.needsData || txn.op == CoherenceOp::Upgrade
        || txn.op == CoherenceOp::PutM) {
        if (!txn.dataReceived)
            return;
    }
    const Tick latency = sim_.now() - txn.start;
    opLatency_.sample(ticksToNs(latency));
    ++completed_;
    if (txn.retryEvent != invalidEventId) {
        sim_.events().cancel(txn.retryEvent);
        txn.retryEvent = invalidEventId;
    }
    CompletionFn done = std::move(txn.done);
    std::vector<CompletionFn> coalesced =
        std::move(txn.coalescedDone);
    const TxnId id = txn.id;
    const Addr line = txn.line;
    const SiteId requester = txn.requester;
    releaseTxn(id);

    if (directoryMode_) {
        // Retire this site's MSHR entry for the line, unless a newer
        // transaction has superseded it.
        const std::uint64_t key = outstandingKey(requester, line);
        if (auto it = outstanding_.find(key);
            it != outstanding_.end() && it->second == id) {
            outstanding_.erase(it);
        }

        // Release the home's line lock; admit the next waiting
        // transaction on this line, if any.
        releaseLineLock(line, id);
    }

    if (done)
        done(id, latency);
    for (CompletionFn &fn : coalesced) {
        if (fn)
            fn(id, latency);
    }
}

void
CoherenceEngine::installLine(SiteId site, Addr line, CacheState state)
{
    const auto result = l2s_[site]->install(line, state);
    if (result.writeback.has_value()) {
        ++writebacks_;
        // Dirty eviction: fire-and-forget PutM carrying the line to
        // its own home. (The caller may hold a Txn& — the pool is a
        // deque precisely so this allocation cannot invalidate it.)
        Txn &txn = allocTxn();
        txn.id = nextTxn_++;
        txn.requester = site;
        txn.home = dirs_[0]->homeSite(*result.writeback, lineBytes_);
        txn.op = CoherenceOp::PutM;
        txn.line = *result.writeback;
        txn.needsData = false;
        txn.start = sim_.now();
        txns_.try_emplace(txn.id, txn.poolIndex);
        ++started_;
        sendRequest(txn);
        armTimeout(txn);
    }
}

} // namespace macrosim
