/**
 * @file
 * Closed-loop trace-CPU system (paper section 5).
 *
 * The paper drives its network simulator with L2 miss traffic from an
 * instruction-trace-driven CPU simulator running SPLASH-2 and PARSEC
 * kernels. Those traces are not redistributable, so this module is
 * the documented substitution (DESIGN.md): each of the 512 cores
 * executes a synthetic instruction stream whose architecturally
 * relevant properties — L2 miss rate per instruction, read/write mix,
 * sharing behaviour and communication locality — are set per
 * benchmark. Cores issue one instruction per 5 GHz cycle, misses
 * become coherence transactions, and a core stalls only when its
 * finite MSHR bank is full; network latency therefore feeds back into
 * runtime exactly as in the paper (section 6.2), and "speedup" is the
 * ratio of simulated runtimes between networks.
 *
 * Two modes mirror the paper's two workload families:
 *  - Synthetic benchmarks: the miss's home site comes from a Table 3
 *    traffic pattern and the sharer list from an LS/MS coherence mix,
 *    at a 4% L2 miss rate per instruction.
 *  - Application kernels: misses address a benchmark-specific blend
 *    of private and shared cache lines; sharers, owners, upgrades and
 *    writebacks then emerge from the real per-site L2s and the
 *    distributed directory.
 */

#ifndef MACROSIM_WORKLOADS_TRACE_CPU_HH
#define MACROSIM_WORKLOADS_TRACE_CPU_HH

#include <string>
#include <vector>

#include "arch/mshr.hh"
#include "workloads/coherence.hh"
#include "workloads/patterns.hh"

namespace macrosim
{

/** How a miss's destination (home site) is chosen. */
enum class HomeMode
{
    Pattern,   ///< Synthetic: Table 3 pattern + LS/MS mix.
    Directory, ///< Application: address stream + real directory.
};

/** Per-benchmark workload description. */
struct WorkloadSpec
{
    std::string name;

    /** Probability an instruction misses in the L2. */
    double missRatePerInstr = 0.04;
    /** Fraction of misses that are writes. */
    double writeFraction = 0.3;
    /** Instructions each core retires before finishing. */
    std::uint64_t instructionsPerCore = 20000;

    HomeMode mode = HomeMode::Pattern;

    /* Pattern mode. */
    TrafficPattern pattern = TrafficPattern::Uniform;
    SharerMix mix = SharerMix::lessSharing();

    /* Directory mode. */
    /** Fraction of misses to globally shared lines. */
    double sharedFraction = 0.2;
    /** Of shared misses, fraction biased to neighbor-homed lines. */
    double neighborFraction = 0.0;
    /** Size of the shared line pool. */
    std::uint64_t sharedLines = 1 << 16;
    /** Private working-set lines per core. */
    std::uint64_t privateLinesPerCore = 1 << 13;
};

/** Result of one closed-loop run. */
struct TraceCpuResult
{
    std::string workload;
    std::string network;
    /** Simulated time until every core retired its budget. */
    Tick runtime = 0;
    std::uint64_t instructions = 0;
    std::uint64_t coherenceOps = 0;
    /** Mean latency per coherence operation, ns (figure 8). */
    double opLatencyNs = 0.0;
    /** Energy totals over the run (figures 9 and 10). totalJoules
     *  and edp cover the network only, as in figure 10; cpuJoules is
     *  the 1 W/core site power integrated over the run. */
    double totalJoules = 0.0;
    double routerJoules = 0.0;
    double cpuJoules = 0.0;
    double edp = 0.0;

    double
    runtimeNs() const
    {
        return ticksToNs(runtime);
    }

    /**
     * Router energy as a percentage of total system (CPU + network)
     * energy, the figure 9 metric.
     */
    double
    routerEnergyPct() const
    {
        const double total = totalJoules + cpuJoules;
        return total > 0.0 ? routerJoules / total * 100.0 : 0.0;
    }
};

class TraceCpuSystem
{
  public:
    TraceCpuSystem(Simulator &sim, Network &net,
                   const WorkloadSpec &spec, std::uint64_t seed = 1);

    /** Run to completion and return the measured result. */
    TraceCpuResult run();

    const CoherenceEngine &engine() const { return engine_; }

  private:
    struct Core
    {
        SiteId site = 0;
        std::uint64_t retired = 0;
        MshrBank mshrs;
        bool stalled = false;
        bool finished = false;

        explicit Core(std::uint32_t mshr_count) : mshrs(mshr_count) {}
    };

    /** Execute the next run of instructions on core @p idx. */
    void step(std::size_t idx);

    /** Issue the coherence transaction for a miss on core @p idx. */
    void miss(std::size_t idx);

    void onComplete(std::size_t idx);

    /** Synthetic-mode sharer list for one request. */
    std::vector<SiteId> drawSharers(SiteId requester);

    /** Directory-mode address for one miss from @p site. */
    Addr drawAddress(std::size_t core_idx, SiteId site);

    Simulator &sim_;
    Network &net_;
    WorkloadSpec spec_;
    Rng rng_;
    CoherenceEngine engine_;
    DestinationGenerator dests_;
    std::vector<Core> cores_;
    std::uint64_t finishedCores_ = 0;
    Tick finishTime_ = 0;
};

/** The Table 2 application kernels as synthetic profiles. */
std::vector<WorkloadSpec> applicationWorkloads();

/**
 * Additional SPLASH-2 kernels beyond the paper's six (FFT, LU,
 * Ocean), profiled the same way; used by the extension benches to
 * widen the application coverage.
 */
std::vector<WorkloadSpec> extendedWorkloads();

/** The five synthetic Fig. 7 workloads (all-to-all, transpose,
 *  transpose-MS, neighbor, butterfly) at a 4% miss rate. */
std::vector<WorkloadSpec> syntheticWorkloads();

/** Look up a workload spec by name from both families. */
WorkloadSpec workloadByName(const std::string &name);

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_TRACE_CPU_HH
