/**
 * @file
 * Message-passing workloads (the paper's section 8 future work:
 * "Future work will evaluate network architectures for message
 * passing workloads").
 *
 * Three classic collectives run bulk-synchronously, one rank per
 * site, over any macrochip network:
 *
 *  - HaloExchange: 2D stencil boundary exchange with the four grid
 *    neighbors (toroidal), the communication pattern of iterative
 *    PDE solvers. Maps perfectly onto the limited point-to-point
 *    network's row/column links.
 *  - AllToAll: personalized all-to-all (FFT / sample-sort
 *    transpose): every rank sends a distinct block to every other
 *    rank each iteration. The heaviest uniform load.
 *  - AllReduce: recursive-doubling reduction; log2(sites) rounds of
 *    pairwise exchanges with strictly sequential round dependencies
 *    per rank — latency-bound one-to-one traffic in every round,
 *    the worst case for token and circuit-switched arbitration.
 *
 * Each iteration is: a fixed compute phase, then the collective's
 * messages, then a global barrier. The per-iteration time against
 * each network is the figure of merit.
 */

#ifndef MACROSIM_WORKLOADS_MESSAGE_PASSING_HH
#define MACROSIM_WORKLOADS_MESSAGE_PASSING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hh"

namespace macrosim
{

enum class Collective
{
    HaloExchange,
    AllToAll,
    AllReduce,
};

std::string_view to_string(Collective c);

struct MpiWorkloadSpec
{
    Collective collective = Collective::HaloExchange;
    /** Payload bytes per point-to-point message. */
    std::uint32_t messageBytes = 1024;
    /** Compute time per rank per iteration. */
    Tick computeTime = 200 * tickNs;
    std::uint32_t iterations = 10;
    /**
     * Survive message loss under fault injection: dropped messages
     * are counted and excused from barrier accounting (the iteration
     * completes with a hole in the data), and straggler deliveries
     * from retried packets are tolerated instead of fatal. Off by
     * default — the strict barrier then treats any anomaly as a bug.
     */
    bool tolerateLoss = false;
};

struct MpiResult
{
    std::string collective;
    std::string network;
    std::uint32_t iterations = 0;
    Tick runtime = 0;
    std::uint64_t messages = 0;
    /** Messages abandoned by the network (tolerateLoss mode). */
    std::uint64_t lost = 0;
    /** Late/stale deliveries tolerated (tolerateLoss mode). */
    std::uint64_t stragglers = 0;

    double
    nsPerIteration() const
    {
        return iterations > 0
            ? ticksToNs(runtime) / static_cast<double>(iterations)
            : 0.0;
    }

    /** Communication time per iteration, net of compute. */
    double
    commNsPerIteration(Tick compute) const
    {
        return nsPerIteration() - ticksToNs(compute);
    }
};

class MessagePassingSystem
{
  public:
    MessagePassingSystem(Simulator &sim, Network &net,
                         const MpiWorkloadSpec &spec);

    /** Run all iterations to completion. */
    MpiResult run();

  private:
    struct Rank
    {
        /** Messages still missing before this rank's comm phase
         *  completes (halo / all-to-all). */
        std::uint32_t pendingRecvs = 0;
        /** Current all-reduce round (log2(sites) rounds total). */
        std::uint32_t round = 0;
        /** All-reduce messages received per round; a partner may run
         *  ahead, so early arrivals are banked until this rank
         *  reaches that round. */
        std::vector<std::uint32_t> banked;
        bool doneThisIteration = false;
    };

    void startIteration();
    void startCommPhase(SiteId rank);
    void onDelivery(const Message &msg);
    /** Network drop handler (tolerateLoss): excuse the message from
     *  the barrier so the iteration still completes. */
    void onDrop(const Message &msg);
    void rankFinished(SiteId rank);

    /** Kick off one all-reduce round's exchange for @p rank. */
    void startAllReduceRound(SiteId rank);

    std::vector<SiteId> peersOf(SiteId rank) const;

    Simulator &sim_;
    Network &net_;
    MpiWorkloadSpec spec_;
    std::uint32_t rounds_ = 0; ///< log2(sites) for all-reduce.
    std::uint32_t iteration_ = 0;
    std::uint32_t finishedRanks_ = 0;
    std::uint64_t messages_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t stragglers_ = 0;
    std::vector<Rank> ranks_;
};

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_MESSAGE_PASSING_HH
