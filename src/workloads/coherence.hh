/**
 * @file
 * Coherence transaction engine.
 *
 * Expands each L2 miss into the full MOESI message sequence the
 * paper's network simulator models (section 5): a request to the
 * line's home directory, an optional forward to the current owner,
 * invalidations to sharers with acknowledgments collected at the
 * requester, and the data reply. Control messages are 8 B; data
 * messages are 72 B (64 B line + header).
 *
 * Two driving modes:
 *
 *  - Synthetic: the caller supplies the home site and the sharer
 *    list per transaction (the paper's "coherence mixes": LS has no
 *    sharers for 90% of requests, MS gives 40% of requests three
 *    sharers). No directory state is kept.
 *
 *  - Directory: the engine owns a per-site L2 (the Table 4 256 KB
 *    shared cache) and a distributed full-map directory; sharers,
 *    owners, upgrades and dirty-eviction writebacks all emerge from
 *    the access stream.
 *
 * Timing simplification (documented in DESIGN.md): directory state
 * transitions are applied atomically when the home processes a
 * request, after the fixed directory lookup latency; transient-state
 * races are not modelled, mirroring the paper's "we do not model the
 * intricate details of the cache coherency protocol".
 */

#ifndef MACROSIM_WORKLOADS_COHERENCE_HH
#define MACROSIM_WORKLOADS_COHERENCE_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "arch/cache.hh"
#include "arch/directory.hh"
#include "net/channel.hh"
#include "net/network.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace macrosim
{

/** Sharer-count distribution for synthetic coherence traffic. */
struct SharerMix
{
    /** Probability that a request finds no sharers. */
    double probNone = 1.0;
    /** Sharer count when sharers are present. */
    std::uint32_t sharerCount = 0;

    /** "Less Sharing": 90% of requests have no sharers. */
    static SharerMix
    lessSharing()
    {
        return {0.9, 1};
    }

    /** "More Sharing": 40% of requests have three sharers. */
    static SharerMix
    moreSharing()
    {
        return {0.6, 3};
    }

    /** No coherence overhead at all (pure request/reply). */
    static SharerMix
    none()
    {
        return {1.0, 0};
    }
};

/**
 * Opt-in protocol resilience: per-transaction timeout with bounded
 * retry and exponential backoff. Disabled by default — with it off
 * the engine schedules no timeout events and behaves bit-identically
 * to the pre-fault-model protocol. A retry resets the transaction
 * and re-issues its request (the directory re-expands it; duplicate
 * responses from a slow first attempt are tolerated and counted);
 * after maxRetries the transaction aborts: a counted, non-fatal
 * failure whose completion callbacks still fire so closed-loop
 * drivers keep draining.
 */
struct CoherenceResilience
{
    bool enabled = false;
    /** Base timeout; attempt n waits timeout << n. */
    Tick timeout = 0;
    /** Retries before the transaction aborts. */
    std::uint32_t maxRetries = 3;
};

class CoherenceEngine
{
  public:
    /** Called when a transaction completes, with its total latency. */
    using CompletionFn = std::function<void(TxnId, Tick latency)>;

    /**
     * @param directory_mode Build per-site L2s and a distributed
     *        directory; transactions are then started with
     *        startAccess().
     */
    CoherenceEngine(Simulator &sim, Network &net, bool directory_mode);

    /**
     * Synthetic mode: start a transaction with explicit coherence
     * context. @p sharers must not contain @p requester. The first
     * sharer (if any) acts as the current owner and forwards data
     * for GetS; for GetM all sharers are invalidated and acked.
     */
    TxnId startSynthetic(SiteId requester, SiteId home, CoherenceOp op,
                         const std::vector<SiteId> &sharers,
                         CompletionFn done);

    /**
     * Directory mode: a core at @p site reads or writes @p addr.
     * Returns std::nullopt on an L2 hit (no transaction needed);
     * otherwise the id of the transaction servicing the miss.
     *
     * Misses coalesce in the site's MSHRs: a second access to a line
     * the site is already fetching attaches to the outstanding
     * transaction instead of issuing new network traffic (its
     * completion callback fires with everyone else's), unless it
     * needs a stronger permission (a write behind a pending read
     * still issues its own GetM/Upgrade once the read completes —
     * modelled conservatively as an independent transaction).
     */
    std::optional<TxnId> startAccess(SiteId site, Addr addr, MemOp op,
                                     CompletionFn done);

    /** Enable timeout/retry; call before starting transactions. */
    void setResilience(const CoherenceResilience &r) { resilience_ = r; }
    const CoherenceResilience &resilience() const { return resilience_; }

    /** Transactions re-issued after a timeout. */
    std::uint64_t retriedTransactions() const { return txnRetries_; }

    /** Transactions abandoned after exhausting their retries. */
    std::uint64_t abortedTransactions() const { return aborted_; }

    /** Duplicate/stale acknowledgments tolerated under resilience. */
    std::uint64_t staleAcks() const { return staleAcks_; }

    /** Accesses absorbed by an outstanding same-line MSHR. */
    std::uint64_t coalescedAccesses() const { return coalesced_; }

    /** Per-completed-transaction latency (ns), for figure 8. */
    const Accumulator &opLatencyNs() const { return opLatency_; }

    std::uint64_t transactionsStarted() const { return started_; }
    std::uint64_t transactionsCompleted() const { return completed_; }
    std::uint64_t messagesSent() const { return messagesSent_; }

    /** Outstanding (incomplete, non-aborted) transactions. */
    std::uint64_t
    inFlight() const
    {
        return started_ - completed_ - aborted_;
    }

    /** Directory-mode L2 of one site (for tests). */
    const SetAssocCache &l2(SiteId site) const { return *l2s_.at(site); }

    /** Directory-mode slice of one home site (for tests). */
    const Directory &
    directorySlice(SiteId site) const
    {
        return *dirs_.at(site);
    }

    /** Directory-mode writebacks generated by dirty evictions. */
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    struct Txn
    {
        TxnId id = 0;
        SiteId requester = 0;
        SiteId home = 0;
        CoherenceOp op = CoherenceOp::GetS;
        Addr line = 0;           ///< Directory mode only.
        bool needsData = true;
        bool dataReceived = false;
        std::uint32_t pendingAcks = 0;
        bool expanded = false;   ///< Home has processed the request.
        Tick start = 0;
        /** State the requester installs when the data arrives. */
        CacheState installState = CacheState::Shared;
        /** Synthetic-mode coherence context. */
        std::vector<SiteId> sharers;
        CompletionFn done;
        /** Callbacks of coalesced same-line accesses. */
        std::vector<CompletionFn> coalescedDone;
        /** Resilience bookkeeping (unused when disabled). */
        std::uint32_t attempts = 0;
        EventId retryEvent = invalidEventId;
        /** Where this record lives in txnPool_ (self-index, so the
         *  free list can be rebuilt from a reference). */
        std::uint32_t poolIndex = 0;
    };

    /** Register "arch.*" stats in the simulator's registry. */
    void registerTelemetry();

    void onDelivery(const Message &msg);
    void onRequestAtHome(const Message &msg);
    /** Begin the home-side lookup for @p id (line lock held). */
    void scheduleExpansion(TxnId id);
    void expandSynthetic(Txn &txn);
    void expandDirectory(Txn &txn);
    void onFwdAtOwner(const Message &msg);
    void onInvalidateAtSharer(const Message &msg);
    void onDataAtRequester(const Message &msg);
    void onAckAtRequester(const Message &msg);
    void maybeComplete(Txn &txn);

    /** (Re)arm the transaction's timeout under the backoff policy. */
    void armTimeout(Txn &txn);
    /** The timeout fired: retry the request, or abort. */
    void onTimeout(TxnId id);
    /** Abandon the transaction: counted, callbacks still fire. */
    void abortTxn(Txn &txn);
    /** Release the home's line lock held by @p id (directory mode),
     *  admitting the next waiter, or dequeue @p id if only waiting. */
    void releaseLineLock(Addr line, TxnId id);
    /** The request message re-sent on the first and every retried
     *  attempt. */
    void sendRequest(const Txn &txn);

    void send(SiteId src, SiteId dst, CoherenceMsg type,
              std::uint32_t bytes, TxnId txn);

    /**
     * Fetch a line from the home's fiber-attached memory and reply
     * to the requester: claims one of the home's finite memory
     * ports, then pays the flat access latency.
     */
    void replyFromMemory(SiteId home, SiteId requester, TxnId txn);

    /** Install @p line at @p site; emit a PutM if a dirty line is
     *  evicted. */
    void installLine(SiteId site, Addr line, CacheState state);

    Simulator &sim_;
    Network &net_;
    bool directoryMode_;
    Tick directoryLatency_;
    Tick memoryLatency_;
    Tick memoryOccupancy_;

    /** The live record for @p id, or nullptr if it already retired. */
    Txn *findTxn(TxnId id);
    /** Claim a pooled record (recycled or fresh); the caller fills
     *  every field it needs — releaseTxn() reset the rest. */
    Txn &allocTxn();
    /** Retire @p id: unmap it, scrub the record, free-list it. Any
     *  Txn& for the id is stale after this (the memory stays valid —
     *  the pool is a deque — but may be re-issued immediately). */
    void releaseTxn(TxnId id);
    std::uint32_t lineBytes_;
    /** One BusyResource per fiber memory channel, flattened in the
     *  config's balanced-placement order (memoryPortBase()). */
    std::vector<BusyResource> memoryChannels_;

    CoherenceResilience resilience_;

    TxnId nextTxn_ = 1;
    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t messagesSent_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t txnRetries_ = 0;
    std::uint64_t aborted_ = 0;
    std::uint64_t staleAcks_ = 0;
    Accumulator opLatency_;

    /**
     * Live transactions: a free-listed record pool (deque, so
     * references are stable while the pool grows — installLine can
     * allocate a writeback Txn while the caller holds a Txn&) with a
     * flat id -> pool-index map on top. Records are recycled with
     * their vectors' capacity intact, so steady-state issue/retire
     * allocates nothing.
     */
    std::deque<Txn> txnPool_;
    std::vector<std::uint32_t> txnFree_;
    FlatMap<TxnId, std::uint32_t> txns_;

    /** Directory mode state. */
    std::vector<std::unique_ptr<SetAssocCache>> l2s_;
    std::vector<std::unique_ptr<Directory>> dirs_;

    /**
     * Home-side per-line serialization: a real directory blocks (or
     * NACKs) requests for a line with an outstanding transaction.
     * The holder is the transaction currently being serviced — its
     * own re-sent request (a resilience retry) passes straight back
     * to expansion instead of deadlocking behind itself; the queue
     * holds transactions waiting for the holder to finish. Absence
     * from the map means the line is idle.
     */
    struct LineLock
    {
        TxnId holder = 0;
        /** FIFO; erased from the front. Waiter lists are short (a
         *  handful of racers per hot line), so a vector's one shift
         *  beats a deque's allocated blocks. */
        std::vector<TxnId> waiters;
    };
    FlatMap<Addr, LineLock> lineLocks_;

    /**
     * Requester-side MSHR coalescing: (site, line) -> the most
     * recent outstanding transaction fetching that line for that
     * site. Key is line-number * siteCount + site (unique).
     */
    FlatMap<std::uint64_t, TxnId> outstanding_;

    std::uint64_t
    outstandingKey(SiteId site, Addr line) const
    {
        return (line / lineBytes_) * 64 + site;
    }
};

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_COHERENCE_HH
