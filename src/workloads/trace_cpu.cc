#include "workloads/trace_cpu.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace macrosim
{

TraceCpuSystem::TraceCpuSystem(Simulator &sim, Network &net,
                               const WorkloadSpec &spec,
                               std::uint64_t seed)
    : sim_(sim), net_(net), spec_(spec), rng_(seed),
      engine_(sim, net, spec.mode == HomeMode::Directory),
      dests_(spec.pattern, net.geometry())
{
    if (spec_.missRatePerInstr <= 0.0 || spec_.missRatePerInstr > 1.0)
        fatal("TraceCpuSystem: miss rate ", spec_.missRatePerInstr,
              " outside (0, 1]");
    const auto &cfg = net.config();
    cores_.reserve(cfg.coreCount());
    for (std::uint32_t i = 0; i < cfg.coreCount(); ++i) {
        cores_.emplace_back(cfg.mshrsPerCore);
        cores_.back().site = i / cfg.coresPerSite;
    }
}

TraceCpuResult
TraceCpuSystem::run()
{
    for (std::size_t i = 0; i < cores_.size(); ++i)
        step(i);
    sim_.run();
    if (finishedCores_ != cores_.size())
        panic("TraceCpuSystem: simulation drained with ",
              cores_.size() - finishedCores_, " cores unfinished");

    TraceCpuResult res;
    res.workload = spec_.name;
    res.network = std::string(net_.name());
    res.runtime = finishTime_;
    res.instructions = spec_.instructionsPerCore * cores_.size();
    res.coherenceOps = engine_.transactionsCompleted();
    res.opLatencyNs = engine_.opLatencyNs().mean();
    res.totalJoules = net_.energy().totalJoules(finishTime_);
    res.routerJoules = net_.energy().routerJoules();
    res.cpuJoules = static_cast<double>(cores_.size())
        * net_.config().wattsPerCore * ticksToNs(finishTime_) * 1e-9;
    res.edp = net_.energy().edp(finishTime_);
    return res;
}

void
TraceCpuSystem::step(std::size_t idx)
{
    Core &core = cores_[idx];
    if (core.finished)
        return;
    const std::uint64_t remaining =
        spec_.instructionsPerCore - core.retired;
    if (remaining == 0) {
        core.finished = true;
        ++finishedCores_;
        finishTime_ = std::max(finishTime_, sim_.now());
        return;
    }

    // Instructions until the next L2 miss, geometrically distributed
    // with mean 1/missRate; one instruction per cycle.
    const std::uint64_t to_miss = rng_.geometric(spec_.missRatePerInstr);
    const bool misses = to_miss <= remaining;
    const std::uint64_t burst = misses ? to_miss : remaining;

    sim_.events().scheduleAfter(
        burst * net_.config().clockPeriod, [this, idx, burst, misses] {
            Core &c = cores_[idx];
            c.retired += burst;
            if (misses)
                miss(idx);
            else
                step(idx);
        },
        "workload.cpu_burst");
}

void
TraceCpuSystem::miss(std::size_t idx)
{
    Core &core = cores_[idx];
    if (!core.mshrs.allocate()) {
        // All MSHRs busy: the core stalls until a miss retires.
        core.stalled = true;
        return;
    }

    const SiteId site = core.site;
    const bool write = rng_.chance(spec_.writeFraction);
    auto done = [this, idx](TxnId, Tick) { onComplete(idx); };

    if (spec_.mode == HomeMode::Pattern) {
        const SiteId home = dests_.next(site, rng_);
        const CoherenceOp op =
            write ? CoherenceOp::GetM : CoherenceOp::GetS;
        engine_.startSynthetic(site, home, op, drawSharers(site),
                               std::move(done));
    } else {
        const Addr addr = drawAddress(idx, site);
        const auto txn = engine_.startAccess(
            site, addr, write ? MemOp::Write : MemOp::Read,
            std::move(done));
        if (!txn.has_value()) {
            // L2 hit after all: no transaction, free the MSHR.
            core.mshrs.release();
        }
    }
    // The miss is non-blocking: keep executing immediately.
    step(idx);
}

void
TraceCpuSystem::onComplete(std::size_t idx)
{
    Core &core = cores_[idx];
    core.mshrs.release();
    if (core.stalled) {
        core.stalled = false;
        miss(idx); // retry the miss that stalled the core
    }
}

std::vector<SiteId>
TraceCpuSystem::drawSharers(SiteId requester)
{
    if (rng_.chance(spec_.mix.probNone) || spec_.mix.sharerCount == 0)
        return {};
    std::vector<SiteId> sharers;
    const std::uint32_t sites = net_.config().siteCount();
    while (sharers.size() < spec_.mix.sharerCount) {
        const SiteId s = static_cast<SiteId>(rng_.below(sites));
        if (s == requester)
            continue;
        if (std::find(sharers.begin(), sharers.end(), s)
            != sharers.end())
            continue;
        sharers.push_back(s);
    }
    return sharers;
}

Addr
TraceCpuSystem::drawAddress(std::size_t core_idx, SiteId site)
{
    const std::uint64_t line_bytes = net_.config().cacheLineBytes;
    const std::uint32_t sites = net_.config().siteCount();

    if (rng_.chance(spec_.sharedFraction)) {
        // Shared pool, optionally biased so the line's home is a
        // grid neighbor (fluidanimate-style spatial locality).
        std::uint64_t line;
        if (spec_.neighborFraction > 0.0
            && rng_.chance(spec_.neighborFraction)) {
            // Choose one of the four neighbors as the home.
            const SiteCoord c = net_.geometry().coordOf(site);
            const std::uint32_t rows = net_.geometry().rows();
            const std::uint32_t cols = net_.geometry().cols();
            SiteId home;
            switch (rng_.below(4)) {
              case 0:
                home = net_.geometry().idOf({c.row,
                                             (c.col + 1) % cols});
                break;
              case 1:
                home = net_.geometry().idOf(
                    {c.row, (c.col + cols - 1) % cols});
                break;
              case 2:
                home = net_.geometry().idOf({(c.row + 1) % rows,
                                             c.col});
                break;
              default:
                home = net_.geometry().idOf(
                    {(c.row + rows - 1) % rows, c.col});
                break;
            }
            const std::uint64_t k =
                rng_.below(std::max<std::uint64_t>(
                    spec_.sharedLines / sites, 1));
            line = k * sites + home;
        } else {
            line = rng_.below(spec_.sharedLines);
        }
        // Shared pool lives in its own address region.
        return (line + (std::uint64_t{1} << 32)) * line_bytes;
    }

    // Private working set of this core.
    const std::uint64_t line =
        rng_.below(spec_.privateLinesPerCore)
        + core_idx * spec_.privateLinesPerCore;
    return line * line_bytes;
}

std::vector<WorkloadSpec>
applicationWorkloads()
{
    // Synthetic stand-ins for the Table 2 kernels; parameters chosen
    // to reproduce each benchmark's architecturally relevant
    // communication profile (see DESIGN.md substitution table).
    std::vector<WorkloadSpec> w;

    WorkloadSpec radix;
    radix.name = "radix";
    radix.mode = HomeMode::Directory;
    radix.missRatePerInstr = 0.040; // permutation phase is miss-heavy
    radix.writeFraction = 0.45;
    radix.sharedFraction = 0.35;
    radix.sharedLines = 1 << 17;
    w.push_back(radix);

    WorkloadSpec barnes;
    barnes.name = "barnes";
    barnes.mode = HomeMode::Directory;
    barnes.missRatePerInstr = 0.004; // low L2 miss rate (section 6.2)
    barnes.writeFraction = 0.30;
    barnes.sharedFraction = 0.40;
    barnes.sharedLines = 1 << 15;
    w.push_back(barnes);

    WorkloadSpec blackscholes;
    blackscholes.name = "blackscholes";
    blackscholes.mode = HomeMode::Directory;
    blackscholes.missRatePerInstr = 0.012; // embarrassingly parallel
    blackscholes.writeFraction = 0.20;
    blackscholes.sharedFraction = 0.05;
    w.push_back(blackscholes);

    WorkloadSpec densities;
    densities.name = "densities"; // fluidanimate (densities)
    densities.mode = HomeMode::Directory;
    densities.missRatePerInstr = 0.020;
    densities.writeFraction = 0.35;
    densities.sharedFraction = 0.30;
    densities.neighborFraction = 0.8; // spatial particle grid
    w.push_back(densities);

    WorkloadSpec forces;
    forces.name = "forces"; // fluidanimate (forces)
    forces.mode = HomeMode::Directory;
    forces.missRatePerInstr = 0.030;
    forces.writeFraction = 0.45;
    forces.sharedFraction = 0.30;
    forces.neighborFraction = 0.8;
    w.push_back(forces);

    WorkloadSpec swaptions;
    swaptions.name = "swaptions";
    swaptions.mode = HomeMode::Directory;
    swaptions.missRatePerInstr = 0.040; // stresses every network
    swaptions.writeFraction = 0.30;
    swaptions.sharedFraction = 0.08;
    w.push_back(swaptions);

    return w;
}

std::vector<WorkloadSpec>
extendedWorkloads()
{
    std::vector<WorkloadSpec> w;

    // FFT: the all-to-all matrix transpose between computation
    // phases dominates communication; little fine-grained sharing.
    WorkloadSpec fft;
    fft.name = "fft";
    fft.mode = HomeMode::Directory;
    fft.missRatePerInstr = 0.035;
    fft.writeFraction = 0.45;
    fft.sharedFraction = 0.45;
    fft.sharedLines = 1 << 17;
    w.push_back(fft);

    // LU: blocked factorization; pivot-block broadcasts create
    // moderate read sharing with a low overall miss rate.
    WorkloadSpec lu;
    lu.name = "lu";
    lu.mode = HomeMode::Directory;
    lu.missRatePerInstr = 0.008;
    lu.writeFraction = 0.25;
    lu.sharedFraction = 0.5;
    lu.sharedLines = 1 << 14;
    w.push_back(lu);

    // Ocean: near-neighbor grid relaxation with a large working set:
    // high miss rate, strongly neighbor-local sharing.
    WorkloadSpec ocean;
    ocean.name = "ocean";
    ocean.mode = HomeMode::Directory;
    ocean.missRatePerInstr = 0.045;
    ocean.writeFraction = 0.4;
    ocean.sharedFraction = 0.35;
    ocean.neighborFraction = 0.85;
    ocean.sharedLines = 1 << 17;
    w.push_back(ocean);

    return w;
}

std::vector<WorkloadSpec>
syntheticWorkloads()
{
    // Section 5: synthetic benchmarks run at a rate equivalent to a
    // 4% L2 miss rate per instruction, driven by the LS mix except
    // for transpose-MS.
    std::vector<WorkloadSpec> w;

    const struct
    {
        const char *name;
        TrafficPattern pattern;
        SharerMix mix;
    } table[] = {
        {"all-to-all", TrafficPattern::AllToAll,
         SharerMix::lessSharing()},
        {"transpose", TrafficPattern::Transpose,
         SharerMix::lessSharing()},
        {"transpose-MS", TrafficPattern::Transpose,
         SharerMix::moreSharing()},
        {"neighbor", TrafficPattern::Neighbor,
         SharerMix::lessSharing()},
        {"butterfly", TrafficPattern::Butterfly,
         SharerMix::lessSharing()},
    };
    for (const auto &row : table) {
        WorkloadSpec spec;
        spec.name = row.name;
        spec.mode = HomeMode::Pattern;
        spec.pattern = row.pattern;
        spec.mix = row.mix;
        spec.missRatePerInstr = 0.04;
        spec.writeFraction = 0.3;
        w.push_back(spec);
    }
    return w;
}

WorkloadSpec
workloadByName(const std::string &name)
{
    for (const auto &spec : applicationWorkloads()) {
        if (spec.name == name)
            return spec;
    }
    for (const auto &spec : syntheticWorkloads()) {
        if (spec.name == name)
            return spec;
    }
    for (const auto &spec : extendedWorkloads()) {
        if (spec.name == name)
            return spec;
    }
    fatal("workloadByName: unknown workload '", name, "'");
}

} // namespace macrosim
