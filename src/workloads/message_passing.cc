#include "workloads/message_passing.hh"

#include "sim/logging.hh"

namespace macrosim
{

std::string_view
to_string(Collective c)
{
    switch (c) {
      case Collective::HaloExchange: return "halo-exchange";
      case Collective::AllToAll: return "all-to-all";
      case Collective::AllReduce: return "all-reduce";
    }
    return "?";
}

MessagePassingSystem::MessagePassingSystem(Simulator &sim,
                                           Network &net,
                                           const MpiWorkloadSpec &spec)
    : sim_(sim), net_(net), spec_(spec),
      ranks_(net.config().siteCount())
{
    const std::uint32_t sites = net_.config().siteCount();
    if (spec_.collective == Collective::AllReduce) {
        while ((1u << rounds_) < sites)
            ++rounds_;
        if ((1u << rounds_) != sites)
            fatal("MessagePassingSystem: all-reduce needs a "
                  "power-of-two rank count, got ", sites);
    }
    for (SiteId s = 0; s < sites; ++s) {
        net_.setDeliveryHandler(s, [this](const Message &m) {
            onDelivery(m);
        });
    }
    if (spec_.tolerateLoss) {
        net_.setDropHandler([this](const Message &m) {
            onDrop(m);
        });
    }
}

std::vector<SiteId>
MessagePassingSystem::peersOf(SiteId rank) const
{
    const MacrochipGeometry &geom = net_.geometry();
    const SiteCoord c = geom.coordOf(rank);
    const std::uint32_t rows = geom.rows();
    const std::uint32_t cols = geom.cols();
    switch (spec_.collective) {
      case Collective::HaloExchange:
        return {geom.idOf({c.row, (c.col + 1) % cols}),
                geom.idOf({c.row, (c.col + cols - 1) % cols}),
                geom.idOf({(c.row + 1) % rows, c.col}),
                geom.idOf({(c.row + rows - 1) % rows, c.col})};
      case Collective::AllToAll: {
        std::vector<SiteId> peers;
        peers.reserve(geom.siteCount() - 1);
        for (SiteId d = 0; d < geom.siteCount(); ++d) {
            if (d != rank)
                peers.push_back(d);
        }
        return peers;
      }
      case Collective::AllReduce:
        // Handled per round; not used here.
        return {};
    }
    return {};
}

MpiResult
MessagePassingSystem::run()
{
    iteration_ = 0;
    startIteration();
    sim_.run();

    MpiResult res;
    res.collective = std::string(to_string(spec_.collective));
    res.network = std::string(net_.name());
    res.iterations = spec_.iterations;
    res.runtime = sim_.now();
    res.messages = messages_;
    res.lost = lost_;
    res.stragglers = stragglers_;
    return res;
}

void
MessagePassingSystem::startIteration()
{
    if (iteration_ >= spec_.iterations)
        return;
    finishedRanks_ = 0;
    for (auto &r : ranks_) {
        r.pendingRecvs = 0;
        r.round = 0;
        r.banked.assign(rounds_, 0);
        r.doneThisIteration = false;
    }
    // All ranks compute, then enter their communication phase.
    sim_.events().scheduleAfter(spec_.computeTime, [this] {
        for (SiteId s = 0; s < net_.config().siteCount(); ++s)
            startCommPhase(s);
    }, "workload.compute");
}

void
MessagePassingSystem::startCommPhase(SiteId rank)
{
    Rank &r = ranks_[rank];
    if (spec_.collective == Collective::AllReduce) {
        r.round = 0;
        startAllReduceRound(rank);
        return;
    }
    const std::vector<SiteId> peers = peersOf(rank);
    // Symmetric collectives: expect one message from each peer.
    r.pendingRecvs = static_cast<std::uint32_t>(peers.size());
    for (const SiteId d : peers) {
        Message m;
        m.src = rank;
        m.dst = d;
        m.bytes = spec_.messageBytes;
        m.cookie = iteration_;
        ++messages_;
        net_.inject(std::move(m));
    }
}

void
MessagePassingSystem::startAllReduceRound(SiteId rank)
{
    Rank &r = ranks_[rank];
    if (r.round >= rounds_) {
        rankFinished(rank);
        return;
    }
    // Send this round's half of the pairwise exchange, then advance
    // through any rounds whose partner message has already arrived
    // (partners may run ahead of each other).
    for (;;) {
        Message m;
        m.src = rank;
        m.dst = rank ^ (SiteId{1} << r.round);
        m.bytes = spec_.messageBytes;
        m.cookie = (static_cast<std::uint64_t>(iteration_) << 8)
            | r.round;
        ++messages_;
        net_.inject(std::move(m));

        if (r.banked[r.round] == 0)
            return; // wait for the partner's message
        --r.banked[r.round];
        ++r.round;
        if (r.round >= rounds_) {
            rankFinished(rank);
            return;
        }
    }
}

void
MessagePassingSystem::onDelivery(const Message &msg)
{
    Rank &r = ranks_[msg.dst];

    if (spec_.collective == Collective::AllReduce) {
        const auto iter = static_cast<std::uint32_t>(msg.cookie >> 8);
        const auto round = static_cast<std::uint32_t>(msg.cookie
                                                      & 0xff);
        if (iter != iteration_) {
            if (spec_.tolerateLoss) {
                // A retried packet outlived its iteration.
                ++stragglers_;
                return;
            }
            panic("MessagePassingSystem: all-reduce message from "
                  "iteration ", iter, " during iteration ",
                  iteration_);
        }
        ++r.banked[round];
        // Only a message for the rank's *current* round unblocks it.
        if (round != r.round || r.banked[r.round] == 0)
            return;
        --r.banked[r.round];
        ++r.round;
        startAllReduceRound(msg.dst);
        return;
    }

    if (msg.cookie != iteration_) {
        if (spec_.tolerateLoss) {
            ++stragglers_;
            return;
        }
        // A straggler from a previous iteration can only occur if the
        // barrier logic is broken.
        panic("MessagePassingSystem: message from iteration ",
              msg.cookie, " delivered during iteration ", iteration_);
    }
    if (r.pendingRecvs == 0) {
        if (spec_.tolerateLoss) {
            // Both the drop accounting and a late real delivery can
            // land; the second is excess.
            ++stragglers_;
            return;
        }
        panic("MessagePassingSystem: unexpected message at rank ",
              msg.dst);
    }
    if (--r.pendingRecvs > 0)
        return;
    rankFinished(msg.dst);
}

void
MessagePassingSystem::onDrop(const Message &msg)
{
    // Excuse the lost message from the destination's barrier
    // accounting, as if it had been (emptily) received. Deferred to
    // the end of the current tick: drops surface synchronously from
    // inject(), possibly before every rank's comm phase has been
    // prepared at this barrier.
    ++lost_;
    sim_.events().scheduleAfter(0, [this, msg] {
        onDelivery(msg);
    }, "workload.mpi_drop");
}

void
MessagePassingSystem::rankFinished(SiteId rank)
{
    Rank &r = ranks_[rank];
    if (r.doneThisIteration)
        panic("MessagePassingSystem: rank ", rank, " finished twice");
    r.doneThisIteration = true;
    if (++finishedRanks_ == ranks_.size()) {
        // Global barrier reached; next iteration.
        ++iteration_;
        startIteration();
    }
}

} // namespace macrosim
