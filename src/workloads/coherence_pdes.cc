#include "workloads/coherence_pdes.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace macrosim
{

namespace
{

/** Closed-loop issue state: one transaction outstanding per site,
 *  re-issued from the completion callback until the quota drains. */
struct CoherencePdesDriver
{
    CoherenceEngine &engine;
    const CoherencePdesConfig &cfg;
    std::uint32_t siteCount;
    std::vector<Rng> rngs;
    std::vector<std::uint64_t> remaining;

    void
    issue(SiteId s)
    {
        if (remaining[s] == 0)
            return;
        --remaining[s];
        Rng &rng = rngs[s];
        const SiteId home =
            static_cast<SiteId>(rng.below(siteCount));
        const CoherenceOp op = rng.chance(cfg.writeFraction)
            ? CoherenceOp::GetM
            : CoherenceOp::GetS;
        std::vector<SiteId> sharers;
        if (!rng.chance(cfg.mix.probNone)) {
            const std::uint32_t want = std::min(
                cfg.mix.sharerCount, siteCount - 1);
            while (sharers.size() < want) {
                const SiteId c =
                    static_cast<SiteId>(rng.below(siteCount));
                if (c == s
                    || std::find(sharers.begin(), sharers.end(), c)
                        != sharers.end()) {
                    continue;
                }
                sharers.push_back(c);
            }
        }
        engine.startSynthetic(s, home, op, sharers,
                              [this, s](TxnId, Tick) { issue(s); });
    }
};

} // namespace

CoherencePdesResult
runCoherencePdes(const PdesNetworkFactory &make_net,
                 const CoherencePdesConfig &cfg,
                 const PdesObservability *obs)
{
    // One LP, always: the engine's transaction pool and line locks
    // are global (see the file comment). The run still exercises the
    // keyed delivery path end to end.
    PdesModel model = buildPdesModel(make_net, 1, 1, cfg.seed);
    Simulator &sim = model.sched->simOf(0);
    CoherenceEngine engine(sim, model.net(0), /*directory_mode=*/false);

    const std::uint32_t sites = model.net(0).config().siteCount();
    CoherencePdesDriver driver{engine, cfg, sites, {}, {}};
    driver.rngs.reserve(sites);
    for (SiteId s = 0; s < sites; ++s) {
        driver.rngs.emplace_back(
            deriveSeed(cfg.seed, "pdes-coherence", std::to_string(s)));
    }
    driver.remaining.assign(sites, cfg.transactionsPerSite);
    for (SiteId s = 0; s < sites; ++s)
        driver.issue(s);

    std::unique_ptr<PdesTracer> tracer =
        armPdesObservability(model, obs);
    CoherencePdesResult out;
    out.eventsExecuted = model.sched->run();
    finishPdesObservability(model, obs, std::move(tracer));
    out.load = model.sched->loadReport();
    out.effectiveLps = model.effectiveLps;
    out.completed = engine.transactionsCompleted();
    out.messagesSent = engine.messagesSent();
    out.meanOpLatencyNs = engine.opLatencyNs().mean();
    out.maxOpLatencyNs = engine.opLatencyNs().max();
    return out;
}

} // namespace macrosim
