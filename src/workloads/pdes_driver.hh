/**
 * @file
 * Shared scaffolding for parallel-in-model (PDES) workload drivers.
 *
 * A driver partitions one simulation across logical processes by
 * building one Network replica per LP from a caller-supplied factory.
 * The factory runs once per LP against that LP's Simulator, so every
 * replica sees identical configuration; bindPdes() then switches the
 * replicas onto the deterministic keyed delivery path. Topologies
 * whose state cannot split (PdesPartition::Colocated) collapse to one
 * effective LP — the run still uses the PDES machinery, it just has
 * no parallelism to exploit.
 */

#ifndef MACROSIM_WORKLOADS_PDES_DRIVER_HH
#define MACROSIM_WORKLOADS_PDES_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "net/network.hh"
#include "sim/pdes_scheduler.hh"

namespace macrosim
{

/** Builds one topology replica on the given LP's Simulator. Must be a
 *  pure function of the simulator (identical config every call). */
using PdesNetworkFactory =
    std::function<std::unique_ptr<Network>(Simulator &)>;

/** A partitioned model: the scheduler plus one bound replica per LP. */
struct PdesModel
{
    std::unique_ptr<PdesScheduler> sched;
    std::vector<std::unique_ptr<Network>> nets;
    /** LPs actually used; 1 for Colocated topologies regardless of
     *  the request. */
    std::uint32_t effectiveLps = 1;

    Network &net(std::uint32_t lp) { return *nets[lp]; }
};

/**
 * Probe the topology's partitionability, size the LP count, and build
 * the bound replicas: block site partition, per-LP replica, lookahead
 * from the topology's own bound.
 *
 * @param lps Requested LP count (>= 1); clamped to the site count,
 *        and to 1 for Colocated topologies.
 * @param threads Worker threads (0 = one per LP).
 */
PdesModel buildPdesModel(const PdesNetworkFactory &make_net,
                         std::uint32_t lps, std::size_t threads,
                         std::uint64_t seed);

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_PDES_DRIVER_HH
