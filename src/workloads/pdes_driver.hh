/**
 * @file
 * Shared scaffolding for parallel-in-model (PDES) workload drivers.
 *
 * A driver partitions one simulation across logical processes by
 * building one Network replica per LP from a caller-supplied factory.
 * The factory runs once per LP against that LP's Simulator, so every
 * replica sees identical configuration; bindPdes() then switches the
 * replicas onto the deterministic keyed delivery path. Topologies
 * whose state cannot split (PdesPartition::Colocated) collapse to one
 * effective LP — the run still uses the PDES machinery, it just has
 * no parallelism to exploit.
 */

#ifndef MACROSIM_WORKLOADS_PDES_DRIVER_HH
#define MACROSIM_WORKLOADS_PDES_DRIVER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"
#include "sim/pdes_scheduler.hh"
#include "sim/telemetry/pdes_trace.hh"

namespace macrosim
{

/** Builds one topology replica on the given LP's Simulator. Must be a
 *  pure function of the simulator (identical config every call). */
using PdesNetworkFactory =
    std::function<std::unique_ptr<Network>(Simulator &)>;

/** A partitioned model: the scheduler plus one bound replica per LP. */
struct PdesModel
{
    std::unique_ptr<PdesScheduler> sched;
    std::vector<std::unique_ptr<Network>> nets;
    /** LPs actually used; 1 for Colocated topologies regardless of
     *  the request. */
    std::uint32_t effectiveLps = 1;

    Network &net(std::uint32_t lp) { return *nets[lp]; }
};

/**
 * Probe the topology's partitionability, size the LP count, and build
 * the bound replicas: block site partition, per-LP replica, lookahead
 * from the topology's own bound.
 *
 * @param lps Requested LP count (>= 1); clamped to the site count,
 *        and to 1 for Colocated topologies.
 * @param threads Worker threads (0 = one per LP).
 */
PdesModel buildPdesModel(const PdesNetworkFactory &make_net,
                         std::uint32_t lps, std::size_t threads,
                         std::uint64_t seed);

/**
 * Optional observability for a PDES workload run. Every field
 * defaults off, and the workload entry points take a null pointer to
 * mean "no observability" — the instrumented paths cost nothing when
 * unused, so results stay byte-identical with telemetry off.
 */
struct PdesObservability
{
    /** Collect per-round wall-clock splits (two steady_clock reads
     *  per horizon round) so the load report's busy/blocked columns
     *  fill in. */
    bool timing = false;
    /** Enable the per-LP event-loop self-profiler. */
    bool profile = false;
    /** When set, receive the merged Perfetto timeline (PdesTracer). */
    TraceSink *trace = nullptr;
    /** Per-LP tracer shard ring capacity. */
    std::size_t traceShardCapacity = 1 << 16;
    /** Record a cross-LP flow arrow when (key & mask) == 0. */
    std::uint64_t flowSampleMask = 63;
    /** When set with profile: the per-LP profiler tables, folded in
     *  fixed LP order (thread-count invariant layout; the wall-time
     *  numbers inside are real-time measurements). */
    std::string *profileOut = nullptr;
    /** When set: a "name value" dump of the scheduler's pdes.*
     *  registry after the run. */
    std::string *metricsOut = nullptr;
};

/**
 * Arm the scheduler-side observability on @p model before run():
 * timing flag, per-LP profilers, and the tracer (returned; it must
 * outlive the run). Null @p obs arms nothing.
 */
std::unique_ptr<PdesTracer>
armPdesObservability(PdesModel &model, const PdesObservability *obs);

/**
 * After run() returns: merge the tracer shards into obs->trace, fold
 * the per-LP profiles into obs->profileOut, and dump the scheduler
 * registry into obs->metricsOut.
 */
void finishPdesObservability(PdesModel &model,
                             const PdesObservability *obs,
                             std::unique_ptr<PdesTracer> tracer);

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_PDES_DRIVER_HH
