#include "workloads/packet_injector.hh"

#include <memory>
#include <string>
#include <utility>

#include "sim/logging.hh"

namespace macrosim
{

namespace
{

struct InjectorState
{
    InjectorState(Simulator &sim_in, Network &net_in,
                  const InjectorConfig &cfg_in)
        : sim(sim_in), net(net_in), cfg(cfg_in), rng(cfg_in.seed),
          dests(cfg_in.pattern, net_in.geometry())
    {}

    Simulator &sim;
    Network &net;
    InjectorConfig cfg;
    Rng rng;
    DestinationGenerator dests;

    Tick stopAt = 0;
    /** First tick of the measurement window (absolute, not an offset
     *  from zero: the injector may start on a warm clock). */
    Tick windowStart = 0;
    Accumulator latencyNs;
    Histogram latencyHist{0.0, 4000.0, 80000}; // 50 ps buckets
    std::uint64_t measuredPackets = 0;
    std::uint64_t windowBytes = 0;
    std::uint64_t injectedInWindow = 0;

    double
    meanGapPs() const
    {
        const double rate_bytes_per_ns =
            cfg.load * net.config().siteBandwidthBytesPerNs();
        return static_cast<double>(cfg.packetBytes)
            / rate_bytes_per_ns * 1000.0;
    }

    void
    scheduleNext(SiteId src)
    {
        // Per-gap rounding to >= 1 whole tick biases the realized
        // rate upward by at most 0.5 tick + P(gap < 1) per arrival
        // (see InjectorResult::offeredMeasuredPct for the realized
        // figure); the PDES injector's drift-free arrival clock
        // avoids the bias, while this path keeps the historical
        // stream so figure-6 outputs stay byte-identical.
        const Tick gap = static_cast<Tick>(
            rng.exponential(meanGapPs()) + 0.5);
        const Tick when = sim.now() + std::max<Tick>(gap, 1);
        if (when >= stopAt)
            return;
        sim.events().schedule(when, [this, src] {
            Message m;
            m.src = src;
            m.dst = dests.next(src, rng);
            m.bytes = cfg.packetBytes;
            // Mark packets created inside the measurement window.
            // The window starts warmup ticks after the *injector*
            // started, not at absolute tick `warmup`: a caller that
            // ran the simulator before invoking the injector would
            // otherwise measure mid-warmup packets.
            m.cookie = (sim.now() >= windowStart) ? 1 : 0;
            if (m.cookie == 1)
                ++injectedInWindow;
            net.inject(m);
            scheduleNext(src);
        }, "workload.inject");
    }
};

} // namespace

InjectorResult
runOpenLoop(Simulator &sim, Network &net, const InjectorConfig &cfg)
{
    if (cfg.load <= 0.0 || cfg.load > 1.5)
        fatal("runOpenLoop: offered load ", cfg.load,
              " outside (0, 1.5]");

    InjectorState st(sim, net, cfg);
    st.stopAt = sim.now() + cfg.warmup + cfg.window;
    st.windowStart = sim.now() + cfg.warmup;

    net.setDefaultHandler([&st](const Message &m) {
        if (m.cookie == 1) {
            const double lat_ns = ticksToNs(m.latency());
            st.latencyNs.sample(lat_ns);
            st.latencyHist.sample(lat_ns);
            ++st.measuredPackets;
        }
        if (m.delivered >= st.windowStart && m.delivered < st.stopAt)
            st.windowBytes += m.bytes;
    });

    for (SiteId s = 0; s < net.config().siteCount(); ++s)
        st.scheduleNext(s);

    sim.run(); // injection self-terminates at stopAt; then drain

    InjectorResult res;
    res.offeredLoadPct = cfg.load * 100.0;
    res.meanLatencyNs = st.latencyNs.mean();
    res.maxLatencyNs = st.latencyNs.max();
    res.p50LatencyNs = st.latencyHist.quantile(0.5);
    res.p99LatencyNs = st.latencyHist.quantile(0.99);
    res.measuredPackets = st.measuredPackets;
    res.overflowPackets = st.latencyHist.overflow();
    if (res.overflowPackets > 0) {
        warn_once("packet injector: ", res.overflowPackets,
                  " measured packet(s) exceeded the 4 us latency "
                  "histogram cap; percentiles landing in overflow "
                  "report +inf (mean/max remain exact)");
    }
    const double window_ns = ticksToNs(cfg.window);
    res.deliveredBytesPerNsPerSite = static_cast<double>(st.windowBytes)
        / window_ns / net.config().siteCount();
    res.deliveredPct = res.deliveredBytesPerNsPerSite
        / net.config().siteBandwidthBytesPerNs() * 100.0;
    res.offeredMeasuredPct =
        static_cast<double>(st.injectedInWindow)
        * cfg.packetBytes / window_ns / net.config().siteCount()
        / net.config().siteBandwidthBytesPerNs() * 100.0;
    return res;
}

namespace
{

/**
 * Per-site injector state. Sources and destinations are decoupled:
 * the RNG and arrival clock belong to the site as a *source* (touched
 * only by its owner LP's injection events), the measurement fields to
 * the site as a *destination* (touched only by its owner LP's
 * delivery events) — so no field is ever written from two LPs, and
 * merging in global site order gives a partition-independent result.
 */
struct PdesSiteState
{
    Rng rng{0};
    /** Drift-free arrival clock: the exact (real-valued) ps of the
     *  next arrival; each gap accumulates before rounding, so
     *  quantization error never compounds across arrivals. */
    double clockPs = 0.0;
    std::uint64_t injectedInWindow = 0;

    Accumulator latencyNs;
    std::uint64_t measuredPackets = 0;
    std::uint64_t windowBytes = 0;
};

struct PdesInjectorState
{
    PdesModel model;
    InjectorConfig cfg;
    Tick windowStart = 0;
    Tick stopAt = 0;
    double meanGapPs = 0.0;
    std::vector<PdesSiteState> sites;
    /** Per-LP: replicas each need their own destination cursors and
     *  an (integer-binned, order-free) latency histogram. */
    std::vector<DestinationGenerator> dests;
    std::vector<Histogram> hists;

    void
    scheduleNext(std::uint32_t lp, SiteId src)
    {
        PdesSiteState &ss = sites[src];
        ss.clockPs += ss.rng.exponential(meanGapPs);
        const Tick when = static_cast<Tick>(ss.clockPs + 0.5);
        if (when >= stopAt)
            return;
        model.sched->simOf(lp).events().schedule(
            when, [this, lp, src] {
                PdesSiteState &s = sites[src];
                Message m;
                m.src = src;
                m.dst = dests[lp].next(src, s.rng);
                m.bytes = cfg.packetBytes;
                m.cookie =
                    (model.net(lp).sim().now() >= windowStart) ? 1 : 0;
                if (m.cookie == 1)
                    ++s.injectedInWindow;
                model.net(lp).inject(m);
                scheduleNext(lp, src);
            }, "workload.inject");
    }
};

} // namespace

PdesInjectorResult
runOpenLoopPdes(const PdesNetworkFactory &make_net,
                const InjectorConfig &cfg, std::uint32_t lps,
                std::size_t threads, const PdesObservability *obs)
{
    if (cfg.load <= 0.0 || cfg.load > 1.5)
        fatal("runOpenLoopPdes: offered load ", cfg.load,
              " outside (0, 1.5]");

    PdesInjectorState st;
    st.model = buildPdesModel(make_net, lps, threads, cfg.seed);
    st.cfg = cfg;
    st.windowStart = cfg.warmup;
    st.stopAt = cfg.warmup + cfg.window;

    const MacrochipConfig &mc = st.model.net(0).config();
    const std::uint32_t site_count = mc.siteCount();
    st.meanGapPs = static_cast<double>(cfg.packetBytes)
        / (cfg.load * mc.siteBandwidthBytesPerNs()) * 1000.0;

    st.sites.resize(site_count);
    for (SiteId s = 0; s < site_count; ++s) {
        st.sites[s].rng = Rng(
            deriveSeed(cfg.seed, "pdes-injector", std::to_string(s)));
    }
    const std::uint32_t n_lps = st.model.effectiveLps;
    st.dests.reserve(n_lps);
    st.hists.reserve(n_lps);
    for (std::uint32_t i = 0; i < n_lps; ++i) {
        st.dests.emplace_back(cfg.pattern, st.model.net(i).geometry());
        st.hists.emplace_back(0.0, 4000.0, 80000); // 50 ps buckets
        st.model.net(i).setDefaultHandler(
            [&st, i](const Message &m) {
                PdesSiteState &ss = st.sites[m.dst];
                if (m.cookie == 1) {
                    const double lat_ns = ticksToNs(m.latency());
                    ss.latencyNs.sample(lat_ns);
                    st.hists[i].sample(lat_ns);
                    ++ss.measuredPackets;
                }
                if (m.delivered >= st.windowStart
                    && m.delivered < st.stopAt) {
                    ss.windowBytes += m.bytes;
                }
            });
    }
    for (SiteId s = 0; s < site_count; ++s)
        st.scheduleNext(st.model.sched->lpOfSite(s), s);

    std::unique_ptr<PdesTracer> tracer =
        armPdesObservability(st.model, obs);
    PdesInjectorResult out;
    out.eventsExecuted = st.model.sched->run();
    finishPdesObservability(st.model, obs, std::move(tracer));
    out.effectiveLps = n_lps;
    out.crossPosts = st.model.sched->crossPosts();
    out.spscSpills = st.model.sched->spills();
    out.load = st.model.sched->loadReport();

    // Fold per-site/per-LP shards in a fixed global order, so the
    // floating-point results do not depend on the partition.
    Accumulator latency;
    Histogram hist(0.0, 4000.0, 80000);
    std::uint64_t measured = 0, window_bytes = 0, injected = 0;
    for (SiteId s = 0; s < site_count; ++s) {
        latency.merge(st.sites[s].latencyNs);
        measured += st.sites[s].measuredPackets;
        window_bytes += st.sites[s].windowBytes;
        injected += st.sites[s].injectedInWindow;
    }
    for (std::uint32_t i = 0; i < n_lps; ++i)
        hist.merge(st.hists[i]);

    InjectorResult &res = out.result;
    res.offeredLoadPct = cfg.load * 100.0;
    res.meanLatencyNs = latency.mean();
    res.maxLatencyNs = latency.max();
    res.p50LatencyNs = hist.quantile(0.5);
    res.p99LatencyNs = hist.quantile(0.99);
    res.measuredPackets = measured;
    res.overflowPackets = hist.overflow();
    if (res.overflowPackets > 0) {
        warn_once("packet injector (pdes): ", res.overflowPackets,
                  " measured packet(s) exceeded the 4 us latency "
                  "histogram cap; percentiles landing in overflow "
                  "report +inf (mean/max remain exact)");
    }
    const double window_ns = ticksToNs(cfg.window);
    res.deliveredBytesPerNsPerSite =
        static_cast<double>(window_bytes) / window_ns / site_count;
    res.deliveredPct = res.deliveredBytesPerNsPerSite
        / mc.siteBandwidthBytesPerNs() * 100.0;
    res.offeredMeasuredPct = static_cast<double>(injected)
        * cfg.packetBytes / window_ns / site_count
        / mc.siteBandwidthBytesPerNs() * 100.0;
    return out;
}

} // namespace macrosim
