#include "workloads/packet_injector.hh"

#include "sim/logging.hh"

namespace macrosim
{

namespace
{

struct InjectorState
{
    InjectorState(Simulator &sim_in, Network &net_in,
                  const InjectorConfig &cfg_in)
        : sim(sim_in), net(net_in), cfg(cfg_in), rng(cfg_in.seed),
          dests(cfg_in.pattern, net_in.geometry())
    {}

    Simulator &sim;
    Network &net;
    InjectorConfig cfg;
    Rng rng;
    DestinationGenerator dests;

    Tick stopAt = 0;
    Accumulator latencyNs;
    Histogram latencyHist{0.0, 4000.0, 80000}; // 50 ps buckets
    std::uint64_t measuredPackets = 0;
    std::uint64_t windowBytes = 0;

    double
    meanGapPs() const
    {
        const double rate_bytes_per_ns =
            cfg.load * net.config().siteBandwidthBytesPerNs();
        return static_cast<double>(cfg.packetBytes)
            / rate_bytes_per_ns * 1000.0;
    }

    void
    scheduleNext(SiteId src)
    {
        const Tick gap = static_cast<Tick>(
            rng.exponential(meanGapPs()) + 0.5);
        const Tick when = sim.now() + std::max<Tick>(gap, 1);
        if (when >= stopAt)
            return;
        sim.events().schedule(when, [this, src] {
            Message m;
            m.src = src;
            m.dst = dests.next(src, rng);
            m.bytes = cfg.packetBytes;
            // Mark packets created inside the measurement window.
            m.cookie = (sim.now() >= cfg.warmup) ? 1 : 0;
            net.inject(m);
            scheduleNext(src);
        }, "workload.inject");
    }
};

} // namespace

InjectorResult
runOpenLoop(Simulator &sim, Network &net, const InjectorConfig &cfg)
{
    if (cfg.load <= 0.0 || cfg.load > 1.5)
        fatal("runOpenLoop: offered load ", cfg.load,
              " outside (0, 1.5]");

    InjectorState st(sim, net, cfg);
    st.stopAt = sim.now() + cfg.warmup + cfg.window;
    const Tick window_start = sim.now() + cfg.warmup;

    net.setDefaultHandler([&st, window_start](const Message &m) {
        if (m.cookie == 1) {
            const double lat_ns = ticksToNs(m.latency());
            st.latencyNs.sample(lat_ns);
            st.latencyHist.sample(lat_ns);
            ++st.measuredPackets;
        }
        if (m.delivered >= window_start && m.delivered < st.stopAt)
            st.windowBytes += m.bytes;
    });

    for (SiteId s = 0; s < net.config().siteCount(); ++s)
        st.scheduleNext(s);

    sim.run(); // injection self-terminates at stopAt; then drain

    InjectorResult res;
    res.offeredLoadPct = cfg.load * 100.0;
    res.meanLatencyNs = st.latencyNs.mean();
    res.maxLatencyNs = st.latencyNs.max();
    res.p50LatencyNs = st.latencyHist.quantile(0.5);
    res.p99LatencyNs = st.latencyHist.quantile(0.99);
    res.measuredPackets = st.measuredPackets;
    const double window_ns = ticksToNs(cfg.window);
    res.deliveredBytesPerNsPerSite = static_cast<double>(st.windowBytes)
        / window_ns / net.config().siteCount();
    res.deliveredPct = res.deliveredBytesPerNsPerSite
        / net.config().siteBandwidthBytesPerNs() * 100.0;
    return res;
}

} // namespace macrosim
