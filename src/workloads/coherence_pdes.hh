/**
 * @file
 * Coherence traffic through the parallel-in-model scheduler.
 *
 * The CoherenceEngine owns global state — the transaction pool, line
 * locks, the distributed directory — so it cannot split across
 * logical processes; this driver runs it colocated on a single LP.
 * What it exercises is the *keyed* delivery path every PDES run uses:
 * same-tick coherence messages order by message id rather than
 * insertion order, and this driver pins that the engine's statistics
 * are reproducible on that path (the determinism suite compares runs
 * across scheduler thread settings and against repetition).
 */

#ifndef MACROSIM_WORKLOADS_COHERENCE_PDES_HH
#define MACROSIM_WORKLOADS_COHERENCE_PDES_HH

#include <cstdint>

#include "workloads/coherence.hh"
#include "workloads/pdes_driver.hh"

namespace macrosim
{

struct CoherencePdesConfig
{
    /** Closed-loop transactions issued by each site, one at a time. */
    std::uint64_t transactionsPerSite = 32;
    SharerMix mix = SharerMix::lessSharing();
    /** GetM (vs GetS) fraction of requests. */
    double writeFraction = 0.3;
    std::uint64_t seed = 1;
};

struct CoherencePdesResult
{
    std::uint64_t completed = 0;
    std::uint64_t messagesSent = 0;
    double meanOpLatencyNs = 0.0;
    double maxOpLatencyNs = 0.0;
    std::uint64_t eventsExecuted = 0;
    std::uint32_t effectiveLps = 0;
    /** Load report (single row — the engine is colocated on one LP,
     *  see the file comment — but the same shape as the injector's). */
    PdesLoadReport load;
};

/**
 * Run the synthetic closed-loop coherence workload on a PDES-bound
 * replica of the factory's topology. Per-site RNG streams make the
 * result a pure function of the config.
 */
CoherencePdesResult runCoherencePdes(const PdesNetworkFactory &make_net,
                                     const CoherencePdesConfig &cfg,
                                     const PdesObservability *obs =
                                         nullptr);

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_COHERENCE_PDES_HH
