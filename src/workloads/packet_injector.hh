/**
 * @file
 * Open-loop raw-packet injector for latency/throughput analysis
 * (paper section 6.1, figure 6).
 *
 * Each site generates 64-byte packets (one cache-line transfer) with
 * exponential inter-arrival times at the requested fraction of its
 * 320 B/ns injection bandwidth, destinations drawn from a synthetic
 * pattern. After a warmup period, per-packet latency and delivered
 * throughput are measured over a fixed window; injection then stops
 * and the simulation drains. Latency diverging as load approaches a
 * network's sustainable bandwidth traces out the vertical asymptotes
 * of figure 6.
 */

#ifndef MACROSIM_WORKLOADS_PACKET_INJECTOR_HH
#define MACROSIM_WORKLOADS_PACKET_INJECTOR_HH

#include <cstdint>

#include "net/network.hh"
#include "workloads/patterns.hh"
#include "workloads/pdes_driver.hh"

namespace macrosim
{

struct InjectorConfig
{
    TrafficPattern pattern = TrafficPattern::Uniform;
    /** Offered load as a fraction of per-site peak (0, 1]. */
    double load = 0.1;
    std::uint32_t packetBytes = 64;
    Tick warmup = 2000 * tickNs;
    Tick window = 10000 * tickNs;
    std::uint64_t seed = 1;
};

struct InjectorResult
{
    /** Offered load as % of 320 B/ns per site (figure 6 x-axis). */
    double offeredLoadPct = 0.0;
    /** Mean latency over measured packets, ns (figure 6 y-axis). */
    double meanLatencyNs = 0.0;
    double maxLatencyNs = 0.0;
    /** Latency tail percentiles, ns (estimated from a histogram with
     *  50 ps buckets up to 4 us). */
    double p50LatencyNs = 0.0;
    double p99LatencyNs = 0.0;
    /** Delivered bytes/ns per site during the window. */
    double deliveredBytesPerNsPerSite = 0.0;
    /** Delivered throughput as % of per-site peak. */
    double deliveredPct = 0.0;
    std::uint64_t measuredPackets = 0;
    /**
     * Measured packets whose latency exceeded the histogram cap
     * (4 us): they are excluded from the percentile buckets, so when
     * a quantile lands among them p50/p99 report +inf rather than a
     * silently-clipped finite value. mean/max are unaffected (they
     * come from the unclipped accumulator).
     */
    std::uint64_t overflowPackets = 0;
    /**
     * Offered load actually generated during the measurement window,
     * as % of per-site peak — injected window packets x packet size
     * over window x sites x peak. Differs from offeredLoadPct by the
     * inter-arrival quantization bias: the legacy injector rounds
     * each exponential gap to >= 1 tick (upward bias <= 0.5 tick +
     * P(gap < 1 tick) per arrival, i.e. <~ 1.5% at figure-6 rates),
     * and the PDES injector accumulates arrivals on a drift-free
     * real-valued clock (bias only from the final truncated
     * inter-arrival, <= 1 packet per site).
     */
    double offeredMeasuredPct = 0.0;
};

/**
 * Drive @p net with the open-loop injector and return the measured
 * load point. The caller owns the simulator the network lives in;
 * the injector requires exclusive use of the network's handlers.
 */
InjectorResult runOpenLoop(Simulator &sim, Network &net,
                           const InjectorConfig &cfg);

/** A parallel-in-model injector run's measurement plus how it ran. */
struct PdesInjectorResult
{
    InjectorResult result;
    /** LPs actually used (1 for Colocated topologies). */
    std::uint32_t effectiveLps = 0;
    /** Events executed across all LPs. */
    std::uint64_t eventsExecuted = 0;
    /** Cross-LP events posted through the scheduler. */
    std::uint64_t crossPosts = 0;
    /** Cross-LP posts that overflowed an SPSC ring into its locked
     *  spill lane (capacity-tuning telemetry; harmless when > 0). */
    std::uint64_t spscSpills = 0;
    /** Per-LP load-balance breakdown (PdesScheduler::loadReport();
     *  wall-clock columns filled when PdesObservability::timing). */
    PdesLoadReport load;
};

/**
 * The open-loop injector partitioned across @p lps logical processes
 * (workloads/pdes_driver.hh). Every stochastic element is per-site —
 * one RNG stream and one drift-free real-valued arrival clock per
 * source, one latency accumulator per destination, merged in global
 * site order — so the InjectorResult is bit-identical for every
 * (lps, threads) choice. Note the streams differ from runOpenLoop's
 * single-RNG legacy path: compare PDES runs with PDES runs.
 *
 * Measurement windows are anchored at tick zero (fresh simulators):
 * warmup ends at cfg.warmup, the window at cfg.warmup + cfg.window.
 */
PdesInjectorResult runOpenLoopPdes(const PdesNetworkFactory &make_net,
                                   const InjectorConfig &cfg,
                                   std::uint32_t lps,
                                   std::size_t threads = 0,
                                   const PdesObservability *obs =
                                       nullptr);

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_PACKET_INJECTOR_HH
