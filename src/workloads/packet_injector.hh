/**
 * @file
 * Open-loop raw-packet injector for latency/throughput analysis
 * (paper section 6.1, figure 6).
 *
 * Each site generates 64-byte packets (one cache-line transfer) with
 * exponential inter-arrival times at the requested fraction of its
 * 320 B/ns injection bandwidth, destinations drawn from a synthetic
 * pattern. After a warmup period, per-packet latency and delivered
 * throughput are measured over a fixed window; injection then stops
 * and the simulation drains. Latency diverging as load approaches a
 * network's sustainable bandwidth traces out the vertical asymptotes
 * of figure 6.
 */

#ifndef MACROSIM_WORKLOADS_PACKET_INJECTOR_HH
#define MACROSIM_WORKLOADS_PACKET_INJECTOR_HH

#include <cstdint>

#include "net/network.hh"
#include "workloads/patterns.hh"

namespace macrosim
{

struct InjectorConfig
{
    TrafficPattern pattern = TrafficPattern::Uniform;
    /** Offered load as a fraction of per-site peak (0, 1]. */
    double load = 0.1;
    std::uint32_t packetBytes = 64;
    Tick warmup = 2000 * tickNs;
    Tick window = 10000 * tickNs;
    std::uint64_t seed = 1;
};

struct InjectorResult
{
    /** Offered load as % of 320 B/ns per site (figure 6 x-axis). */
    double offeredLoadPct = 0.0;
    /** Mean latency over measured packets, ns (figure 6 y-axis). */
    double meanLatencyNs = 0.0;
    double maxLatencyNs = 0.0;
    /** Latency tail percentiles, ns (estimated from a histogram with
     *  50 ps buckets up to 4 us). */
    double p50LatencyNs = 0.0;
    double p99LatencyNs = 0.0;
    /** Delivered bytes/ns per site during the window. */
    double deliveredBytesPerNsPerSite = 0.0;
    /** Delivered throughput as % of per-site peak. */
    double deliveredPct = 0.0;
    std::uint64_t measuredPackets = 0;
};

/**
 * Drive @p net with the open-loop injector and return the measured
 * load point. The caller owns the simulator the network lives in;
 * the injector requires exclusive use of the network's handlers.
 */
InjectorResult runOpenLoop(Simulator &sim, Network &net,
                           const InjectorConfig &cfg);

} // namespace macrosim

#endif // MACROSIM_WORKLOADS_PACKET_INJECTOR_HH
