/**
 * @file
 * Statistics primitives: counters, accumulators and histograms.
 *
 * Modelled loosely on gem5's stats: each SimObject owns stats and
 * registers them in the hierarchical StatRegistry
 * (sim/telemetry/registry.hh) so harnesses can report uniformly.
 */

#ifndef MACROSIM_SIM_STATS_HH
#define MACROSIM_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace macrosim
{

/** A monotonically increasing scalar count. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming summary of a sample set: count, sum, min, max, mean and
 * (population) variance via Welford's algorithm.
 */
class Accumulator
{
  public:
    void sample(double x);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Welford running mean: stable for large-offset samples where
     *  sum()/count() loses low-order bits to cancellation. */
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const { return count_ ? m2_ / count_ : 0.0; }
    double stddev() const;

    /**
     * Fold @p other into this accumulator (Chan's parallel Welford
     * update), as if every sample of @p other had been sample()d here.
     * Merging the same accumulators in the same order is bit-exact
     * regardless of how the samples were sharded — the PDES result
     * merge relies on folding per-site accumulators in global site
     * order to stay bit-identical across LP counts.
     */
    void merge(const Accumulator &other);

    void reset() { *this = Accumulator(); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Fixed-width linear histogram with overflow bucket; supports quantile
 * estimation (linear interpolation within a bucket).
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the first bucket.
     * @param hi Upper bound of the last regular bucket.
     * @param buckets Number of regular buckets (>=1).
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double x);

    std::uint64_t count() const { return total_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t underflow() const { return underflow_; }
    /** NaN / +-inf samples; kept out of the moments and buckets. */
    std::uint64_t nonfinite() const { return nonfinite_; }
    double mean() const { return acc_.mean(); }
    double max() const { return acc_.max(); }

    /**
     * Quantile in [0,1]. When the quantile lands in the overflow
     * bucket the true value is beyond the histogram's range and any
     * in-range answer would silently under-report the tail, so +inf
     * is returned instead; callers can test with std::isinf and
     * consult overflow() for the clipped count.
     */
    double quantile(double q) const;

    /**
     * Add @p other's samples into this histogram. Both must have the
     * same bucketing (fatal otherwise). Bucket counts are integer
     * sums, so merging shards is order-independent; the embedded
     * moments merge via Accumulator::merge (order-sensitive in the
     * last bits — fold shards in a fixed order when bit-identity
     * matters).
     */
    void merge(const Histogram &other);

    const std::vector<std::uint64_t> &buckets() const { return bins_; }
    double bucketWidth() const { return width_; }
    double lo() const { return lo_; }

    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t nonfinite_ = 0;
    std::uint64_t total_ = 0;
    Accumulator acc_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_STATS_HH
