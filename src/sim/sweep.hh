/**
 * @file
 * SweepRunner: the parallel experiment engine behind the figure
 * benches and the macrosimd campaign executor.
 *
 * A sweep is an ordered list of labelled jobs, each a closure that
 * builds and runs one independent Simulator and returns its result.
 * SweepRunner fans the jobs out over a ThreadPool and hands the
 * results back in submission order, so table-printing code is
 * oblivious to the parallelism. Determinism is the caller's half of
 * the contract: derive each job's RNG seed from the job's identity
 * with deriveSeed() (sim/random.hh), never from shared mutable
 * state, and results are bit-identical for any --jobs value.
 *
 * Progress is observable two ways. By default each finished job
 * emits one "[job k/N] label: ms (eta s)" line through the logging
 * layer's status sink (statusLine(), redirectable — the daemon
 * captures these as protocol events instead of scraping stdout).
 * Alternatively setObserver() receives the same data structured
 * (SweepJobDone), suppressing the default line. ETA math runs on
 * std::chrono::steady_clock, so a wall-clock step (NTP, DST) cannot
 * produce a negative or absurd estimate.
 *
 * Cancellation is cooperative. runCancellable() takes an optional
 * atomic token; once it flips (or a SIGINT/SIGTERM arrives after
 * installSweepSignalHandlers()), jobs that have not started are
 * skipped, *running jobs drain to completion* — their results are
 * still delivered, so a journaling caller flushes every finished
 * cell — and the outcome reports which jobs ran. Benches exit
 * non-zero afterwards via sweepExitStatus().
 */

#ifndef MACROSIM_SIM_SWEEP_HH
#define MACROSIM_SIM_SWEEP_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "sim/thread_pool.hh"

namespace macrosim
{

/** One cell of a sweep: a display label plus the work itself. */
template <typename Result>
struct SweepJob
{
    std::string label;
    std::function<Result()> fn;
};

/** A cancellable run's results plus which jobs actually executed. */
template <typename Result>
struct SweepOutcome
{
    /** Submission-order results; skipped slots are default-built. */
    std::vector<Result> results;
    /** ran[i] != 0 iff job i executed to completion. */
    std::vector<std::uint8_t> ran;
    /** Whether cancellation (token or signal) cut the sweep short. */
    bool interrupted = false;

    std::size_t
    completed() const
    {
        std::size_t n = 0;
        for (const std::uint8_t r : ran)
            n += r;
        return n;
    }
};

/**
 * Default worker count: the MACROSIM_JOBS environment variable if
 * set to a positive integer, else hardware_concurrency().
 */
std::size_t defaultJobs();

/** Serialized status line (threads share the sink). */
void sweepLog(const std::string &line);

/**
 * Install SIGINT/SIGTERM handlers that request cooperative sweep
 * cancellation (drain running cells, skip the rest) instead of the
 * default immediate process death that abandons in-flight cells.
 * Idempotent; called by bench flag parsing. The daemon installs its
 * own handlers and does not use this.
 */
void installSweepSignalHandlers();

/** Whether a signal (or requestSweepInterrupt) asked sweeps to stop. */
bool sweepInterrupted();

/** Programmatic equivalent of SIGINT for tests. */
void requestSweepInterrupt();

/** Clear the interrupt latch (tests only; signals stay installed). */
void clearSweepInterrupt();

/** Process exit code honoring interruption: 130 after a cancelled
 *  sweep (the conventional 128+SIGINT), else 0. */
int sweepExitStatus();

/** One finished job, as reported to a progress observer. */
struct SweepJobDone
{
    std::size_t done = 0;  ///< jobs finished so far
    std::size_t total = 0; ///< jobs in this sweep
    std::string label;
    double wallNs = 0.0; ///< this job's wall-clock time
    double etaSec = 0.0; ///< projected time to finish the sweep
};

class SweepRunner
{
  public:
    using Observer = std::function<void(const SweepJobDone &)>;

    /**
     * @p jobs worker threads; 0 means defaultJobs(). @p progress
     * false silences the per-job and aggregate status lines (the
     * test suite runs sweeps quietly).
     */
    explicit SweepRunner(std::size_t jobs = 0, bool progress = true);

    std::size_t jobs() const { return jobs_; }

    /**
     * Receive each finished job's progress record instead of the
     * default "[job k/N]" status line. The observer is called under
     * the progress lock (serialized) from worker threads.
     */
    void setObserver(Observer observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Run every job and return their results in submission order.
     * A job's exception is rethrown here, after the pool drains.
     * Honors the global signal interrupt (skipped jobs return
     * default-constructed results; check sweepInterrupted()).
     */
    template <typename Result>
    std::vector<Result>
    run(const std::string &name, std::vector<SweepJob<Result>> sweep)
    {
        return runCancellable(name, std::move(sweep), nullptr)
            .results;
    }

    /**
     * As run(), but additionally cancellable through @p cancel and
     * explicit about which jobs executed. On cancellation the
     * queued-but-unstarted jobs are drained through
     * ThreadPool::cancelPending() (their closures observe
     * ThreadPool::cancelling() and return immediately), running
     * jobs finish normally, and outcome.interrupted is set.
     */
    template <typename Result>
    SweepOutcome<Result>
    runCancellable(const std::string &name,
                   std::vector<SweepJob<Result>> sweep,
                   const std::atomic<bool> *cancel)
    {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point start = Clock::now();
        double busy_ns = 0.0;
        beginSweep(sweep.size(), start);

        SweepOutcome<Result> outcome;
        outcome.results.resize(sweep.size());
        outcome.ran.assign(sweep.size(), 0);

        const auto cancelled = [cancel] {
            return sweepInterrupted()
                   || (cancel != nullptr
                       && cancel->load(std::memory_order_relaxed));
        };

        std::vector<std::future<void>> futures;
        futures.reserve(sweep.size());
        {
            ThreadPool pool(jobs_);
            for (std::size_t i = 0; i < sweep.size(); ++i) {
                SweepJob<Result> &job = sweep[i];
                futures.push_back(pool.submit(
                    [this, &outcome, i, job = std::move(job),
                     &busy_ns, &cancelled] {
                        if (cancelled() || ThreadPool::cancelling())
                            return;
                        const Clock::time_point t0 = Clock::now();
                        outcome.results[i] = job.fn();
                        outcome.ran[i] = 1;
                        const double ns = std::chrono::duration<
                            double, std::nano>(Clock::now() - t0)
                                              .count();
                        noteJobDone(job.label, ns, &busy_ns);
                    }));
            }

            // Babysit the drain: the moment cancellation is
            // requested, flush the not-yet-started tail through
            // cancelPending() so only in-flight cells remain.
            bool flushed = false;
            for (std::future<void> &f : futures) {
                while (f.wait_for(std::chrono::milliseconds(20))
                       != std::future_status::ready) {
                    if (!flushed && cancelled()) {
                        pool.cancelPending();
                        flushed = true;
                    }
                }
            }
        } // pool joins here

        // Rethrow a job's exception, if any, after the drain (the
        // old run() contract: a worker crash surfaces here).
        for (std::future<void> &f : futures)
            f.get();
        outcome.interrupted = cancelled();

        const double wall_ns = std::chrono::duration<double, std::nano>(
                                   Clock::now() - start)
                                   .count();
        noteSweepDone(name, outcome, wall_ns, busy_ns);
        return outcome;
    }

  private:
    /** Reset the live progress counters for a new sweep (locked). */
    void beginSweep(std::size_t total,
                    std::chrono::steady_clock::time_point start);

    /**
     * Log one finished job and accumulate busy time (locked). The
     * progress line reports cells done/total plus an ETA projected
     * from monotonic elapsed over cells finished — worker-count
     * agnostic, so it stays honest for any --jobs value.
     */
    void noteJobDone(const std::string &label, double ns,
                     double *busy_ns);

    /** Log the aggregate wall time and parallel speedup. */
    void noteSweepDone(const std::string &name, std::size_t completed,
                       std::size_t count, bool interrupted,
                       double wall_ns, double busy_ns);

    template <typename Result>
    void
    noteSweepDone(const std::string &name,
                  const SweepOutcome<Result> &outcome, double wall_ns,
                  double busy_ns)
    {
        noteSweepDone(name, outcome.completed(),
                      outcome.results.size(), outcome.interrupted,
                      wall_ns, busy_ns);
    }

    std::size_t jobs_;
    bool progress_;
    Observer observer_;

    /** Live progress state of the sweep currently in run(). */
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::chrono::steady_clock::time_point sweepStart_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_SWEEP_HH
