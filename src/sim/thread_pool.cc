#include "sim/thread_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace macrosim
{

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count = std::max<std::size_t>(1, threads);
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    // Workers keep pulling until the queue is empty, so joining
    // them drains every task submitted before destruction.
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

namespace
{
thread_local bool tlsCancelling = false;
} // namespace

std::size_t
ThreadPool::cancelPending()
{
    std::deque<std::function<void()>> flushed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        flushed.swap(queue_);
    }
    tlsCancelling = true;
    for (std::function<void()> &task : flushed)
        task();
    tlsCancelling = false;
    return flushed.size();
}

bool
ThreadPool::cancelling()
{
    return tlsCancelling;
}

std::size_t
ThreadPool::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            panic("ThreadPool: submit() after destruction began");
        queue_.push_back(std::move(task));
    }
    available_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock,
                            [this] { return closed_ || !queue_.empty(); });
            if (queue_.empty())
                return; // closed_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task catches the task's exceptions and stores
        // them in the future; nothing escapes into the worker.
        task();
    }
}

} // namespace macrosim
