/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * logging.hh.
 *
 * panic()  -- an internal simulator invariant was violated; aborts.
 * fatal()  -- the user asked for something unsatisfiable; throws
 *             FatalError so library users (and tests) can recover.
 * warn()   -- something is suspicious but simulation continues.
 * inform() -- plain status output.
 */

#ifndef MACROSIM_SIM_LOGGING_HH
#define MACROSIM_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace macrosim
{

/** Thrown by fatal(): a user-level configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: a simulator bug, never a user error. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Throw FatalError: the configuration or input is unusable. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr; simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Quiet mode suppresses warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

} // namespace macrosim

#endif // MACROSIM_SIM_LOGGING_HH
