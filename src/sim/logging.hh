/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * logging.hh.
 *
 * panic()  -- an internal simulator invariant was violated; aborts.
 * fatal()  -- the user asked for something unsatisfiable; throws
 *             FatalError so library users (and tests) can recover.
 * warn()   -- something is suspicious but simulation continues.
 * warn_once() -- as warn(), but latched per call site so a condition
 *             checked in a per-cell loop cannot spam a 600-cell sweep.
 * inform() -- plain status output.
 */

#ifndef MACROSIM_SIM_LOGGING_HH
#define MACROSIM_SIM_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace macrosim
{

/** Thrown by fatal(): a user-level configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: a simulator bug, never a user error. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Throw FatalError: the configuration or input is unusable. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr; simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Quiet mode suppresses warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

/**
 * Live status lines (sweep progress "[job k/N] … (eta …)" and
 * friends) flow through here rather than straight to stderr, so an
 * embedding process can capture them. Unlike inform(), status lines
 * are NOT quiet-gated: benches run setQuiet(true) yet still show
 * progress. Calls are serialized internally (worker threads share
 * the sink).
 */
void statusLine(const std::string &line);

/**
 * Redirect statusLine(). Null restores the default stderr writer.
 * The macrosimd daemon points this at its protocol-event stream so
 * clients subscribe to progress instead of scraping stdout.
 */
void setStatusSink(std::function<void(const std::string &)> sink);

/**
 * Total warnings issued since process start. Counts even under
 * quiet(), so tests can assert on warning behaviour (e.g. the
 * warn_once latch) without scraping stderr.
 */
std::uint64_t warningsIssued();

} // namespace macrosim

/**
 * Emit a warning at most once per call site (gem5's warn_once). The
 * latch is a function-local static, so the condition may sit inside
 * a hot loop or a per-simulation constructor without flooding
 * stderr across a parameter sweep. Atomic: sweep worker threads may
 * trip the same call site concurrently.
 */
#define warn_once(...)                                                 \
    do {                                                               \
        static std::atomic<bool> macrosim_warned_once_{false};         \
        if (!macrosim_warned_once_.exchange(                           \
                true, std::memory_order_relaxed)) {                    \
            ::macrosim::warn(__VA_ARGS__);                             \
        }                                                              \
    } while (0)

#endif // MACROSIM_SIM_LOGGING_HH
