/**
 * @file
 * A fixed-size thread pool for fanning independent simulations out
 * across hardware.
 *
 * Simulator instances are deliberately global-free (simulator.hh),
 * so a sweep over a (workload x network) matrix is embarrassingly
 * parallel: each job builds its own Simulator, runs it, and returns
 * a result. The pool is intentionally minimal — a locked FIFO queue,
 * no work stealing — because jobs are coarse (whole simulations,
 * milliseconds to minutes each) and submission order is the only
 * ordering anyone relies on. Results and exceptions travel back
 * through std::future, so a worker crash surfaces at the caller's
 * get() instead of tearing down the process.
 */

#ifndef MACROSIM_SIM_THREAD_POOL_HH
#define MACROSIM_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace macrosim
{

class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 is clamped to 1. */
    explicit ThreadPool(std::size_t threads);

    /** Drains: blocks until every submitted task has finished. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Queue @p fn for execution. Tasks start in submission order
     * (FIFO), so a 1-thread pool runs them strictly sequentially.
     * The returned future carries fn's result, or rethrows whatever
     * it threw.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F &&fn)
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        post([task] { (*task)(); });
        return future;
    }

    /**
     * Cooperative cancellation: atomically take every task still
     * queued (not yet picked up by a worker) and run them inline on
     * the calling thread with cancelling() == true. Cancel-aware
     * tasks check that flag first and return immediately, so their
     * futures resolve (no broken promises) while the work itself is
     * skipped. Tasks already running on workers are unaffected —
     * they drain normally. @return Number of tasks flushed.
     */
    std::size_t cancelPending();

    /**
     * Whether the current thread is executing a task flushed by
     * cancelPending() — the task's cue to skip its real work.
     */
    static bool cancelling();

    /** Tasks queued but not yet started (diagnostic). */
    std::size_t pending() const;

  private:
    void post(std::function<void()> task);
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::deque<std::function<void()>> queue_;
    bool closed_ = false;
    std::vector<std::thread> workers_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_THREAD_POOL_HH
