#include "sim/random.hh"

#include <cmath>

namespace macrosim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23)
        + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    // Lemire-style rejection sampling for an unbiased result.
    if (bound == 0)
        return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    // Inverse-CDF; 1 - uniform() is in (0, 1] so log() is finite.
    return -mean * std::log(1.0 - uniform());
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 1;
    std::uint64_t n = 1;
    while (!chance(p))
        ++n;
    return n;
}

} // namespace macrosim
