#include "sim/random.hh"

#include <cmath>

namespace macrosim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    return mix64(x);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    // Advance along the splitmix64 stream, perturbed by the value.
    return mix64(h + 0x9e3779b97f4a7c15ULL + v);
}

std::uint64_t
hashCombine(std::uint64_t h, std::string_view s)
{
    // FNV-1a over the bytes, then one mixing step so short strings
    // still avalanche into all 64 bits.
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        fnv ^= static_cast<unsigned char>(c);
        fnv *= 0x100000001b3ULL;
    }
    // Length breaks up concatenation collisions across fields
    // ("ab","c" vs "a","bc") before the streams are combined.
    return hashCombine(hashCombine(h, fnv), s.size());
}

std::uint64_t
deriveSeed(std::uint64_t root, std::string_view workload,
           std::string_view network)
{
    std::uint64_t h = mix64(root);
    h = hashCombine(h, workload);
    h = hashCombine(h, network);
    return h;
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23)
        + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    // Lemire-style rejection sampling for an unbiased result.
    if (bound == 0)
        return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    // Inverse-CDF; 1 - uniform() is in (0, 1] so log() is finite.
    return -mean * std::log(1.0 - uniform());
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 1;
    std::uint64_t n = 1;
    while (!chance(p))
        ++n;
    return n;
}

} // namespace macrosim
