#include "sim/sweep.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/logging.hh"

namespace macrosim
{

namespace
{

std::mutex progressMutex;

/** Async-signal-safe interrupt latch (SIGINT/SIGTERM). */
volatile std::sig_atomic_t signalInterrupt = 0;

/** Programmatic latch (requestSweepInterrupt; tests, daemon). */
std::atomic<bool> manualInterrupt{false};

void
onSweepSignal(int)
{
    signalInterrupt = 1;
}

} // namespace

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("MACROSIM_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
sweepLog(const std::string &line)
{
    statusLine(line);
}

void
installSweepSignalHandlers()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction sa = {};
        sa.sa_handler = onSweepSignal;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0; // no SA_RESTART: interrupt blocking calls
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);
    });
}

bool
sweepInterrupted()
{
    return signalInterrupt != 0
           || manualInterrupt.load(std::memory_order_relaxed);
}

void
requestSweepInterrupt()
{
    manualInterrupt.store(true, std::memory_order_relaxed);
}

void
clearSweepInterrupt()
{
    signalInterrupt = 0;
    manualInterrupt.store(false, std::memory_order_relaxed);
}

int
sweepExitStatus()
{
    return sweepInterrupted() ? 130 : 0;
}

SweepRunner::SweepRunner(std::size_t jobs, bool progress)
    : jobs_(jobs > 0 ? jobs : defaultJobs()), progress_(progress)
{}

void
SweepRunner::beginSweep(std::size_t total,
                        std::chrono::steady_clock::time_point start)
{
    std::lock_guard<std::mutex> lock(progressMutex);
    total_ = total;
    done_ = 0;
    sweepStart_ = start;
}

void
SweepRunner::noteJobDone(const std::string &label, double ns,
                         double *busy_ns)
{
    std::lock_guard<std::mutex> lock(progressMutex);
    *busy_ns += ns;
    ++done_;
    // ETA from monotonic elapsed / cells finished: cells complete in
    // the same ratio no matter how many workers run them, so the
    // estimate holds for any --jobs value.
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - sweepStart_)
            .count();
    const double eta_s = done_ < total_
        ? elapsed_s / static_cast<double>(done_)
            * static_cast<double>(total_ - done_)
        : 0.0;
    if (observer_) {
        SweepJobDone report;
        report.done = done_;
        report.total = total_;
        report.label = label;
        report.wallNs = ns;
        report.etaSec = eta_s;
        observer_(report);
        return;
    }
    if (!progress_)
        return;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  [job %zu/%zu] %s: %.1f ms (eta %.1f s)", done_,
                  total_, label.c_str(), ns * 1e-6, eta_s);
    statusLine(line);
}

void
SweepRunner::noteSweepDone(const std::string &name,
                           std::size_t completed, std::size_t count,
                           bool interrupted, double wall_ns,
                           double busy_ns)
{
    if (!progress_)
        return;
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    if (interrupted) {
        os << "[sweep] " << name << ": INTERRUPTED after "
           << completed << "/" << count << " jobs ("
           << wall_ns * 1e-6
           << " ms wall); completed cells were flushed";
    } else {
        os << "[sweep] " << name << ": " << count << " jobs on "
           << jobs_ << " threads, " << wall_ns * 1e-6
           << " ms wall, " << busy_ns * 1e-6 << " ms cpu, speedup ";
        os.precision(2);
        os << (wall_ns > 0.0 ? busy_ns / wall_ns : 0.0) << "x";
    }
    statusLine(os.str());
}

} // namespace macrosim
