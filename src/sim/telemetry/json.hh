/**
 * @file
 * Minimal JSON *syntax* validator.
 *
 * Used by benches to self-check the trace files they emit (the ctest
 * smoke run asserts the written Perfetto JSON parses) and by the
 * telemetry unit tests. It validates grammar only — no DOM is built,
 * no semantic checks — so it stays dependency-free and O(n).
 */

#ifndef MACROSIM_SIM_TELEMETRY_JSON_HH
#define MACROSIM_SIM_TELEMETRY_JSON_HH

#include <string>
#include <string_view>

namespace macrosim
{

/**
 * @return true iff @p text is one syntactically complete JSON value
 * (object, array, string, number, true/false/null) with nothing but
 * whitespace after it. On failure, if @p error is non-null it
 * receives a short description with the byte offset.
 */
bool jsonValid(std::string_view text, std::string *error = nullptr);

} // namespace macrosim

#endif // MACROSIM_SIM_TELEMETRY_JSON_HH
