#include "sim/telemetry/registry.hh"

#include "sim/logging.hh"

namespace macrosim
{

void
StatRegistry::addCounter(std::string name, const Counter &c)
{
    add(std::move(name), [&c] {
        return static_cast<double>(c.value());
    });
}

void
StatRegistry::addMean(std::string name, const Accumulator &a)
{
    add(std::move(name), [&a] { return a.mean(); });
}

std::vector<std::pair<std::string, double>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.emplace_back(e.name, e.getter());
    return out;
}

bool
StatRegistry::has(std::string_view name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return true;
    }
    return false;
}

double
StatRegistry::value(std::string_view name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.getter();
    }
    fatal("StatRegistry::value: no stat named '", name, "'");
}

std::string
StatRegistry::uniquePrefix(const std::string &base) const
{
    const auto taken = [this](const std::string &prefix) {
        const std::string dotted = prefix + ".";
        for (const auto &e : entries_) {
            if (e.name == prefix
                || e.name.compare(0, dotted.size(), dotted) == 0) {
                return true;
            }
        }
        return false;
    };
    if (!taken(base))
        return base;
    for (int i = 2;; ++i) {
        const std::string candidate = base + "#" + std::to_string(i);
        if (!taken(candidate))
            return candidate;
    }
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &e : entries_)
        os << e.name << " " << e.getter() << "\n";
}

void
StatRegistry::dump(std::ostream &os, std::string_view prefix) const
{
    for (const auto &e : entries_) {
        if (e.name.compare(0, prefix.size(), prefix) == 0)
            os << e.name << " " << e.getter() << "\n";
    }
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        os << entries_[i].name << (i + 1 < entries_.size() ? "," : "\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        os << entries_[i].getter()
           << (i + 1 < entries_.size() ? "," : "\n");
    }
}

void
StatRegistry::dumpTree(std::ostream &os) const
{
    // Entries are grouped by shared dotted ancestry with the previous
    // entry, so the tree mirrors registration order (which callers
    // keep hierarchical anyway) without sorting.
    std::vector<std::string> open; // currently open component stack
    for (const auto &e : entries_) {
        std::vector<std::string> parts;
        std::size_t start = 0;
        for (std::size_t dot = e.name.find('.');
             dot != std::string::npos;
             start = dot + 1, dot = e.name.find('.', start)) {
            parts.push_back(e.name.substr(start, dot - start));
        }
        const std::string leaf = e.name.substr(start);

        std::size_t common = 0;
        while (common < parts.size() && common < open.size()
               && parts[common] == open[common]) {
            ++common;
        }
        open.resize(common);
        for (std::size_t i = common; i < parts.size(); ++i) {
            os << std::string(2 * i, ' ') << parts[i] << "\n";
            open.push_back(parts[i]);
        }
        os << std::string(2 * parts.size(), ' ') << leaf << " "
           << e.getter() << "\n";
    }
}

void
StatRegistry::writeSnapshotHeader(std::ostream &os) const
{
    os << "tick";
    for (const auto &e : entries_)
        os << "," << e.name;
    os << "\n";
}

void
StatRegistry::writeSnapshotRow(std::ostream &os,
                               std::uint64_t now) const
{
    os << now;
    for (const auto &e : entries_)
        os << "," << e.getter();
    os << "\n";
}

} // namespace macrosim
