#include "sim/telemetry/pdes_trace.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/pdes_scheduler.hh"

namespace macrosim
{

PdesTracer::PdesTracer(PdesScheduler &sched,
                       std::size_t shard_capacity,
                       std::uint64_t flow_sample_mask,
                       std::uint32_t pid)
    : sched_(sched),
      window_(std::max<Tick>(sched.lookahead(), 1)),
      flowMask_(flow_sample_mask), pid_(pid)
{
    const std::uint32_t n = sched_.lpCount();
    for (std::uint32_t i = 0; i < n; ++i)
        shards_.emplace_back(this, i, shard_capacity);
    for (std::uint32_t i = 0; i < n; ++i) {
        sched_.simOf(i).events().setTickObserver(&PdesTracer::tickThunk,
                                                 &shards_[i]);
    }
    sched_.setTracer(this);
    attached_ = true;
}

PdesTracer::~PdesTracer()
{
    detach();
}

void
PdesTracer::detach()
{
    if (!attached_)
        return;
    const std::uint32_t n = sched_.lpCount();
    for (std::uint32_t i = 0; i < n; ++i)
        sched_.simOf(i).events().setTickObserver(nullptr, nullptr);
    sched_.setTracer(nullptr);
    attached_ = false;
}

void
PdesTracer::tickThunk(void *ctx, Tick tick, std::uint64_t events)
{
    Shard &shard = *static_cast<Shard *>(ctx);
    shard.self->onTick(shard, tick, events);
}

void
PdesTracer::onTick(Shard &shard, Tick tick, std::uint64_t events)
{
    const std::uint64_t w = tick / window_;
    if (shard.open && w == shard.winIndex) {
        shard.events += events;
        shard.lastTick = tick;
        return;
    }
    if (shard.open)
        closeWindow(shard);
    shard.open = true;
    shard.winIndex = w;
    shard.firstTick = tick;
    shard.lastTick = tick;
    shard.events = events;
}

void
PdesTracer::closeWindow(Shard &shard)
{
    const Tick start = static_cast<Tick>(shard.winIndex) * window_;
    // The event-driven EOT envelope: after executing this window, no
    // message below last tick + lookahead can ever leave this LP.
    const Tick eot = shard.lastTick + window_;
    shard.sink.span(
        "horizon", "pdes", pid_, shard.lp, start, window_,
        {{"events", std::to_string(shard.events)},
         {"first_tick", std::to_string(shard.firstTick)},
         {"last_tick", std::to_string(shard.lastTick)},
         {"eot", std::to_string(eot)}});
    shard.eotPoints.emplace_back(start + window_, eot);
    shard.open = false;
}

void
PdesTracer::recordPost(std::uint32_t src_lp, std::uint32_t dst_lp,
                       Tick send_tick, const PdesEvent &ev)
{
    if (flowMask_ != 0 && (ev.key & flowMask_) != 0)
        return;
    // Both arrow ends come from the sender: (send tick, delivery
    // tick, key) are simulated quantities, so the arrow is identical
    // no matter when the receiver actually drains the channel.
    Shard &shard = shards_[src_lp];
    shard.sink.flowStart("msg", pid_, src_lp, send_tick, ev.key);
    shard.sink.flowFinish("msg", pid_, dst_lp, ev.when, ev.key);
}

std::uint64_t
PdesTracer::droppedEvents() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.sink.dropped();
    return total;
}

void
PdesTracer::finish(TraceSink &out)
{
    if (finished_)
        return;
    finished_ = true;
    const std::uint32_t n = sched_.lpCount();
    // Complete the deterministic streams: the last executed tick of
    // each LP is still buffered in its queue's burst tracker.
    for (std::uint32_t i = 0; i < n; ++i)
        sched_.simOf(i).events().flushTickObserver();
    for (Shard &shard : shards_) {
        if (shard.open)
            closeWindow(shard);
    }
    detach();

    // Metadata first, then the shards in fixed LP order, then the
    // derived counter tracks — a fully deterministic serialization.
    out.processName(pid_, "pdes horizon");
    const std::vector<std::uint32_t> &siteLp = sched_.sitePartition();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string label = "lp" + std::to_string(i);
        std::uint32_t first = 0;
        std::uint32_t last = 0;
        bool any = false;
        for (std::uint32_t site = 0;
             site < static_cast<std::uint32_t>(siteLp.size());
             ++site) {
            if (siteLp[site] != i)
                continue;
            if (!any)
                first = site;
            last = site;
            any = true;
        }
        if (any) {
            label += " sites " + std::to_string(first) + ".."
                + std::to_string(last);
        }
        out.threadName(pid_, i, label);
    }
    for (Shard &shard : shards_)
        out.append(std::move(shard.sink));
    for (const Shard &shard : shards_) {
        const std::string track = "eot.lp" + std::to_string(shard.lp);
        for (const auto &[ts, eot] : shard.eotPoints) {
            out.counter(track, pid_, ts,
                        static_cast<double>(eot));
        }
    }

    // EIT floor: the minimum over all LPs' EOT envelopes — the
    // horizon every LP's EIT ratchets along. Only meaningful with
    // more than one LP (a lone LP's EIT is unbounded).
    if (n > 1) {
        std::vector<std::size_t> idx(n, 0);
        std::vector<Tick> cur(n, 0);
        Tick lastFloor = maxTick;
        for (;;) {
            // Next point in (ts, lp) order across all envelopes.
            std::uint32_t pick = n;
            Tick pickTs = maxTick;
            for (std::uint32_t i = 0; i < n; ++i) {
                const auto &pts = shards_[i].eotPoints;
                if (idx[i] < pts.size()
                    && pts[idx[i]].first < pickTs) {
                    pickTs = pts[idx[i]].first;
                    pick = i;
                }
            }
            if (pick == n)
                break;
            cur[pick] = shards_[pick].eotPoints[idx[pick]].second;
            ++idx[pick];
            const Tick floor = *std::min_element(cur.begin(),
                                                 cur.end());
            if (floor != lastFloor) {
                out.counter("eit.floor", pid_, pickTs,
                            static_cast<double>(floor));
                lastFloor = floor;
            }
        }
    }
}

} // namespace macrosim
