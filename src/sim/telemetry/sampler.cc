#include "sim/telemetry/sampler.hh"

#include "sim/logging.hh"

namespace macrosim
{

PeriodicSampler::PeriodicSampler(Simulator &sim, Tick period,
                                 SampleFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn))
{
    if (period_ == 0)
        fatal("PeriodicSampler: period must be positive");
    if (!fn_)
        fatal("PeriodicSampler: empty sample callback");
    arm();
}

PeriodicSampler::~PeriodicSampler()
{
    if (pending_ != invalidEventId && sim_.events().cancel(pending_))
        sim_.noteObserverDone();
}

void
PeriodicSampler::arm()
{
    pending_ = sim_.events().scheduleAfter(
        period_, [this] { fire(); }, "telemetry.sample");
    sim_.noteObserverScheduled();
}

void
PeriodicSampler::fire()
{
    pending_ = invalidEventId;
    sim_.noteObserverDone();
    ++samples_;
    fn_(sim_.now());
    // Re-arm only while the simulation still has *model* work: events
    // pending beyond other observers' re-arms. This keeps a
    // drain-to-empty run terminating (at the cost of one trailing
    // sample after the final model event) even with several samplers
    // alive — counting each other's events would sustain the queue
    // forever.
    if (sim_.events().size() > sim_.observerEvents())
        arm();
}

SnapshotRecorder::SnapshotRecorder(Simulator &sim, Tick period)
    : sim_(sim), sampler_(sim, period, [this](Tick now) {
          if (!wroteHeader_) {
              sim_.telemetry().writeSnapshotHeader(buf_);
              wroteHeader_ = true;
          }
          sim_.telemetry().writeSnapshotRow(buf_, now);
      })
{
}

} // namespace macrosim
