/**
 * @file
 * TraceSink: a bounded ring buffer of timeline events serialized as
 * Chrome trace-event JSON, openable directly in ui.perfetto.dev (or
 * chrome://tracing).
 *
 * Event kinds map onto the trace-event phases we need:
 *   - span()      -> "X" complete events (message lifecycle spans),
 *   - counter()   -> "C" counter tracks (channel occupancy, in-flight
 *                    packets),
 *   - flowStart()/flowFinish() -> "s"/"f" flow arrows linking the
 *                    messages of one coherence transaction,
 *   - instant()   -> "i" markers,
 *   - processName()/threadName() -> "M" metadata rows.
 *
 * Timestamps are simulated ticks (1 ps); JSON "ts"/"dur" are written
 * in microseconds as exact decimal fixed-point (ps / 1e6 with six
 * fractional digits), so output is bit-reproducible — no floating-
 * point formatting is involved in the timeline.
 *
 * The ring is bounded: when capacity is exceeded the *oldest* event
 * is dropped (latest activity is usually what's being debugged) and
 * dropped() counts the loss, which writeJson() also records in
 * trace metadata.
 */

#ifndef MACROSIM_SIM_TELEMETRY_TRACE_HH
#define MACROSIM_SIM_TELEMETRY_TRACE_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace macrosim
{

class StatRegistry;

/** One trace-event record; prefer the typed TraceSink appenders. */
struct TraceEvent
{
    enum class Phase : char
    {
        Complete = 'X',
        Counter = 'C',
        FlowStart = 's',
        FlowFinish = 'f',
        Instant = 'i',
        Metadata = 'M',
    };

    Phase ph = Phase::Instant;
    std::string name;
    std::string cat = "sim";
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    Tick ts = 0;  ///< Simulated ticks (ps).
    Tick dur = 0; ///< Complete events only, ticks.
    std::uint64_t flowId = 0;
    /**
     * Extra "args" entries; each value is emitted verbatim, so pass
     * a number ("42", "3.5") or a pre-quoted JSON string.
     */
    std::vector<std::pair<std::string, std::string>> args;
};

class TraceSink
{
  public:
    explicit TraceSink(std::size_t capacity = 1 << 20);

    /** Append a raw event (ring semantics, see dropped()). */
    void push(TraceEvent ev);

    /** A "X" complete event covering [start, start+dur). */
    void span(std::string name, std::string cat, std::uint32_t pid,
              std::uint32_t tid, Tick start, Tick dur,
              std::vector<std::pair<std::string, std::string>> args =
                  {});

    /** A point on a counter track (one track per (pid, name)). */
    void counter(std::string name, std::uint32_t pid, Tick ts,
                 double value);

    /** Flow arrow start/finish, linked by @p flow_id. */
    void flowStart(std::string name, std::uint32_t pid,
                   std::uint32_t tid, Tick ts, std::uint64_t flow_id);
    void flowFinish(std::string name, std::uint32_t pid,
                    std::uint32_t tid, Tick ts, std::uint64_t flow_id);

    /** An "i" instant marker on a thread track. */
    void instant(std::string name, std::string cat, std::uint32_t pid,
                 std::uint32_t tid, Tick ts);

    /** Name the process / thread rows in the Perfetto UI. */
    void processName(std::uint32_t pid, const std::string &name);
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    std::size_t size() const { return events_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Events evicted because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Register "<prefix>.events" / "<prefix>.dropped" with @p
     * registry, so a truncated trace shows up in every stat dump —
     * not just in the trace's own metadata. The sink must outlive
     * any dump.
     */
    void regStats(StatRegistry &registry,
                  const std::string &prefix = "trace") const;

    const std::deque<TraceEvent> &events() const { return events_; }

    /** Move every event of @p other into this sink, in order. */
    void append(TraceSink &&other);

    /**
     * Serialize as a complete JSON document:
     * {"displayTimeUnit":"ns","traceEvents":[…]}.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    std::deque<TraceEvent> events_;
};

/** Escape a string for embedding inside JSON double quotes. */
std::string jsonEscape(std::string_view s);

/** Render @p v as a JSON number (handles non-finite values). */
std::string jsonNumber(double v);

} // namespace macrosim

#endif // MACROSIM_SIM_TELEMETRY_TRACE_HH
