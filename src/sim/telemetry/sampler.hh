/**
 * @file
 * Periodic mid-simulation sampling.
 *
 * PeriodicSampler fires a callback every N ticks of simulated time.
 * It deliberately keeps only one event in flight and re-arms *after*
 * its callback, only while events beyond other observers' re-arms
 * remain pending (see Simulator::observerEvents()) — so a simulation
 * that runs "until the queue drains" still terminates (at most one
 * trailing sample fires after the last model event), even when
 * several samplers watch the same simulation.
 *
 * SnapshotRecorder builds on it: every period it appends one
 * time-series CSV row (tick + every StatRegistry value) to an
 * in-memory buffer. The buffer, not a file, is the output so
 * parallel sweeps can collect per-cell snapshots and concatenate
 * them in deterministic submission order — making the CSV
 * bit-identical for any --jobs count.
 */

#ifndef MACROSIM_SIM_TELEMETRY_SAMPLER_HH
#define MACROSIM_SIM_TELEMETRY_SAMPLER_HH

#include <functional>
#include <sstream>
#include <string>

#include "sim/simulator.hh"

namespace macrosim
{

class PeriodicSampler
{
  public:
    /** Called with the sample's tick. */
    using SampleFn = std::function<void(Tick)>;

    /**
     * Sample every @p period ticks, starting @p period after now.
     * @p fn must outlive the simulation (it is captured by events).
     */
    PeriodicSampler(Simulator &sim, Tick period, SampleFn fn);

    PeriodicSampler(const PeriodicSampler &) = delete;
    PeriodicSampler &operator=(const PeriodicSampler &) = delete;

    /** Stop sampling (cancels the pending event, if any). */
    ~PeriodicSampler();

    std::uint64_t samplesTaken() const { return samples_; }

  private:
    void arm();
    void fire();

    Simulator &sim_;
    Tick period_;
    SampleFn fn_;
    std::uint64_t samples_ = 0;
    EventId pending_ = invalidEventId;
};

/**
 * Periodic snapshots of a simulation's StatRegistry as a time-series
 * CSV: a header row ("tick,<names…>", written lazily at the first
 * sample so late registrations are included), then one row per
 * period. Collect csv() after the run.
 */
class SnapshotRecorder
{
  public:
    /** Snapshot @p sim.telemetry() every @p period ticks. */
    SnapshotRecorder(Simulator &sim, Tick period);

    /** Header + all rows recorded so far. */
    std::string csv() const { return buf_.str(); }

    std::uint64_t rows() const { return sampler_.samplesTaken(); }

  private:
    Simulator &sim_;
    std::ostringstream buf_;
    bool wroteHeader_ = false;
    PeriodicSampler sampler_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_TELEMETRY_SAMPLER_HH
