/**
 * @file
 * PdesTracer: parallel Perfetto timelines for a PdesScheduler run —
 * one thread row per logical process under a "pdes" pid.
 *
 * The determinism bar from DESIGN.md §11 applies to traces too: the
 * same model partitioned the same way must serialize byte-identical
 * trace JSON for every worker-thread count. Real protocol internals
 * (step rounds, live EIT reads, wall-clock) are *not* thread-count
 * invariant, so the timeline is synthesized purely from the two
 * deterministic streams a PDES run produces:
 *
 *  - each LP's executed (tick, events-at-tick) stream, observed via
 *    EventQueue::setTickObserver and quantized into lookahead-sized
 *    "horizon" windows — one span per (LP, window) with the events
 *    executed and the event-driven EOT envelope (window's last
 *    executed tick + lookahead) as args;
 *  - cross-LP posts, whose (src, dst, send tick, delivery tick, key)
 *    are all simulated quantities — rendered as flowStart/flowFinish
 *    arrows keyed by the partition-invariant message id (sampled by
 *    a deterministic key mask so heavy runs do not flood the ring).
 *
 * Each LP records into its own TraceSink shard (single writer: the
 * worker that steps the LP), and finish() merges the shards in fixed
 * LP order, then derives per-LP "eot.lp<N>" counter tracks and a
 * global "eit.floor" track (minimum over the per-LP EOT envelopes —
 * the horizon every LP's EIT is ratcheting along) at merge time.
 *
 * Timing-dependent protocol metrics (blocked wall time, spills, round
 * counts) deliberately do not appear here; they live in
 * PdesScheduler::telemetry() and loadReport().
 */

#ifndef MACROSIM_SIM_TELEMETRY_PDES_TRACE_HH
#define MACROSIM_SIM_TELEMETRY_PDES_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/telemetry/trace.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class PdesScheduler;
struct PdesEvent;

class PdesTracer
{
  public:
    /** pid the LP thread rows live under in the Perfetto UI. */
    static constexpr std::uint32_t defaultPid = 90;

    /**
     * Attach to @p sched: installs a tick observer on every LP's
     * event queue and registers as the scheduler's post hook. The
     * scheduler's lookahead must already be set (it defines the
     * horizon-window width); attach after buildPdesModel() / after
     * setLookahead().
     *
     * @param shard_capacity Per-LP TraceSink ring capacity.
     * @param flow_sample_mask Record a cross-LP flow arrow only when
     *        (key & mask) == 0 — a deterministic 1-in-(mask+1)
     *        sample; 0 records every post.
     */
    explicit PdesTracer(PdesScheduler &sched,
                        std::size_t shard_capacity = 1 << 16,
                        std::uint64_t flow_sample_mask = 63,
                        std::uint32_t pid = defaultPid);

    /** Detaches the hooks if finish() was never called. */
    ~PdesTracer();

    PdesTracer(const PdesTracer &) = delete;
    PdesTracer &operator=(const PdesTracer &) = delete;

    /**
     * Scheduler hook: one cross-LP post, called on the source LP's
     * worker thread from PdesScheduler::post(). Appends (sampled)
     * flow arrows to the *source* LP's shard — both ends, so the
     * arrow never depends on receiver timing.
     */
    void recordPost(std::uint32_t src_lp, std::uint32_t dst_lp,
                    Tick send_tick, const PdesEvent &ev);

    /**
     * Flush the per-LP observers, close open windows, merge every
     * shard into @p out in fixed LP order, emit the derived EOT/EIT
     * counter tracks, and detach from the scheduler. Call once,
     * after PdesScheduler::run() has returned. The output is
     * byte-identical for every worker-thread count.
     */
    void finish(TraceSink &out);

    /** Ring evictions across all shards (0 = complete trace). */
    std::uint64_t droppedEvents() const;

  private:
    struct Shard
    {
        PdesTracer *self = nullptr;
        std::uint32_t lp = 0;
        TraceSink sink;
        /** (ts, eot) points of the event-driven EOT envelope. */
        std::vector<std::pair<Tick, Tick>> eotPoints;
        bool open = false;
        std::uint64_t winIndex = 0;
        Tick firstTick = 0;
        Tick lastTick = 0;
        std::uint64_t events = 0;

        Shard(PdesTracer *s, std::uint32_t i, std::size_t cap)
            : self(s), lp(i), sink(cap)
        {}
    };

    static void tickThunk(void *ctx, Tick tick, std::uint64_t events);
    void onTick(Shard &shard, Tick tick, std::uint64_t events);
    void closeWindow(Shard &shard);
    void detach();

    PdesScheduler &sched_;
    Tick window_;
    std::uint64_t flowMask_;
    std::uint32_t pid_;
    /** Stable addresses: the tick observers hold shard pointers. */
    std::deque<Shard> shards_;
    bool attached_ = false;
    bool finished_ = false;
};

} // namespace macrosim

#endif // MACROSIM_SIM_TELEMETRY_PDES_TRACE_HH
