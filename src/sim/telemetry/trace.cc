#include "sim/telemetry/trace.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/telemetry/registry.hh"

namespace macrosim
{

namespace
{

/**
 * Ticks (ps) to microseconds as exact decimal fixed-point: integer
 * quotient, '.', six-digit remainder. No floating point, so traces
 * are bit-reproducible across platforms.
 */
std::string
ticksToUs(Tick ps)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  ps / 1'000'000, ps % 1'000'000);
    return buf;
}

} // namespace

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // %.17g round-trips any double; trim to %g when exact so common
    // integral values stay short ("3" not "3.0000000000000000").
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

void
TraceSink::push(TraceEvent ev)
{
    if (events_.size() >= capacity_) {
        events_.pop_front();
        if (++dropped_ == 1) {
            warn_once("TraceSink: ring capacity (", capacity_,
                      " events) exceeded; oldest events are being "
                      "dropped — the trace is truncated (see the "
                      "trace_dropped_events metadata row and the "
                      "<prefix>.dropped stat)");
        }
    }
    events_.push_back(std::move(ev));
}

void
TraceSink::regStats(StatRegistry &registry,
                    const std::string &prefix) const
{
    const TraceSink *s = this;
    registry.add(prefix + ".events",
                 [s] { return static_cast<double>(s->size()); });
    registry.add(prefix + ".dropped",
                 [s] { return static_cast<double>(s->dropped()); });
}

void
TraceSink::span(std::string name, std::string cat, std::uint32_t pid,
                std::uint32_t tid, Tick start, Tick dur,
                std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::Complete;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = start;
    ev.dur = dur;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceSink::counter(std::string name, std::uint32_t pid, Tick ts,
                   double value)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::Counter;
    ev.name = std::move(name);
    ev.pid = pid;
    ev.ts = ts;
    ev.args.emplace_back("value", jsonNumber(value));
    push(std::move(ev));
}

void
TraceSink::flowStart(std::string name, std::uint32_t pid,
                     std::uint32_t tid, Tick ts, std::uint64_t flow_id)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::FlowStart;
    ev.name = std::move(name);
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts;
    ev.flowId = flow_id;
    push(std::move(ev));
}

void
TraceSink::flowFinish(std::string name, std::uint32_t pid,
                      std::uint32_t tid, Tick ts,
                      std::uint64_t flow_id)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::FlowFinish;
    ev.name = std::move(name);
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts;
    ev.flowId = flow_id;
    push(std::move(ev));
}

void
TraceSink::instant(std::string name, std::string cat,
                   std::uint32_t pid, std::uint32_t tid, Tick ts)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::Instant;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts;
    push(std::move(ev));
}

void
TraceSink::processName(std::uint32_t pid, const std::string &name)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::Metadata;
    ev.name = "process_name";
    ev.pid = pid;
    ev.args.emplace_back("name", '"' + jsonEscape(name) + '"');
    push(std::move(ev));
}

void
TraceSink::threadName(std::uint32_t pid, std::uint32_t tid,
                      const std::string &name)
{
    TraceEvent ev;
    ev.ph = TraceEvent::Phase::Metadata;
    ev.name = "thread_name";
    ev.pid = pid;
    ev.tid = tid;
    ev.args.emplace_back("name", '"' + jsonEscape(name) + '"');
    push(std::move(ev));
}

void
TraceSink::append(TraceSink &&other)
{
    for (TraceEvent &ev : other.events_)
        push(std::move(ev));
    dropped_ += other.dropped_;
    other.events_.clear();
    other.dropped_ = 0;
}

void
TraceSink::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"" << static_cast<char>(ev.ph) << "\",\"name\":\""
           << jsonEscape(ev.name) << "\",\"cat\":\""
           << jsonEscape(ev.cat) << "\",\"pid\":" << ev.pid
           << ",\"tid\":" << ev.tid;
        // Metadata rows carry no timestamp; everything else does.
        if (ev.ph != TraceEvent::Phase::Metadata)
            os << ",\"ts\":" << ticksToUs(ev.ts);
        if (ev.ph == TraceEvent::Phase::Complete)
            os << ",\"dur\":" << ticksToUs(ev.dur);
        if (ev.ph == TraceEvent::Phase::FlowStart ||
            ev.ph == TraceEvent::Phase::FlowFinish) {
            os << ",\"id\":" << ev.flowId;
            // "f" needs bp:"e" so Perfetto binds the arrow to the
            // enclosing span rather than the next one.
            if (ev.ph == TraceEvent::Phase::FlowFinish)
                os << ",\"bp\":\"e\"";
        }
        if (!ev.args.empty()) {
            os << ",\"args\":{";
            bool firstArg = true;
            for (const auto &[key, value] : ev.args) {
                if (!firstArg)
                    os << ",";
                firstArg = false;
                os << '"' << jsonEscape(key) << "\":" << value;
            }
            os << "}";
        }
        os << "}";
    }
    if (dropped_ > 0) {
        if (!first)
            os << ",\n";
        os << "{\"ph\":\"M\",\"name\":\"trace_dropped_events\","
              "\"cat\":\"sim\",\"pid\":0,\"tid\":0,\"args\":{"
              "\"count\":"
           << dropped_ << "}}";
    }
    os << "]}\n";
}

} // namespace macrosim
