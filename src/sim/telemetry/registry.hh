/**
 * @file
 * StatRegistry: the hierarchical named-stat registry behind all
 * simulator observability.
 *
 * Every simulation object registers its stats here under a dotted
 * hierarchical name ("net.tring.grants", "arch.site12.l2.misses",
 * "simcore.executed"). Values are pulled at dump time through small
 * capturing callables, so registration is cheap, the hot path never
 * pays for reporting, and a getter can close over whatever state it
 * needs (no `const void *` plumbing).
 *
 * The registry subsumes the old flat StatGroup (the name survives as
 * an alias): it keeps the flat "name value" dump and one-row CSV, and
 * adds prefix-filtered dumps, an indented tree dump, and periodic
 * mid-simulation snapshots to a time-series CSV (one row per sample
 * tick, one column per stat) via SnapshotRecorder in sampler.hh.
 */

#ifndef MACROSIM_SIM_TELEMETRY_REGISTRY_HH
#define MACROSIM_SIM_TELEMETRY_REGISTRY_HH

#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hh"

namespace macrosim
{

class StatRegistry
{
  public:
    /** A pull-callback; may capture arbitrary state by value or
     *  reference (the referent must outlive any dump). */
    using Getter = std::function<double()>;

    /** Register a stat under a dotted hierarchical name. */
    void
    add(std::string name, Getter getter)
    {
        entries_.push_back({std::move(name), std::move(getter)});
    }

    void addCounter(std::string name, const Counter &c);
    void addMean(std::string name, const Accumulator &a);

    std::size_t size() const { return entries_.size(); }

    /** Whether any stat is registered with exactly @p name. */
    bool has(std::string_view name) const;

    /** Pull one stat's current value; fatal() if absent. */
    double value(std::string_view name) const;

    /**
     * A prefix that does not collide with any registered name: @p base
     * if nothing is registered under it yet, else "base#2", "base#3"…
     * Used by objects that auto-register so two instances of the same
     * topology in one simulation keep distinct subtrees.
     */
    std::string uniquePrefix(const std::string &base) const;

    /** Write "name value" lines in registration order. */
    void dump(std::ostream &os) const;

    /** As dump(), but only stats whose name starts with @p prefix. */
    void dump(std::ostream &os, std::string_view prefix) const;

    /** Write a single CSV row of values, preceded by a header row. */
    void dumpCsv(std::ostream &os) const;

    /**
     * Write the registry as an indented tree: dotted components
     * become nesting levels, leaves print their value.
     */
    void dumpTree(std::ostream &os) const;

    /** Header row for a time-series snapshot CSV: "tick,<names…>". */
    void writeSnapshotHeader(std::ostream &os) const;

    /** One time-series row: @p now then every value, in order. */
    void writeSnapshotRow(std::ostream &os, std::uint64_t now) const;

    /**
     * Materialize every (name, current value) pair in registration
     * order — the serialization hook behind per-cell stat snapshots
     * in protocol events and journal records (service/campaign.hh):
     * the vector is taken once at end of run and encoded with the
     * doubles' exact bit patterns.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** Visit every (name, current value) pair in order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &e : entries_)
            fn(e.name, e.getter());
    }

  private:
    struct Entry
    {
        std::string name;
        Getter getter;
    };
    std::vector<Entry> entries_;
};

/**
 * The old flat stat-group name; a StatRegistry ignored of its
 * hierarchy behaves exactly like one.
 */
using StatGroup = StatRegistry;

/**
 * A registration handle that prepends a fixed dotted prefix, so a
 * subsystem can hand a scope to its children without them knowing
 * where in the tree they live.
 */
class StatScope
{
  public:
    StatScope(StatRegistry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {}

    /** A child scope "<this prefix>.<sub>". */
    StatScope
    scope(const std::string &sub) const
    {
        return StatScope(registry_, prefix_ + "." + sub);
    }

    void
    add(const std::string &name, StatRegistry::Getter getter) const
    {
        registry_.add(prefix_ + "." + name, std::move(getter));
    }

    void
    addCounter(const std::string &name, const Counter &c) const
    {
        registry_.addCounter(prefix_ + "." + name, c);
    }

    void
    addMean(const std::string &name, const Accumulator &a) const
    {
        registry_.addMean(prefix_ + "." + name, a);
    }

    StatRegistry &registry() const { return registry_; }
    const std::string &prefix() const { return prefix_; }

  private:
    StatRegistry &registry_;
    std::string prefix_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_TELEMETRY_REGISTRY_HH
