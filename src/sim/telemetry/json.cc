#include "sim/telemetry/json.hh"

#include <cctype>
#include <cstdio>

namespace macrosim
{

namespace
{

/** Recursive-descent cursor over the input text. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    run(std::string *error)
    {
        skipWs();
        if (!value()) {
            report(error);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            err_ = "trailing garbage";
            errPos_ = pos_;
            report(error);
            return false;
        }
        return true;
    }

  private:
    bool
    value()
    {
        if (depth_ > maxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        ++depth_;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                return fail("expected object key string");
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        ++depth_;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string()
    {
        ++pos_; // opening '"'
        while (pos_ < text_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("dangling escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_]))) {
                            return fail("bad \\u escape");
                        }
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
                ++pos_;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                ++pos_;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        const std::size_t intStart = pos_;
        if (!digits())
            return fail("expected digit");
        // JSON forbids leading zeros: "0" is fine, "01" is not.
        if (text_[intStart] == '0' && pos_ - intStart > 1)
            return fail("leading zero in number");
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return fail("expected fraction digits");
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return fail("expected exponent digits");
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    fail(const char *what)
    {
        if (!err_) {
            err_ = what;
            errPos_ = pos_;
        }
        return false;
    }

    void
    report(std::string *error) const
    {
        if (!error)
            return;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s at byte %zu",
                      err_ ? err_ : "invalid JSON", errPos_);
        *error = buf;
    }

    static constexpr int maxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    const char *err_ = nullptr;
    std::size_t errPos_ = 0;
};

} // namespace

bool
jsonValid(std::string_view text, std::string *error)
{
    return Parser(text).run(error);
}

} // namespace macrosim
