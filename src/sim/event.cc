#include "sim/event.hh"

#include "sim/logging.hh"

namespace macrosim
{

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_) {
        panic("EventQueue::schedule: tried to schedule at tick ", when,
              " which is before now (", now_, ")");
    }
    const EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    pending_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Cancellation is lazy: the entry stays queued but is skipped when
    // popped, because its id is no longer in pending_.
    return pending_.erase(id) == 1;
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        // priority_queue::top() is const; move out via const_cast is
        // the standard workaround, safe because we pop immediately.
        Entry entry = std::move(const_cast<Entry &>(queue_.top()));
        queue_.pop();
        if (pending_.erase(entry.id) == 0)
            continue; // cancelled
        now_ = entry.when;
        ++executed_;
        entry.cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t ran = 0;
    while (!queue_.empty()) {
        if (queue_.top().when > limit)
            break;
        if (runOne())
            ++ran;
    }
    return ran;
}

} // namespace macrosim
