#include "sim/event.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <utility>

#include "sim/logging.hh"
#include "sim/telemetry/registry.hh"

namespace macrosim
{

namespace
{

/** See batchDispatchDefault(). Atomic because sweep cells construct
 *  networks concurrently while a test harness may have flipped the
 *  default before launching them. */
std::atomic<bool> g_batchDispatchDefault{true};

/** Split an EventId into (gen, slot index); slot is biased by one so
 *  invalidEventId (0) never decodes to a valid slot. */
constexpr std::uint32_t
idSlotPlusOne(EventId id)
{
    return static_cast<std::uint32_t>(id & 0xffffffffu);
}

constexpr std::uint32_t
idGen(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

constexpr EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<EventId>(gen) << 32) |
           static_cast<EventId>(slot + 1);
}

} // namespace

bool
batchDispatchDefault()
{
    return g_batchDispatchDefault.load(std::memory_order_relaxed);
}

void
setBatchDispatchDefault(bool on)
{
    g_batchDispatchDefault.store(on, std::memory_order_relaxed);
}

std::uint32_t
EventQueue::allocSlot(Callback cb, const char *tag)
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        if (slots_.size() >
            std::numeric_limits<std::uint32_t>::max() - 2) {
            panic("EventQueue: slot arena overflow (", slots_.size(),
                  " concurrent events)");
        }
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[slot].cb = std::move(cb);
    slots_[slot].tag = tag;
    return slot;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    s.cb = nullptr;
    s.kernel = 0;
    s.tombstone = false;
    ++s.gen; // stale EventIds now fail the generation check
    freeSlots_.push_back(slot);
}

EventId
EventQueue::schedule(Tick when, Callback cb, const char *tag)
{
    if (when < now_) {
        panic("EventQueue::schedule: tried to schedule at tick ", when,
              " which is before now (", now_, ")");
    }
    if (!cb)
        panic("EventQueue::schedule: empty callback");
    const std::uint32_t slot = allocSlot(std::move(cb), tag);
    heap_.push_back(HeapRecord{when, nextSeq_++, slot});
    siftUp(heap_.size() - 1);
    ++pending_;
    ++stats_.scheduled;
    if (pending_ > stats_.peakPending)
        stats_.peakPending = pending_;
    return makeId(slots_[slot].gen, slot);
}

EventId
EventQueue::scheduleKeyed(Tick when, std::uint64_t key, Callback cb,
                          const char *tag)
{
    if (when < now_) {
        panic("EventQueue::scheduleKeyed: tried to schedule at tick ",
              when, " which is before now (", now_, ")");
    }
    if (key >= keyedSeqBit)
        panic("EventQueue::scheduleKeyed: key ", key, " uses the "
              "keyed-record marker bit");
    if (!cb)
        panic("EventQueue::scheduleKeyed: empty callback");
    const std::uint32_t slot = allocSlot(std::move(cb), tag);
    heap_.push_back(HeapRecord{when, keyedSeqBit | key, slot});
    siftUp(heap_.size() - 1);
    ++pending_;
    ++stats_.scheduled;
    if (pending_ > stats_.peakPending)
        stats_.peakPending = pending_;
    return makeId(slots_[slot].gen, slot);
}

std::uint16_t
EventQueue::registerBatchKernel(const char *tag, BatchKernel fn,
                                void *ctx)
{
    if (fn == nullptr)
        panic("EventQueue::registerBatchKernel: null kernel");
    if (kernels_.size() >=
        std::numeric_limits<std::uint16_t>::max()) {
        panic("EventQueue::registerBatchKernel: kernel id space "
              "exhausted (", kernels_.size(), " kernels)");
    }
    kernels_.push_back(BatchKernelEntry{fn, ctx, tag});
    return static_cast<std::uint16_t>(kernels_.size());
}

EventId
EventQueue::scheduleBatch(Tick when, std::uint16_t kernel,
                          std::uint32_t payload)
{
    if (when < now_) {
        panic("EventQueue::scheduleBatch: tried to schedule at tick ",
              when, " which is before now (", now_, ")");
    }
    if (kernel == 0 || kernel > kernels_.size()) {
        panic("EventQueue::scheduleBatch: unregistered kernel id ",
              kernel);
    }
    const std::uint32_t slot =
        allocSlot(Callback(), kernels_[kernel - 1].tag);
    slots_[slot].payload = payload;
    slots_[slot].kernel = kernel;
    heap_.push_back(HeapRecord{when, nextSeq_++, slot, kernel});
    siftUp(heap_.size() - 1);
    ++pending_;
    ++stats_.scheduled;
    if (pending_ > stats_.peakPending)
        stats_.peakPending = pending_;
    return makeId(slots_[slot].gen, slot);
}

Tick
EventQueue::peekNextTick()
{
    skipCancelled();
    return heap_.empty() ? maxTick : heap_[0].when;
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t biased = idSlotPlusOne(id);
    if (biased == 0 || biased > slots_.size())
        return false;
    Slot &s = slots_[biased - 1];
    // A live slot holds a callback or a batch kernel id;
    // executed/cancelled/free slots hold neither, and recycled slots
    // fail the generation check.
    if ((!s.cb && s.kernel == 0) || s.tombstone || idGen(id) != s.gen)
        return false;
    s.tombstone = true;
    s.cb = nullptr; // release captured state immediately
    s.kernel = 0;
    --pending_;
    ++tombstones_;
    ++stats_.cancelled;
    maybeCompact();
    return true;
}

void
EventQueue::siftUp(std::size_t i)
{
    const HeapRecord rec = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / arity;
        if (!earlier(rec, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = rec;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    const HeapRecord rec = heap_[i];
    for (;;) {
        const std::size_t first = arity * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + arity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], rec))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = rec;
}

void
EventQueue::popRoot()
{
    const HeapRecord last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        siftDown(0);
    }
}

void
EventQueue::skipCancelled()
{
    while (!heap_.empty() && slots_[heap_[0].slot].tombstone) {
        freeSlot(heap_[0].slot);
        --tombstones_;
        popRoot();
    }
}

void
EventQueue::noteExecuted(Tick when, std::uint64_t count)
{
    stats_.executed += count;
    if (burst_ > 0 && when == lastExecTick_) {
        burst_ += count;
    } else {
        // Crossing a tick boundary completes the previous tick: its
        // event count is final, so report it before restarting the
        // burst. Same-tick events always execute consecutively (the
        // heap is tick-ordered), so burst_ *is* the per-tick count.
        if (burst_ > 0)
            completeTick();
        burst_ = count;
    }
    lastExecTick_ = when;
    if (burst_ > stats_.maxSameTickBurst)
        stats_.maxSameTickBurst = burst_;
}

void
EventQueue::completeTick()
{
    if (tickObs_ != nullptr)
        tickObs_(tickCtx_, lastExecTick_, burst_);
    std::size_t b = 0;
    while (b + 1 < EventQueueStats::burstBuckets &&
           (burst_ >> (b + 1)) != 0)
        ++b;
    ++stats_.burstHist[b];
}

void
EventQueue::executeRoot()
{
    const HeapRecord root = heap_[0];
    Callback cb = std::move(slots_[root.slot].cb);
    const char *tag = slots_[root.slot].tag;
    now_ = root.when;
    freeSlot(root.slot);
    popRoot();
    --pending_;
    noteExecuted(root.when, 1);
    // All bookkeeping is consistent before the callback runs, so it
    // may freely schedule() and cancel() (and grow the arena).
    if (!profiling_) {
        cb();
        return;
    }
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    cb();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0)
            .count();
    ProfileBucket &bucket = profileBucketFor(tag);
    ++bucket.count;
    bucket.wallNs += ns;
}

std::uint64_t
EventQueue::executeBatchRun()
{
    const std::uint16_t kernel = heap_[0].kernel;
    const Tick when = heap_[0].when;
    now_ = when;
    batchScratch_.clear();
    do {
        const std::uint32_t slot = heap_[0].slot;
        batchScratch_.push_back(slots_[slot].payload);
        freeSlot(slot);
        popRoot();
        // Tombstones between run members would be skipped by the
        // scalar path too, so dropping them preserves run maximality
        // without reordering anything.
        skipCancelled();
    } while (!heap_.empty() && heap_[0].when == when &&
             heap_[0].kernel == kernel);
    const std::uint64_t n = batchScratch_.size();
    pending_ -= static_cast<std::size_t>(n);
    noteExecuted(when, n);
    ++stats_.batchRuns;
    stats_.batchEvents += n;
    // Bookkeeping is consistent before the kernel runs, so it may
    // schedule()/scheduleBatch()/cancel() freely; anything it adds
    // at this tick forms a later run, exactly as the per-event path
    // would order it.
    const BatchKernelEntry &k = kernels_[kernel - 1];
    if (!profiling_) {
        k.fn(k.ctx, when, batchScratch_.data(), batchScratch_.size());
        return n;
    }
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    k.fn(k.ctx, when, batchScratch_.data(), batchScratch_.size());
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0)
            .count();
    ProfileBucket &bucket = profileBucketFor(k.tag);
    bucket.count += n;
    bucket.wallNs += ns;
    return n;
}

EventQueue::ProfileBucket &
EventQueue::profileBucketFor(const char *tag)
{
    // Fast path: this exact pointer has been seen before.
    auto it = profileIds_.find(tag);
    if (it != profileIds_.end())
        return profileTags_[it->second].bucket;
    // Slow path (once per distinct pointer): intern by content so
    // identical literals from different translation units — or a
    // caller's transient buffer matching an existing tag — share one
    // bucket, and the text is copied into storage the queue owns.
    const std::string_view name =
        tag ? std::string_view(tag) : std::string_view("(untagged)");
    std::uint32_t id = 0;
    for (; id < profileTags_.size(); ++id) {
        if (profileTags_[id].name == name)
            break;
    }
    if (id == profileTags_.size())
        profileTags_.push_back(InternedTag{std::string(name), {}});
    profileIds_.try_emplace(tag, id);
    return profileTags_[id].bucket;
}

void
EventQueue::maybeCompact()
{
    if (tombstones_ >= compactMinTombstones &&
        tombstones_ * 2 > heap_.size()) {
        compact();
    }
}

void
EventQueue::compact()
{
    std::size_t out = 0;
    for (const HeapRecord &rec : heap_) {
        if (slots_[rec.slot].tombstone)
            freeSlot(rec.slot);
        else
            heap_[out++] = rec;
    }
    heap_.resize(out);
    tombstones_ = 0;
    // Floyd heapify: (when, seq) is a strict total order, so the
    // rebuilt heap pops in exactly the original schedule order.
    if (out > 1) {
        for (std::size_t i = (out - 2) / arity + 1; i-- > 0;)
            siftDown(i);
    }
    ++stats_.compactions;
}

bool
EventQueue::runOne()
{
    skipCancelled();
    if (heap_.empty())
        return false;
    if (heap_[0].kernel != 0)
        executeBatchRun();
    else
        executeRoot();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t ran = 0;
    for (;;) {
        // Clear tombstones first: a cancelled record with
        // when <= limit must not let an event beyond the limit run
        // (nor drag now() past it).
        skipCancelled();
        if (heap_.empty() || heap_[0].when > limit)
            break;
        if (heap_[0].kernel != 0) {
            ran += executeBatchRun();
        } else {
            executeRoot();
            ++ran;
        }
    }
    return ran;
}

void
EventQueue::flushTickObserver()
{
    if (burst_ > 0) {
        completeTick();
        // Forget the in-progress burst so a flush never
        // double-reports; the intended call site is end-of-run.
        burst_ = 0;
    }
}

void
EventQueue::regStats(StatRegistry &registry,
                     const std::string &prefix) const
{
    const EventQueueStats *s = &stats_;
    registry.add(prefix + ".scheduled", [s] {
        return static_cast<double>(s->scheduled);
    });
    registry.add(prefix + ".cancelled", [s] {
        return static_cast<double>(s->cancelled);
    });
    registry.add(prefix + ".executed", [s] {
        return static_cast<double>(s->executed);
    });
    registry.add(prefix + ".peak_pending", [s] {
        return static_cast<double>(s->peakPending);
    });
    registry.add(prefix + ".compactions", [s] {
        return static_cast<double>(s->compactions);
    });
    registry.add(prefix + ".max_same_tick_burst", [s] {
        return static_cast<double>(s->maxSameTickBurst);
    });
    registry.add(prefix + ".batch_runs", [s] {
        return static_cast<double>(s->batchRuns);
    });
    registry.add(prefix + ".batch_events", [s] {
        return static_cast<double>(s->batchEvents);
    });
    // Bucket ge_N counts completed ticks whose burst size lies in
    // [N, 2N); the last bucket is unbounded above.
    for (std::size_t b = 0; b < EventQueueStats::burstBuckets; ++b) {
        registry.add(prefix + ".burst_hist.ge_" +
                         std::to_string(std::uint64_t(1) << b),
                     [s, b] {
                         return static_cast<double>(s->burstHist[b]);
                     });
    }
}

std::vector<EventProfileEntry>
EventQueue::profile() const
{
    std::vector<EventProfileEntry> rows;
    rows.reserve(profileTags_.size());
    for (const InternedTag &t : profileTags_)
        rows.push_back({t.name, t.bucket.count, t.bucket.wallNs});
    std::sort(rows.begin(), rows.end(),
              [](const EventProfileEntry &a,
                 const EventProfileEntry &b) {
                  if (a.wallNs != b.wallNs)
                      return a.wallNs > b.wallNs;
                  return a.tag < b.tag;
              });
    return rows;
}

void
EventQueue::dumpProfile(std::ostream &os) const
{
    const std::vector<EventProfileEntry> rows = profile();
    double total_ns = 0.0;
    for (const EventProfileEntry &r : rows)
        total_ns += r.wallNs;
    char line[160];
    std::snprintf(line, sizeof(line), "%-28s %12s %12s %10s %6s\n",
                  "event tag", "count", "total ms", "avg ns", "%");
    os << line;
    for (const EventProfileEntry &r : rows) {
        std::snprintf(
            line, sizeof(line), "%-28.*s %12llu %12.3f %10.1f %6.2f\n",
            static_cast<int>(r.tag.size()), r.tag.data(),
            static_cast<unsigned long long>(r.count), r.wallNs * 1e-6,
            r.count ? r.wallNs / static_cast<double>(r.count) : 0.0,
            total_ns > 0.0 ? r.wallNs / total_ns * 100.0 : 0.0);
        os << line;
    }
}

} // namespace macrosim
