/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in integer ticks of one picosecond. All
 * latency parameters in the macrochip model (waveguide propagation at
 * 0.1 ns/cm, 5 GHz clock cycles of 0.2 ns, 0.4 ns arbitration slots,
 * 20 Gb/s serialization) are exact multiples of 1 ps, so tick
 * arithmetic is exact and runs are bit-reproducible.
 */

#ifndef MACROSIM_SIM_TICKS_HH
#define MACROSIM_SIM_TICKS_HH

#include <cstdint>

namespace macrosim
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A tick value larger than any reachable simulation time. */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per common time units. */
constexpr Tick tickPs = 1;
constexpr Tick tickNs = 1000;
constexpr Tick tickUs = 1000 * tickNs;
constexpr Tick tickMs = 1000 * tickUs;

/** Convert ticks to (floating-point) nanoseconds for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickNs);
}

/** Convert a (non-negative) nanosecond count to ticks, rounding. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickNs) + 0.5);
}

/**
 * An integer count of clock cycles. Distinct from Tick so that cycle
 * and tick quantities cannot be mixed accidentally.
 */
class Cycles
{
  public:
    Cycles() = default;

    constexpr explicit Cycles(std::uint64_t c) : count_(c) {}

    constexpr std::uint64_t count() const { return count_; }

    constexpr Cycles
    operator+(Cycles other) const
    {
        return Cycles(count_ + other.count_);
    }

    constexpr bool operator==(const Cycles &) const = default;
    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    std::uint64_t count_ = 0;
};

/**
 * A clock domain: converts between cycles and ticks.
 *
 * The macrochip runs mesochronously at a single frequency (5 GHz for
 * the 2015-era Niagara-derived cores, section 3 of the paper), but the
 * clock period is a parameter so experiments can sweep it.
 */
class ClockDomain
{
  public:
    /** @param period_ticks Length of one cycle in ticks (ps). */
    constexpr explicit ClockDomain(Tick period_ticks)
        : period_(period_ticks)
    {}

    constexpr Tick period() const { return period_; }

    constexpr double
    frequencyGhz() const
    {
        return 1000.0 / static_cast<double>(period_);
    }

    constexpr Tick
    cyclesToTicks(Cycles c) const
    {
        return c.count() * period_;
    }

    /** Number of whole cycles fully elapsed at time @p t. */
    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        return Cycles(t / period_);
    }

    /** The first cycle boundary at or after @p t. */
    constexpr Tick
    nextEdgeAtOrAfter(Tick t) const
    {
        const Tick rem = t % period_;
        return rem == 0 ? t : t + (period_ - rem);
    }

  private:
    Tick period_;
};

/** The macrochip system clock: 5 GHz, i.e. a 200 ps cycle. */
constexpr ClockDomain systemClock{200};

} // namespace macrosim

#endif // MACROSIM_SIM_TICKS_HH
