#include "sim/pdes_scheduler.hh"

#include <algorithm>
#include <cstring>
#include <future>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/thread_pool.hh"

namespace macrosim
{

namespace
{

/** Drain-side callback capture: must fit InlineCallback's buffer. */
struct CrossApply
{
    void (*apply)(void *, const void *);
    void *target;
    unsigned char payload[pdesMaxPayload];
};

static_assert(sizeof(CrossApply) <= EventQueue::Callback::inlineCapacity,
              "cross-LP apply capture must stay inline");

} // namespace

void
schedulePdesEvent(EventQueue &q, const PdesEvent &ev, const char *tag)
{
    CrossApply cap;
    cap.apply = ev.apply;
    cap.target = ev.target;
    std::memcpy(cap.payload, ev.payload, pdesMaxPayload);
    q.scheduleKeyed(ev.when, ev.key,
                    [cap] { cap.apply(cap.target, cap.payload); }, tag);
}

PdesScheduler::PdesScheduler(std::uint32_t lp_count,
                             std::size_t threads, std::uint64_t seed)
    : threads_(threads == 0 ? lp_count : threads)
{
    if (lp_count == 0)
        panic("PdesScheduler: lp_count must be >= 1");
    if (threads_ == 0)
        threads_ = 1;
    lps_.reserve(lp_count);
    for (std::uint32_t i = 0; i < lp_count; ++i) {
        lps_.push_back(std::make_unique<LogicalProcess>(
            *this, i, mix64(hashCombine(seed, i))));
    }
    channels_.resize(static_cast<std::size_t>(lp_count) * lp_count);
    for (std::uint32_t s = 0; s < lp_count; ++s) {
        for (std::uint32_t d = 0; d < lp_count; ++d) {
            if (s != d) {
                channels_[static_cast<std::size_t>(s) * lp_count + d] =
                    std::make_unique<SpscChannel<PdesEvent>>(4096);
            }
        }
    }
    targets_.assign(lp_count, nullptr);
}

void
PdesScheduler::setLookahead(Tick l)
{
    if (l == 0)
        panic("PdesScheduler::setLookahead: lookahead must be > 0 "
              "(liveness of the horizon protocol depends on it)");
    lookahead_ = l;
}

void
PdesScheduler::setSitePartition(std::vector<std::uint32_t> lp_of_site)
{
    for (std::uint32_t g : lp_of_site) {
        if (g >= lpCount())
            panic("PdesScheduler::setSitePartition: group ", g,
                  " out of range (", lpCount(), " LPs)");
    }
    siteLp_ = std::move(lp_of_site);
}

std::vector<std::uint32_t>
PdesScheduler::blockPartition(std::uint32_t sites, std::uint32_t lps)
{
    if (lps == 0)
        lps = 1;
    if (lps > sites && sites > 0)
        lps = sites;
    std::vector<std::uint32_t> map(sites);
    const std::uint32_t base = sites / lps;
    const std::uint32_t rem = sites % lps;
    std::uint32_t site = 0;
    for (std::uint32_t g = 0; g < lps; ++g) {
        const std::uint32_t count = base + (g < rem ? 1u : 0u);
        for (std::uint32_t k = 0; k < count; ++k)
            map[site++] = g;
    }
    return map;
}

void
PdesScheduler::setTarget(std::uint32_t lp, void *target)
{
    targets_.at(lp) = target;
}

void
PdesScheduler::post(std::uint32_t src_lp, std::uint32_t dst_lp,
                    const PdesEvent &ev)
{
    if (src_lp == dst_lp || dst_lp >= lpCount())
        panic("PdesScheduler::post: bad LP pair ", src_lp, " -> ",
              dst_lp);
    if (!ev.apply)
        panic("PdesScheduler::post: event without apply function");
    const Tick src_now = lps_[src_lp]->sim().now();
    if (ev.when < src_now + lookahead_) {
        panic("PdesScheduler::post: event at tick ", ev.when,
              " violates the lookahead promise (sender now ", src_now,
              " + lookahead ", lookahead_, "); the topology's "
              "pdesLookahead() is not a true lower bound");
    }
    // Count the message in flight *before* it becomes visible, so the
    // termination check can never observe the channel-resident message
    // as neither in flight nor scheduled.
    inFlight_.fetch_add(1, std::memory_order_seq_cst);
    channel(src_lp, dst_lp).push(ev);
    crossPosts_.fetch_add(1, std::memory_order_relaxed);
}

bool
PdesScheduler::tryFinish()
{
    // Snapshot every LP's versioned idle word, require nothing in
    // flight, then require the snapshot unchanged. LPs bump their
    // version before releasing in-flight counts (LogicalProcess::
    // step), so "in flight == 0" implies the words already reflect
    // whichever step drained the last message.
    std::vector<std::uint64_t> words(lps_.size());
    for (std::size_t i = 0; i < lps_.size(); ++i) {
        words[i] = lps_[i]->stateWord();
        if ((words[i] & 1) == 0)
            return false;
    }
    if (inFlight_.load(std::memory_order_seq_cst) != 0)
        return false;
    for (std::size_t i = 0; i < lps_.size(); ++i) {
        if (lps_[i]->stateWord() != words[i])
            return false;
    }
    done_.store(true, std::memory_order_seq_cst);
    return true;
}

void
PdesScheduler::workerLoop(std::size_t worker, Tick limit)
{
    const std::size_t stride = activeWorkers_;
    const std::uint32_t n = lpCount();
    while (!done_.load(std::memory_order_seq_cst)) {
        bool progress = false;
        for (std::uint32_t i = static_cast<std::uint32_t>(worker);
             i < n; i += stride) {
            progress = lps_[i]->step(limit) || progress;
        }
        if (!progress) {
            if (tryFinish())
                break;
            std::this_thread::yield();
        }
    }
}

std::uint64_t
PdesScheduler::run(Tick limit)
{
    if (lpCount() > 1 && lookahead_ == 0)
        panic("PdesScheduler::run: setLookahead() first (multi-LP "
              "runs need a cross-LP latency lower bound)");
    std::uint64_t before = 0;
    for (const auto &lp : lps_)
        before += lp->executed();
    done_.store(false, std::memory_order_seq_cst);
    activeWorkers_ =
        std::min<std::size_t>(std::max<std::size_t>(threads_, 1),
                              lps_.size());
    if (activeWorkers_ <= 1) {
        // One worker: run the protocol inline. Same code path and
        // same results as the threaded run — determinism tests pin
        // thread counts {1, N} against each other.
        workerLoop(0, limit);
    } else {
        ThreadPool pool(activeWorkers_);
        std::vector<std::future<void>> joins;
        joins.reserve(activeWorkers_);
        for (std::size_t w = 0; w < activeWorkers_; ++w) {
            joins.push_back(pool.submit(
                [this, w, limit] { workerLoop(w, limit); }));
        }
        for (auto &j : joins)
            j.get();
    }
    std::uint64_t after = 0;
    for (const auto &lp : lps_)
        after += lp->executed();
    return after - before;
}

std::uint64_t
PdesScheduler::spills() const
{
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        if (ch)
            total += ch->spills();
    }
    return total;
}

} // namespace macrosim
