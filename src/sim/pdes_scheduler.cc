#include "sim/pdes_scheduler.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/telemetry/pdes_trace.hh"
#include "sim/thread_pool.hh"

namespace macrosim
{

namespace
{

/** Drain-side callback capture: must fit InlineCallback's buffer. */
struct CrossApply
{
    void (*apply)(void *, const void *);
    void *target;
    unsigned char payload[pdesMaxPayload];
};

static_assert(sizeof(CrossApply) <= EventQueue::Callback::inlineCapacity,
              "cross-LP apply capture must stay inline");

} // namespace

void
schedulePdesEvent(EventQueue &q, const PdesEvent &ev, const char *tag)
{
    CrossApply cap;
    cap.apply = ev.apply;
    cap.target = ev.target;
    std::memcpy(cap.payload, ev.payload, pdesMaxPayload);
    q.scheduleKeyed(ev.when, ev.key,
                    [cap] { cap.apply(cap.target, cap.payload); }, tag);
}

PdesScheduler::PdesScheduler(std::uint32_t lp_count,
                             std::size_t threads, std::uint64_t seed)
    : threads_(threads == 0 ? lp_count : threads)
{
    if (lp_count == 0)
        panic("PdesScheduler: lp_count must be >= 1");
    if (threads_ == 0)
        threads_ = 1;
    lps_.reserve(lp_count);
    for (std::uint32_t i = 0; i < lp_count; ++i) {
        lps_.push_back(std::make_unique<LogicalProcess>(
            *this, i, mix64(hashCombine(seed, i))));
    }
    channels_.resize(static_cast<std::size_t>(lp_count) * lp_count);
    for (std::uint32_t s = 0; s < lp_count; ++s) {
        for (std::uint32_t d = 0; d < lp_count; ++d) {
            if (s != d) {
                channels_[static_cast<std::size_t>(s) * lp_count + d] =
                    std::make_unique<SpscChannel<PdesEvent>>(4096);
            }
        }
    }
    targets_.assign(lp_count, nullptr);
    registerStats();
}

void
PdesScheduler::registerStats()
{
    const std::uint32_t n = lpCount();
    StatScope pdes(telemetry_, "pdes");
    pdes.add("lp_count", [n] { return static_cast<double>(n); });
    pdes.add("lookahead", [this] {
        return static_cast<double>(lookahead_);
    });
    pdes.add("cross_posts", [this] {
        return static_cast<double>(crossPosts());
    });
    pdes.add("spills", [this] {
        return static_cast<double>(spills());
    });
    const auto u64 = [](const std::uint64_t &v) {
        return [p = &v] { return static_cast<double>(*p); };
    };
    for (std::uint32_t i = 0; i < n; ++i) {
        const LogicalProcess *lp = lps_[i].get();
        const LpMetrics &m = lp->metrics();
        StatScope s = pdes.scope("lp" + std::to_string(i));
        s.add("executed",
              [lp] { return static_cast<double>(lp->executed()); });
        s.add("rounds", u64(m.rounds));
        s.add("progress_rounds", u64(m.progressRounds));
        s.add("blocked_rounds", u64(m.blockedRounds));
        s.add("drained", u64(m.drained));
        s.add("max_round_events", u64(m.maxRoundExecuted));
        s.add("eot_event_advances", u64(m.eotEventAdvances));
        s.add("eot_ratchet_advances", u64(m.eotRatchetAdvances));
        s.add("eot_advance_ticks", u64(m.eotAdvanceTicks));
        s.add("granted_ticks", u64(m.grantedTicks));
        s.add("consumed_ticks", u64(m.consumedTicks));
        s.add("drain_wall_ns", [&m] { return m.drainWallNs; });
        s.add("exec_wall_ns", [&m] { return m.execWallNs; });
        s.add("blocked_wall_ns", [&m] { return m.blockedWallNs; });
    }
    for (std::uint32_t src = 0; src < n; ++src) {
        for (std::uint32_t dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            const SpscChannel<PdesEvent> *ch =
                channels_[static_cast<std::size_t>(src) * n + dst]
                    .get();
            StatScope s = pdes.scope("ch" + std::to_string(src) + "_"
                                     + std::to_string(dst));
            s.add("posts",
                  [ch] { return static_cast<double>(ch->posts()); });
            s.add("spills",
                  [ch] { return static_cast<double>(ch->spills()); });
            s.add("peak_depth", [ch] {
                return static_cast<double>(ch->peakDepth());
            });
        }
    }
}

void
PdesScheduler::setLookahead(Tick l)
{
    if (l == 0)
        panic("PdesScheduler::setLookahead: lookahead must be > 0 "
              "(liveness of the horizon protocol depends on it)");
    lookahead_ = l;
}

void
PdesScheduler::setSitePartition(std::vector<std::uint32_t> lp_of_site)
{
    for (std::uint32_t g : lp_of_site) {
        if (g >= lpCount())
            panic("PdesScheduler::setSitePartition: group ", g,
                  " out of range (", lpCount(), " LPs)");
    }
    siteLp_ = std::move(lp_of_site);
}

std::vector<std::uint32_t>
PdesScheduler::blockPartition(std::uint32_t sites, std::uint32_t lps)
{
    if (lps == 0)
        lps = 1;
    if (lps > sites && sites > 0)
        lps = sites;
    std::vector<std::uint32_t> map(sites);
    const std::uint32_t base = sites / lps;
    const std::uint32_t rem = sites % lps;
    std::uint32_t site = 0;
    for (std::uint32_t g = 0; g < lps; ++g) {
        const std::uint32_t count = base + (g < rem ? 1u : 0u);
        for (std::uint32_t k = 0; k < count; ++k)
            map[site++] = g;
    }
    return map;
}

void
PdesScheduler::setTarget(std::uint32_t lp, void *target)
{
    targets_.at(lp) = target;
}

void
PdesScheduler::post(std::uint32_t src_lp, std::uint32_t dst_lp,
                    const PdesEvent &ev)
{
    if (src_lp == dst_lp || dst_lp >= lpCount())
        panic("PdesScheduler::post: bad LP pair ", src_lp, " -> ",
              dst_lp);
    if (!ev.apply)
        panic("PdesScheduler::post: event without apply function");
    const Tick src_now = lps_[src_lp]->sim().now();
    if (ev.when < src_now + lookahead_) {
        panic("PdesScheduler::post: event at tick ", ev.when,
              " violates the lookahead promise (sender now ", src_now,
              " + lookahead ", lookahead_, "); the topology's "
              "pdesLookahead() is not a true lower bound");
    }
    // The tracer records into the *source* LP's shard, so this call
    // shares post()'s single-producer contract.
    if (tracer_ != nullptr)
        tracer_->recordPost(src_lp, dst_lp, src_now, ev);
    // Count the message in flight *before* it becomes visible, so the
    // termination check can never observe the channel-resident message
    // as neither in flight nor scheduled.
    inFlight_.fetch_add(1, std::memory_order_seq_cst);
    channel(src_lp, dst_lp).push(ev);
    crossPosts_.fetch_add(1, std::memory_order_relaxed);
}

bool
PdesScheduler::tryFinish()
{
    // Snapshot every LP's versioned idle word, require nothing in
    // flight, then require the snapshot unchanged. LPs bump their
    // version before releasing in-flight counts (LogicalProcess::
    // step), so "in flight == 0" implies the words already reflect
    // whichever step drained the last message.
    std::vector<std::uint64_t> words(lps_.size());
    for (std::size_t i = 0; i < lps_.size(); ++i) {
        words[i] = lps_[i]->stateWord();
        if ((words[i] & 1) == 0)
            return false;
    }
    if (inFlight_.load(std::memory_order_seq_cst) != 0)
        return false;
    for (std::size_t i = 0; i < lps_.size(); ++i) {
        if (lps_[i]->stateWord() != words[i])
            return false;
    }
    done_.store(true, std::memory_order_seq_cst);
    return true;
}

void
PdesScheduler::workerLoop(std::size_t worker, Tick limit)
{
    const std::size_t stride = activeWorkers_;
    const std::uint32_t n = lpCount();
    while (!done_.load(std::memory_order_seq_cst)) {
        bool progress = false;
        for (std::uint32_t i = static_cast<std::uint32_t>(worker);
             i < n; i += stride) {
            progress = lps_[i]->step(limit) || progress;
        }
        if (!progress) {
            if (tryFinish())
                break;
            std::this_thread::yield();
        }
    }
}

std::uint64_t
PdesScheduler::run(Tick limit)
{
    if (lpCount() > 1 && lookahead_ == 0)
        panic("PdesScheduler::run: setLookahead() first (multi-LP "
              "runs need a cross-LP latency lower bound)");
    std::uint64_t before = 0;
    for (const auto &lp : lps_)
        before += lp->executed();
    done_.store(false, std::memory_order_seq_cst);
    activeWorkers_ =
        std::min<std::size_t>(std::max<std::size_t>(threads_, 1),
                              lps_.size());
    if (activeWorkers_ <= 1) {
        // One worker: run the protocol inline. Same code path and
        // same results as the threaded run — determinism tests pin
        // thread counts {1, N} against each other.
        workerLoop(0, limit);
    } else {
        ThreadPool pool(activeWorkers_);
        std::vector<std::future<void>> joins;
        joins.reserve(activeWorkers_);
        for (std::size_t w = 0; w < activeWorkers_; ++w) {
            joins.push_back(pool.submit(
                [this, w, limit] { workerLoop(w, limit); }));
        }
        for (auto &j : joins)
            j.get();
    }
    std::uint64_t after = 0;
    for (const auto &lp : lps_)
        after += lp->executed();
    return after - before;
}

std::uint64_t
PdesScheduler::spills() const
{
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        if (ch)
            total += ch->spills();
    }
    return total;
}

void
PdesScheduler::setTracer(PdesTracer *tracer)
{
    if (tracer != nullptr && tracer_ != nullptr && tracer != tracer_)
        panic("PdesScheduler::setTracer: a tracer is already attached");
    tracer_ = tracer;
}

PdesLoadReport
PdesScheduler::loadReport() const
{
    PdesLoadReport r;
    const std::uint32_t n = lpCount();
    r.lookahead = lookahead_;
    r.timed = metricsTiming_;
    r.crossPosts = crossPosts();
    r.spills = spills();
    std::vector<std::uint64_t> sitesPer(n, 0);
    for (std::uint32_t g : siteLp_)
        ++sitesPer[g];
    r.lps.reserve(n);
    r.minExecuted = maxTick;
    for (std::uint32_t i = 0; i < n; ++i) {
        const LogicalProcess &lp = *lps_[i];
        const LpMetrics &m = lp.metrics();
        PdesLpLoad row;
        row.lp = i;
        row.sites = sitesPer[i];
        row.executed = lp.executed();
        row.rounds = m.rounds;
        row.progressRounds = m.progressRounds;
        row.blockedRounds = m.blockedRounds;
        row.drained = m.drained;
        row.maxRoundExecuted = m.maxRoundExecuted;
        row.eotEventAdvances = m.eotEventAdvances;
        row.eotRatchetAdvances = m.eotRatchetAdvances;
        row.grantedTicks = m.grantedTicks;
        row.consumedTicks = m.consumedTicks;
        row.drainWallNs = m.drainWallNs;
        row.execWallNs = m.execWallNs;
        row.blockedWallNs = m.blockedWallNs;
        for (std::uint32_t d = 0; d < n; ++d) {
            if (d == i)
                continue;
            const SpscChannel<PdesEvent> &ch =
                *channels_[static_cast<std::size_t>(i) * n + d];
            row.posts += ch.posts();
            row.spills += ch.spills();
            row.peakDepth = std::max<std::uint64_t>(row.peakDepth,
                                                    ch.peakDepth());
        }
        r.totalExecuted += row.executed;
        r.minExecuted = std::min(r.minExecuted, row.executed);
        r.maxExecuted = std::max(r.maxExecuted, row.executed);
        r.drainWallNs += row.drainWallNs;
        r.execWallNs += row.execWallNs;
        r.blockedWallNs += row.blockedWallNs;
        r.lps.push_back(row);
    }
    r.meanExecuted =
        static_cast<double>(r.totalExecuted) / std::max(1u, n);
    r.eventImbalance = r.meanExecuted > 0.0
        ? static_cast<double>(r.maxExecuted) / r.meanExecuted
        : 0.0;
    // Critical LP: most busy wall time when timed (ties: most events,
    // then lowest id); most events otherwise.
    for (std::uint32_t i = 1; i < n; ++i) {
        const PdesLpLoad &a = r.lps[i];
        const PdesLpLoad &b = r.lps[r.criticalLp];
        const bool busier = r.timed
            ? (a.busyWallNs() > b.busyWallNs()
               || (a.busyWallNs() == b.busyWallNs()
                   && a.executed > b.executed))
            : a.executed > b.executed;
        if (busier)
            r.criticalLp = i;
    }
    const double total =
        r.drainWallNs + r.execWallNs + r.blockedWallNs;
    r.blockedFraction = total > 0.0 ? r.blockedWallNs / total : 0.0;
    return r;
}

void
PdesLoadReport::print(std::ostream &os) const
{
    using Ull = unsigned long long;
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "[pdes] %u LPs  lookahead=%llu ticks  events=%llu  "
        "cross_posts=%llu (spills=%llu)  imbalance=%.3f  "
        "critical=lp%u  blocked=%.1f%%%s\n",
        static_cast<unsigned>(lps.size()), static_cast<Ull>(lookahead),
        static_cast<Ull>(totalExecuted), static_cast<Ull>(crossPosts),
        static_cast<Ull>(spills), eventImbalance, criticalLp,
        100.0 * blockedFraction,
        timed ? "" : "  (untimed: wall columns are zero)");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  %3s %6s %10s %9s %8s %7s %7s %18s %17s %10s %10s"
                  " %11s\n",
                  "lp", "sites", "events", "drained", "posts",
                  "spills", "peak_q", "rounds(prog/blk)",
                  "eot(evt/ratchet)", "drain_ms", "exec_ms",
                  "blocked_ms");
    os << buf;
    for (const PdesLpLoad &row : lps) {
        char rounds[48];
        std::snprintf(rounds, sizeof(rounds), "%llu(%llu/%llu)",
                      static_cast<Ull>(row.rounds),
                      static_cast<Ull>(row.progressRounds),
                      static_cast<Ull>(row.blockedRounds));
        char eot[40];
        std::snprintf(eot, sizeof(eot), "%llu/%llu",
                      static_cast<Ull>(row.eotEventAdvances),
                      static_cast<Ull>(row.eotRatchetAdvances));
        std::snprintf(
            buf, sizeof(buf),
            "  %3u %6llu %10llu %9llu %8llu %7llu %7llu %18s %17s "
            "%10.3f %10.3f %11.3f\n",
            row.lp, static_cast<Ull>(row.sites),
            static_cast<Ull>(row.executed),
            static_cast<Ull>(row.drained), static_cast<Ull>(row.posts),
            static_cast<Ull>(row.spills),
            static_cast<Ull>(row.peakDepth), rounds, eot,
            row.drainWallNs / 1e6, row.execWallNs / 1e6,
            row.blockedWallNs / 1e6);
        os << buf;
    }
}

} // namespace macrosim
