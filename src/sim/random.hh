/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256++ implementation so that results do not
 * depend on the standard library's unspecified distribution algorithms.
 * Every stochastic element of a simulation draws from one Rng seeded at
 * construction, making runs bit-reproducible across platforms.
 */

#ifndef MACROSIM_SIM_RANDOM_HH
#define MACROSIM_SIM_RANDOM_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace macrosim
{

/**
 * The splitmix64 finalizer (Vigna): a stateless 64-bit mixing
 * function with full avalanche. It is both the Rng seeding step and
 * the building block of deriveSeed() below.
 */
std::uint64_t mix64(std::uint64_t x);

/** Absorb a 64-bit value into a running hash. */
std::uint64_t hashCombine(std::uint64_t h, std::uint64_t v);

/** Absorb a string (e.g. a workload or network name) into a hash. */
std::uint64_t hashCombine(std::uint64_t h, std::string_view s);

/**
 * Derive an independent per-job RNG seed from a root seed and the
 * job's identity labels (typically workload and network name).
 *
 * The derivation is a pure function of its arguments, so a sweep
 * that fans jobs across threads gets bit-identical per-job random
 * streams regardless of thread count, completion order, or which
 * subset of the matrix is run. Distinct label tuples land in
 * distinct splitmix64 streams, so per-job sequences are
 * statistically independent.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::string_view workload,
                         std::string_view network);

/** xoshiro256++ generator (Blackman & Vigna), seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (rejection). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Exponentially distributed value with the given mean. Used for
     * Poisson (memoryless) packet inter-arrival times in the open-loop
     * injector.
     */
    double exponential(double mean);

    /** Geometric number of trials until success, probability p > 0. */
    std::uint64_t geometric(double p);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_RANDOM_HH
