/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256++ implementation so that results do not
 * depend on the standard library's unspecified distribution algorithms.
 * Every stochastic element of a simulation draws from one Rng seeded at
 * construction, making runs bit-reproducible across platforms.
 */

#ifndef MACROSIM_SIM_RANDOM_HH
#define MACROSIM_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace macrosim
{

/** xoshiro256++ generator (Blackman & Vigna), seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (rejection). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Exponentially distributed value with the given mean. Used for
     * Poisson (memoryless) packet inter-arrival times in the open-loop
     * injector.
     */
    double exponential(double mean);

    /** Geometric number of trials until success, probability p > 0. */
    std::uint64_t geometric(double p);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_RANDOM_HH
