/**
 * @file
 * Conservative parallel-in-model discrete-event scheduler.
 *
 * One simulation is partitioned into N logical processes (sim/lp.hh),
 * each owning a full Simulator for its site group. LPs synchronize
 * with a barrier-free, null-message-free variant of the classic
 * Chandy-Misra-Bryant horizon protocol:
 *
 *   - every LP publishes an earliest output time (EOT): a promise
 *     that no message it ever sends will carry an earlier timestamp;
 *   - an LP's earliest input time (EIT) is the minimum EOT over the
 *     other LPs, and it may safely execute local events strictly
 *     below its EIT;
 *   - after draining its inboxes and executing, it republishes
 *       EOT = min(next local event tick, EIT) + lookahead,
 *     where lookahead is a physical lower bound on cross-LP message
 *     latency — for the macrochip, the minimum inter-site optical
 *     propagation delay (plus per-topology interface overheads),
 *     thousands of ticks at ps resolution.
 *
 * EOTs are monotone, so EITs only grow; lookahead > 0 gives liveness
 * (two mutually-blocked LPs ratchet each other forward by one
 * lookahead per round). Safety: a message not yet visible when an LP
 * drains was sent after the LP read the sender's EOT, and therefore
 * carries a timestamp >= that EOT >= the EIT the LP executes below.
 *
 * Cross-LP messages travel through bounded SPSC channels (spsc.hh)
 * as PdesEvents — (timestamp, key, apply-function, opaque payload) —
 * and are folded into the receiver's queue with
 * EventQueue::scheduleKeyed, so same-tick ordering comes from the
 * message's causal key, not from real-time arrival order: results
 * are bit-identical for every LP and worker-thread count.
 *
 * Termination uses an in-flight message counter plus per-LP versioned
 * idle words: the check reads every LP's word, verifies all idle and
 * nothing in flight, then re-reads the words; an LP republishes its
 * word *before* releasing its drained messages' in-flight counts, so
 * a check that observes in-flight == 0 also observes the version bump
 * of whichever step drained the last message.
 */

#ifndef MACROSIM_SIM_PDES_SCHEDULER_HH
#define MACROSIM_SIM_PDES_SCHEDULER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/lp.hh"
#include "sim/spsc.hh"
#include "sim/telemetry/registry.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class PdesTracer;

/**
 * One LP's row of the end-of-run load-balance report: a snapshot of
 * the LP's LpMetrics plus its outgoing-channel totals. The
 * tick-domain fields (sites, executed, drained, posts) are
 * thread-count invariant; everything wall-clock or round-counted is
 * a real-time diagnostic (see DESIGN.md §12).
 */
struct PdesLpLoad
{
    std::uint32_t lp = 0;
    /** Sites mapped to this LP (0 when no partition installed). */
    std::uint64_t sites = 0;
    std::uint64_t executed = 0;
    std::uint64_t rounds = 0;
    std::uint64_t progressRounds = 0;
    std::uint64_t blockedRounds = 0;
    std::uint64_t drained = 0;
    std::uint64_t maxRoundExecuted = 0;
    std::uint64_t eotEventAdvances = 0;
    std::uint64_t eotRatchetAdvances = 0;
    std::uint64_t grantedTicks = 0;
    std::uint64_t consumedTicks = 0;
    /** Outgoing cross-LP posts / spills / peak channel depth. */
    std::uint64_t posts = 0;
    std::uint64_t spills = 0;
    std::uint64_t peakDepth = 0;
    double drainWallNs = 0.0;
    double execWallNs = 0.0;
    double blockedWallNs = 0.0;

    /** drain + exec wall time (the LP's useful work), ns. */
    double busyWallNs() const { return drainWallNs + execWallNs; }
};

/**
 * End-of-run load-balance summary across all LPs; built by
 * PdesScheduler::loadReport() after run() returns (single-writer
 * metrics are only safe to read once the workers joined).
 */
struct PdesLoadReport
{
    std::vector<PdesLpLoad> lps;
    Tick lookahead = 0;
    /** Whether wall-clock splits were collected (metricsTiming()). */
    bool timed = false;
    std::uint64_t totalExecuted = 0;
    std::uint64_t minExecuted = 0;
    std::uint64_t maxExecuted = 0;
    double meanExecuted = 0.0;
    /** maxExecuted / meanExecuted; 1.0 = perfectly balanced. */
    double eventImbalance = 0.0;
    /** LP with the most busy wall time (ties: most events, then
     *  lowest id). With timing off, falls back to most events. */
    std::uint32_t criticalLp = 0;
    std::uint64_t crossPosts = 0;
    std::uint64_t spills = 0;
    double drainWallNs = 0.0;
    double execWallNs = 0.0;
    double blockedWallNs = 0.0;
    /** blocked / (busy + blocked) over all LPs; 0 when not timed. */
    double blockedFraction = 0.0;

    /** Aligned human-readable table (one header + one row per LP). */
    void print(std::ostream &os) const;
};

/** Payload bytes a cross-LP event can carry inline (a Message plus a
 *  little routing context must fit; checked by static_asserts at the
 *  senders). Sized so the drain-side callback capture — apply, target
 *  and payload — still fits InlineCallback's buffer. */
constexpr std::size_t pdesMaxPayload = 88;

/**
 * A timestamped cross-LP event: at tick `when`, call
 * `apply(target, payload)` on the destination LP. `key` orders
 * same-tick events deterministically (EventQueue::scheduleKeyed);
 * derive it from the payload's causal identity (e.g. the message id),
 * never from arrival order.
 */
struct PdesEvent
{
    Tick when = 0;
    std::uint64_t key = 0;
    void (*apply)(void *target, const void *payload) = nullptr;
    void *target = nullptr;
    unsigned char payload[pdesMaxPayload] = {};
};

/**
 * Schedule @p ev into @p q as a keyed event. Shared by the drain side
 * and by senders whose destination happens to live on the local LP —
 * both paths must order identically for LP-count invariance.
 */
void schedulePdesEvent(EventQueue &q, const PdesEvent &ev,
                       const char *tag);

class PdesScheduler
{
  public:
    /**
     * @param lp_count Number of logical processes (>= 1).
     * @param threads Worker threads; clamped to [1, lp_count].
     *        0 means one worker per LP.
     * @param seed Root seed; each LP's Simulator RNG derives from it.
     */
    explicit PdesScheduler(std::uint32_t lp_count,
                           std::size_t threads = 0,
                           std::uint64_t seed = 1);

    PdesScheduler(const PdesScheduler &) = delete;
    PdesScheduler &operator=(const PdesScheduler &) = delete;

    std::uint32_t lpCount() const
    {
        return static_cast<std::uint32_t>(lps_.size());
    }

    std::size_t threadCount() const { return threads_; }

    LogicalProcess &lp(std::uint32_t i) { return *lps_[i]; }
    Simulator &simOf(std::uint32_t i) { return lps_[i]->sim(); }

    /**
     * Set the cross-LP lookahead. Must be > 0: liveness of the
     * horizon protocol depends on it. Senders must never post an
     * event earlier than (their now) + lookahead; post() enforces it.
     */
    void setLookahead(Tick l);
    Tick lookahead() const { return lookahead_; }

    /**
     * Install the site -> LP map (model-level bookkeeping; the
     * scheduler itself never inspects site ids beyond handing the map
     * back to the model objects bound to it).
     */
    void setSitePartition(std::vector<std::uint32_t> lp_of_site);

    const std::vector<std::uint32_t> &
    sitePartition() const
    {
        return siteLp_;
    }

    std::uint32_t
    lpOfSite(std::uint32_t site) const
    {
        return siteLp_[site];
    }

    /**
     * Contiguous balanced split of @p sites site ids over @p lps
     * groups (first sites % lps groups get one extra). Site ids are
     * row-major, so groups are contiguous row bands and every
     * cross-group site pair is at least one site pitch apart — the
     * lookahead floor the topologies derive from geometry.
     */
    static std::vector<std::uint32_t>
    blockPartition(std::uint32_t sites, std::uint32_t lps);

    /**
     * Register the model object PdesEvents on @p lp should be applied
     * to (opaque to the scheduler; senders store the pointer into
     * PdesEvent::target). One target per LP — for this codebase, the
     * LP's Network replica.
     */
    void setTarget(std::uint32_t lp, void *target);
    void *target(std::uint32_t lp) const { return targets_[lp]; }

    /**
     * Post @p ev from @p src_lp to @p dst_lp. Must be called from the
     * worker thread currently stepping @p src_lp (the channels are
     * SPSC). @pre ev.when >= simOf(src_lp).now() + lookahead().
     */
    void post(std::uint32_t src_lp, std::uint32_t dst_lp,
              const PdesEvent &ev);

    /**
     * Run every LP until all queues drain (or pass @p limit) and no
     * message is in flight. Events scheduled at exactly @p limit
     * still run. Not reentrant; single-LP schedulers run inline on
     * the calling thread, multi-worker runs fan out over a
     * ThreadPool.
     *
     * @return Events executed across all LPs during this call.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Cross-LP events posted since construction. */
    std::uint64_t
    crossPosts() const
    {
        return crossPosts_.load(std::memory_order_relaxed);
    }

    /** Channel-ring overflows since construction (healthy runs: 0,
     *  but any value is correct — overflow spills, never drops). */
    std::uint64_t spills() const;

    /**
     * Enable wall-clock round timing in every LP's step (two
     * steady_clock reads per round). Off by default so the horizon
     * protocol's hot loop stays clock-free; the timed benches turn it
     * on to fill the report's busy/blocked breakdown.
     */
    void setMetricsTiming(bool on) { metricsTiming_ = on; }
    bool metricsTiming() const { return metricsTiming_; }

    /**
     * The scheduler's own stat registry: per-LP horizon metrics under
     * "pdes.lp<N>.*", per-ordered-pair channel stats under
     * "pdes.ch<src>_<dst>.*", and scheduler totals under "pdes.*".
     * Populated at construction; dump only after run() returns (the
     * getters read single-writer worker state).
     */
    StatRegistry &telemetry() { return telemetry_; }

    /**
     * Snapshot the per-LP metrics into a load-balance report.
     * Call after run() returns — reads unsynchronized worker state.
     */
    PdesLoadReport loadReport() const;

    /**
     * Attach the Perfetto tracer notified on every cross-LP post
     * (PdesTracer installs per-LP tick observers itself). One tracer
     * at a time; pass nullptr to detach.
     */
    void setTracer(PdesTracer *tracer);
    PdesTracer *tracer() const { return tracer_; }

  private:
    friend class LogicalProcess;
    friend class PdesTracer;

    /** Register the pdes.* subtree into telemetry_ (ctor helper). */
    void registerStats();

    Tick eotOf(std::uint32_t j) const { return lps_[j]->eot(); }

    SpscChannel<PdesEvent> &
    channel(std::uint32_t src, std::uint32_t dst)
    {
        return *channels_[static_cast<std::size_t>(src) * lps_.size()
                          + dst];
    }

    void workerLoop(std::size_t worker, Tick limit);
    bool tryFinish();

    std::size_t threads_;
    /** Workers participating in the current run() (<= threads_). */
    std::size_t activeWorkers_ = 1;
    Tick lookahead_ = 0;
    bool metricsTiming_ = false;
    PdesTracer *tracer_ = nullptr;
    StatRegistry telemetry_;
    std::vector<std::unique_ptr<LogicalProcess>> lps_;
    /** Ordered-pair channels, src * lpCount + dst (diagonal unused). */
    std::vector<std::unique_ptr<SpscChannel<PdesEvent>>> channels_;
    std::vector<void *> targets_;
    std::vector<std::uint32_t> siteLp_;

    std::atomic<std::uint64_t> inFlight_{0};
    std::atomic<bool> done_{false};
    std::atomic<std::uint64_t> crossPosts_{0};
};

} // namespace macrosim

#endif // MACROSIM_SIM_PDES_SCHEDULER_HH
