/**
 * @file
 * Conservative parallel-in-model discrete-event scheduler.
 *
 * One simulation is partitioned into N logical processes (sim/lp.hh),
 * each owning a full Simulator for its site group. LPs synchronize
 * with a barrier-free, null-message-free variant of the classic
 * Chandy-Misra-Bryant horizon protocol:
 *
 *   - every LP publishes an earliest output time (EOT): a promise
 *     that no message it ever sends will carry an earlier timestamp;
 *   - an LP's earliest input time (EIT) is the minimum EOT over the
 *     other LPs, and it may safely execute local events strictly
 *     below its EIT;
 *   - after draining its inboxes and executing, it republishes
 *       EOT = min(next local event tick, EIT) + lookahead,
 *     where lookahead is a physical lower bound on cross-LP message
 *     latency — for the macrochip, the minimum inter-site optical
 *     propagation delay (plus per-topology interface overheads),
 *     thousands of ticks at ps resolution.
 *
 * EOTs are monotone, so EITs only grow; lookahead > 0 gives liveness
 * (two mutually-blocked LPs ratchet each other forward by one
 * lookahead per round). Safety: a message not yet visible when an LP
 * drains was sent after the LP read the sender's EOT, and therefore
 * carries a timestamp >= that EOT >= the EIT the LP executes below.
 *
 * Cross-LP messages travel through bounded SPSC channels (spsc.hh)
 * as PdesEvents — (timestamp, key, apply-function, opaque payload) —
 * and are folded into the receiver's queue with
 * EventQueue::scheduleKeyed, so same-tick ordering comes from the
 * message's causal key, not from real-time arrival order: results
 * are bit-identical for every LP and worker-thread count.
 *
 * Termination uses an in-flight message counter plus per-LP versioned
 * idle words: the check reads every LP's word, verifies all idle and
 * nothing in flight, then re-reads the words; an LP republishes its
 * word *before* releasing its drained messages' in-flight counts, so
 * a check that observes in-flight == 0 also observes the version bump
 * of whichever step drained the last message.
 */

#ifndef MACROSIM_SIM_PDES_SCHEDULER_HH
#define MACROSIM_SIM_PDES_SCHEDULER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event.hh"
#include "sim/lp.hh"
#include "sim/spsc.hh"
#include "sim/ticks.hh"

namespace macrosim
{

/** Payload bytes a cross-LP event can carry inline (a Message plus a
 *  little routing context must fit; checked by static_asserts at the
 *  senders). Sized so the drain-side callback capture — apply, target
 *  and payload — still fits InlineCallback's buffer. */
constexpr std::size_t pdesMaxPayload = 88;

/**
 * A timestamped cross-LP event: at tick `when`, call
 * `apply(target, payload)` on the destination LP. `key` orders
 * same-tick events deterministically (EventQueue::scheduleKeyed);
 * derive it from the payload's causal identity (e.g. the message id),
 * never from arrival order.
 */
struct PdesEvent
{
    Tick when = 0;
    std::uint64_t key = 0;
    void (*apply)(void *target, const void *payload) = nullptr;
    void *target = nullptr;
    unsigned char payload[pdesMaxPayload] = {};
};

/**
 * Schedule @p ev into @p q as a keyed event. Shared by the drain side
 * and by senders whose destination happens to live on the local LP —
 * both paths must order identically for LP-count invariance.
 */
void schedulePdesEvent(EventQueue &q, const PdesEvent &ev,
                       const char *tag);

class PdesScheduler
{
  public:
    /**
     * @param lp_count Number of logical processes (>= 1).
     * @param threads Worker threads; clamped to [1, lp_count].
     *        0 means one worker per LP.
     * @param seed Root seed; each LP's Simulator RNG derives from it.
     */
    explicit PdesScheduler(std::uint32_t lp_count,
                           std::size_t threads = 0,
                           std::uint64_t seed = 1);

    PdesScheduler(const PdesScheduler &) = delete;
    PdesScheduler &operator=(const PdesScheduler &) = delete;

    std::uint32_t lpCount() const
    {
        return static_cast<std::uint32_t>(lps_.size());
    }

    std::size_t threadCount() const { return threads_; }

    LogicalProcess &lp(std::uint32_t i) { return *lps_[i]; }
    Simulator &simOf(std::uint32_t i) { return lps_[i]->sim(); }

    /**
     * Set the cross-LP lookahead. Must be > 0: liveness of the
     * horizon protocol depends on it. Senders must never post an
     * event earlier than (their now) + lookahead; post() enforces it.
     */
    void setLookahead(Tick l);
    Tick lookahead() const { return lookahead_; }

    /**
     * Install the site -> LP map (model-level bookkeeping; the
     * scheduler itself never inspects site ids beyond handing the map
     * back to the model objects bound to it).
     */
    void setSitePartition(std::vector<std::uint32_t> lp_of_site);

    const std::vector<std::uint32_t> &
    sitePartition() const
    {
        return siteLp_;
    }

    std::uint32_t
    lpOfSite(std::uint32_t site) const
    {
        return siteLp_[site];
    }

    /**
     * Contiguous balanced split of @p sites site ids over @p lps
     * groups (first sites % lps groups get one extra). Site ids are
     * row-major, so groups are contiguous row bands and every
     * cross-group site pair is at least one site pitch apart — the
     * lookahead floor the topologies derive from geometry.
     */
    static std::vector<std::uint32_t>
    blockPartition(std::uint32_t sites, std::uint32_t lps);

    /**
     * Register the model object PdesEvents on @p lp should be applied
     * to (opaque to the scheduler; senders store the pointer into
     * PdesEvent::target). One target per LP — for this codebase, the
     * LP's Network replica.
     */
    void setTarget(std::uint32_t lp, void *target);
    void *target(std::uint32_t lp) const { return targets_[lp]; }

    /**
     * Post @p ev from @p src_lp to @p dst_lp. Must be called from the
     * worker thread currently stepping @p src_lp (the channels are
     * SPSC). @pre ev.when >= simOf(src_lp).now() + lookahead().
     */
    void post(std::uint32_t src_lp, std::uint32_t dst_lp,
              const PdesEvent &ev);

    /**
     * Run every LP until all queues drain (or pass @p limit) and no
     * message is in flight. Events scheduled at exactly @p limit
     * still run. Not reentrant; single-LP schedulers run inline on
     * the calling thread, multi-worker runs fan out over a
     * ThreadPool.
     *
     * @return Events executed across all LPs during this call.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Cross-LP events posted since construction. */
    std::uint64_t
    crossPosts() const
    {
        return crossPosts_.load(std::memory_order_relaxed);
    }

    /** Channel-ring overflows since construction (healthy runs: 0,
     *  but any value is correct — overflow spills, never drops). */
    std::uint64_t spills() const;

  private:
    friend class LogicalProcess;

    Tick eotOf(std::uint32_t j) const { return lps_[j]->eot(); }

    SpscChannel<PdesEvent> &
    channel(std::uint32_t src, std::uint32_t dst)
    {
        return *channels_[static_cast<std::size_t>(src) * lps_.size()
                          + dst];
    }

    void workerLoop(std::size_t worker, Tick limit);
    bool tryFinish();

    std::size_t threads_;
    /** Workers participating in the current run() (<= threads_). */
    std::size_t activeWorkers_ = 1;
    Tick lookahead_ = 0;
    std::vector<std::unique_ptr<LogicalProcess>> lps_;
    /** Ordered-pair channels, src * lpCount + dst (diagonal unused). */
    std::vector<std::unique_ptr<SpscChannel<PdesEvent>>> channels_;
    std::vector<void *> targets_;
    std::vector<std::uint32_t> siteLp_;

    std::atomic<std::uint64_t> inFlight_{0};
    std::atomic<bool> done_{false};
    std::atomic<std::uint64_t> crossPosts_{0};
};

} // namespace macrosim

#endif // MACROSIM_SIM_PDES_SCHEDULER_HH
