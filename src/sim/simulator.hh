/**
 * @file
 * Simulator: the top-level container tying together an event queue and
 * a root random-number generator.
 *
 * Every experiment builds one Simulator, constructs model objects that
 * hold a reference to it, and calls run(). There are no globals, so
 * benches can run hundreds of independent simulations in one process.
 */

#ifndef MACROSIM_SIM_SIMULATOR_HH
#define MACROSIM_SIM_SIMULATOR_HH

#include <cstdint>

#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/telemetry/registry.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1)
        : rng_(seed)
    {
        events_.regStats(telemetry_, "simcore");
    }

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }
    Rng &rng() { return rng_; }

    /**
     * The simulation-wide stat registry. Every model object registers
     * its stats here at construction under a dotted hierarchical name
     * ("simcore.*", "net.<topo>.*", "arch.site<N>.l2.*"), so a
     * harness can dump, snapshot or query one tree per simulation.
     */
    StatRegistry &telemetry() { return telemetry_; }
    const StatRegistry &telemetry() const { return telemetry_; }

    /**
     * Pending events that exist only to observe the simulation
     * (e.g. PeriodicSampler re-arms). Observers consult this count
     * to decide whether *model* work remains: two observers each
     * re-arming because they see the other's pending event would
     * keep the queue alive forever.
     */
    std::uint64_t observerEvents() const { return observerEvents_; }
    void noteObserverScheduled() { ++observerEvents_; }
    void noteObserverDone() { --observerEvents_; }

    Tick now() const { return events_.now(); }

    /**
     * Earliest pending event's tick (maxTick when drained). The PDES
     * scheduler derives each logical process's output horizon from
     * this; see sim/pdes_scheduler.hh.
     */
    Tick nextEventTick() { return events_.peekNextTick(); }

    /**
     * Run until the event queue drains or time reaches @p limit.
     * @return Number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        return events_.runUntil(limit);
    }

  private:
    EventQueue events_;
    Rng rng_;
    StatRegistry telemetry_;
    std::uint64_t observerEvents_ = 0;
};

} // namespace macrosim

#endif // MACROSIM_SIM_SIMULATOR_HH
