/**
 * @file
 * Simulator: the top-level container tying together an event queue and
 * a root random-number generator.
 *
 * Every experiment builds one Simulator, constructs model objects that
 * hold a reference to it, and calls run(). There are no globals, so
 * benches can run hundreds of independent simulations in one process.
 */

#ifndef MACROSIM_SIM_SIMULATOR_HH
#define MACROSIM_SIM_SIMULATOR_HH

#include <cstdint>

#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1)
        : rng_(seed)
    {}

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }
    Rng &rng() { return rng_; }

    Tick now() const { return events_.now(); }

    /**
     * Run until the event queue drains or time reaches @p limit.
     * @return Number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        return events_.runUntil(limit);
    }

  private:
    EventQueue events_;
    Rng rng_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_SIMULATOR_HH
