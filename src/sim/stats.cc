#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace macrosim
{

void
Accumulator::sample(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const std::uint64_t n = count_ + other.count_;
    const double delta = other.mean_ - mean_;
    mean_ += delta * static_cast<double>(other.count_)
        / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta
        * static_cast<double>(count_)
        * static_cast<double>(other.count_)
        / static_cast<double>(n);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      bins_(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        fatal("Histogram: invalid range [", lo, ", ", hi, ") with ",
              buckets, " buckets");
}

void
Histogram::sample(double x)
{
    ++total_;
    if (!std::isfinite(x)) {
        // A NaN would fall through both range guards below (every
        // comparison is false) and index out of bounds; quarantine
        // non-finite samples so the moments stay meaningful too.
        ++nonfinite_;
        return;
    }
    acc_.sample(x);
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        const auto idx = static_cast<std::size_t>((x - lo_) / width_);
        ++bins_[std::min(idx, bins_.size() - 1)];
    }
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double running = static_cast<double>(underflow_);
    if (running >= target && underflow_ > 0)
        return lo_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double in_bin = static_cast<double>(bins_[i]);
        if (running + in_bin >= target && in_bin > 0) {
            const double frac = (target - running) / in_bin;
            return lo_ + (static_cast<double>(i) + frac) * width_;
        }
        running += in_bin;
    }
    // The target lies beyond the last regular bucket: the true value
    // was clipped into overflow and any finite answer would
    // under-report the tail (figure-6 asymptotes flattened at the cap).
    if (overflow_ > 0)
        return std::numeric_limits<double>::infinity();
    return hi_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.lo_ != lo_ || other.hi_ != hi_ ||
        other.bins_.size() != bins_.size()) {
        fatal("Histogram::merge: incompatible bucketing ([", lo_, ", ",
              hi_, ") x", bins_.size(), " vs [", other.lo_, ", ",
              other.hi_, ") x", other.bins_.size(), ")");
    }
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    nonfinite_ += other.nonfinite_;
    total_ += other.total_;
    acc_.merge(other.acc_);
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = overflow_ = nonfinite_ = total_ = 0;
    acc_.reset();
}

} // namespace macrosim
