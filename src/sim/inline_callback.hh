/**
 * @file
 * InlineCallback: a move-only, type-erased `void()` callable that
 * stores its target inside the object — never on the heap.
 *
 * std::function is the wrong tool for the event hot path: libstdc++'s
 * small-buffer is 16 bytes, so any capture holding a Message (~80
 * bytes) heap-allocates on schedule() and frees on execute — two
 * malloc-lock round trips per simulated hop. InlineCallback trades
 * generality for a hard guarantee: the capture either fits the inline
 * buffer or the callsite fails to compile (static_assert), so the
 * per-event allocation count is provably zero.
 *
 * Design: a single ops-table pointer (invoke / relocate / destroy)
 * plus an aligned byte buffer. Relocate is a move-construct + destroy
 * pair, so moving an InlineCallback moves the capture by value —
 * cheap for the POD-ish captures the simulator uses. The capture type
 * must be nothrow-move-constructible so queue growth can never throw
 * mid-rebalance.
 */

#ifndef MACROSIM_SIM_INLINE_CALLBACK_HH
#define MACROSIM_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace macrosim
{

class InlineCallback
{
  public:
    /** Inline capture budget. Sized for the fattest in-tree capture:
     *  two_phase's [this, Message, Tick, Tick] slot callback (104
     *  bytes), with one pointer of headroom. Grow it if a callsite's
     *  static_assert fires — but measure first; every Slot in the
     *  event arena carries this many bytes. */
    static constexpr std::size_t inlineCapacity = 112;
    static constexpr std::size_t inlineAlign = alignof(std::max_align_t);

    constexpr InlineCallback() noexcept = default;
    constexpr InlineCallback(std::nullptr_t) noexcept {}

    /** Wrap any callable whose state fits the inline buffer. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                  InlineCallback> &&
                  std::is_invocable_r_v<void,
                                        std::remove_reference_t<F> &>>>
    InlineCallback(F &&fn) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::remove_cv_t<std::remove_reference_t<F>>;
        static_assert(sizeof(Fn) <= inlineCapacity,
                      "capture too large for InlineCallback's inline "
                      "buffer; shrink the capture (index/pointer "
                      "instead of by-value state) or, as a last "
                      "resort, grow inlineCapacity");
        static_assert(alignof(Fn) <= inlineAlign,
                      "capture over-aligned for InlineCallback");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "capture must be nothrow-move-constructible");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
        ops_ = &opsFor<Fn>;
    }

    /**
     * Deprecation shim: accept a std::function<void()> for one
     * release so out-of-tree callers keep compiling. The function
     * object itself is stored inline; its own heap block (if the
     * wrapped capture exceeded std::function's SBO) stays — which is
     * exactly why this path is deprecated.
     */
    [[deprecated(
        "schedule() now takes macrosim::InlineCallback; pass the "
        "lambda directly (it must fit the inline buffer)")]]
    InlineCallback(std::function<void()> fn)
    {
        if (!fn)
            return; // stay empty, like a default-constructed function
        using Fn = std::function<void()>;
        ::new (static_cast<void *>(buf_)) Fn(std::move(fn));
        ops_ = &opsFor<Fn>;
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        /*invoke=*/[](void *self) { (*static_cast<Fn *>(self))(); },
        /*relocate=*/
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        /*destroy=*/
        [](void *self) noexcept { static_cast<Fn *>(self)->~Fn(); },
    };

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void
    moveFrom(InlineCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(inlineAlign) std::byte buf_[inlineCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace macrosim

#endif // MACROSIM_SIM_INLINE_CALLBACK_HH
