/**
 * @file
 * Discrete-event core: EventQueue and scheduling handles.
 *
 * The queue delivers callbacks in (tick, insertion-order) order, so
 * same-tick events run FIFO and every run is deterministic. Events may
 * be cancelled through the EventId returned by schedule().
 *
 * Layout: an explicit 4-ary heap of small (when, seq, slot) records
 * over a contiguous slot arena that owns the callbacks. An EventId
 * encodes (generation, slot), so cancel() is a bounds check plus two
 * array writes — no hash lookup anywhere on the schedule/cancel/run
 * path. Cancellation tombstones the slot in place and releases the
 * callback immediately (captured state, e.g. Message payloads, is
 * freed promptly); tombstoned heap records are skipped at pop time
 * and swept out wholesale when they exceed half the heap.
 */

#ifndef MACROSIM_SIM_EVENT_HH
#define MACROSIM_SIM_EVENT_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/inline_callback.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class StatRegistry;

/**
 * Opaque identifier for a scheduled event; used for cancellation.
 * Encodes (slot generation << 32 | slot index + 1), so stale handles
 * — already run, already cancelled, or never issued — are rejected in
 * O(1) without any lookup structure.
 */
using EventId = std::uint64_t;

/** An EventId value that is never returned by schedule(). */
constexpr EventId invalidEventId = 0;

/**
 * Observability counters for one EventQueue. Plain fields keep the
 * hot path branch-free; registration with a StatGroup happens via
 * EventQueue::regStats().
 */
struct EventQueueStats
{
    /** Events accepted by schedule(). */
    std::uint64_t scheduled = 0;
    /** Successful cancel() calls. */
    std::uint64_t cancelled = 0;
    /** Events whose callback ran. */
    std::uint64_t executed = 0;
    /** High-water mark of pending (uncancelled) events. */
    std::uint64_t peakPending = 0;
    /** Tombstone sweeps of the heap (see EventQueue::compact()). */
    std::uint64_t compactions = 0;
    /** Longest run of consecutively executed same-tick events. */
    std::uint64_t maxSameTickBurst = 0;
};

/**
 * One row of the event-loop self-profile: every event scheduled with
 * the same tag aggregates its invocation count and the wall-clock
 * time its callbacks consumed. Untagged events aggregate under
 * "(untagged)".
 */
struct EventProfileEntry
{
    std::string_view tag;
    std::uint64_t count = 0;
    /** Wall-clock (not simulated) time spent in the callbacks, ns. */
    double wallNs = 0.0;
};

/**
 * A time-ordered queue of callbacks.
 *
 * Not a singleton: each Simulator owns one, so multiple simulations can
 * coexist (the benchmark harness runs hundreds back to back).
 */
class EventQueue
{
  public:
    /** Scheduled callbacks live inline in the slot arena — captures
     *  must fit InlineCallback's buffer (compile-time checked), so
     *  schedule()/execute never touch the heap. std::function still
     *  converts via a deprecated shim for one release. */
    using Callback = InlineCallback;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @p tag names the event's type for the event-loop profiler; it
     * must point at storage outliving the queue (string literals).
     * Tagging costs nothing when profiling is off.
     *
     * @pre when >= now(): the past is immutable.
     * @pre cb is callable.
     * @return A handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb,
                     const char *tag = nullptr);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb, const char *tag = nullptr)
    {
        return schedule(now_ + delay, std::move(cb), tag);
    }

    /**
     * Schedule @p cb with an explicit same-tick ordering key instead
     * of insertion order. Keyed events run after every plain event of
     * the same tick, ordered among themselves by ascending @p key.
     *
     * This is the parallel-in-model determinism hook: cross-LP
     * deliveries arrive in whatever real-time order the worker
     * threads produce, so insertion order is not reproducible — but a
     * key derived from the message's causal identity (source site and
     * per-source sequence) is identical for every LP/thread count.
     * Plain schedule() ordering is untouched, so single-queue
     * simulations stay byte-identical to their historical streams.
     *
     * @pre key < 2^63 (the top bit marks keyed records internally).
     * @pre At most one keyed event per (when, key) pair — duplicate
     *      pairs would tie and fall back to unspecified order.
     */
    EventId scheduleKeyed(Tick when, std::uint64_t key, Callback cb,
                          const char *tag = nullptr);

    /**
     * Timestamp of the earliest pending event, or maxTick when the
     * queue is empty. Sweeps cancelled tombstones off the top, hence
     * non-const. The PDES horizon protocol publishes this as the
     * earliest tick this LP could still execute.
     */
    Tick peekNextTick();

    /**
     * Cancel a pending event.
     *
     * The callback (and everything it captured) is destroyed before
     * this returns; the heap record lingers as a tombstone until it
     * reaches the top or a compaction sweeps it.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already ran, was already cancelled, or the
     *         id is invalid.
     */
    bool cancel(EventId id);

    /** Whether any uncancelled event is pending. */
    bool empty() const { return pending_ == 0; }

    /** Number of pending (uncancelled) events. */
    std::size_t size() const { return pending_; }

    /**
     * Run the next pending event (advancing now()).
     *
     * @return true if an event ran; false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next *pending* event
     * lies beyond @p limit. Events scheduled exactly at @p limit
     * still run; now() never advances past @p limit here, even when
     * cancelled tombstones with earlier timestamps top the heap.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return stats_.executed; }

    /** Observability counters (monotonic since construction). */
    const EventQueueStats &stats() const { return stats_; }

    /**
     * Register the stats with @p registry as "<prefix>.scheduled"
     * etc. The queue must outlive any dump through @p registry.
     */
    void regStats(StatRegistry &registry,
                  const std::string &prefix = "simcore") const;

    /**
     * Enable/disable the event-loop self-profiler. When enabled,
     * every executed event's wall-clock time and invocation count is
     * attributed to its schedule() tag. Costs two clock reads per
     * event while on; entirely branch-predictable while off.
     * Profiling never perturbs simulated time or event order.
     */
    void setProfiling(bool on) { profiling_ = on; }
    bool profiling() const { return profiling_; }

    /**
     * The accumulated self-profile, sorted by descending wall time
     * (ties by tag). Counts are exact; times are wall-clock and thus
     * machine-dependent.
     */
    std::vector<EventProfileEntry> profile() const;

    /** Dump the self-profile as an aligned table. */
    void dumpProfile(std::ostream &os) const;

    /**
     * Callback fired once per *completed* executed tick with the
     * number of events that ran at it. Plain function pointer plus
     * context, so installing one costs a single predictable branch on
     * the execute path when unset.
     */
    using TickObserver = void (*)(void *ctx, Tick tick,
                                  std::uint64_t events);

    /**
     * Install (or clear, with nullptr) the tick observer. The
     * observer sees the deterministic execution stream — (tick,
     * events-at-tick) pairs in nondecreasing tick order — and nothing
     * about real time, which is what makes it usable for
     * thread-count-invariant tracing of parallel-in-model runs. A
     * tick is reported when the first event of a *later* tick
     * executes; the final tick stays buffered until
     * flushTickObserver().
     */
    void
    setTickObserver(TickObserver fn, void *ctx)
    {
        tickObs_ = fn;
        tickCtx_ = ctx;
    }

    /**
     * Report the still-buffered last executed tick to the observer
     * (if any events ran since the previous report) and reset the
     * burst tracking. Call when no more events will run — e.g. at the
     * end of a PDES run — so the stream is complete.
     */
    void flushTickObserver();

  private:
    /** Children per heap node; 4 keeps the tree shallow and the
     *  sift-down child scan within one cache line of records. */
    static constexpr std::size_t arity = 4;

    /** Sweep tombstones once they are this many and outnumber live
     *  records (see maybeCompact()). */
    static constexpr std::uint64_t compactMinTombstones = 64;

    /** Arena cell owning one scheduled callback.
     *
     *  Lifecycle: free (no cb, no tombstone) -> live (cb set) ->
     *  either executed (freed straight away) or tombstoned (cb
     *  destroyed, flag set) until its heap record is popped or swept,
     *  then free again with gen bumped so stale EventIds miss.
     */
    struct Slot
    {
        Callback cb;
        /** Profiler tag; nullptr = untagged. Kept even when
         *  profiling is off so the profiler can be flipped on
         *  mid-simulation. */
        const char *tag = nullptr;
        std::uint32_t gen = 0;
        bool tombstone = false;
    };

    /** Per-tag profile accumulator (see EventProfileEntry). */
    struct ProfileBucket
    {
        std::uint64_t count = 0;
        double wallNs = 0.0;
    };

    /** One interned profiler tag: an owned copy of the tag text plus
     *  its accumulator. Lives in a deque so EventProfileEntry views
     *  into `name` stay stable as tags keep arriving. */
    struct InternedTag
    {
        std::string name;
        ProfileBucket bucket;
    };

    /** Heap record: 24 bytes, trivially copyable, no callback. */
    struct HeapRecord
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Keyed records set this bit in `seq`, with the caller's key in
     *  the low bits: they sort after every plain record of their tick
     *  (insertion counters stay far below 2^63) and by key among
     *  themselves, so (when, seq) stays a strict total order. */
    static constexpr std::uint64_t keyedSeqBit = 1ULL << 63;

    static bool
    earlier(const HeapRecord &a, const HeapRecord &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    std::uint32_t allocSlot(Callback cb, const char *tag);
    void freeSlot(std::uint32_t slot);

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    void popRoot();

    /** Drop tombstoned records off the top of the heap. */
    void skipCancelled();

    /** Pop and run the root record. @pre root is pending. */
    void executeRoot();

    /** Rebuild the heap without tombstones when they dominate. */
    void maybeCompact();
    void compact();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t tombstones_ = 0;

    /** Same-tick burst tracking (stats + tick observer). */
    Tick lastExecTick_ = 0;
    std::uint64_t burst_ = 0;

    TickObserver tickObs_ = nullptr;
    void *tickCtx_ = nullptr;

    std::vector<HeapRecord> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    EventQueueStats stats_;

    /** Bucket for @p tag, interning it on first sight. */
    ProfileBucket &profileBucketFor(const char *tag);

    /** Event-loop self-profiler. Tags are interned: the fast path
     *  maps the tag *pointer* to a bucket id (one FlatMap probe), and
     *  first sight of a new pointer falls back to a content compare
     *  so the same literal in two translation units still shares a
     *  bucket. Interning copies the text into stable storage, so a
     *  tag may die before the queue — the old string_view-keyed map
     *  dangled in that case. */
    bool profiling_ = false;
    FlatMap<const char *, std::uint32_t> profileIds_;
    std::deque<InternedTag> profileTags_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_EVENT_HH
