/**
 * @file
 * Discrete-event core: EventQueue and scheduling handles.
 *
 * The queue delivers callbacks in (tick, insertion-order) order, so
 * same-tick events run FIFO and every run is deterministic. Events may
 * be cancelled through the EventId returned by schedule().
 */

#ifndef MACROSIM_SIM_EVENT_HH
#define MACROSIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/ticks.hh"

namespace macrosim
{

/** Opaque identifier for a scheduled event; used for cancellation. */
using EventId = std::uint64_t;

/** An EventId value that is never returned by schedule(). */
constexpr EventId invalidEventId = 0;

/**
 * A time-ordered queue of callbacks.
 *
 * Not a singleton: each Simulator owns one, so multiple simulations can
 * coexist (the benchmark harness runs hundreds back to back).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @pre when >= now(): the past is immutable.
     * @return A handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a pending event.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already ran, was already cancelled, or the
     *         id is invalid.
     */
    bool cancel(EventId id);

    /** Whether any uncancelled event is pending. */
    bool empty() const { return pending_.empty(); }

    /** Number of pending (uncancelled) events. */
    std::size_t size() const { return pending_.size(); }

    /**
     * Run the next pending event (advancing now()).
     *
     * @return true if an event ran; false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit. Events scheduled exactly at @p limit still run.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        // shared across the priority-queue copies via the callback
        // being moved in once; Entry itself is move-only in practice,
        // but priority_queue requires copyability of the comparator
        // only, so we store the callback directly.
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    /** Ids scheduled but not yet run or cancelled. */
    std::unordered_set<EventId> pending_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_EVENT_HH
