/**
 * @file
 * Discrete-event core: EventQueue and scheduling handles.
 *
 * The queue delivers callbacks in (tick, insertion-order) order, so
 * same-tick events run FIFO and every run is deterministic. Events may
 * be cancelled through the EventId returned by schedule().
 *
 * Layout: an explicit 4-ary heap of small (when, seq, slot) records
 * over a contiguous slot arena that owns the callbacks. An EventId
 * encodes (generation, slot), so cancel() is a bounds check plus two
 * array writes — no hash lookup anywhere on the schedule/cancel/run
 * path. Cancellation tombstones the slot in place and releases the
 * callback immediately (captured state, e.g. Message payloads, is
 * freed promptly); tombstoned heap records are skipped at pop time
 * and swept out wholesale when they exceed half the heap.
 *
 * Batched ("coalesced tick") execution: same-tick bursts of
 * homogeneous events are the dominant structure of the hot loops
 * (EventQueueStats' burst histogram quantifies it per workload), and
 * dispatching each through its own InlineCallback wastes the
 * homogeneity. A registrant may registerBatchKernel() a flat
 * function and then scheduleBatch() events that carry only a 32-bit
 * payload (an index into the registrant's structure-of-arrays
 * state). When a maximal run of same-tick records of one kernel
 * reaches the top of the heap, the queue invokes the kernel ONCE
 * with the payloads in execution order instead of N callbacks —
 * per-event dispatch, callback relocation and arena traffic drop out
 * while the observable execution order, stats and tick-observer
 * stream stay exactly those of the equivalent per-event path (see
 * DESIGN.md §14 for the ordering argument).
 */

#ifndef MACROSIM_SIM_EVENT_HH
#define MACROSIM_SIM_EVENT_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/inline_callback.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class StatRegistry;

/**
 * Opaque identifier for a scheduled event; used for cancellation.
 * Encodes (slot generation << 32 | slot index + 1), so stale handles
 * — already run, already cancelled, or never issued — are rejected in
 * O(1) without any lookup structure.
 */
using EventId = std::uint64_t;

/** An EventId value that is never returned by schedule(). */
constexpr EventId invalidEventId = 0;

/**
 * A batch kernel: invoked once per maximal same-tick run of events
 * scheduled with scheduleBatch() for the same kernel id. @p payloads
 * holds the 32-bit payloads in exact execution (schedule) order.
 * Kernels may schedule()/scheduleBatch()/cancel() freely — the
 * queue's bookkeeping is consistent before the call — but must not
 * assume anything about @p count beyond count >= 1.
 */
using BatchKernel = void (*)(void *ctx, Tick when,
                             const std::uint32_t *payloads,
                             std::size_t count);

/**
 * Process-wide default for whether subsystems route their per-tick
 * bulk work through batch kernels (scheduleBatch) or the per-event
 * scalar reference path (schedule + InlineCallback). Batched is the
 * default; tests and benches flip it to compare the two paths on
 * networks they construct indirectly (figure/campaign helpers).
 * Read once at subsystem construction, so flipping it mid-simulation
 * affects only subsequently built objects.
 */
bool batchDispatchDefault();
void setBatchDispatchDefault(bool on);

/**
 * Observability counters for one EventQueue. Plain fields keep the
 * hot path branch-free; registration with a StatGroup happens via
 * EventQueue::regStats().
 */
struct EventQueueStats
{
    /** Power-of-two burst-histogram buckets: bucket k counts
     *  completed ticks whose event count lies in [2^k, 2^(k+1));
     *  the last bucket is unbounded above. */
    static constexpr std::size_t burstBuckets = 16;

    /** Events accepted by schedule(). */
    std::uint64_t scheduled = 0;
    /** Successful cancel() calls. */
    std::uint64_t cancelled = 0;
    /** Events whose callback ran. */
    std::uint64_t executed = 0;
    /** High-water mark of pending (uncancelled) events. */
    std::uint64_t peakPending = 0;
    /** Tombstone sweeps of the heap (see EventQueue::compact()). */
    std::uint64_t compactions = 0;
    /** Longest run of consecutively executed same-tick events. */
    std::uint64_t maxSameTickBurst = 0;
    /** Batch-kernel invocations (each retires a whole run). */
    std::uint64_t batchRuns = 0;
    /** Events retired through batch kernels (subset of executed). */
    std::uint64_t batchEvents = 0;
    /** Same-tick burst-size histogram over completed ticks. A tick
     *  completes when a later tick's first event executes or
     *  flushTickObserver() runs, same as the tick observer. */
    std::uint64_t burstHist[burstBuckets] = {};
};

/**
 * One row of the event-loop self-profile: every event scheduled with
 * the same tag aggregates its invocation count and the wall-clock
 * time its callbacks consumed. Untagged events aggregate under
 * "(untagged)".
 */
struct EventProfileEntry
{
    std::string_view tag;
    std::uint64_t count = 0;
    /** Wall-clock (not simulated) time spent in the callbacks, ns. */
    double wallNs = 0.0;
};

/**
 * A time-ordered queue of callbacks.
 *
 * Not a singleton: each Simulator owns one, so multiple simulations can
 * coexist (the benchmark harness runs hundreds back to back).
 */
class EventQueue
{
  public:
    /** Scheduled callbacks live inline in the slot arena — captures
     *  must fit InlineCallback's buffer (compile-time checked), so
     *  schedule()/execute never touch the heap. std::function still
     *  converts via a deprecated shim for one release. */
    using Callback = InlineCallback;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @p tag names the event's type for the event-loop profiler; it
     * must point at storage outliving the queue (string literals).
     * Tagging costs nothing when profiling is off.
     *
     * @pre when >= now(): the past is immutable.
     * @pre cb is callable.
     * @return A handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb,
                     const char *tag = nullptr);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb, const char *tag = nullptr)
    {
        return schedule(now_ + delay, std::move(cb), tag);
    }

    /**
     * Schedule @p cb with an explicit same-tick ordering key instead
     * of insertion order. Keyed events run after every plain event of
     * the same tick, ordered among themselves by ascending @p key.
     *
     * This is the parallel-in-model determinism hook: cross-LP
     * deliveries arrive in whatever real-time order the worker
     * threads produce, so insertion order is not reproducible — but a
     * key derived from the message's causal identity (source site and
     * per-source sequence) is identical for every LP/thread count.
     * Plain schedule() ordering is untouched, so single-queue
     * simulations stay byte-identical to their historical streams.
     *
     * @pre key < 2^63 (the top bit marks keyed records internally).
     * @pre At most one keyed event per (when, key) pair — duplicate
     *      pairs would tie and fall back to unspecified order.
     */
    EventId scheduleKeyed(Tick when, std::uint64_t key, Callback cb,
                          const char *tag = nullptr);

    /**
     * Register a batch kernel under @p tag (profiler attribution;
     * must outlive the queue, string literals). Returns the kernel id
     * to pass to scheduleBatch(). Registration order is per-queue and
     * deterministic; ids start at 1.
     */
    std::uint16_t registerBatchKernel(const char *tag, BatchKernel fn,
                                      void *ctx);

    /**
     * Schedule one batch event: at tick @p when the registered kernel
     * receives @p payload, coalesced with every adjacent same-tick
     * event of the same kernel into a single invocation. Ordering is
     * identical to schedule(): batch events take the next insertion
     * sequence number, so they interleave with plain events exactly
     * where an equivalent schedule() call would, and coalesced runs
     * never reorder across a plain event or a tick boundary.
     *
     * The returned id works with cancel(). Cancellation drops the
     * payload on the floor — registrants whose payloads index pooled
     * state must either not cancel or use self-describing payloads.
     *
     * @pre when >= now(); @p kernel was returned by
     *      registerBatchKernel() on this queue.
     */
    EventId scheduleBatch(Tick when, std::uint16_t kernel,
                          std::uint32_t payload);

    /**
     * Timestamp of the earliest pending event, or maxTick when the
     * queue is empty. Sweeps cancelled tombstones off the top, hence
     * non-const. The PDES horizon protocol publishes this as the
     * earliest tick this LP could still execute.
     */
    Tick peekNextTick();

    /**
     * Cancel a pending event.
     *
     * The callback (and everything it captured) is destroyed before
     * this returns; the heap record lingers as a tombstone until it
     * reaches the top or a compaction sweeps it.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already ran, was already cancelled, or the
     *         id is invalid.
     */
    bool cancel(EventId id);

    /** Whether any uncancelled event is pending. */
    bool empty() const { return pending_ == 0; }

    /** Number of pending (uncancelled) events. */
    std::size_t size() const { return pending_; }

    /**
     * Run the next pending event (advancing now()). If the next event
     * is a batch record, its whole coalesced run executes as one unit
     * (a run is indivisible — it is one kernel invocation).
     *
     * @return true if an event ran; false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or the next *pending* event
     * lies beyond @p limit. Events scheduled exactly at @p limit
     * still run; now() never advances past @p limit here, even when
     * cancelled tombstones with earlier timestamps top the heap.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /** Total events executed since construction. */
    std::uint64_t executed() const { return stats_.executed; }

    /** Observability counters (monotonic since construction). */
    const EventQueueStats &stats() const { return stats_; }

    /**
     * Register the stats with @p registry as "<prefix>.scheduled"
     * etc. The queue must outlive any dump through @p registry.
     */
    void regStats(StatRegistry &registry,
                  const std::string &prefix = "simcore") const;

    /**
     * Enable/disable the event-loop self-profiler. When enabled,
     * every executed event's wall-clock time and invocation count is
     * attributed to its schedule() tag. Costs two clock reads per
     * event while on; entirely branch-predictable while off.
     * Profiling never perturbs simulated time or event order.
     */
    void setProfiling(bool on) { profiling_ = on; }
    bool profiling() const { return profiling_; }

    /**
     * The accumulated self-profile, sorted by descending wall time
     * (ties by tag). Counts are exact; times are wall-clock and thus
     * machine-dependent.
     */
    std::vector<EventProfileEntry> profile() const;

    /** Dump the self-profile as an aligned table. */
    void dumpProfile(std::ostream &os) const;

    /**
     * Callback fired once per *completed* executed tick with the
     * number of events that ran at it. Plain function pointer plus
     * context, so installing one costs a single predictable branch on
     * the execute path when unset.
     */
    using TickObserver = void (*)(void *ctx, Tick tick,
                                  std::uint64_t events);

    /**
     * Install (or clear, with nullptr) the tick observer. The
     * observer sees the deterministic execution stream — (tick,
     * events-at-tick) pairs in nondecreasing tick order — and nothing
     * about real time, which is what makes it usable for
     * thread-count-invariant tracing of parallel-in-model runs. A
     * tick is reported when the first event of a *later* tick
     * executes; the final tick stays buffered until
     * flushTickObserver().
     */
    void
    setTickObserver(TickObserver fn, void *ctx)
    {
        tickObs_ = fn;
        tickCtx_ = ctx;
    }

    /**
     * Report the still-buffered last executed tick to the observer
     * (if any events ran since the previous report) and reset the
     * burst tracking. Call when no more events will run — e.g. at the
     * end of a PDES run — so the stream is complete.
     */
    void flushTickObserver();

  private:
    /** Children per heap node; 4 keeps the tree shallow and the
     *  sift-down child scan within one cache line of records. */
    static constexpr std::size_t arity = 4;

    /** Sweep tombstones once they are this many and outnumber live
     *  records (see maybeCompact()). */
    static constexpr std::uint64_t compactMinTombstones = 64;

    /** Arena cell owning one scheduled callback.
     *
     *  Lifecycle: free (no cb, no tombstone) -> live (cb set) ->
     *  either executed (freed straight away) or tombstoned (cb
     *  destroyed, flag set) until its heap record is popped or swept,
     *  then free again with gen bumped so stale EventIds miss.
     */
    struct Slot
    {
        Callback cb;
        /** Profiler tag; nullptr = untagged. Kept even when
         *  profiling is off so the profiler can be flipped on
         *  mid-simulation. */
        const char *tag = nullptr;
        /** Batch payload; meaningful only when kernel != 0. */
        std::uint32_t payload = 0;
        /** Owning batch kernel id; 0 = plain callback slot. */
        std::uint16_t kernel = 0;
        std::uint32_t gen = 0;
        bool tombstone = false;
    };

    /** Per-tag profile accumulator (see EventProfileEntry). */
    struct ProfileBucket
    {
        std::uint64_t count = 0;
        double wallNs = 0.0;
    };

    /** One interned profiler tag: an owned copy of the tag text plus
     *  its accumulator. Lives in a deque so EventProfileEntry views
     *  into `name` stay stable as tags keep arriving. */
    struct InternedTag
    {
        std::string name;
        ProfileBucket bucket;
    };

    /** Heap record: 24 bytes, trivially copyable, no callback. The
     *  kernel id rides in what used to be tail padding, so batch
     *  coalescing can test run membership without touching the slot
     *  arena. */
    struct HeapRecord
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        /** 0 = plain callback record; else batch kernel id. */
        std::uint16_t kernel = 0;
    };

    /** Keyed records set this bit in `seq`, with the caller's key in
     *  the low bits: they sort after every plain record of their tick
     *  (insertion counters stay far below 2^63) and by key among
     *  themselves, so (when, seq) stays a strict total order. */
    static constexpr std::uint64_t keyedSeqBit = 1ULL << 63;

    static bool
    earlier(const HeapRecord &a, const HeapRecord &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    std::uint32_t allocSlot(Callback cb, const char *tag);
    void freeSlot(std::uint32_t slot);

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    void popRoot();

    /** Drop tombstoned records off the top of the heap. */
    void skipCancelled();

    /** Pop and run the root record. @pre root is pending and plain. */
    void executeRoot();

    /** Pop and run the maximal same-(tick, kernel) run at the top of
     *  the heap through its batch kernel. @pre root is pending and a
     *  batch record. @return events retired. */
    std::uint64_t executeBatchRun();

    /** Burst bookkeeping shared by the scalar and batch paths:
     *  account @p count events executing at @p when, completing the
     *  previous tick (observer + histogram) on a boundary cross. */
    void noteExecuted(Tick when, std::uint64_t count);

    /** Report the in-progress tick to the observer and histogram. */
    void completeTick();

    /** Rebuild the heap without tombstones when they dominate. */
    void maybeCompact();
    void compact();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t tombstones_ = 0;

    /** Same-tick burst tracking (stats + tick observer). */
    Tick lastExecTick_ = 0;
    std::uint64_t burst_ = 0;

    TickObserver tickObs_ = nullptr;
    void *tickCtx_ = nullptr;

    std::vector<HeapRecord> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    EventQueueStats stats_;

    /** One registered batch kernel (id = index + 1). */
    struct BatchKernelEntry
    {
        BatchKernel fn;
        void *ctx;
        const char *tag;
    };

    std::vector<BatchKernelEntry> kernels_;
    /** Payload staging for the run being drained; reused across runs
     *  so steady state stays allocation-free. */
    std::vector<std::uint32_t> batchScratch_;

    /** Bucket for @p tag, interning it on first sight. */
    ProfileBucket &profileBucketFor(const char *tag);

    /** Event-loop self-profiler. Tags are interned: the fast path
     *  maps the tag *pointer* to a bucket id (one FlatMap probe), and
     *  first sight of a new pointer falls back to a content compare
     *  so the same literal in two translation units still shares a
     *  bucket. Interning copies the text into stable storage, so a
     *  tag may die before the queue — the old string_view-keyed map
     *  dangled in that case. */
    bool profiling_ = false;
    FlatMap<const char *, std::uint32_t> profileIds_;
    std::deque<InternedTag> profileTags_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_EVENT_HH
