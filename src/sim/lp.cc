#include "sim/lp.hh"

#include <algorithm>
#include <chrono>

#include "sim/pdes_scheduler.hh"

namespace macrosim
{

LogicalProcess::LogicalProcess(PdesScheduler &sched, std::uint32_t id,
                               std::uint64_t seed)
    : sched_(sched), id_(id), sim_(seed)
{
}

std::uint64_t
LogicalProcess::drainInboxes()
{
    std::uint64_t drained = 0;
    const std::uint32_t n = sched_.lpCount();
    PdesEvent ev;
    for (std::uint32_t j = 0; j < n; ++j) {
        if (j == id_)
            continue;
        SpscChannel<PdesEvent> &ch = sched_.channel(j, id_);
        while (ch.pop(ev)) {
            // Scheduling is not execution: the event enters the local
            // queue unconditionally (so inboxes are always drained
            // dry and a sender can never be wedged on a full ring),
            // but it only *runs* once the horizon passes its tick.
            schedulePdesEvent(sim_.events(), ev, "pdes.cross");
            ++drained;
        }
    }
    return drained;
}

void
LogicalProcess::publishState(bool idle, bool worked)
{
    if (!worked && idle == lastIdle_)
        return;
    lastIdle_ = idle;
    ++stepVersion_;
    state_.store((stepVersion_ << 1) | (idle ? 1u : 0u),
                 std::memory_order_seq_cst);
}

bool
LogicalProcess::step(Tick limit)
{
    using WallClock = std::chrono::steady_clock;
    const bool timing = sched_.metricsTiming();
    WallClock::time_point t0{};
    if (timing)
        t0 = WallClock::now();
    ++metrics_.rounds;

    // 1. Horizon: the earliest timestamp any other LP could still
    // send. Reading the EOTs *before* draining is load-bearing: a
    // message that is not in an inbox by the time we drain below was
    // sent after these reads, under an EOT at least this large.
    Tick eit = maxTick;
    const std::uint32_t n = sched_.lpCount();
    for (std::uint32_t j = 0; j < n; ++j) {
        if (j != id_)
            eit = std::min(eit, sched_.eotOf(j));
    }
    // Lookahead utilization numerator: how much horizon the other
    // LPs granted us this round. The endgame value maxTick (all
    // peers done) is excluded — it is "unbounded", not granted ticks.
    if (eit != maxTick && eit > lastEit_) {
        metrics_.grantedTicks += eit - lastEit_;
        lastEit_ = eit;
    }

    // 2. Fold every inbound message into the local queue.
    const std::uint64_t drained = drainInboxes();
    metrics_.drained += drained;
    WallClock::time_point t1{};
    if (timing)
        t1 = WallClock::now();

    // 3. Execute strictly below the horizon (and never past limit).
    std::uint64_t ran = 0;
    const Tick nowBefore = sim_.now();
    if (eit > 0)
        ran = sim_.events().runUntil(std::min(eit - 1, limit));
    executed_ += ran;
    if (ran > 0) {
        metrics_.consumedTicks += sim_.now() - nowBefore;
        if (ran > metrics_.maxRoundExecuted)
            metrics_.maxRoundExecuted = ran;
    }

    // 4. Publish the new output horizon. After step 3 every local
    // event below eit has run, so the next local tick is >= eit
    // whenever the queue kept us busy; EOT = min(next, eit) +
    // lookahead is therefore monotone (the max() guards the stale-eit
    // case where another LP's EOT was read early).
    const Tick next = sim_.events().peekNextTick();
    const Tick base = std::min(next, eit);
    const Tick look = sched_.lookahead();
    const Tick eot = base > maxTick - look ? maxTick : base + look;
    const Tick prevEot = eot_.load(std::memory_order_relaxed);
    if (eot > prevEot) {
        // Advance histogram: an advance is event-driven when a
        // pending local event (not the granted horizon) sets the
        // base, i.e. real model progress; otherwise the EOT merely
        // ratcheted along behind the other LPs' horizons.
        if (next < eit)
            ++metrics_.eotEventAdvances;
        else
            ++metrics_.eotRatchetAdvances;
        if (eot != maxTick)
            metrics_.eotAdvanceTicks += eot - prevEot;
        eot_.store(eot, std::memory_order_seq_cst);
    }

    // 5. Publish idle state, then release the drained messages'
    // in-flight counts. The order matters for termination: a checker
    // that sees in-flight == 0 is guaranteed to also see this step's
    // version bump (and re-check the idle bit we just computed).
    // Idle = nothing pending at or below the limit. An empty queue
    // reports next == maxTick, which must count as idle even when the
    // limit itself is maxTick (the default run-to-completion case).
    publishState(/*idle=*/next > limit || next == maxTick,
                 /*worked=*/drained > 0 || ran > 0);
    if (drained > 0)
        sched_.inFlight_.fetch_sub(drained, std::memory_order_seq_cst);

    const bool progress = drained > 0 || ran > 0;
    if (progress)
        ++metrics_.progressRounds;
    else
        ++metrics_.blockedRounds;
    if (timing) {
        const WallClock::time_point t2 = WallClock::now();
        const auto ns = [](WallClock::duration d) {
            return std::chrono::duration<double, std::nano>(d).count();
        };
        // A round that made no progress is a blocked-on-EIT spin; its
        // whole cost is blocked time. Progress rounds split at the
        // end of the inbox drain (EIT reads + drain vs execute +
        // publish).
        if (progress) {
            metrics_.drainWallNs += ns(t1 - t0);
            metrics_.execWallNs += ns(t2 - t1);
        } else {
            metrics_.blockedWallNs += ns(t2 - t0);
        }
    }
    return progress;
}

} // namespace macrosim
