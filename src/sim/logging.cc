#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>

namespace macrosim
{

namespace
{
// Atomic: sweep worker threads warn concurrently.
std::atomic<bool> quietFlag{false};
std::atomic<std::uint64_t> warnCount{0};

// Status-line sink: guarded by a mutex, worker threads emit
// progress concurrently.
std::mutex statusMutex;
std::function<void(const std::string &)> statusSink;
} // namespace

void
statusLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(statusMutex);
    if (statusSink) {
        statusSink(line);
        return;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
setStatusSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(statusMutex);
    statusSink = std::move(sink);
}

void
setQuiet(bool q)
{
    quietFlag.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

std::uint64_t
warningsIssued()
{
    return warnCount.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *, int, const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    warnCount.fetch_add(1, std::memory_order_relaxed);
    if (!quiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace macrosim
