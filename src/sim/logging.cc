#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace macrosim
{

namespace
{
bool quietFlag = false;
std::uint64_t warnCount = 0;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

std::uint64_t
warningsIssued()
{
    return warnCount;
}

namespace detail
{

void
panicImpl(const char *, int, const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    ++warnCount;
    if (!quietFlag)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace macrosim
