/**
 * @file
 * FlatMap: open-addressing robin-hood hash map for the simulation hot
 * path.
 *
 * std::unordered_map allocates one node per element and chases a
 * pointer per probe; at millions of transactions per second the node
 * churn and cache misses dominate. FlatMap stores entries contiguously
 * in one allocation, probes linearly (robin-hood displacement keeps
 * probe chains short and variance low), and erases by backward shift —
 * no tombstones, so lookups never slow down after heavy erase cycles.
 *
 * Contract with the simulator ("reserve and never rehash mid-run"):
 * call reserve() with the expected population before the simulation
 * starts; steady-state insert/erase then never allocates. Growth still
 * works (amortized doubling) for populations that exceed the reserve —
 * rehashes() exposes the count so benches can assert it stayed at the
 * warm-up value.
 *
 * Deliberate non-features: not a drop-in std::unordered_map — no
 * stable addresses (entries move on insert *and* erase; take values,
 * not pointers), no copy (the sim state it holds is move-only in
 * spirit), iterator order is the probe order (deterministic for a
 * fixed insert/erase history, but unspecified — never iterate on a
 * sim-order-critical path).
 */

#ifndef MACROSIM_SIM_FLAT_MAP_HH
#define MACROSIM_SIM_FLAT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace macrosim
{

/** Default FlatMap hash: splitmix64's finalizer. The identity hash
 *  (libstdc++'s default for integers) clusters catastrophically under
 *  linear probing when keys share low bits (line addresses do); the
 *  finalizer is two multiplies and avalanche-complete. */
template <typename Key>
struct FlatHash
{
    static_assert(std::is_integral_v<Key> || std::is_enum_v<Key> ||
                      std::is_pointer_v<Key>,
                  "FlatHash covers integral/pointer keys; supply a "
                  "custom hasher otherwise");

    std::size_t
    operator()(Key key) const noexcept
    {
        std::uint64_t x;
        if constexpr (std::is_pointer_v<Key>)
            x = reinterpret_cast<std::uintptr_t>(key);
        else
            x = static_cast<std::uint64_t>(key);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

template <typename Key, typename T, typename Hash = FlatHash<Key>>
class FlatMap
{
  public:
    using value_type = std::pair<Key, T>;

    /** Probe distances are stored in a byte (0 = empty slot, else
     *  distance-from-home + 1); the load-factor cap keeps real chains
     *  far below this, but growth is forced if one ever gets close. */
    static constexpr std::uint8_t maxProbe = 250;

    FlatMap() = default;

    FlatMap(FlatMap &&other) noexcept { swap(other); }

    FlatMap &
    operator=(FlatMap &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            cap_ = size_ = maxLoad_ = 0;
            storage_.reset();
            dist_.reset();
            swap(other);
        }
        return *this;
    }

    FlatMap(const FlatMap &) = delete;
    FlatMap &operator=(const FlatMap &) = delete;

    ~FlatMap() { destroyAll(); }

    template <bool Const>
    class Iter
    {
      public:
        using MapPtr = std::conditional_t<Const, const FlatMap *, FlatMap *>;
        using reference =
            std::conditional_t<Const, const value_type &, value_type &>;
        using pointer =
            std::conditional_t<Const, const value_type *, value_type *>;

        Iter() = default;
        Iter(MapPtr map, std::size_t idx) : map_(map), idx_(idx) {}

        /** const_iterator from iterator. */
        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &other)
            : map_(other.map_), idx_(other.idx_)
        {}

        reference operator*() const { return *map_->entryAt(idx_); }
        pointer operator->() const { return map_->entryAt(idx_); }

        Iter &
        operator++()
        {
            ++idx_;
            skipEmpty();
            return *this;
        }

        Iter
        operator++(int)
        {
            Iter old = *this;
            ++*this;
            return old;
        }

        friend bool
        operator==(const Iter &a, const Iter &b)
        {
            return a.idx_ == b.idx_;
        }
        friend bool
        operator!=(const Iter &a, const Iter &b)
        {
            return a.idx_ != b.idx_;
        }

      private:
        friend class FlatMap;
        template <bool> friend class Iter;

        void
        skipEmpty()
        {
            while (idx_ < map_->cap_ && map_->dist_[idx_] == 0)
                ++idx_;
        }

        MapPtr map_ = nullptr;
        std::size_t idx_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skipEmpty();
        return it;
    }
    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skipEmpty();
        return it;
    }
    iterator end() { return iterator(this, cap_); }
    const_iterator end() const { return const_iterator(this, cap_); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Allocated slot count (power of two; 0 before first insert). */
    std::size_t capacity() const { return cap_; }

    /** Table rebuilds so far — reserve() and growth both count. A
     *  steady-state loop that never rehashes keeps this constant. */
    std::size_t rehashes() const { return rehashes_; }

    /** Grow (never shrink) so @p expected entries fit rehash-free. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = 16;
        while (want * 7 / 8 < expected)
            want *= 2;
        if (want > cap_)
            rehash(want);
    }

    void
    clear()
    {
        destroyAll();
        size_ = 0;
        if (cap_ > 0) {
            for (std::size_t i = 0; i < cap_; ++i)
                dist_[i] = 0;
        }
    }

    iterator
    find(const Key &key)
    {
        return iterator(this, findIndex(key));
    }

    const_iterator
    find(const Key &key) const
    {
        return const_iterator(this, findIndex(key));
    }

    bool contains(const Key &key) const { return findIndex(key) != cap_; }
    std::size_t count(const Key &key) const { return contains(key) ? 1 : 0; }

    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(const Key &key, Args &&...args)
    {
        std::size_t idx = findIndex(key);
        if (idx != cap_)
            return {iterator(this, idx), false};
        if (cap_ == 0 || size_ + 1 > maxLoad_)
            rehash(cap_ == 0 ? 16 : cap_ * 2);
        insertFresh(value_type(std::piecewise_construct,
                               std::forward_as_tuple(key),
                               std::forward_as_tuple(
                                   std::forward<Args>(args)...)));
        ++size_;
        return {iterator(this, findIndex(key)), true};
    }

    template <typename V>
    std::pair<iterator, bool>
    insert_or_assign(const Key &key, V &&value)
    {
        auto [it, inserted] = try_emplace(key, std::forward<V>(value));
        if (!inserted)
            it->second = std::forward<V>(value);
        return {it, inserted};
    }

    T &
    operator[](const Key &key)
    {
        return try_emplace(key).first->second;
    }

    T &
    at(const Key &key)
    {
        const std::size_t idx = findIndex(key);
        assert(idx != cap_ && "FlatMap::at: key absent");
        return entryAt(idx)->second;
    }

    const T &
    at(const Key &key) const
    {
        const std::size_t idx = findIndex(key);
        assert(idx != cap_ && "FlatMap::at: key absent");
        return entryAt(idx)->second;
    }

    bool
    erase(const Key &key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == cap_)
            return false;
        eraseIndex(idx);
        return true;
    }

    void erase(iterator it) { eraseIndex(it.idx_); }
    void erase(const_iterator it) { eraseIndex(it.idx_); }

  private:
    value_type *
    entryAt(std::size_t idx)
    {
        return reinterpret_cast<value_type *>(storage_.get()) + idx;
    }

    const value_type *
    entryAt(std::size_t idx) const
    {
        return reinterpret_cast<const value_type *>(storage_.get()) +
               idx;
    }

    std::size_t homeIndex(const Key &key) const
    {
        return Hash{}(key) & (cap_ - 1);
    }

    /** Slot of @p key, or cap_ (== end()) if absent. The robin-hood
     *  invariant bounds the scan: once a slot is empty or holds an
     *  entry closer to its home than we are to ours, the key cannot
     *  be further right. */
    std::size_t
    findIndex(const Key &key) const
    {
        if (size_ == 0)
            return cap_;
        std::size_t idx = homeIndex(key);
        std::uint8_t d = 1;
        while (dist_[idx] >= d) {
            if (dist_[idx] == d && entryAt(idx)->first == key)
                return idx;
            idx = (idx + 1) & (cap_ - 1);
            ++d;
        }
        return cap_;
    }

    /** Robin-hood insert of a key known to be absent. May displace
     *  richer entries; forces growth if a probe chain would overflow
     *  the distance byte. Does not bump size_. */
    void
    insertFresh(value_type &&fresh)
    {
        value_type cur = std::move(fresh);
        for (;;) {
            std::size_t idx = homeIndex(cur.first);
            std::uint8_t d = 1;
            bool placed = false;
            while (!placed) {
                if (dist_[idx] == 0) {
                    ::new (static_cast<void *>(entryAt(idx)))
                        value_type(std::move(cur));
                    dist_[idx] = d;
                    return;
                }
                if (dist_[idx] < d) {
                    std::swap(cur, *entryAt(idx));
                    std::swap(d, dist_[idx]);
                }
                idx = (idx + 1) & (cap_ - 1);
                ++d;
                if (d > maxProbe)
                    break; // pathological chain: grow and retry
            }
            rehash(cap_ * 2);
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        auto old_storage = std::move(storage_);
        auto old_dist = std::move(dist_);
        const std::size_t old_cap = cap_;

        cap_ = new_cap;
        maxLoad_ = cap_ * 7 / 8;
        storage_ = std::make_unique<std::byte[]>(
            cap_ * sizeof(value_type));
        dist_ = std::make_unique<std::uint8_t[]>(cap_);
        for (std::size_t i = 0; i < cap_; ++i)
            dist_[i] = 0;
        ++rehashes_;

        if (!old_storage)
            return;
        value_type *old_entries =
            reinterpret_cast<value_type *>(old_storage.get());
        for (std::size_t i = 0; i < old_cap; ++i) {
            if (old_dist[i] == 0)
                continue;
            insertFresh(std::move(old_entries[i]));
            old_entries[i].~value_type();
        }
    }

    void
    eraseIndex(std::size_t idx)
    {
        assert(idx < cap_ && dist_[idx] != 0 &&
               "FlatMap::erase: invalid position");
        entryAt(idx)->~value_type();
        // Backward shift: pull every displaced successor one slot
        // left, restoring the invariant without tombstones.
        std::size_t next = (idx + 1) & (cap_ - 1);
        while (dist_[next] > 1) {
            ::new (static_cast<void *>(entryAt(idx)))
                value_type(std::move(*entryAt(next)));
            entryAt(next)->~value_type();
            dist_[idx] = static_cast<std::uint8_t>(dist_[next] - 1);
            dist_[next] = 0;
            idx = next;
            next = (next + 1) & (cap_ - 1);
        }
        dist_[idx] = 0;
        --size_;
    }

    void
    destroyAll()
    {
        if constexpr (!std::is_trivially_destructible_v<value_type>) {
            for (std::size_t i = 0; i < cap_; ++i) {
                if (dist_[i] != 0)
                    entryAt(i)->~value_type();
            }
        }
    }

    void
    swap(FlatMap &other) noexcept
    {
        std::swap(cap_, other.cap_);
        std::swap(size_, other.size_);
        std::swap(maxLoad_, other.maxLoad_);
        std::swap(rehashes_, other.rehashes_);
        storage_.swap(other.storage_);
        dist_.swap(other.dist_);
    }

    std::size_t cap_ = 0;     ///< Power of two, or 0 before growth.
    std::size_t size_ = 0;    ///< Live entries.
    std::size_t maxLoad_ = 0; ///< Grow once size_ would exceed this.
    std::size_t rehashes_ = 0;
    std::unique_ptr<std::byte[]> storage_; ///< cap_ value_type cells.
    std::unique_ptr<std::uint8_t[]> dist_; ///< 0 empty, else probe+1.
};

} // namespace macrosim

#endif // MACROSIM_SIM_FLAT_MAP_HH
