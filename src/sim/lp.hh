/**
 * @file
 * One logical process (LP) of a partitioned simulation.
 *
 * A LogicalProcess owns a full Simulator — event queue, RNG, stat
 * registry — for its share of the model, and the conservative-PDES
 * bookkeeping the scheduler's horizon protocol runs on: a published
 * earliest-output-time (EOT) and a versioned idle word used for
 * termination detection. Exactly one worker thread steps an LP at a
 * time, so everything except the three published atomics is
 * single-threaded state.
 *
 * See sim/pdes_scheduler.hh for the protocol; the proof obligations
 * live there.
 */

#ifndef MACROSIM_SIM_LP_HH
#define MACROSIM_SIM_LP_HH

#include <atomic>
#include <cstdint>

#include "sim/simulator.hh"
#include "sim/ticks.hh"

namespace macrosim
{

class PdesScheduler;

/**
 * Horizon-protocol observability for one LP. Counters (rounds,
 * events, EOT advances) are always on — they are plain increments on
 * state the step already touches. Wall-clock splits are only
 * accumulated when PdesScheduler::metricsTiming() is enabled, because
 * each timed round costs two steady_clock reads.
 *
 * Determinism note: the tick-domain counters (drained, consumedTicks,
 * and the executed count kept by the LP itself) are bit-identical for
 * every worker-thread count; the round counters, EOT advance split,
 * grantedTicks and all wall-clock fields depend on real-time
 * interleaving and are diagnostics only. DESIGN.md §12 keeps the
 * glossary.
 */
struct LpMetrics
{
    /** Protocol rounds stepped (progress + blocked). */
    std::uint64_t rounds = 0;
    /** Rounds that drained or executed something. */
    std::uint64_t progressRounds = 0;
    /** Rounds that spun with nothing under the horizon. */
    std::uint64_t blockedRounds = 0;
    /** Cross-LP messages folded out of the inboxes. */
    std::uint64_t drained = 0;
    /** Most events executed in a single round. */
    std::uint64_t maxRoundExecuted = 0;
    /** EOT advances driven by a pending local event (next < EIT). */
    std::uint64_t eotEventAdvances = 0;
    /** EOT advances that merely ratcheted on the granted horizon. */
    std::uint64_t eotRatchetAdvances = 0;
    /** Total ticks the published EOT moved (finite advances only). */
    std::uint64_t eotAdvanceTicks = 0;
    /** Ticks of horizon granted by the other LPs (EIT growth). */
    std::uint64_t grantedTicks = 0;
    /** Ticks of simulated time actually consumed executing. */
    std::uint64_t consumedTicks = 0;
    /** Wall-clock spent in progress rounds up to the drain, ns. */
    double drainWallNs = 0.0;
    /** Wall-clock spent executing + publishing in progress rounds. */
    double execWallNs = 0.0;
    /** Wall-clock spent in rounds that made no progress, ns. */
    double blockedWallNs = 0.0;
};

class LogicalProcess
{
  public:
    LogicalProcess(PdesScheduler &sched, std::uint32_t id,
                   std::uint64_t seed);

    LogicalProcess(const LogicalProcess &) = delete;
    LogicalProcess &operator=(const LogicalProcess &) = delete;

    std::uint32_t id() const { return id_; }
    Simulator &sim() { return sim_; }
    const Simulator &sim() const { return sim_; }

    /**
     * One round of the horizon protocol: compute the earliest input
     * time from the other LPs' EOTs, drain every inbound channel into
     * the local queue, execute strictly below the horizon (capped at
     * @p limit, inclusive), publish the new EOT and idle state.
     *
     * Must only be called by the worker thread that owns this LP.
     *
     * @return Whether the step made progress (drained or executed
     *         anything).
     */
    bool step(Tick limit);

    /** Published earliest output time: no event this LP will ever
     *  send can be timestamped earlier. Monotone nondecreasing. */
    Tick eot() const { return eot_.load(std::memory_order_seq_cst); }

    /**
     * Published (version << 1) | idle word. The version advances
     * whenever a step does work or flips the idle bit, so a reader
     * that sees the same word twice knows no work happened in
     * between; see PdesScheduler::tryFinish().
     */
    std::uint64_t
    stateWord() const
    {
        return state_.load(std::memory_order_seq_cst);
    }

    /** Events executed by this LP (cumulative). */
    std::uint64_t executed() const { return executed_; }

    /** Horizon-protocol counters. Single-writer (the owning worker);
     *  read from other threads only after the run has joined. */
    const LpMetrics &metrics() const { return metrics_; }

  private:
    /** Drain every inbound channel into the local queue as keyed
     *  events. @return messages drained (in-flight count is released
     *  by step() only after the state word is republished — the
     *  termination check depends on that order). */
    std::uint64_t drainInboxes();

    void publishState(bool idle, bool worked);

    PdesScheduler &sched_;
    std::uint32_t id_;
    Simulator sim_;
    std::uint64_t executed_ = 0;
    std::uint64_t stepVersion_ = 0;
    bool lastIdle_ = false;
    LpMetrics metrics_;
    /** Largest finite EIT seen, for grantedTicks accounting. */
    Tick lastEit_ = 0;

    /** Published horizon data, each on its own cache line: the other
     *  LPs' workers poll these every step. */
    alignas(64) std::atomic<Tick> eot_{0};
    alignas(64) std::atomic<std::uint64_t> state_{0};
};

} // namespace macrosim

#endif // MACROSIM_SIM_LP_HH
