/**
 * @file
 * Bounded single-producer / single-consumer ring with an unbounded
 * mutex-guarded spill lane.
 *
 * The PDES scheduler wires one channel per ordered LP pair; the LP
 * that owns the source end is the only pusher and the LP that owns
 * the destination end is the only popper, so the fast path is two
 * atomic indices and no locks. The ring is deliberately bounded (a
 * runaway producer should feel backpressure in cache footprint, not
 * allocate without limit) — but a *blocking* full ring would deadlock
 * when one worker thread multiplexes both endpoint LPs, so overflow
 * spills into a locked deque that the consumer drains after the ring.
 * Spills are counted; a healthy run with lookahead-sized bursts never
 * takes the lock.
 */

#ifndef MACROSIM_SIM_SPSC_HH
#define MACROSIM_SIM_SPSC_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace macrosim
{

template <typename T>
class SpscChannel
{
  public:
    /** @param capacity Ring size; rounded up to a power of two. */
    explicit SpscChannel(std::size_t capacity = 1024)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        ring_.resize(cap);
        mask_ = cap - 1;
    }

    SpscChannel(const SpscChannel &) = delete;
    SpscChannel &operator=(const SpscChannel &) = delete;

    /** Producer side. Never fails and never blocks: a full ring
     *  spills into the locked overflow lane. */
    void
    push(const T &v)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        ++posts_;
        if (tail - head < ring_.size()) {
            ring_[tail & mask_] = v;
            tail_.store(tail + 1, std::memory_order_release);
            notePeak(tail - head + 1);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(spillMutex_);
            spill_.push_back(v);
        }
        spillCount_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t backlog =
            spillPending_.fetch_add(1, std::memory_order_release) + 1;
        notePeak(ring_.size() + backlog);
    }

    /** Consumer side. @return whether @p out was filled. Ring first,
     *  then the spill lane — arrival order across the two lanes is
     *  not preserved, which is fine for payloads carrying their own
     *  (timestamp, key) ordering. */
    bool
    pop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head != tail_.load(std::memory_order_acquire)) {
            out = ring_[head & mask_];
            head_.store(head + 1, std::memory_order_release);
            return true;
        }
        if (spillPending_.load(std::memory_order_acquire) == 0)
            return false;
        std::lock_guard<std::mutex> lock(spillMutex_);
        if (spill_.empty())
            return false;
        out = spill_.front();
        spill_.pop_front();
        spillPending_.fetch_sub(1, std::memory_order_release);
        return true;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Total pushes that missed the ring (monotonic). */
    std::uint64_t
    spills() const
    {
        return spillCount_.load(std::memory_order_relaxed);
    }

    /** Total pushes (ring + spill lane). Producer-written without
     *  synchronization: read only from the producer thread or after
     *  it has quiesced (the PDES scheduler reads post-join). */
    std::uint64_t posts() const { return posts_; }

    /** High-water occupancy observed at push time (ring depth plus
     *  any spill backlog). Same single-writer contract as posts(). */
    std::uint64_t peakDepth() const { return peak_; }

  private:
    void
    notePeak(std::uint64_t depth)
    {
        if (depth > peak_)
            peak_ = depth;
    }

    std::vector<T> ring_;
    std::size_t mask_ = 0;
    /** Producer and consumer indices on separate cache lines so the
     *  two endpoint threads do not false-share. */
    /** Producer-private counters live beside the producer index. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    std::uint64_t posts_ = 0;
    std::uint64_t peak_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> spillPending_{0};
    std::atomic<std::uint64_t> spillCount_{0};
    std::mutex spillMutex_;
    std::deque<T> spill_;
};

} // namespace macrosim

#endif // MACROSIM_SIM_SPSC_HH
