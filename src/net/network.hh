/**
 * @file
 * Abstract inter-site network interface and shared bookkeeping.
 *
 * A Network accepts packets via inject() and, some simulated time
 * later, invokes the destination site's delivery handler. Subclasses
 * implement route() with their topology's arbitration / switching /
 * routing mechanics; the base class owns delivery dispatch, latency
 * and bandwidth statistics, energy accounting, the single-cycle
 * intra-site loopback of section 6.2, and the analytic descriptors
 * (component counts, laser power) behind Tables 5 and 6.
 */

#ifndef MACROSIM_NET_NETWORK_HH
#define MACROSIM_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arch/config.hh"
#include "net/energy.hh"
#include "net/message.hh"
#include "photonics/laser_power.hh"
#include "photonics/link_budget.hh"
#include "sim/pdes_scheduler.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace macrosim
{

/** One row of Table 6: optical component totals for a network. */
struct ComponentCounts
{
    std::uint64_t transmitters = 0;
    std::uint64_t receivers = 0;
    /** Waveguide count including area-equivalent routing (see 6.4). */
    std::uint64_t waveguides = 0;
    std::uint64_t opticalSwitches = 0;
    std::uint64_t electronicRouters = 0;
};

/** Aggregate delivery statistics, resettable for warmup windows. */
struct NetworkStats
{
    Counter injected;
    Counter delivered;
    Counter bytesDelivered;
    /** End-to-end latency per delivered packet, nanoseconds. */
    Accumulator latencyNs;
    /** Packets abandoned after the retry policy was exhausted. */
    Counter dropped;
    /** Re-routing attempts scheduled by the retry policy. */
    Counter retries;

    void
    reset()
    {
        injected.reset();
        delivered.reset();
        bytesDelivered.reset();
        latencyNs.reset();
        dropped.reset();
        retries.reset();
    }
};

/**
 * Health of one fault-injectable link, as the fault model sees it
 * after margin re-evaluation: down means no traffic at all, while a
 * bandwidthFraction below 1.0 derates the link's bit rate (wavelength
 * masking) without taking it out of service.
 */
struct LinkHealth
{
    bool down = false;
    double bandwidthFraction = 1.0;
};

/**
 * Bounded-retry policy for packets that hit a dead resource. A packet
 * whose routing attempt fails is re-queued after
 * backoffBase << (attempts - 1) ticks, up to maxAttempts total
 * attempts; after that it is dropped (counted, surfaced to the drop
 * handler, non-fatal). With no policy set a failed routing attempt is
 * a fatal error, preserving the strict pre-fault-model behaviour.
 */
struct RetryPolicy
{
    Tick backoffBase = 0;
    std::uint32_t maxAttempts = 0;

    bool enabled() const { return maxAttempts > 0; }
};

/**
 * How a topology's mutable state splits across parallel-in-model
 * logical processes (sim/pdes_scheduler.hh).
 */
enum class PdesPartition
{
    /**
     * The topology has globally shared mutable state — a token's
     * position, gateway arbitration queues, a switch configuration,
     * a broadcast bus — so replicas cannot advance concurrently.
     * Drivers must collapse such a network onto one logical process.
     */
    Colocated,
    /**
     * Every piece of mutable state is owned by exactly one site (or
     * one ordered site pair whose writes all originate at one site),
     * so site groups may run in parallel: one replica per LP, each
     * handling injections for its own sites and deliveries routed in
     * from the others.
     */
    BySourceSite,
};

class Network
{
  public:
    using Handler = std::function<void(const Message &)>;

    Network(Simulator &sim, const MacrochipConfig &config);
    virtual ~Network() = default;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    virtual std::string_view name() const = 0;

    /** Short lowercase slug for dotted stat names ("net.<slug>.*"). */
    virtual std::string_view statName() const = 0;

    /**
     * Accept a packet for delivery. Stamps injection time, serves
     * intra-site traffic over the one-cycle loopback, and hands
     * inter-site traffic to the topology.
     */
    void inject(Message msg);

    /** Register the receive callback for one site. */
    void
    setDeliveryHandler(SiteId site, Handler h)
    {
        handlers_.at(site) = std::move(h);
    }

    /** Register a fallback callback for sites without their own. */
    void setDefaultHandler(Handler h) { defaultHandler_ = std::move(h); }

    /**
     * Register an observer invoked for *every* delivery, before the
     * site handler. Observers are for instrumentation (tracing,
     * logging) and must not mutate simulation state.
     */
    void setDeliveryObserver(Handler h) { observer_ = std::move(h); }

    NetworkStats &stats() { return stats_; }
    const NetworkStats &stats() const { return stats_; }

    EnergyModel &energy() { return energy_; }
    const EnergyModel &energy() const { return energy_; }

    const MacrochipConfig &config() const { return config_; }
    const MacrochipGeometry &geometry() const { return geometry_; }
    Simulator &sim() { return sim_; }

    /**
     * Ordered (src, dst) pairs whose channel (or channel bundle) the
     * fault model may degrade independently. Topologies without
     * per-pair channels return their natural fault granularity (token
     * ring: per-destination bundles as (d, d); two-phase: shared
     * channels as (row, dst)). Default: nothing faultable.
     */
    virtual std::vector<std::pair<SiteId, SiteId>> faultableLinks() const
    {
        return {};
    }

    /**
     * Push re-evaluated health for the link keyed (a, b) — a key
     * previously returned by faultableLinks(). @return false when
     * this topology has no such link.
     */
    virtual bool
    applyLinkHealth(SiteId a, SiteId b, const LinkHealth &health)
    {
        (void)a; (void)b; (void)health;
        return false;
    }

    /**
     * Mark a site's routing resources (electronic routers, switch
     * rows) dead or repaired. @return false when this topology has no
     * per-site routing resource to fail.
     */
    virtual bool
    applySiteHealth(SiteId site, bool dead)
    {
        (void)site; (void)dead;
        return false;
    }

    /**
     * Enable bounded retry with exponential backoff for packets whose
     * routing attempt hits a dead resource. Without a policy such
     * packets are a fatal error.
     */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /**
     * Register a callback invoked when a packet is abandoned after
     * retry exhaustion (or immediately, with no retry policy set).
     * Workloads use this to count losses instead of dying.
     */
    void setDropHandler(Handler h) { dropHandler_ = std::move(h); }

    std::uint64_t droppedPackets() const { return stats_.dropped.value(); }
    std::uint64_t retriedPackets() const { return stats_.retries.value(); }

    /** Table 6 row for this network. */
    virtual ComponentCounts componentCounts() const = 0;

    /** Table 5 rows (data network, plus any control subnetworks). */
    virtual std::vector<LaserPowerSpec> opticalPower() const = 0;

    /** Total laser watts across all subnetworks. */
    double laserWatts() const;

    /**
     * The worst-case link a wavelength traverses on this network at
     * this grid size: the generalized un-switched link of the R x C
     * geometry derated by the worst subnetwork power-loss factor
     * (switch hops, snoop splits, ring passes). This is the path the
     * scaling feasibility gate assesses.
     */
    virtual OpticalPath worstCaseLink() const;

    /**
     * Physical feasibility of worstCaseLink() under the
     * maxLaunchPower nonlinearity ceiling. Infeasible means no
     * amount of laser power closes the link at this scale point.
     */
    LinkFeasibility feasibility() const;

    /**
     * Total static electrical+optical power: lasers, ring tuning
     * (0.1 mW per Tx and Rx ring), and switch bias (0.5 mW each).
     */
    double staticWatts() const;

    /** Refresh the energy model's static power from the descriptors,
     *  and warn (once per call site) if any subnetwork's laser budget
     *  has eaten through the engineered 4 dB link margin. Must be
     *  called once by the concrete class's constructor (the
     *  descriptors are virtual and unavailable during base
     *  construction). */
    void primeEnergyModel();

    /**
     * Register this network's statistics under "<prefix>." in a
     * StatRegistry for uniform reporting (gem5-style stat dumps). The
     * registry pulls values at dump time, so register once and dump
     * whenever. Topologies override to add their own stats (channel
     * occupancy, arbitration counters) and call the base first.
     */
    virtual void registerStats(StatRegistry &registry,
                               const std::string &prefix);

    /**
     * Dotted prefix of this network's stats in the simulation-wide
     * registry ("net.<name>", uniquified); empty until the concrete
     * constructor has run registerTelemetry().
     */
    const std::string &statPrefix() const { return statPrefix_; }

    /** How this topology's state may split across logical processes.
     *  Colocated unless the concrete class can prove otherwise. */
    virtual PdesPartition pdesPartition() const
    {
        return PdesPartition::Colocated;
    }

    /**
     * Lower bound on the latency of any message between sites owned
     * by different LPs: no inject() at local time t may cause a
     * delivery (or any other cross-LP event) before t + lookahead.
     * The base bound is the optical flight time over one site pitch —
     * distinct sites are at least that far apart; topologies add
     * their unavoidable per-message overheads on top.
     */
    virtual Tick pdesLookahead() const;

    /**
     * Bind this replica to logical process @p lp of @p sched. The
     * replica must have been constructed on that LP's Simulator; it
     * registers itself as the LP's cross-LP event target and switches
     * inject()/deliverAt() onto the deterministic keyed path (ids
     * become source-scoped sequence numbers, deliveries are ordered
     * by id rather than insertion). A Colocated topology may only
     * bind to a single-LP scheduler.
     */
    void bindPdes(PdesScheduler &sched, std::uint32_t lp);

    /** Whether bindPdes() has run. */
    bool pdesBound() const { return pdes_ != nullptr; }

    /** The logical process this replica is bound to. */
    std::uint32_t pdesLp() const { return pdesLp_; }

    /**
     * Route per-tick bulk work (final deliveries, and in subclasses
     * slot evaluation / grant scans) through coalesced batch kernels
     * instead of one InlineCallback per event. Initialized from
     * batchDispatchDefault(); both paths are bit-identical by
     * construction (same heap order, same per-item code), so this
     * knob exists for differential testing and benchmarking, not
     * correctness. Flip only between runs, never mid-simulation —
     * events already scheduled keep the path they were issued on.
     */
    virtual void setBatching(bool on) { batching_ = on; }
    bool batching() const { return batching_; }

  protected:
    /** Deliver inter-site traffic; implemented by each topology. */
    virtual void route(Message msg) = 0;

    /**
     * Self-register in the simulation-wide registry under
     * "net.<name()>" (uniquified per simulation, so a second network
     * of the same kind lands at "net.<name>#2"). Called by the
     * concrete constructor, after members referenced by stat getters
     * exist.
     */
    void registerTelemetry();

    /**
     * Schedule final delivery of @p msg at @p when, stamping
     * timestamps and stats and invoking the site handler.
     */
    void deliverAt(Message msg, Tick when);

    /**
     * A routing attempt for @p msg hit a dead resource (@p reason).
     * With a retry policy and attempts remaining, re-queues the packet
     * into route() after exponential backoff; once exhausted, counts
     * the drop and notifies the drop handler. Without either a policy
     * or a drop handler this is a fatal error — the strict behaviour
     * models relied on before the fault subsystem existed.
     */
    void dropPacket(Message msg, const char *reason);

    /** Charge one optical hop's transceiver energy for @p msg. */
    void
    chargeOpticalHop(const Message &msg)
    {
        energy_.countOpticalTransfer(msg.bytes);
    }

    Tick now() const { return sim_.now(); }
    Tick cycle() const { return config_.clockPeriod; }

    /** The bound scheduler, or nullptr outside PDES mode. */
    PdesScheduler *pdes() { return pdes_; }

    /** Whether @p site belongs to this replica's LP (always true
     *  outside PDES mode). */
    bool
    ownsSite(SiteId site) const
    {
        return !pdes_ || pdes_->lpOfSite(site) == pdesLp_;
    }

    /**
     * Hand a fully-built cross-LP event to the LP owning @p dst_site:
     * scheduled locally when that is this replica, posted through the
     * scheduler otherwise. Fills ev.target with the destination
     * replica; both paths order by ev.key, so results do not depend
     * on the partition. @pre pdesBound().
     */
    void pdesRoute(SiteId dst_site, PdesEvent ev, const char *tag);

  protected:
    /** Whether this instance routes bulk work through batch kernels
     *  (see setBatching()). Subclass constructors read it to decide
     *  which path their own events take. */
    bool batching_ = true;

  private:
    /** Delivery epilogue: timestamps, stats, observer, site handler.
     *  Runs at delivery time on the destination's LP. */
    void finishDelivery(Message msg);

    /** PdesEvent apply thunk for final deliveries; payload is the
     *  Message, target the destination replica (as Network*). */
    static void applyDeliver(void *target, const void *payload);

    /** Batch kernel draining a run of "net.deliver" events; payloads
     *  index deliverPool_. */
    static void deliverBatch(void *ctx, Tick when,
                             const std::uint32_t *payloads,
                             std::size_t count);

    Simulator &sim_;
    MacrochipConfig config_;
    MacrochipGeometry geometry_;
    NetworkStats stats_;
    EnergyModel energy_;
    std::vector<Handler> handlers_;
    Handler defaultHandler_;
    Handler observer_;
    Handler dropHandler_;
    RetryPolicy retry_;
    MessageId nextId_ = 1;
    std::string statPrefix_;

    /** In-flight Messages awaiting batched delivery, indexed by the
     *  batch payload; recycled through deliverFree_ so steady state
     *  allocates nothing. */
    std::vector<Message> deliverPool_;
    std::vector<std::uint32_t> deliverFree_;
    /** Kernel id for deliverBatch() on sim_'s queue. */
    std::uint16_t deliverKernel_ = 0;

    PdesScheduler *pdes_ = nullptr;
    std::uint32_t pdesLp_ = 0;
    /** Per-source injection sequence numbers backing the PDES message
     *  ids: ((src + 1) << 40) | seq is unique, grows in each site's
     *  own injection order, and so is identical for every LP count —
     *  exactly what same-tick delivery ordering needs. */
    std::vector<std::uint64_t> pdesSeq_;
};

} // namespace macrosim

#endif // MACROSIM_NET_NETWORK_HH
