#include "net/tracer.hh"

namespace macrosim
{

MessageTracer::MessageTracer(Network &net)
{
    net.setDeliveryObserver([this](const Message &m) {
        if (!enabled_)
            return;
        records_.push_back(Record{m.id, m.src, m.dst, m.bytes, m.type,
                                  m.txn, m.created, m.injected,
                                  m.delivered});
    });
}

double
MessageTracer::meanLatencyNs() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const Record &r : records_)
        sum += ticksToNs(r.latency());
    return sum / static_cast<double>(records_.size());
}

void
MessageTracer::writeCsv(std::ostream &os) const
{
    os << "id,src,dst,bytes,type,txn,created_ps,injected_ps,"
          "delivered_ps,latency_ns\n";
    for (const Record &r : records_) {
        os << r.id << ',' << r.src << ',' << r.dst << ',' << r.bytes
           << ',' << to_string(r.type) << ',' << r.txn << ','
           << r.created << ',' << r.injected << ',' << r.delivered
           << ',' << ticksToNs(r.latency()) << '\n';
    }
}

} // namespace macrosim
