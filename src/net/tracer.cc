#include "net/tracer.hh"

#include <algorithm>
#include <set>

#include "sim/telemetry/trace.hh"

namespace macrosim
{

MessageTracer::MessageTracer(Network &net)
{
    net.setDeliveryObserver([this](const Message &m) {
        if (!enabled_)
            return;
        records_.push_back(Record{m.id, m.src, m.dst, m.bytes, m.type,
                                  m.txn, m.created, m.injected,
                                  m.delivered, m.serialization});
    });
}

double
MessageTracer::meanLatencyNs() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const Record &r : records_)
        sum += ticksToNs(r.latency());
    return sum / static_cast<double>(records_.size());
}

void
MessageTracer::writeCsv(std::ostream &os) const
{
    os << "id,src,dst,bytes,type,txn,created_ps,injected_ps,"
          "delivered_ps,latency_ns,queue_ns,ser_ns\n";
    for (const Record &r : records_) {
        os << r.id << ',' << r.src << ',' << r.dst << ',' << r.bytes
           << ',' << to_string(r.type) << ',' << r.txn << ','
           << r.created << ',' << r.injected << ',' << r.delivered
           << ',' << ticksToNs(r.latency()) << ','
           << ticksToNs(r.queueing()) << ','
           << ticksToNs(r.serialization) << '\n';
    }
}

void
MessageTracer::writeTrace(TraceSink &sink, std::uint32_t pid,
                          const std::string &process_name) const
{
    sink.processName(pid, process_name);
    std::set<SiteId> sites;
    for (const Record &r : records_)
        sites.insert(r.src);
    for (const SiteId site : sites)
        sink.threadName(pid, site, "site " + std::to_string(site));
    for (const Record &r : records_) {
        sink.span(std::string(to_string(r.type)), "net.msg", pid,
                  r.src, r.created, r.latency(),
                  {{"id", std::to_string(r.id)},
                   {"dst", std::to_string(r.dst)},
                   {"bytes", std::to_string(r.bytes)},
                   {"txn", std::to_string(r.txn)},
                   {"queue_ns", jsonNumber(ticksToNs(r.queueing()))},
                   {"ser_ns",
                    jsonNumber(ticksToNs(r.serialization))}});
        // Coherence transactions span several messages; flow arrows
        // let Perfetto draw the request -> forward -> data chain.
        if (r.txn != 0) {
            sink.flowStart("txn", pid, r.src, r.injected, r.txn);
            sink.flowFinish("txn", pid, r.src, r.delivered, r.txn);
        }
    }
}

} // namespace macrosim
