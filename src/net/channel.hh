/**
 * @file
 * Time-multiplexed link resources for packet-level simulation.
 *
 * An OpticalChannel models one logical WDM channel: a fixed bandwidth
 * (from its wavelength count) and a propagation delay. Transmissions
 * reserve back-to-back serialization slots ("busy-until" scheduling),
 * so queueing delay emerges naturally and per-channel order is FIFO.
 *
 * BusyResource is the same idea for non-channel exclusive hardware
 * (switch trees, control-network gateways, router ports).
 */

#ifndef MACROSIM_NET_CHANNEL_HH
#define MACROSIM_NET_CHANNEL_HH

#include <cstdint>

#include "photonics/components.hh"
#include "sim/ticks.hh"

namespace macrosim
{

/** An exclusive resource scheduled with busy-until semantics. */
class BusyResource
{
  public:
    /** Earliest time the resource is idle, at or after @p earliest. */
    Tick
    nextFree(Tick earliest) const
    {
        return earliest > busyUntil_ ? earliest : busyUntil_;
    }

    /**
     * Reserve the resource for @p duration starting no earlier than
     * @p earliest. @return the actual start time.
     */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        const Tick start = nextFree(earliest);
        busyUntil_ = start + duration;
        busyTicks_ += duration;
        return start;
    }

    Tick busyUntil() const { return busyUntil_; }

    /** Cumulative reserved time; busyTicks()/now is the occupancy. */
    Tick busyTicks() const { return busyTicks_; }

  private:
    Tick busyUntil_ = 0;
    Tick busyTicks_ = 0;
};

/** A WDM optical channel: serialization bandwidth + flight time. */
class OpticalChannel
{
  public:
    /**
     * @param wavelengths Number of 20 Gb/s wavelengths ganged into
     *        this logical channel (its data-path width).
     * @param propagation Source-to-destination flight time.
     */
    OpticalChannel(std::uint32_t wavelengths, Tick propagation)
        : wavelengths_(wavelengths), active_(wavelengths),
          propagation_(propagation)
    {}

    std::uint32_t wavelengths() const { return wavelengths_; }
    Tick propagation() const { return propagation_; }

    /**
     * Wavelengths currently usable: the engineered width minus any
     * masked by the fault model. Serialization time scales with the
     * active count, so a degraded channel delivers at reduced
     * aggregate bandwidth instead of failing outright.
     */
    std::uint32_t activeWavelengths() const { return active_; }

    /**
     * Mask degraded wavelengths: keep @p active of the channel's
     * lambdas usable (clamped to [1, wavelengths()]). Restoring the
     * full count models a repair.
     */
    void
    maskWavelengths(std::uint32_t active)
    {
        active_ = active < 1 ? 1
                : active > wavelengths_ ? wavelengths_
                : active;
    }

    /** Hard channel failure: a down channel carries no traffic. */
    void setDown(bool down) { down_ = down; }
    bool down() const { return down_; }

    /** Channel bandwidth in bytes per nanosecond. */
    double
    bandwidthBytesPerNs() const
    {
        return static_cast<double>(active_)
            * bytesPerNsPerWavelength;
    }

    /** Time to clock @p bytes through the modulator bank. */
    Tick
    serialization(std::uint32_t bytes) const
    {
        // bytes / (wavelengths * 2.5 B/ns) in ps, rounded up so a
        // transfer never takes zero time.
        const std::uint64_t ps =
            (static_cast<std::uint64_t>(bytes) * 1000ull * 8ull
             + (static_cast<std::uint64_t>(active_) * 20ull) - 1)
            / (static_cast<std::uint64_t>(active_) * 20ull);
        return ps;
    }

    /**
     * Enqueue a transmission of @p bytes, starting no earlier than
     * @p earliest. @return the delivery time of the last byte at the
     * far end (start + serialization + propagation).
     */
    Tick
    transmit(Tick earliest, std::uint32_t bytes)
    {
        const Tick start = line_.reserve(earliest,
                                         serialization(bytes));
        return start + serialization(bytes) + propagation_;
    }

    /** As transmit(), but also reports when serialization started. */
    Tick
    transmitFrom(Tick earliest, std::uint32_t bytes, Tick &start_out)
    {
        const Tick start = line_.reserve(earliest,
                                         serialization(bytes));
        start_out = start;
        return start + serialization(bytes) + propagation_;
    }

    Tick busyUntil() const { return line_.busyUntil(); }

    /** Cumulative serialization time carried by this channel. */
    Tick busyTicks() const { return line_.busyTicks(); }

  private:
    std::uint32_t wavelengths_;
    std::uint32_t active_;
    bool down_ = false;
    Tick propagation_;
    BusyResource line_;
};

} // namespace macrosim

#endif // MACROSIM_NET_CHANNEL_HH
