/**
 * @file
 * Network message representation.
 *
 * The simulator is packet-granular: a Message is one network packet
 * (a raw 64 B test packet, an 8 B coherence control message, or a
 * 72 B data message) and carries its own timing breadcrumbs so
 * latency statistics need no side tables.
 */

#ifndef MACROSIM_NET_MESSAGE_HH
#define MACROSIM_NET_MESSAGE_HH

#include <cstdint>

#include "arch/geometry.hh"
#include "arch/protocol.hh"
#include "sim/ticks.hh"

namespace macrosim
{

/** Virtual-channel class, one per coherence message class, to keep
 *  requests and responses from blocking each other. */
enum class MsgClass : std::uint8_t
{
    Request,
    Response,
    Data,
};

using MessageId = std::uint64_t;
using TxnId = std::uint64_t;

struct Message
{
    MessageId id = 0;
    SiteId src = 0;
    SiteId dst = 0;
    std::uint32_t bytes = 64;
    MsgClass cls = MsgClass::Data;

    /** Coherence semantics; meaningful when txn != 0. */
    CoherenceMsg type = CoherenceMsg::Data;
    TxnId txn = 0;

    /** When the workload generated the packet (queueing included). */
    Tick created = 0;
    /** When the network accepted it. */
    Tick injected = 0;
    /** When the destination received the last byte. */
    Tick delivered = 0;
    /**
     * Ticks spent clocking the packet through the modulator bank of
     * the (first) optical data channel it crossed. Stamped by the
     * topology's route(); zero for intra-site loopback deliveries.
     */
    Tick serialization = 0;

    /** Free-form field for workload drivers. */
    std::uint64_t cookie = 0;

    /**
     * Delivery attempts consumed so far (fault model). Zero on first
     * injection; the network's retry machinery increments it on each
     * failed routing attempt until the retry policy is exhausted.
     */
    std::uint8_t attempts = 0;

    Tick
    latency() const
    {
        return delivered - created;
    }

    /** Time spent queued in the workload before injection. */
    Tick
    queueing() const
    {
        return injected - created;
    }
};

} // namespace macrosim

#endif // MACROSIM_NET_MESSAGE_HH
