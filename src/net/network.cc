#include "net/network.hh"

#include "sim/logging.hh"

namespace macrosim
{

Network::Network(Simulator &sim, const MacrochipConfig &config)
    : sim_(sim), config_(config), geometry_(config.geometry()),
      handlers_(config.siteCount())
{
}

void
Network::inject(Message msg)
{
    if (msg.src >= config_.siteCount() || msg.dst >= config_.siteCount())
        panic("Network::inject: site out of range (src=", msg.src,
              " dst=", msg.dst, ")");
    if (msg.id == 0)
        msg.id = nextId_++;
    msg.injected = now();
    if (msg.created == 0)
        msg.created = msg.injected;
    ++stats_.injected;

    if (msg.src == msg.dst) {
        // Intra-site traffic uses a single-cycle electrical loopback
        // (section 6.2); it consumes no optical resources.
        deliverAt(msg, now() + cycle());
        return;
    }
    route(std::move(msg));
}

void
Network::deliverAt(Message msg, Tick when)
{
    sim_.events().schedule(when, [this, msg]() mutable {
        msg.delivered = now();
        ++stats_.delivered;
        stats_.bytesDelivered += msg.bytes;
        stats_.latencyNs.sample(ticksToNs(msg.delivered - msg.created));
        if (observer_)
            observer_(msg);
        const Handler &h = handlers_[msg.dst] ? handlers_[msg.dst]
                                              : defaultHandler_;
        if (h)
            h(msg);
    });
}

double
Network::laserWatts() const
{
    double watts = 0.0;
    for (const auto &spec : opticalPower())
        watts += spec.watts();
    return watts;
}

double
Network::staticWatts() const
{
    const ComponentCounts counts = componentCounts();
    const double tuning_w = tuningMwPerWavelength * 1e-3
        * static_cast<double>(counts.transmitters + counts.receivers);
    const double switch_w = properties(Component::Switch)
        .staticPower.value * 1e-3
        * static_cast<double>(counts.opticalSwitches);
    return laserWatts() + tuning_w + switch_w;
}

void
Network::primeEnergyModel()
{
    energy_.setStaticWatts(staticWatts());
}

void
Network::registerStats(StatGroup &group, const std::string &prefix)
{
    group.addCounter(prefix + ".injected", stats_.injected);
    group.addCounter(prefix + ".delivered", stats_.delivered);
    group.addCounter(prefix + ".bytes", stats_.bytesDelivered);
    group.addMean(prefix + ".latency_ns", stats_.latencyNs);
    group.add(prefix + ".optical_bits", &energy_,
              [](const void *p) {
                  return static_cast<double>(
                      static_cast<const EnergyModel *>(p)
                          ->opticalBits());
              });
    group.add(prefix + ".router_bytes", &energy_,
              [](const void *p) {
                  return static_cast<double>(
                      static_cast<const EnergyModel *>(p)
                          ->routerBytes());
              });
}

} // namespace macrosim
