#include "net/network.hh"

#include <algorithm>
#include <cstring>

#include "photonics/link_budget.hh"
#include "sim/logging.hh"

namespace macrosim
{

Network::Network(Simulator &sim, const MacrochipConfig &config)
    : sim_(sim), config_(config), geometry_(config.geometry()),
      handlers_(config.siteCount())
{
    batching_ = batchDispatchDefault();
    deliverKernel_ = sim_.events().registerBatchKernel(
        "net.deliver", &Network::deliverBatch, this);
}

void
Network::inject(Message msg)
{
    if (msg.src >= config_.siteCount() || msg.dst >= config_.siteCount())
        panic("Network::inject: site out of range (src=", msg.src,
              " dst=", msg.dst, ")");
    if (pdes_) {
        if (!ownsSite(msg.src)) {
            panic("Network::inject: site ", msg.src, " is owned by LP ",
                  pdes_->lpOfSite(msg.src), ", not this replica's LP ",
                  pdesLp_);
        }
        if (msg.id == 0) {
            msg.id = ((static_cast<MessageId>(msg.src) + 1) << 40)
                | ++pdesSeq_[msg.src];
        }
    } else if (msg.id == 0) {
        msg.id = nextId_++;
    }
    msg.injected = now();
    if (msg.created == 0)
        msg.created = msg.injected;
    ++stats_.injected;

    if (msg.src == msg.dst) {
        // Intra-site traffic uses a single-cycle electrical loopback
        // (section 6.2); it consumes no optical resources.
        deliverAt(msg, now() + cycle());
        return;
    }
    route(std::move(msg));
}

void
Network::deliverAt(Message msg, Tick when)
{
    if (pdes_) {
        // Keyed even when the destination is local: same-tick
        // deliveries must order by message id for every partition,
        // including the degenerate single-LP one the determinism
        // tests compare against.
        static_assert(sizeof(Message) <= pdesMaxPayload,
                      "Message must fit a cross-LP event payload");
        PdesEvent ev;
        ev.when = when;
        ev.key = msg.id;
        ev.apply = &Network::applyDeliver;
        std::memcpy(ev.payload, &msg, sizeof(Message));
        pdesRoute(msg.dst, ev, "net.deliver");
        return;
    }
    if (batching_) {
        std::uint32_t idx;
        if (!deliverFree_.empty()) {
            idx = deliverFree_.back();
            deliverFree_.pop_back();
        } else {
            idx = static_cast<std::uint32_t>(deliverPool_.size());
            deliverPool_.emplace_back();
        }
        deliverPool_[idx] = msg;
        sim_.events().scheduleBatch(when, deliverKernel_, idx);
        return;
    }
    sim_.events().schedule(when, [this, msg]() mutable {
        finishDelivery(msg);
    }, "net.deliver");
}

void
Network::deliverBatch(void *ctx, Tick when,
                      const std::uint32_t *payloads, std::size_t count)
{
    (void)when;
    Network *net = static_cast<Network *>(ctx);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t idx = payloads[i];
        // Copy out and recycle before the handler runs: handlers may
        // inject follow-on traffic that claims the freed pool entry.
        const Message msg = net->deliverPool_[idx];
        net->deliverFree_.push_back(idx);
        net->finishDelivery(msg);
    }
}

void
Network::finishDelivery(Message msg)
{
    msg.delivered = now();
    ++stats_.delivered;
    stats_.bytesDelivered += msg.bytes;
    stats_.latencyNs.sample(ticksToNs(msg.delivered - msg.created));
    if (observer_)
        observer_(msg);
    const Handler &h = handlers_[msg.dst] ? handlers_[msg.dst]
                                          : defaultHandler_;
    if (h)
        h(msg);
}

void
Network::applyDeliver(void *target, const void *payload)
{
    Message msg;
    std::memcpy(&msg, payload, sizeof(Message));
    static_cast<Network *>(target)->finishDelivery(msg);
}

Tick
Network::pdesLookahead() const
{
    return std::max<Tick>(
        MacrochipGeometry::waveguideDelay(config_.sitePitchCm), 1);
}

void
Network::bindPdes(PdesScheduler &sched, std::uint32_t lp)
{
    if (pdes_)
        panic("Network::bindPdes: '", name(), "' is already bound");
    if (&sched.simOf(lp) != &sim_) {
        panic("Network::bindPdes: replica for LP ", lp,
              " was not built on that LP's Simulator");
    }
    if (sched.sitePartition().size() != config_.siteCount()) {
        panic("Network::bindPdes: scheduler partitions ",
              sched.sitePartition().size(), " sites, config has ",
              config_.siteCount());
    }
    if (sched.lpCount() > 1
        && pdesPartition() == PdesPartition::Colocated) {
        panic("network '", name(), "' has globally shared state and "
              "cannot split across ", sched.lpCount(),
              " logical processes; run it colocated on one LP");
    }
    pdes_ = &sched;
    pdesLp_ = lp;
    pdesSeq_.assign(config_.siteCount(), 0);
    sched.setTarget(lp, this);
}

void
Network::pdesRoute(SiteId dst_site, PdesEvent ev, const char *tag)
{
    const std::uint32_t dst_lp = pdes_->lpOfSite(dst_site);
    if (dst_lp == pdesLp_) {
        ev.target = this;
        schedulePdesEvent(sim_.events(), ev, tag);
        return;
    }
    ev.target = pdes_->target(dst_lp);
    if (!ev.target) {
        panic("Network::pdesRoute: LP ", dst_lp,
              " has no bound replica (bindPdes every LP first)");
    }
    pdes_->post(pdesLp_, dst_lp, ev);
}

void
Network::dropPacket(Message msg, const char *reason)
{
    if (retry_.enabled() && msg.attempts + 1u < retry_.maxAttempts) {
        // Retry through route() directly (not inject()) so injection
        // stats count the packet once. Exponential backoff spreads
        // re-attempts out so a transient fault can clear.
        ++msg.attempts;
        ++stats_.retries;
        const Tick backoff = retry_.backoffBase
            << (msg.attempts > 1 ? msg.attempts - 1 : 0);
        sim_.events().schedule(now() + (backoff > 0 ? backoff : 1),
                               [this, msg]() mutable {
            route(std::move(msg));
        }, "net.retry");
        return;
    }
    if (retry_.enabled() || dropHandler_) {
        ++stats_.dropped;
        if (dropHandler_)
            dropHandler_(msg);
        return;
    }
    fatal("network '", name(), "': packet ", msg.id, " (site ",
          msg.src, " -> ", msg.dst, ") undeliverable: ", reason);
}

double
Network::laserWatts() const
{
    double watts = 0.0;
    for (const auto &spec : opticalPower())
        watts += spec.watts();
    return watts;
}

OpticalPath
Network::worstCaseLink() const
{
    double worst = 1.0;
    for (const LaserPowerSpec &spec : opticalPower())
        worst = std::max(worst, spec.lossFactor);
    return unswitchedLinkFor(config_.rows, config_.cols,
                             config_.sitePitchCm)
        .deratedPath(Decibel::fromLinear(worst));
}

LinkFeasibility
Network::feasibility() const
{
    return assessLink(worstCaseLink());
}

double
Network::staticWatts() const
{
    const ComponentCounts counts = componentCounts();
    const double tuning_w = tuningMwPerWavelength * 1e-3
        * static_cast<double>(counts.transmitters + counts.receivers);
    const double switch_w = properties(Component::Switch)
        .staticPower.value * 1e-3
        * static_cast<double>(counts.opticalSwitches);
    return laserWatts() + tuning_w + switch_w;
}

void
Network::primeEnergyModel()
{
    energy_.setStaticWatts(staticWatts());
    // The paper engineers every link to the 17 dB un-switched budget
    // with 4 dB of margin (launch 0 dBm, sensitivity -21 dBm). A
    // laser power-loss factor above the margin's linear equivalent
    // means this topology's extra loss has eaten through the margin
    // and the link no longer closes at base launch power.
    const Decibel margin =
        (launchPower - receiverSensitivity) - unswitchedLinkBudget;
    for (const LaserPowerSpec &spec : opticalPower()) {
        if (spec.lossFactor > margin.linear()) {
            warn_once("network '", name(), "' subnetwork '", spec.name,
                      "': laser power-loss factor ", spec.lossFactor,
                      " exceeds the ", margin.value(),
                      " dB link margin (factor ", margin.linear(),
                      "); links need extra launch power to close");
        }
    }
}

void
Network::registerStats(StatRegistry &registry,
                       const std::string &prefix)
{
    registry.addCounter(prefix + ".injected", stats_.injected);
    registry.addCounter(prefix + ".delivered", stats_.delivered);
    registry.addCounter(prefix + ".bytes", stats_.bytesDelivered);
    registry.addMean(prefix + ".latency_ns", stats_.latencyNs);
    registry.addCounter(prefix + ".dropped", stats_.dropped);
    registry.addCounter(prefix + ".retries", stats_.retries);
    const EnergyModel *e = &energy_;
    registry.add(prefix + ".optical_bits", [e] {
        return static_cast<double>(e->opticalBits());
    });
    registry.add(prefix + ".router_bytes", [e] {
        return static_cast<double>(e->routerBytes());
    });
}

void
Network::registerTelemetry()
{
    statPrefix_ = sim_.telemetry().uniquePrefix(
        "net." + std::string(statName()));
    registerStats(sim_.telemetry(), statPrefix_);
}

} // namespace macrosim
