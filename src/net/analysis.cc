#include "net/analysis.hh"

#include <algorithm>

#include "net/circuit_switched.hh"
#include "net/hermes.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"

namespace macrosim
{

std::vector<ScalingPoint>
analyzeAllNetworks(const MacrochipConfig &cfg)
{
    // Component counts and power are pure functions of the
    // configuration; the networks are built against a throwaway
    // simulator purely to reuse their descriptor code.
    Simulator sim;
    std::vector<ScalingPoint> rows;

    auto add = [&](const Network &net) {
        ScalingPoint p;
        p.network = std::string(net.name());
        p.sites = cfg.siteCount();
        p.wavelengthsPerWaveguide = cfg.wavelengthsPerWaveguide;
        p.peakTBs = cfg.peakBandwidthTBs();
        p.counts = net.componentCounts();
        p.laserWatts = net.laserWatts();
        p.feasibility = net.feasibility();
        p.chipEdgeCm = cfg.sitePitchCm
            * static_cast<double>(std::max(cfg.rows, cfg.cols));
        rows.push_back(std::move(p));
    };

    add(TokenRingCrossbar(sim, cfg));
    add(CircuitSwitchedTorus(sim, cfg));
    add(PointToPointNetwork(sim, cfg));
    add(LimitedPointToPointNetwork(sim, cfg));
    add(TwoPhaseArbitratedNetwork(sim, cfg));
    add(TwoPhaseArbitratedNetwork(sim, cfg, true));
    add(HermesNetwork(sim, cfg));
    return rows;
}

std::uint64_t
electronicPointToPointWires(std::uint32_t sites,
                            std::uint32_t bits_per_link)
{
    // Ordered pairs x link width: the quadratic blow-up that makes
    // electronic full connectivity impractical (section 4.1).
    return static_cast<std::uint64_t>(sites)
        * (sites - 1) * bits_per_link;
}

} // namespace macrosim
