/**
 * @file
 * Limited point-to-point network with electronic routing (paper
 * section 4.6, figure 5).
 *
 * Each site has a direct 8-wavelength / 20 GB/s optical channel to
 * each of its row peers and column peers. Traffic to any other site
 * is forwarded through the single site that is a peer of both — the
 * intersection (src row, dst column) — where one of two per-site 7x7
 * electronic routers converts the packet O-E, switches it, and
 * re-transmits it E-O on a column channel. Every packet thus takes at
 * most one intermediate electronic hop. Router latency is one cycle;
 * router energy is 60 pJ/byte (section 6.3).
 */

#ifndef MACROSIM_NET_LIMITED_PT2PT_HH
#define MACROSIM_NET_LIMITED_PT2PT_HH

#include <unordered_map>
#include <vector>

#include "net/channel.hh"
#include "net/network.hh"

namespace macrosim
{

class LimitedPointToPointNetwork : public Network
{
  public:
    LimitedPointToPointNetwork(Simulator &sim,
                               const MacrochipConfig &config);

    std::string_view
    name() const override
    {
        return "Limited Point-to-Point";
    }

    std::string_view statName() const override { return "lpt2pt"; }

    ComponentCounts componentCounts() const override;
    std::vector<LaserPowerSpec> opticalPower() const override;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) override;

    /** Wavelengths per peer channel (8 -> 20 GB/s). */
    std::uint32_t wavelengthsPerChannel() const { return lambdas_; }

    /** The forwarding site for a non-peer pair. */
    SiteId forwarderFor(SiteId src, SiteId dst) const;

    /** The alternate forwarder: (dst row, src column), reached
     *  column-first through the site's column-to-row router. */
    SiteId alternateForwarderFor(SiteId src, SiteId dst) const;

    /**
     * Mark a site's electronic routers as failed (yield / repair
     * scenarios — the macrochip's motivation is precisely tolerating
     * imperfect silicon). Direct traffic to and from the site still
     * flows; forwarded traffic reroutes through the alternate
     * forwarder. Routing between a pair whose BOTH forwarders have
     * failed is impossible and inject() reports it via fatal().
     */
    void failSiteRouters(SiteId site);

    /** Whether a site's routers are failed. */
    bool
    routersFailed(SiteId site) const
    {
        return failedRouters_[site];
    }

    /** Packets that took the alternate (column-first) route. */
    std::uint64_t reroutedPackets() const { return rerouted_; }

    /** Whether two distinct sites share a row or column. */
    bool
    arePeers(SiteId a, SiteId b) const
    {
        return geometry().sameRow(a, b) || geometry().sameCol(a, b);
    }

    /** Packets that needed an intermediate electronic hop. */
    std::uint64_t forwardedPackets() const { return forwarded_; }

    /** The peer channels (row/column neighbours) are faultable. */
    std::vector<std::pair<SiteId, SiteId>> faultableLinks() const override;

    bool applyLinkHealth(SiteId a, SiteId b,
                         const LinkHealth &health) override;

    /** Site kill / repair toggles the site's electronic routers. */
    bool applySiteHealth(SiteId site, bool dead) override;

    /**
     * Direct channels are written only by their source site's route();
     * a forwarded packet's second leg uses the forwarder's channel,
     * so that leg is shipped to the forwarder's LP as a cross-LP
     * event rather than run at the source. (Forwarder *selection*
     * reads only static health flags — PDES runs are fault-free, so
     * every replica's copy agrees.)
     */
    PdesPartition
    pdesPartition() const override
    {
        return PdesPartition::BySourceSite;
    }

    Tick pdesLookahead() const override;

  protected:
    void route(Message msg) override;

  private:
    OpticalChannel &peerChannel(SiteId src, SiteId dst);

    /** Whether @p via can forward: live routers and live legs. */
    bool forwarderUsable(SiteId src, SiteId via, SiteId dst);

    /** Second (optical) leg of a forwarded packet. */
    void forwardLeg(Message msg, SiteId via);

    /** Cross-LP forward-hop payload: the packet plus its forwarder. */
    struct ForwardHop
    {
        Message msg;
        SiteId via;
    };

    /** PdesEvent apply thunk for forward hops; target is the
     *  forwarder's replica (as Network*). */
    static void applyForward(void *target, const void *payload);

    std::uint32_t lambdas_;
    Tick interfaceOverhead_;
    Tick routerLatency_;
    std::uint64_t forwarded_ = 0;
    std::uint64_t rerouted_ = 0;
    std::vector<bool> failedRouters_;
    /** Direct channels keyed by src * sites + dst (peers only). */
    std::unordered_map<std::uint64_t, OpticalChannel> channels_;
};

} // namespace macrosim

#endif // MACROSIM_NET_LIMITED_PT2PT_HH
