#include "net/hermes.hh"

#include <algorithm>

#include "photonics/link_budget.hh"
#include "sim/logging.hh"

namespace macrosim
{

HermesNetwork::HermesNetwork(Simulator &sim,
                             const MacrochipConfig &config,
                             const HermesParams &params)
    : Network(sim, config),
      clusterRows_(std::min(std::max(params.clusterRows, 1u),
                            config.rows)),
      clusterCols_(std::min(std::max(params.clusterCols, 1u),
                            config.cols)),
      hop_(geometry().ringHopDelay()),
      interfaceOverhead_(config.clockPeriod),
      routerLatency_(config.clockPeriod),
      clusterOf_(config.siteCount()),
      ringPos_(config.siteCount())
{
    ringLambdas_ = params.ringLambdas != 0
        ? params.ringLambdas
        : 2 * config.wavelengthsPerWaveguide
            * clusterRows_ * clusterCols_;
    bridgeLambdas_ = params.bridgeLambdas != 0
        ? params.bridgeLambdas
        : 2 * config.wavelengthsPerWaveguide;

    // Ragged ceil-tiling: a grid that the tile does not divide keeps
    // smaller edge clusters rather than orphaning sites.
    const std::uint32_t tiles_across =
        (config.cols + clusterCols_ - 1) / clusterCols_;
    const std::uint32_t tiles_down =
        (config.rows + clusterRows_ - 1) / clusterRows_;
    const std::uint32_t n_clusters = tiles_across * tiles_down;
    members_.resize(n_clusters);

    for (SiteId s = 0; s < config.siteCount(); ++s) {
        const SiteCoord c = geometry().coordOf(s);
        clusterOf_[s] = (c.row / clusterRows_) * tiles_across
            + (c.col / clusterCols_);
    }

    // Serpentine ring order within each cluster tile, so consecutive
    // ring positions are physically adjacent sites and one ring hop
    // is one site pitch.
    for (std::uint32_t cl = 0; cl < n_clusters; ++cl) {
        const std::uint32_t tile_row = cl / tiles_across;
        const std::uint32_t tile_col = cl % tiles_across;
        const std::uint32_t r0 = tile_row * clusterRows_;
        const std::uint32_t c0 = tile_col * clusterCols_;
        const std::uint32_t r1 =
            std::min(r0 + clusterRows_, config.rows);
        const std::uint32_t c1 =
            std::min(c0 + clusterCols_, config.cols);
        for (std::uint32_t r = r0; r < r1; ++r) {
            if ((r - r0) % 2 == 0) {
                for (std::uint32_t c = c0; c < c1; ++c)
                    members_[cl].push_back(
                        geometry().idOf({r, c}));
            } else {
                for (std::uint32_t c = c1; c > c0; --c)
                    members_[cl].push_back(
                        geometry().idOf({r, c - 1}));
            }
        }
        for (std::uint32_t i = 0;
             i < members_[cl].size(); ++i) {
            ringPos_[members_[cl][i]] = i;
        }
    }

    gateways_.reserve(n_clusters);
    for (std::uint32_t cl = 0; cl < n_clusters; ++cl) {
        if (members_[cl].empty())
            fatal("HermesNetwork: empty cluster ", cl);
        gateways_.push_back(members_[cl].front());
    }
    gatewayDead_.assign(n_clusters, false);

    rings_.reserve(n_clusters);
    for (std::uint32_t cl = 0; cl < n_clusters; ++cl)
        rings_.emplace_back(ringLambdas_, 0);

    bridges_.reserve(static_cast<std::size_t>(n_clusters)
                     * n_clusters);
    for (std::uint32_t a = 0; a < n_clusters; ++a) {
        for (std::uint32_t b = 0; b < n_clusters; ++b) {
            const Tick prop = a == b ? 0
                : geometry().propagationDelay(gateways_[a],
                                              gateways_[b]);
            bridges_.emplace_back(bridgeLambdas_, prop);
        }
    }

    primeEnergyModel();
    registerTelemetry();
}

std::uint32_t
HermesNetwork::ringHops(SiteId src, SiteId dst) const
{
    const std::uint32_t n = clusterSize(clusterOf_[src]);
    const std::uint32_t from = ringPos_[src];
    const std::uint32_t to = ringPos_[dst];
    return ((to + n - from - 1) % n) + 1;
}

std::uint32_t
HermesNetwork::maxClusterSize() const
{
    std::uint32_t m = 0;
    for (const auto &cl : members_)
        m = std::max(m, static_cast<std::uint32_t>(cl.size()));
    return m;
}

double
HermesNetwork::ringLossDb() const
{
    // Every broadcast wavelength passes the off-resonance modulator
    // rings of all cluster members (0.1 dB each) and is power-split
    // 1:N so every member's receiver taps it. Both terms scale with
    // the cluster, not the macrochip — HERMES's scaling claim.
    const double n = static_cast<double>(maxClusterSize());
    return 0.1 * n + Decibel::fromLinear(n).value();
}

std::vector<std::pair<SiteId, SiteId>>
HermesNetwork::faultableLinks() const
{
    std::vector<std::pair<SiteId, SiteId>> links;
    const std::uint32_t n = clusterCount();
    links.reserve(static_cast<std::size_t>(n) * n);
    for (std::uint32_t cl = 0; cl < n; ++cl)
        links.emplace_back(gateways_[cl], gateways_[cl]);
    for (std::uint32_t a = 0; a < n; ++a)
        for (std::uint32_t b = 0; b < n; ++b)
            if (a != b)
                links.emplace_back(gateways_[a], gateways_[b]);
    return links;
}

bool
HermesNetwork::applyLinkHealth(SiteId a, SiteId b,
                               const LinkHealth &health)
{
    if (a >= config().siteCount() || b >= config().siteCount())
        return false;
    const std::uint32_t ca = clusterOf_[a];
    const std::uint32_t cb = clusterOf_[b];
    if (gateways_[ca] != a || gateways_[cb] != b)
        return false;

    OpticalChannel &ch =
        a == b ? rings_[ca] : bridgeAt(ca, cb);
    const std::uint32_t width =
        a == b ? ringLambdas_ : bridgeLambdas_;
    ch.setDown(health.down);
    if (health.bandwidthFraction >= 1.0) {
        ch.maskWavelengths(width);
    } else {
        ch.maskWavelengths(static_cast<std::uint32_t>(
            static_cast<double>(width)
            * health.bandwidthFraction + 0.5));
    }
    return true;
}

bool
HermesNetwork::applySiteHealth(SiteId site, bool dead)
{
    if (site >= config().siteCount())
        return false;
    const std::uint32_t cl = clusterOf_[site];
    if (gateways_[cl] != site)
        return false;
    gatewayDead_[cl] = dead;
    return true;
}

void
HermesNetwork::route(Message msg)
{
    const std::uint32_t cs = clusterOf_[msg.src];
    const std::uint32_t cd = clusterOf_[msg.dst];

    if (cs == cd) {
        // One serialized broadcast on the shared cluster ring; the
        // destination's drop filters peel the packet off after the
        // forward ring walk. The shared medium gives every member
        // the same global transmission order.
        OpticalChannel &ring = rings_[cs];
        if (ring.down()) {
            dropPacket(std::move(msg), "cluster ring down");
            return;
        }
        msg.serialization = ring.serialization(msg.bytes);
        const Tick ser_done =
            ring.transmit(now() + interfaceOverhead_, msg.bytes);
        const Tick arrival = ser_done
            + static_cast<Tick>(ringHops(msg.src, msg.dst)) * hop_;
        chargeOpticalHop(msg);
        deliverAt(std::move(msg), arrival + interfaceOverhead_);
        return;
    }

    if (gatewayDead_[cs] || gatewayDead_[cd]) {
        dropPacket(std::move(msg), "gateway router dead");
        return;
    }
    if (bridgeAt(cs, cd).down()) {
        dropPacket(std::move(msg), "inter-cluster bridge down");
        return;
    }

    if (msg.src == gateways_[cs]) {
        bridgeLeg(std::move(msg));
        return;
    }

    // First leg: broadcast to the source cluster's gateway.
    OpticalChannel &ring = rings_[cs];
    if (ring.down()) {
        dropPacket(std::move(msg), "cluster ring down");
        return;
    }
    msg.serialization = ring.serialization(msg.bytes);
    const Tick ser_done =
        ring.transmit(now() + interfaceOverhead_, msg.bytes);
    const Tick at_gateway = ser_done
        + static_cast<Tick>(ringHops(msg.src, gateways_[cs])) * hop_;
    chargeOpticalHop(msg);
    sim().events().schedule(at_gateway + interfaceOverhead_,
                            [this, msg = std::move(msg)]() mutable {
                                bridgeLeg(std::move(msg));
                            },
                            "net.hermes.bridge");
}

void
HermesNetwork::bridgeLeg(Message msg)
{
    const std::uint32_t cs = clusterOf_[msg.src];
    const std::uint32_t cd = clusterOf_[msg.dst];
    // Re-check: the bridge or a gateway may have failed while the
    // packet crossed the source ring.
    if (gatewayDead_[cs] || gatewayDead_[cd]) {
        dropPacket(std::move(msg), "gateway router dead");
        return;
    }
    OpticalChannel &bridge = bridgeAt(cs, cd);
    if (bridge.down()) {
        dropPacket(std::move(msg), "inter-cluster bridge down");
        return;
    }

    // O-E-O at the source gateway, then the point-to-point flight to
    // the destination gateway.
    energy().countRouterHop(msg.bytes);
    ++bridged_;
    const Tick arrival =
        bridge.transmit(now() + routerLatency_, msg.bytes);
    chargeOpticalHop(msg);

    if (msg.dst == gateways_[cd]) {
        deliverAt(std::move(msg), arrival + interfaceOverhead_);
        return;
    }
    sim().events().schedule(arrival + interfaceOverhead_,
                            [this, msg = std::move(msg)]() mutable {
                                destinationRingLeg(std::move(msg));
                            },
                            "net.hermes.ring");
}

void
HermesNetwork::destinationRingLeg(Message msg)
{
    const std::uint32_t cd = clusterOf_[msg.dst];
    OpticalChannel &ring = rings_[cd];
    if (ring.down()) {
        dropPacket(std::move(msg), "cluster ring down");
        return;
    }
    // O-E-O at the destination gateway, then the final broadcast.
    energy().countRouterHop(msg.bytes);
    const Tick ser_done =
        ring.transmit(now() + routerLatency_, msg.bytes);
    const Tick arrival = ser_done
        + static_cast<Tick>(ringHops(gateways_[cd], msg.dst)) * hop_;
    chargeOpticalHop(msg);
    deliverAt(std::move(msg), arrival + interfaceOverhead_);
}

void
HermesNetwork::registerStats(StatRegistry &registry,
                             const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    registry.add(prefix + ".bridged", [this] {
        return static_cast<double>(bridged_);
    });
    registry.add(prefix + ".ring_occupancy", [this] {
        const Tick t = now();
        if (t == 0 || rings_.empty())
            return 0.0;
        double busy = 0.0;
        for (const OpticalChannel &r : rings_)
            busy += static_cast<double>(r.busyTicks());
        return busy / static_cast<double>(t)
            / static_cast<double>(rings_.size());
    });
    registry.add(prefix + ".bridge_occupancy", [this] {
        const Tick t = now();
        const std::size_t n = clusterCount();
        if (t == 0 || n < 2)
            return 0.0;
        double busy = 0.0;
        for (const OpticalChannel &b : bridges_)
            busy += static_cast<double>(b.busyTicks());
        return busy / static_cast<double>(t)
            / static_cast<double>(n * (n - 1));
    });
}

ComponentCounts
HermesNetwork::componentCounts() const
{
    // Rings: every member both modulates and (broadcast) listens to
    // its cluster's full ring width. Bridges: one Tx/Rx bank per
    // ordered gateway pair. Gateways forward electronically, so each
    // cluster contributes one router and no optical switches exist
    // anywhere — the topology's hardware pitch.
    ComponentCounts c;
    std::uint64_t ring_members = 0;
    for (const auto &cl : members_)
        ring_members += cl.size();
    const std::uint64_t n = clusterCount();
    const std::uint64_t pairs = n * (n > 0 ? n - 1 : 0);

    c.transmitters = ring_members * ringLambdas_
        + pairs * bridgeLambdas_;
    c.receivers = c.transmitters;
    const std::uint64_t wdm = config().wavelengthsPerWaveguide;
    const std::uint64_t ring_guides =
        (ringLambdas_ + wdm - 1) / wdm * 2; // loop + return
    const std::uint64_t bridge_guides =
        (bridgeLambdas_ + wdm - 1) / wdm;
    c.waveguides = n * ring_guides + pairs * bridge_guides;
    c.electronicRouters = n;
    return c;
}

std::vector<LaserPowerSpec>
HermesNetwork::opticalPower() const
{
    // The ring budget pays the broadcast split and ring passes of one
    // *cluster*; the bridge budget is plain un-switched links. Total
    // circulating wavelengths are per-cluster, not per-site-pair, so
    // the laser budget stays flat as the grid grows.
    const std::uint64_t n = clusterCount();
    const std::uint64_t pairs = n * (n > 0 ? n - 1 : 0);
    std::vector<LaserPowerSpec> specs;
    specs.push_back(LaserPowerSpec{
        "Hermes Ring", n * ringLambdas_,
        lossFactorFromExtraLoss(Decibel(ringLossDb()))});
    if (pairs > 0) {
        specs.push_back(LaserPowerSpec{
            "Hermes Bridge", pairs * bridgeLambdas_, 1.0});
    }
    return specs;
}

OpticalPath
HermesNetwork::worstCaseLink() const
{
    // Two physical link classes: a broadcast wavelength spans at most
    // one cluster tile (derated by the split and ring passes), a
    // bridge wavelength spans the whole chip un-switched. The gate
    // assesses whichever is lossier at this scale point.
    const OpticalPath ring =
        unswitchedLinkFor(clusterRows_, clusterCols_,
                          config().sitePitchCm)
            .deratedPath(Decibel(ringLossDb()));
    const OpticalPath bridge =
        unswitchedLinkFor(config().rows, config().cols,
                          config().sitePitchCm);
    return ring.totalLoss() > bridge.totalLoss() ? ring : bridge;
}

} // namespace macrosim
