#include "net/two_phase.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace macrosim
{

TwoPhaseArbitratedNetwork::TwoPhaseArbitratedNetwork(
        Simulator &sim, const MacrochipConfig &config, bool alt,
        const TwoPhaseParams &params)
    : Network(sim, config),
      alt_(alt),
      channelLambdas_(2 * config.wavelengthsPerWaveguide),
      arbSlot_(params.arbSlot),
      switchSetup_(params.switchSetup),
      senderGuard_(params.senderGuard)
{
    rowProp_ = MacrochipGeometry::waveguideDelay(
        static_cast<double>(config.cols - 1) * config.sitePitchCm);
    colProp_ = MacrochipGeometry::waveguideDelay(
        static_cast<double>(config.rows - 1) * config.sitePitchCm);

    notifSer_ = OpticalChannel(1, 0)
        .serialization(params.notificationBytes);

    const std::size_t n_channels =
        static_cast<std::size_t>(config.rows) * config.siteCount();
    chBusyUntil_.assign(n_channels, 0);
    chBusyTicks_.assign(n_channels, 0);
    chLastSender_.assign(n_channels, ~SiteId(0));
    chDown_.assign(n_channels, 0);
    chMasked_.assign(n_channels, 0);
    slotKernel_ = sim.events().registerBatchKernel(
        "net.2phase.slot", &TwoPhaseArbitratedNetwork::slotBatch, this);
    const std::size_t instances = alt_ ? 2 : 1;
    trees_.resize(static_cast<std::size_t>(config.siteCount())
                  * config.cols * instances);
    notifications_.resize(static_cast<std::size_t>(config.rows)
                          * config.cols * instances);
    primeEnergyModel();
    registerTelemetry();
}

void
TwoPhaseArbitratedNetwork::registerStats(StatRegistry &registry,
                                         const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    registry.add(prefix + ".wasted_slots", [this] {
        return static_cast<double>(wastedSlots_);
    });
    registry.add(prefix + ".occupancy", [this] {
        const Tick t = now();
        if (t == 0 || chBusyTicks_.empty())
            return 0.0;
        double busy = 0.0;
        for (const Tick ticks : chBusyTicks_)
            busy += static_cast<double>(ticks);
        return busy / static_cast<double>(t)
            / static_cast<double>(chBusyTicks_.size());
    });
    registry.add(prefix + ".notif_occupancy", [this] {
        const Tick t = now();
        if (t == 0 || notifications_.empty())
            return 0.0;
        double busy = 0.0;
        for (const BusyResource &n : notifications_)
            busy += static_cast<double>(n.busyTicks());
        return busy / static_cast<double>(t)
            / static_cast<double>(notifications_.size());
    });
}

std::vector<std::pair<SiteId, SiteId>>
TwoPhaseArbitratedNetwork::faultableLinks() const
{
    std::vector<std::pair<SiteId, SiteId>> links;
    links.reserve(static_cast<std::size_t>(config().rows)
                  * config().siteCount());
    for (std::uint32_t row = 0; row < config().rows; ++row)
        for (SiteId d = 0; d < config().siteCount(); ++d)
            links.emplace_back(row, d);
    return links;
}

bool
TwoPhaseArbitratedNetwork::applyLinkHealth(SiteId a, SiteId b,
                                           const LinkHealth &health)
{
    if (a >= config().rows || b >= config().siteCount())
        return false;
    const std::size_t ci =
        static_cast<std::size_t>(a) * config().siteCount() + b;
    chDown_[ci] = health.down ? 1 : 0;
    if (health.bandwidthFraction >= 1.0) {
        chMasked_[ci] = 0;
    } else {
        const auto masked = static_cast<std::uint32_t>(
            static_cast<double>(channelLambdas_)
            * health.bandwidthFraction + 0.5);
        chMasked_[ci] = masked < 1 ? 1 : masked;
    }
    return true;
}

void
TwoPhaseArbitratedNetwork::route(Message msg)
{
    arbitrate(std::move(msg), now());
}

void
TwoPhaseArbitratedNetwork::arbitrate(Message msg, Tick post_time)
{
    // Phase 1: the request goes out in the next 0.4 ns arbitration
    // slot on the row's request waveguide and is snooped by the whole
    // arbitration domain one row-flight later. Every site then runs
    // the same round-robin assignment, which we model by reserving
    // the next free data slot on the shared channel (requests are
    // pipelined, so slots are committed immediately and in request
    // order).
    // A dead shared channel cannot be granted at all; fail the
    // packet into the drop/retry path before arbitration.
    const std::size_t ci = channelIndex(msg.src, msg.dst);
    if (chDown_[ci]) {
        dropPacket(std::move(msg), "shared data channel down");
        return;
    }

    const Tick slot_aligned = post_time % arbSlot_ == 0
        ? post_time
        : post_time + (arbSlot_ - post_time % arbSlot_);
    const Tick seen = slot_aligned + arbSlot_ + rowProp_;

    // Phase 2: the column manager posts the switch request on its
    // pre-assigned wavelength of the destination column's single
    // notification waveguide. Grants from this arbitration domain
    // into this column therefore serialize at one 8 B notification
    // (3.2 ns at 20 Gb/s) apiece — the protocol's grant-rate
    // bottleneck. The ALT variant doubles the transmitters, giving
    // each manager a second notification wavelength.
    const std::uint32_t dst_col = geometry().coordOf(msg.dst).col;
    const std::uint32_t src_row = geometry().coordOf(msg.src).row;
    const std::size_t instances = alt_ ? 2 : 1;
    const std::size_t notif_base =
        (static_cast<std::size_t>(src_row) * config().cols + dst_col)
        * instances;
    std::size_t notif = notif_base;
    for (std::size_t i = 1; i < instances; ++i) {
        if (notifications_[notif_base + i].busyUntil()
            < notifications_[notif].busyUntil())
            notif = notif_base + i;
    }
    const Tick notif_done =
        notifications_[notif].reserve(seen, notifSer_) + notifSer_;

    // The row feed switches, the tree and the destination
    // input-select switch settle before the data slot begins.
    const Tick earliest_data = notif_done + colProp_ + switchSetup_;

    const OpticalChannel probe(
        chMasked_[ci] ? chMasked_[ci] : channelLambdas_, 0);
    const Tick ser = probe.serialization(msg.bytes);
    const bool sender_change = chLastSender_[ci] != msg.src;
    chLastSender_[ci] = msg.src;
    const Tick guard = sender_change ? senderGuard_ : 0;
    // BusyResource::reserve over the SoA lanes: commit the slot on
    // the channel's busy-until line and charge its occupancy.
    const Tick line_start = earliest_data > chBusyUntil_[ci]
        ? earliest_data : chBusyUntil_[ci];
    chBusyUntil_[ci] = line_start + ser + guard;
    chBusyTicks_[ci] += ser + guard;
    const Tick slot_start = line_start + guard;

    // Both arbitration messages are 8 B optical control transfers.
    energy().countOpticalTransfer(2 * controlMessageBytes);

    if (batching()) {
        std::uint32_t idx;
        if (!slotFree_.empty()) {
            idx = slotFree_.back();
            slotFree_.pop_back();
        } else {
            idx = static_cast<std::uint32_t>(pendingSlots_.size());
            pendingSlots_.emplace_back();
        }
        PendingSlot &p = pendingSlots_[idx];
        p.msg = std::move(msg);
        p.slotStart = slot_start;
        p.ser = ser;
        sim().events().scheduleBatch(slot_start, slotKernel_, idx);
        return;
    }
    sim().events().schedule(slot_start,
                            [this, msg = std::move(msg), slot_start,
                             ser]() mutable {
                                transmitSlot(std::move(msg), slot_start,
                                             ser);
                            },
                            "net.2phase.slot");
}

void
TwoPhaseArbitratedNetwork::slotBatch(void *ctx, Tick when,
                                     const std::uint32_t *payloads,
                                     std::size_t count)
{
    (void)when;
    auto *net = static_cast<TwoPhaseArbitratedNetwork *>(ctx);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t idx = payloads[i];
        // Move out and recycle first: transmitSlot may re-arbitrate,
        // which claims a pool entry for the rescheduled slot.
        PendingSlot rec = std::move(net->pendingSlots_[idx]);
        net->slotFree_.push_back(idx);
        net->transmitSlot(std::move(rec.msg), rec.slotStart, rec.ser);
    }
}

BusyResource *
TwoPhaseArbitratedNetwork::treeFor(SiteId site, std::uint32_t col,
                                   Tick slot_start, Tick slot_end)
{
    (void)slot_end;
    const std::size_t instances = alt_ ? 2 : 1;
    const std::size_t base = (static_cast<std::size_t>(site)
                              * config().cols + col) * instances;
    for (std::size_t i = 0; i < instances; ++i) {
        if (trees_[base + i].busyUntil() <= slot_start)
            return &trees_[base + i];
    }
    return nullptr;
}

void
TwoPhaseArbitratedNetwork::transmitSlot(Message msg, Tick slot_start,
                                        Tick ser)
{
    const std::uint32_t col = geometry().coordOf(msg.dst).col;
    BusyResource *tree = treeFor(msg.src, col, slot_start,
                                 slot_start + ser);
    if (tree == nullptr) {
        // The distributed arbiters granted this site two overlapping
        // slots toward the same column; this slot is wasted and the
        // packet re-arbitrates from scratch (section 4.3's switch
        // tree contention).
        ++wastedSlots_;
        arbitrate(std::move(msg), slot_start);
        return;
    }
    tree->reserve(slot_start, ser);
    chargeOpticalHop(msg);
    msg.serialization = ser;
    const Tick arrival = slot_start + ser
        + geometry().propagationDelay(msg.src, msg.dst);
    deliverAt(std::move(msg), arrival + cycle());
}

ComponentCounts
TwoPhaseArbitratedNetwork::componentCounts() const
{
    // Table 6 data-network rows. Switch total = per-column 1:8
    // switch trees (7 switches each; doubled in ALT), the feed-point
    // switches on each shared channel's waveguide segments (two
    // parallel segments in the base design, one in ALT), and the
    // destination input-select switches: ~16K base, ~15K ALT.
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    const std::uint64_t rows = config().rows;
    const std::uint64_t row_sites = config().cols;
    const std::uint64_t n_channels = rows * sites; // 512

    c.transmitters = sites * config().txPerSite * (alt_ ? 2 : 1);
    c.receivers = sites * config().rxPerSite;
    // Each shared channel's lambdas fill channelLambdas / WDM-degree
    // physical waveguides, each realized as two parallel feed
    // segments, on both its row run and its column drop: 8 waveguides
    // per channel at Table 4 (16 lambdas / 8 per guide x 2 x 2)
    // -> 4096 (Table 6).
    const std::uint64_t wg_per_channel =
        (channelLambdas_ + config().wavelengthsPerWaveguide - 1)
        / config().wavelengthsPerWaveguide * 2 * 2;
    c.waveguides = n_channels * wg_per_channel;
    const std::uint64_t trees =
        sites * config().cols * (row_sites - 1) * (alt_ ? 2 : 1);
    const std::uint64_t feeds = n_channels * row_sites
        * (alt_ ? 1 : 2);
    const std::uint64_t input_select = n_channels * row_sites;
    c.opticalSwitches = trees + feeds + input_select;
    return c;
}

ComponentCounts
TwoPhaseArbitratedNetwork::arbitrationCounts() const
{
    // Table 6 arbitration row: one request and one notification
    // transmitter per site (128 Tx); every site snoops its full row
    // and column (1024 Rx); two request waveguides per row plus one
    // notification waveguide per column (24 waveguides).
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    c.transmitters = 2 * sites;
    c.receivers = sites * (config().cols + config().rows);
    c.waveguides = 2 * config().rows + config().cols;
    return c;
}

std::vector<LaserPowerSpec>
TwoPhaseArbitratedNetwork::opticalPower() const
{
    // Data: worst case cols-1 switch hops in the base design (7 at
    // Table 4, 7 dB -> 5x) or cols-2 in ALT (the doubled feed drops
    // one stage; 6 dB -> 4x) with twice the wavelengths. The
    // arbitration network's waveguides are snooped by every site of
    // a row/column, requiring max(rows, cols)x input power, but
    // carry only 2 x sites wavelengths (Table 5: ~1 W at 8x8).
    const std::uint64_t data_lambdas = static_cast<std::uint64_t>(
        config().siteCount()) * config().txPerSite * (alt_ ? 2 : 1);
    const std::uint32_t base_hops =
        config().cols > 1 ? config().cols - 1 : 1;
    const std::uint32_t alt_hops =
        config().cols > 2 ? config().cols - 2 : 1;
    const double switch_hops =
        static_cast<double>(alt_ ? alt_hops : base_hops);
    const double snoop_fanout = static_cast<double>(
        std::max(config().rows, config().cols));
    std::vector<LaserPowerSpec> specs;
    specs.push_back(LaserPowerSpec{
        alt_ ? "Two-Phase Data (ALT)" : "Two-Phase Data",
        data_lambdas,
        lossFactorFromExtraLoss(Decibel(switch_hops * 1.0))});
    specs.push_back(LaserPowerSpec{
        "Two-Phase Arbitration", 2 * config().siteCount(),
        snoop_fanout});
    return specs;
}

} // namespace macrosim
