/**
 * @file
 * Two-phase arbitration-based switched optical network (paper
 * section 4.3, figure 4).
 *
 * Data topology: the 8 sites of each row share a 16-wavelength /
 * 40 GB/s optical channel to every destination site (512 shared
 * channels in all). A site reaches the shared channels of a column
 * through a per-column tree of broadband switches, and is therefore
 * limited to one in-flight transmission per destination column.
 *
 * Arbitration: requests are posted in 0.4 ns slots on a per-row
 * request waveguide (each site owns a pre-assigned wavelength, so
 * posting never contends) and snooped by the whole arbitration
 * domain; because the macrochip is mesochronous, every site runs the
 * same round-robin slot assignment and reaches the same grant
 * decision. The destination column's manager then posts a switch
 * notification on the column's notification waveguide one slot ahead
 * of the data slot so row switches, the tree and the destination's
 * input-select switch are set in time.
 *
 * The base design's distributed slot assignment is oblivious to
 * switch-tree state: when a site holds overlapping grants toward two
 * sites of the same column, one data slot is unusable and the
 * transfer must re-arbitrate — the "switch tree contention" that
 * limits the base network to ~7.5% of peak on uniform traffic
 * (section 6.1). The ALT variant doubles the switch trees (and the
 * laser power) to cut those collisions (section 4.3).
 */

#ifndef MACROSIM_NET_TWO_PHASE_HH
#define MACROSIM_NET_TWO_PHASE_HH

#include <vector>

#include "net/channel.hh"
#include "net/network.hh"

namespace macrosim
{

/**
 * Tunable protocol parameters of the two-phase network; the defaults
 * are the DESIGN.md modelling choices. Exposed so ablation benches
 * can quantify how sensitive the figure 6 saturation point is to the
 * constants the paper leaves open.
 */
struct TwoPhaseParams
{
    /** Arbitration request slot (section 4.3: "about 0.4 ns"). */
    Tick arbSlot = 400;
    /** Broadband switch settling time. */
    Tick switchSetup = 1 * tickNs;
    /** Channel dead time when the transmitter changes. */
    Tick senderGuard = 1 * tickNs;
    /** Switch-request notification size on the column manager's
     *  wavelength (8 B at 20 Gb/s = 3.2 ns per grant). */
    std::uint32_t notificationBytes = controlMessageBytes;
};

class TwoPhaseArbitratedNetwork : public Network
{
  public:
    /**
     * @param alt Build the "2-phase Arb ALT" variant: two switch
     *        trees per (site, column), a second notification
     *        wavelength per column manager, and twice the laser
     *        power.
     */
    TwoPhaseArbitratedNetwork(Simulator &sim,
                              const MacrochipConfig &config,
                              bool alt = false,
                              const TwoPhaseParams &params = {});

    std::string_view
    name() const override
    {
        return alt_ ? "2-Phase Arb. ALT" : "2-Phase Arb.";
    }

    bool isAlt() const { return alt_; }

    std::string_view
    statName() const override
    {
        return alt_ ? "2phase_alt" : "2phase";
    }

    ComponentCounts componentCounts() const override;
    std::vector<LaserPowerSpec> opticalPower() const override;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) override;

    /** Component counts of the separate arbitration network. */
    ComponentCounts arbitrationCounts() const;

    /** Wavelengths per shared data channel (16 -> 40 GB/s). */
    std::uint32_t channelLambdas() const { return channelLambdas_; }

    /** Data slots that were granted but unusable (tree busy). */
    std::uint64_t wastedSlots() const { return wastedSlots_; }

    /**
     * Fault granularity: the 512 shared data channels, keyed
     * (arbitration-domain row, destination site) — the first element
     * is a row index, not a site id.
     */
    std::vector<std::pair<SiteId, SiteId>> faultableLinks() const override;

    bool applyLinkHealth(SiteId a, SiteId b,
                         const LinkHealth &health) override;

    /** Row gateways arbitrate shared column channels — phase-two
     *  queues are written by whole rows, not single sites. */
    PdesPartition
    pdesPartition() const override
    {
        return PdesPartition::Colocated;
    }

  protected:
    void route(Message msg) override;

  private:
    /** A granted data slot waiting for its start tick; pooled so the
     *  batched slot kernel's payload is just an index. */
    struct PendingSlot
    {
        Message msg;
        Tick slotStart = 0;
        Tick ser = 0;
    };

    /** Index of the shared channel (row of src, destination). */
    std::size_t
    channelIndex(SiteId src, SiteId dst) const
    {
        return static_cast<std::size_t>(geometry().coordOf(src).row)
            * config().siteCount() + dst;
    }

    /** Post a request and reserve its data slot (pipelined arb). */
    void arbitrate(Message msg, Tick post_time);

    /** Attempt the granted transmission; re-arbitrate on collision. */
    void transmitSlot(Message msg, Tick slot_start, Tick ser);

    /** Batch kernel draining a tick's worth of granted slots;
     *  payloads index pendingSlots_. */
    static void slotBatch(void *ctx, Tick when,
                          const std::uint32_t *payloads,
                          std::size_t count);

    /** Switch trees for (site, column); alt has two per pair. */
    BusyResource *treeFor(SiteId site, std::uint32_t col,
                          Tick slot_start, Tick slot_end);

    bool alt_;
    std::uint32_t channelLambdas_;
    Tick arbSlot_;       ///< 0.4 ns request slot.
    Tick rowProp_;       ///< Request flight along a full row.
    Tick colProp_;       ///< Notification flight along a column.
    Tick notifSer_;      ///< 8 B switch request on one wavelength.
    Tick switchSetup_;   ///< Broadband switch settling time.
    Tick senderGuard_;   ///< Channel dead time on sender change.
    std::uint64_t wastedSlots_ = 0;

    /** Shared-channel state (rows x sites, index channelIndex()) as
     *  parallel arrays: the per-message slot commit and the per-dump
     *  occupancy scan each touch exactly one field across all 512
     *  channels, so structure-of-arrays keeps those passes on dense,
     *  vectorizable lanes instead of striding through records. The
     *  busy-until/busy-ticks pair follows BusyResource::reserve()
     *  semantics exactly. */
    std::vector<Tick> chBusyUntil_;
    std::vector<Tick> chBusyTicks_;
    std::vector<SiteId> chLastSender_;
    std::vector<std::uint8_t> chDown_;       ///< Channel unusable.
    /** Masked channel width; 0 means the full width. */
    std::vector<std::uint32_t> chMasked_;

    /** Granted-slot pool + free list for the batched slot path. */
    std::vector<PendingSlot> pendingSlots_;
    std::vector<std::uint32_t> slotFree_;
    std::uint16_t slotKernel_ = 0;

    std::vector<BusyResource> trees_;        // site x col x instances
    /** Column managers' notification wavelengths: one per
     *  (arbitration domain row, destination column) in the base
     *  design, two in ALT. This is the grant-rate bottleneck that
     *  limits the base network to ~7.5% of peak. */
    std::vector<BusyResource> notifications_;
};

} // namespace macrosim

#endif // MACROSIM_NET_TWO_PHASE_HH
