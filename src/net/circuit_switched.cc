#include "net/circuit_switched.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace macrosim
{

CircuitSwitchedTorus::CircuitSwitchedTorus(Simulator &sim,
                                           const MacrochipConfig &config,
                                           std::uint32_t gateways_per_site)
    : Network(sim, config),
      gatewaysPerSite_(gateways_per_site),
      circuitLambdas_(config.txPerSite / gateways_per_site),
      ctrlRouterDelay_(config.clockPeriod),
      hopPropagation_(MacrochipGeometry::waveguideDelay(
          config.sitePitchCm)),
      deadSites_(config.siteCount(), false),
      freeGateways_(config.siteCount(), gateways_per_site),
      waiting_(config.siteCount()),
      ctrlRouters_(config.siteCount())
{
    if (gateways_per_site == 0 || circuitLambdas_ == 0)
        fatal("CircuitSwitchedTorus: invalid gateway partitioning");
    // The low-bandwidth optical control network runs two wavelengths
    // per site (5 B/ns): a 1.6 ns store-and-forward per 8 B setup
    // packet at each switch point. This reproduces the paper's ~2.5%
    // sustained bandwidth: on uniform traffic each setup crosses
    // ~4.3 control routers, so routers saturate near 2.5-3% of the
    // 320 B/ns per-site peak.
    ctrlSerialization_ = OpticalChannel(2, 0)
        .serialization(controlMessageBytes);
    dataSerialization64_ = OpticalChannel(circuitLambdas_, 0)
        .serialization(64);
    primeEnergyModel();
    registerTelemetry();
}

void
CircuitSwitchedTorus::registerStats(StatRegistry &registry,
                                    const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    registry.add(prefix + ".circuits", [this] {
        return static_cast<double>(circuits_);
    });
    registry.add(prefix + ".reroutes", [this] {
        return static_cast<double>(reroutes_);
    });
    // The serial per-site control routers are this network's
    // bottleneck; their mean occupancy shows how close the setup
    // plane is to saturation.
    registry.add(prefix + ".ctrl_occupancy", [this] {
        const Tick t = now();
        if (t == 0 || ctrlRouters_.empty())
            return 0.0;
        double busy = 0.0;
        for (const BusyResource &r : ctrlRouters_)
            busy += static_cast<double>(r.busyTicks());
        return busy / static_cast<double>(t)
            / static_cast<double>(ctrlRouters_.size());
    });
}

std::vector<SiteId>
CircuitSwitchedTorus::torusPath(SiteId src, SiteId dst) const
{
    std::vector<SiteId> path;
    torusPathInto(src, dst, path);
    return path;
}

std::vector<SiteId>
CircuitSwitchedTorus::torusPathYX(SiteId src, SiteId dst) const
{
    std::vector<SiteId> path;
    torusPathYXInto(src, dst, path);
    return path;
}

void
CircuitSwitchedTorus::torusPathInto(SiteId src, SiteId dst,
                                    std::vector<SiteId> &path) const
{
    // Dimension-ordered (X then Y) routing with minimal wraparound
    // direction in each dimension; yields intermediate switch
    // points, excluding both endpoints. Appends into @p path so a
    // pooled vector's capacity is reused circuit after circuit.
    path.clear();
    SiteCoord cur = geometry().coordOf(src);
    const SiteCoord goal = geometry().coordOf(dst);
    const std::uint32_t n_cols = geometry().cols();
    const std::uint32_t n_rows = geometry().rows();

    auto step = [](std::uint32_t from, std::uint32_t to,
                   std::uint32_t n) -> std::uint32_t {
        if (from == to)
            return from;
        const std::uint32_t fwd = (to + n - from) % n;
        return (fwd <= n - fwd) ? (from + 1) % n : (from + n - 1) % n;
    };

    while (cur.col != goal.col) {
        cur.col = step(cur.col, goal.col, n_cols);
        if (cur.col != goal.col || cur.row != goal.row)
            path.push_back(geometry().idOf(cur));
    }
    while (cur.row != goal.row) {
        cur.row = step(cur.row, goal.row, n_rows);
        if (cur.row != goal.row)
            path.push_back(geometry().idOf(cur));
    }
}

void
CircuitSwitchedTorus::torusPathYXInto(SiteId src, SiteId dst,
                                      std::vector<SiteId> &path) const
{
    // Same minimal-wraparound walk, dimensions in the other order (Y
    // then X) — the alternate route when the XY path crosses a dead
    // switch site.
    path.clear();
    SiteCoord cur = geometry().coordOf(src);
    const SiteCoord goal = geometry().coordOf(dst);
    const std::uint32_t n_cols = geometry().cols();
    const std::uint32_t n_rows = geometry().rows();

    auto step = [](std::uint32_t from, std::uint32_t to,
                   std::uint32_t n) -> std::uint32_t {
        if (from == to)
            return from;
        const std::uint32_t fwd = (to + n - from) % n;
        return (fwd <= n - fwd) ? (from + 1) % n : (from + n - 1) % n;
    };

    while (cur.row != goal.row) {
        cur.row = step(cur.row, goal.row, n_rows);
        if (cur.row != goal.row || cur.col != goal.col)
            path.push_back(geometry().idOf(cur));
    }
    while (cur.col != goal.col) {
        cur.col = step(cur.col, goal.col, n_cols);
        if (cur.col != goal.col)
            path.push_back(geometry().idOf(cur));
    }
}

std::uint32_t
CircuitSwitchedTorus::allocSetup(Message &&msg)
{
    std::uint32_t idx;
    if (!setupFree_.empty()) {
        idx = setupFree_.back();
        setupFree_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(setupPool_.size());
        setupPool_.emplace_back();
    }
    PendingSetup &ps = setupPool_[idx];
    ps.msg = std::move(msg);
    ps.hopIdx = 0;
    return idx;
}

void
CircuitSwitchedTorus::freeSetup(std::uint32_t idx)
{
    PendingSetup &ps = setupPool_[idx];
    ps.path.clear(); // keeps capacity for the next circuit
    ps.hopIdx = 0;
    setupFree_.push_back(idx);
}

bool
CircuitSwitchedTorus::pathBlocked(const std::vector<SiteId> &path) const
{
    return std::any_of(path.begin(), path.end(), [this](SiteId s) {
        return deadSites_[s];
    });
}

bool
CircuitSwitchedTorus::applySiteHealth(SiteId site, bool dead)
{
    if (site >= config().siteCount())
        return false;
    deadSites_[site] = dead;
    return true;
}

void
CircuitSwitchedTorus::route(Message msg)
{
    const SiteId src = msg.src;
    waiting_[src].push_back(std::move(msg));
    dispatch(src);
}

void
CircuitSwitchedTorus::dispatch(SiteId site)
{
    while (freeGateways_[site] > 0 && !waiting_[site].empty()) {
        Message msg = std::move(waiting_[site].front());
        waiting_[site].pop_front();

        // Select the circuit's switch path before consuming a
        // gateway: the XY route, or the YX alternate when the XY
        // walk would program a dead switch site. With both routes
        // blocked the pair is unreachable this attempt.
        const std::uint32_t su = allocSetup(std::move(msg));
        PendingSetup &ps = setupPool_[su];
        torusPathInto(ps.msg.src, ps.msg.dst, ps.path);
        if (pathBlocked(ps.path)) {
            torusPathYXInto(ps.msg.src, ps.msg.dst, ps.path);
            if (pathBlocked(ps.path)) {
                Message doomed = std::move(ps.msg);
                freeSetup(su);
                dropPacket(std::move(doomed),
                           "both torus paths cross dead switch sites");
                continue;
            }
            ++reroutes_;
        }
        --freeGateways_[site];

        // Launch the setup packet: serialized by the source's
        // control transmitter, then it flies to the first switch
        // point.
        const Tick depart =
            ctrlRouters_[site].reserve(now(), ctrlSerialization_)
            + ctrlSerialization_;
        sim().events().schedule(depart + hopPropagation_,
                                [this, su] { setupHop(su); },
                                "net.cswitch.setup");
    }
}

void
CircuitSwitchedTorus::setupHop(std::uint32_t setup_idx)
{
    PendingSetup &ps = setupPool_[setup_idx];
    if (ps.hopIdx >= ps.path.size()) {
        establish(setup_idx);
        return;
    }
    // Store-and-forward at this switch point: queue for the site's
    // serial control router, re-serialize, program the 4x4 switch,
    // fly onward.
    const SiteId via = ps.path[ps.hopIdx];
    ++ps.hopIdx;
    const Tick depart =
        ctrlRouters_[via].reserve(now(), ctrlSerialization_)
        + ctrlSerialization_ + ctrlRouterDelay_;
    sim().events().schedule(depart + hopPropagation_,
                            [this, setup_idx] { setupHop(setup_idx); },
                            "net.cswitch.setup");
}

void
CircuitSwitchedTorus::establish(std::uint32_t setup_idx)
{
    PendingSetup &ps = setupPool_[setup_idx];
    const std::size_t path_hops = ps.path.size();
    Message msg = std::move(ps.msg);
    freeSetup(setup_idx);

    // The acknowledgment flies back over the now-configured circuit:
    // pure propagation plus one cycle at each end.
    const Tick path_flight =
        static_cast<Tick>(path_hops + 1) * hopPropagation_;
    const Tick ack_at_src = now() + path_flight + 2 * ctrlRouterDelay_;

    // Data streams over the circuit at its full width, then the
    // teardown message releases the gateway.
    const Tick data_ser = OpticalChannel(circuitLambdas_, 0)
        .serialization(msg.bytes);
    msg.serialization = data_ser;
    const Tick data_sent = ack_at_src + data_ser;
    const Tick delivered = data_sent + path_flight;
    const Tick gateway_free = data_sent + ctrlSerialization_;

    ++circuits_;
    chargeOpticalHop(msg); // data transfer
    // Control traffic (setup + ack + teardown) is three 8 B optical
    // messages.
    energy().countOpticalTransfer(3 * controlMessageBytes);

    const SiteId src = msg.src;
    sim().events().schedule(gateway_free, [this, src] {
        ++freeGateways_[src];
        dispatch(src);
    }, "net.cswitch.release");
    deliverAt(std::move(msg), delivered);
}

ComponentCounts
CircuitSwitchedTorus::componentCounts() const
{
    // Table 6: 8192 Tx / 8192 Rx / 2048 waveguides (64 waveguide
    // loops between each pair of site rows) / 1024 4x4 switches
    // (16 per site).
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    c.transmitters = sites * config().txPerSite;
    c.receivers = sites * config().rxPerSite;
    c.waveguides = sites
        * (config().txPerSite / config().wavelengthsPerWaveguide) * 2;
    c.opticalSwitches = sites * 16;
    return c;
}

std::vector<LaserPowerSpec>
CircuitSwitchedTorus::opticalPower() const
{
    // Worst-case path: 2 x (rows + cols) - 1 hops through 4x4
    // switches at an aggressive 0.5 dB each — 31 hops / ~15 dB on
    // the 8x8 grid, where the paper budgets a 30x laser power
    // increase (Table 5: 245 W). Larger grids scale the budget by
    // the extra switch loss in dB, anchored so 8x8 reproduces the
    // paper's 30x exactly.
    const std::uint64_t lambdas = static_cast<std::uint64_t>(
        config().siteCount()) * config().txPerSite;
    const double hops =
        2.0 * (config().rows + config().cols) - 1.0;
    const double loss_factor = 30.0
        * lossFactorFromExtraLoss(Decibel(0.5 * (hops - 31.0)));
    return {LaserPowerSpec{"Circuit-Switched", lambdas, loss_factor}};
}

} // namespace macrosim
