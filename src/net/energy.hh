/**
 * @file
 * Network energy model (paper section 6.3).
 *
 * Static power is dominated by the laser budget of Table 5, plus ring
 * tuning (0.1 mW per tuned wavelength) and switch bias (0.5 mW per
 * switch). Dynamic energy is charged per transferred bit: 35 fJ at
 * the modulator and 65 fJ at the receiver (the 50 fJ/bit laser figure
 * of Table 1 is the static laser power expressed per bit at full
 * rate, so it lives in the static term, not here). The limited
 * point-to-point network additionally charges 60 pJ per byte switched
 * through an electronic router (section 6.3, citing Firefly).
 *
 * EDP is (total energy) x (runtime), as in figure 10.
 */

#ifndef MACROSIM_NET_ENERGY_HH
#define MACROSIM_NET_ENERGY_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace macrosim
{

class EnergyModel
{
  public:
    /** Dynamic optical transceiver energy: 35 + 65 fJ per bit. */
    static constexpr double transceiverFjPerBit = 35.0 + 65.0;

    /** Electronic router switching energy: 60 pJ per byte. */
    static constexpr double routerPjPerByte = 60.0;

    explicit EnergyModel(double static_watts = 0.0)
        : staticWatts_(static_watts)
    {}

    void setStaticWatts(double w) { staticWatts_ = w; }
    double staticWatts() const { return staticWatts_; }

    /** Charge one optical hop of @p bytes (modulate + receive). */
    void
    countOpticalTransfer(std::uint64_t bytes)
    {
        opticalBits_ += bytes * 8;
    }

    /** Charge one electronic router traversal of @p bytes. */
    void
    countRouterHop(std::uint64_t bytes)
    {
        routerBytes_ += bytes;
    }

    /** Dynamic transceiver energy so far, joules. */
    double
    opticalDynamicJoules() const
    {
        return static_cast<double>(opticalBits_) * transceiverFjPerBit
            * 1e-15;
    }

    /** Electronic router energy so far, joules. */
    double
    routerJoules() const
    {
        return static_cast<double>(routerBytes_) * routerPjPerByte
            * 1e-12;
    }

    /** Static energy integrated over @p sim_time, joules. */
    double
    staticJoules(Tick sim_time) const
    {
        return staticWatts_ * ticksToNs(sim_time) * 1e-9;
    }

    double
    totalJoules(Tick sim_time) const
    {
        return staticJoules(sim_time) + opticalDynamicJoules()
            + routerJoules();
    }

    /** Energy-delay product over a run of length @p runtime. */
    double
    edp(Tick runtime) const
    {
        return totalJoules(runtime) * ticksToNs(runtime) * 1e-9;
    }

    std::uint64_t opticalBits() const { return opticalBits_; }
    std::uint64_t routerBytes() const { return routerBytes_; }

    void
    reset()
    {
        opticalBits_ = 0;
        routerBytes_ = 0;
    }

  private:
    double staticWatts_;
    std::uint64_t opticalBits_ = 0;
    std::uint64_t routerBytes_ = 0;
};

} // namespace macrosim

#endif // MACROSIM_NET_ENERGY_HH
