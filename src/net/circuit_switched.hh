/**
 * @file
 * Circuit-switched optical torus (paper section 4.5; the non-blocking
 * torus of Petracca et al. adapted to the macrochip).
 *
 * Each site is a torus node with 4x4 optical switches (16 per site).
 * Before any data moves, a path-setup message walks the XY torus
 * route hop by hop on a low-bandwidth *optical* control network (the
 * macrochip has no active substrate for an electronic one), setting
 * each switch point; an acknowledgment returns along the freshly
 * configured circuit; only then does the source stream data at the
 * circuit's full width; a teardown message releases the path. For
 * 64-byte cache-line transfers the setup round trip dominates, which
 * is why this network sustains only ~2.5% of peak (section 6.1).
 *
 * Modelling notes (documented in DESIGN.md): the torus is
 * non-blocking, so established circuits do not contend for data
 * waveguides; contention appears at each site's serial control
 * router (store-and-forward of 8 B setup packets on a two-wavelength
 * control channel) and at the source's limited pool of circuit
 * gateways ("host access points"). The control walk is simulated
 * hop by hop with events, so control-router queueing is FIFO in
 * arrival order. Crosstalk at waveguide crossings is neglected, as
 * in the paper.
 */

#ifndef MACROSIM_NET_CIRCUIT_SWITCHED_HH
#define MACROSIM_NET_CIRCUIT_SWITCHED_HH

#include <deque>
#include <vector>

#include "net/channel.hh"
#include "net/network.hh"

namespace macrosim
{

class CircuitSwitchedTorus : public Network
{
  public:
    /**
     * @param gateways_per_site Concurrent circuits a site can source;
     *        the site's 128 transmitters are partitioned among them,
     *        so each circuit is txPerSite/gateways wavelengths wide.
     */
    CircuitSwitchedTorus(Simulator &sim, const MacrochipConfig &config,
                         std::uint32_t gateways_per_site = 4);

    std::string_view name() const override { return "Circuit-Switched"; }
    std::string_view statName() const override { return "cswitch"; }

    ComponentCounts componentCounts() const override;
    std::vector<LaserPowerSpec> opticalPower() const override;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) override;

    /** Data-path width of one circuit, in wavelengths. */
    std::uint32_t circuitLambdas() const { return circuitLambdas_; }

    /** XY-with-wraparound torus route, intermediate sites only. */
    std::vector<SiteId> torusPath(SiteId src, SiteId dst) const;

    /** The YX alternate route used when the XY path crosses a dead
     *  switch site. */
    std::vector<SiteId> torusPathYX(SiteId src, SiteId dst) const;

    /** Circuits fully completed (setup + data + teardown). */
    std::uint64_t circuitsCompleted() const { return circuits_; }

    /** Circuits that re-selected the YX path around a dead site. */
    std::uint64_t reroutedCircuits() const { return reroutes_; }

    /** Site kill / repair marks the site's switch row unusable as an
     *  intermediate hop; circuits re-select around it. */
    bool applySiteHealth(SiteId site, bool dead) override;

    /** The switch fabric's configuration is one global resource —
     *  circuit setup and teardown serialize every site. */
    PdesPartition
    pdesPartition() const override
    {
        return PdesPartition::Colocated;
    }

  protected:
    void route(Message msg) override;

  private:
    /** Whether a setup walk along @p path would hit a dead site. */
    bool pathBlocked(const std::vector<SiteId> &path) const;

    /** Dispatch queued circuits onto free gateways of @p site. */
    void dispatch(SiteId site);

    /**
     * An in-flight circuit setup. Pooled (free-listed) so the hop
     * events capture just [this, index] — a Message plus a path
     * vector would blow the InlineCallback budget — and so the path
     * vector's capacity is recycled across circuits: steady-state
     * setup walks allocate nothing.
     */
    struct PendingSetup
    {
        Message msg{};
        std::vector<SiteId> path;
        std::size_t hopIdx = 0;
    };

    /** Pool a setup record for @p msg (path left empty). */
    std::uint32_t allocSetup(Message &&msg);
    void freeSetup(std::uint32_t idx);

    /** Append the XY / YX route to @p path (cleared first). */
    void torusPathInto(SiteId src, SiteId dst,
                       std::vector<SiteId> &path) const;
    void torusPathYXInto(SiteId src, SiteId dst,
                         std::vector<SiteId> &path) const;

    /** Continue setup @p setup_idx: the packet just reached its
     *  current hop (establishes once the path is exhausted). */
    void setupHop(std::uint32_t setup_idx);

    /** Setup reached the destination: ack, stream data, tear down,
     *  and retire the pooled record. */
    void establish(std::uint32_t setup_idx);

    std::uint32_t gatewaysPerSite_;
    std::uint32_t circuitLambdas_;
    Tick ctrlSerialization_; ///< 8 B on the 2-lambda control channel.
    Tick ctrlRouterDelay_;   ///< Per-hop control processing (1 cycle).
    Tick hopPropagation_;    ///< Site-to-site flight time (0.25 ns).
    Tick dataSerialization64_; ///< Cached for tests.
    std::uint64_t circuits_ = 0;
    std::uint64_t reroutes_ = 0;

    /** Sites whose switch row is dead (fault model). */
    std::vector<bool> deadSites_;

    /** Free circuit gateways per site. */
    std::vector<std::uint32_t> freeGateways_;
    /** Circuits waiting for a gateway, per site. */
    std::vector<std::deque<Message>> waiting_;
    /** Per-site serial control router. */
    std::vector<BusyResource> ctrlRouters_;

    /** In-flight setup records (deque: stable across pool growth)
     *  plus their free list. */
    std::deque<PendingSetup> setupPool_;
    std::vector<std::uint32_t> setupFree_;
};

} // namespace macrosim

#endif // MACROSIM_NET_CIRCUIT_SWITCHED_HH
