#include "net/limited_pt2pt.hh"

#include <cstring>

#include "sim/logging.hh"

namespace macrosim
{

LimitedPointToPointNetwork::LimitedPointToPointNetwork(
        Simulator &sim, const MacrochipConfig &config)
    : Network(sim, config),
      lambdas_(config.wavelengthsPerWaveguide),
      interfaceOverhead_(config.clockPeriod),
      routerLatency_(config.clockPeriod),
      failedRouters_(config.siteCount(), false)
{
    const auto n = config.siteCount();
    for (SiteId s = 0; s < n; ++s) {
        for (SiteId d = 0; d < n; ++d) {
            if (s == d || !arePeers(s, d))
                continue;
            channels_.emplace(
                static_cast<std::uint64_t>(s) * n + d,
                OpticalChannel(lambdas_,
                               geometry().propagationDelay(s, d)));
        }
    }
    primeEnergyModel();
    registerTelemetry();
}

void
LimitedPointToPointNetwork::registerStats(StatRegistry &registry,
                                          const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    registry.add(prefix + ".forwarded", [this] {
        return static_cast<double>(forwarded_);
    });
    registry.add(prefix + ".rerouted", [this] {
        return static_cast<double>(rerouted_);
    });
    registry.add(prefix + ".occupancy", [this] {
        const Tick t = now();
        if (t == 0 || channels_.empty())
            return 0.0;
        double busy = 0.0;
        for (const auto &[key, ch] : channels_)
            busy += static_cast<double>(ch.busyTicks());
        return busy / static_cast<double>(t)
            / static_cast<double>(channels_.size());
    });
}

OpticalChannel &
LimitedPointToPointNetwork::peerChannel(SiteId src, SiteId dst)
{
    const auto key = static_cast<std::uint64_t>(src)
        * config().siteCount() + dst;
    auto it = channels_.find(key);
    if (it == channels_.end())
        panic("LimitedPointToPoint: no direct channel ", src, "->",
              dst);
    return it->second;
}

SiteId
LimitedPointToPointNetwork::forwarderFor(SiteId src, SiteId dst) const
{
    // The row-to-column router of the site at (src row, dst column)
    // is a peer of both endpoints. (The symmetric choice through
    // (dst row, src column) would use the column-to-row router; the
    // paper does not specify a policy, so we route row-first.)
    const SiteCoord s = geometry().coordOf(src);
    const SiteCoord d = geometry().coordOf(dst);
    return geometry().idOf({s.row, d.col});
}

SiteId
LimitedPointToPointNetwork::alternateForwarderFor(SiteId src,
                                                  SiteId dst) const
{
    const SiteCoord s = geometry().coordOf(src);
    const SiteCoord d = geometry().coordOf(dst);
    return geometry().idOf({d.row, s.col});
}

void
LimitedPointToPointNetwork::failSiteRouters(SiteId site)
{
    if (site >= config().siteCount())
        fatal("failSiteRouters: site ", site, " out of range");
    failedRouters_[site] = true;
}

std::vector<std::pair<SiteId, SiteId>>
LimitedPointToPointNetwork::faultableLinks() const
{
    std::vector<std::pair<SiteId, SiteId>> links;
    const auto n = config().siteCount();
    for (SiteId s = 0; s < n; ++s)
        for (SiteId d = 0; d < n; ++d)
            if (s != d && arePeers(s, d))
                links.emplace_back(s, d);
    return links;
}

bool
LimitedPointToPointNetwork::applyLinkHealth(SiteId a, SiteId b,
                                            const LinkHealth &health)
{
    if (a == b || a >= config().siteCount()
        || b >= config().siteCount() || !arePeers(a, b)) {
        return false;
    }
    OpticalChannel &ch = peerChannel(a, b);
    ch.setDown(health.down);
    ch.maskWavelengths(static_cast<std::uint32_t>(
        static_cast<double>(lambdas_) * health.bandwidthFraction + 0.5));
    return true;
}

bool
LimitedPointToPointNetwork::applySiteHealth(SiteId site, bool dead)
{
    if (site >= config().siteCount())
        return false;
    failedRouters_[site] = dead;
    return true;
}

bool
LimitedPointToPointNetwork::forwarderUsable(SiteId src, SiteId via,
                                            SiteId dst)
{
    return !failedRouters_[via] && !peerChannel(src, via).down()
        && !peerChannel(via, dst).down();
}

void
LimitedPointToPointNetwork::route(Message msg)
{
    if (arePeers(msg.src, msg.dst)) {
        OpticalChannel &ch = peerChannel(msg.src, msg.dst);
        if (ch.down()) {
            dropPacket(std::move(msg), "peer channel down");
            return;
        }
        msg.serialization = ch.serialization(msg.bytes);
        const Tick arrival = ch.transmit(now() + interfaceOverhead_,
                                         msg.bytes);
        chargeOpticalHop(msg);
        deliverAt(msg, arrival + interfaceOverhead_);
        return;
    }

    // Two-hop path through the forwarding peer: optical to the
    // forwarder, O-E, one-cycle electronic route, E-O, optical to the
    // destination. A failed forwarder (dead routers or a dead leg
    // channel) is routed around through the alternate (column-first)
    // intersection site; with both intersections unusable, the pair
    // is disconnected and the packet falls to the drop/retry path.
    SiteId via = forwarderFor(msg.src, msg.dst);
    if (!forwarderUsable(msg.src, via, msg.dst)) {
        via = alternateForwarderFor(msg.src, msg.dst);
        if (!forwarderUsable(msg.src, via, msg.dst)) {
            dropPacket(std::move(msg),
                       "both forwarders for the pair are down");
            return;
        }
        ++rerouted_;
    }
    ++forwarded_;
    OpticalChannel &first = peerChannel(msg.src, via);
    msg.serialization = first.serialization(msg.bytes);
    const Tick at_via = first.transmit(now() + interfaceOverhead_,
                                       msg.bytes);
    chargeOpticalHop(msg);
    if (pdesBound()) {
        // The second leg transmits on the forwarder's channel, which
        // the forwarder's LP owns — ship the hop there, keyed by the
        // packet id so same-tick hops order identically for every
        // partition.
        static_assert(sizeof(ForwardHop) <= pdesMaxPayload,
                      "forward hop must fit a cross-LP event payload");
        PdesEvent ev;
        ev.when = at_via + interfaceOverhead_;
        ev.key = msg.id;
        ev.apply = &LimitedPointToPointNetwork::applyForward;
        const ForwardHop hop{msg, via};
        std::memcpy(ev.payload, &hop, sizeof(ForwardHop));
        pdesRoute(via, ev, "net.lpt2pt.forward");
        return;
    }
    sim().events().schedule(at_via + interfaceOverhead_,
                            [this, msg, via]() mutable {
                                forwardLeg(msg, via);
                            },
                            "net.lpt2pt.forward");
}

void
LimitedPointToPointNetwork::applyForward(void *target,
                                         const void *payload)
{
    ForwardHop hop;
    std::memcpy(&hop, payload, sizeof(ForwardHop));
    auto *net = static_cast<LimitedPointToPointNetwork *>(
        static_cast<Network *>(target));
    net->forwardLeg(hop.msg, hop.via);
}

Tick
LimitedPointToPointNetwork::pdesLookahead() const
{
    // Both cross-LP event kinds — final deliveries and forward hops —
    // pay at least E-O, one site pitch of flight plus a serialization
    // tick, and O-E before their timestamp.
    return Network::pdesLookahead() + 2 * interfaceOverhead_ + 1;
}

void
LimitedPointToPointNetwork::forwardLeg(Message msg, SiteId via)
{
    energy().countRouterHop(msg.bytes);
    OpticalChannel &second = peerChannel(via, msg.dst);
    const Tick arrival = second.transmit(
        now() + routerLatency_ + interfaceOverhead_, msg.bytes);
    chargeOpticalHop(msg);
    deliverAt(msg, arrival + interfaceOverhead_);
}

ComponentCounts
LimitedPointToPointNetwork::componentCounts() const
{
    // Table 6: 8192 Tx / 8192 Rx / 3072 waveguides / 128 electronic
    // 7x7 routers (a row-to-column and a column-to-row router per
    // site).
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    c.transmitters = sites * config().txPerSite;
    c.receivers = sites * config().rxPerSite;
    const std::uint64_t horizontal =
        sites * (config().txPerSite / config().wavelengthsPerWaveguide);
    c.waveguides = horizontal + 2 * horizontal;
    c.electronicRouters = 2 * sites;
    return c;
}

std::vector<LaserPowerSpec>
LimitedPointToPointNetwork::opticalPower() const
{
    // Direct links only, within the un-switched budget: 1x, ~8 W.
    const std::uint64_t lambdas = static_cast<std::uint64_t>(
        config().siteCount()) * config().txPerSite;
    return {LaserPowerSpec{"Limited Pt-to-Pt", lambdas, 1.0}};
}

} // namespace macrosim
