/**
 * @file
 * Scalability and complexity analysis (paper section 6.4).
 *
 * The paper's complexity argument: as the number of wavelengths per
 * waveguide grows with technology, a photonic point-to-point
 * network's peak bandwidth scales *without* adding waveguides —
 * unlike electronic point-to-point networks, whose wire count grows
 * quadratically — while every other photonic topology also needs
 * more switches and arbitration hardware. These helpers compute
 * component counts, bandwidth and laser power as closed-form
 * functions of the grid size and WDM factor so the claim can be
 * regenerated for arbitrary macrochips (see
 * bench_ext_scalability).
 */

#ifndef MACROSIM_NET_ANALYSIS_HH
#define MACROSIM_NET_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "net/network.hh"
#include "photonics/laser_power.hh"

namespace macrosim
{

/** Global waveguide pitch on the SOI routing layer: 10 um (sec. 2). */
constexpr double waveguidePitchCm = 10e-4;

/** One topology's analytic scaling row for a given configuration. */
struct ScalingPoint
{
    std::string network;
    std::uint32_t sites = 0;
    std::uint32_t wavelengthsPerWaveguide = 0;
    /** Total peak network bandwidth, TB/s. */
    double peakTBs = 0.0;
    ComponentCounts counts;
    double laserWatts = 0.0;
    /** Macrochip edge length (sites x pitch), cm. */
    double chipEdgeCm = 0.0;
    /** Worst-case-link verdict under the launch-power ceiling. */
    LinkFeasibility feasibility;

    /** Waveguides per TB/s of peak bandwidth (lower is better). */
    double
    waveguidesPerTBs() const
    {
        return peakTBs > 0.0
            ? static_cast<double>(counts.waveguides) / peakTBs
            : 0.0;
    }

    /**
     * SOI substrate area consumed by waveguide routing, cm^2: each
     * area-equivalent waveguide (Table 6's counting convention) runs
     * the chip edge at the 10 um global pitch. The substrate itself
     * is chipEdgeCm^2, which bounds how much network fits at all.
     */
    double
    waveguideAreaCm2() const
    {
        return static_cast<double>(counts.waveguides) * chipEdgeCm
            * waveguidePitchCm;
    }

    /** Routing area as a fraction of the whole substrate. */
    double
    substrateFraction() const
    {
        const double substrate = chipEdgeCm * chipEdgeCm;
        return substrate > 0.0 ? waveguideAreaCm2() / substrate : 0.0;
    }
};

/** Build every network once for @p cfg and collect its scaling row. */
std::vector<ScalingPoint> analyzeAllNetworks(const MacrochipConfig &cfg);

/**
 * Wires an electronic fully-connected point-to-point network would
 * need on the same system, for the section 6.4 contrast: every
 * ordered site pair gets a dedicated @p bits-wide bus, so the count
 * grows quadratically with sites and linearly with bandwidth.
 */
std::uint64_t electronicPointToPointWires(std::uint32_t sites,
                                          std::uint32_t bits_per_link);

} // namespace macrosim

#endif // MACROSIM_NET_ANALYSIS_HH
