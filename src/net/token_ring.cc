#include "net/token_ring.hh"

#include "sim/logging.hh"

namespace macrosim
{

namespace
{

/** Index of the lowest set bit. @pre word != 0. */
inline unsigned
lowestSetBit(std::uint64_t word)
{
    return static_cast<unsigned>(__builtin_ctzll(word));
}

} // namespace

TokenRingCrossbar::TokenRingCrossbar(Simulator &sim,
                                     const MacrochipConfig &config)
    : Network(sim, config),
      hop_(geometry().ringHopDelay()),
      bundleLambdas_(config.rxPerSite),
      ringPos_(config.siteCount())
{
    const std::size_t sites = config.siteCount();
    arbTokenPos_.assign(sites, 0);
    arbTokenFree_.assign(sites, 0);
    arbBusyTicks_.assign(sites, 0);
    arbGrantEvent_.assign(sites, invalidEventId);
    arbGrantIdx_.assign(sites, 0);
    arbMasked_.assign(sites, 0);
    downMask_.assign((sites + 63) / 64, 0);
    waitingMask_.assign((sites + 63) / 64, 0);
    arbWaiting_.resize(sites);
    grantKernel_ = sim.events().registerBatchKernel(
        "net.tring.grant", &TokenRingCrossbar::grantBatch, this);

    // Serpentine (boustrophedon) ring order so consecutive ring
    // positions are physically adjacent sites.
    for (SiteId s = 0; s < config.siteCount(); ++s) {
        const SiteCoord c = geometry().coordOf(s);
        const std::uint32_t col_in_row =
            (c.row % 2 == 0) ? c.col : (geometry().cols() - 1 - c.col);
        ringPos_[s] = c.row * geometry().cols() + col_in_row;
    }
    primeEnergyModel();
    registerTelemetry();
}

void
TokenRingCrossbar::registerStats(StatRegistry &registry,
                                 const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    registry.add(prefix + ".grants", [this] {
        return static_cast<double>(grants_);
    });
    // Whole-word popcounts over the flag masks: how many bundles are
    // dead, and how many have senders queued, right now.
    registry.add(prefix + ".down_channels", [this] {
        std::uint64_t n = 0;
        for (const std::uint64_t w : downMask_)
            n += static_cast<std::uint64_t>(__builtin_popcountll(w));
        return static_cast<double>(n);
    });
    registry.add(prefix + ".waiting_channels", [this] {
        std::uint64_t n = 0;
        for (const std::uint64_t w : waitingMask_)
            n += static_cast<std::uint64_t>(__builtin_popcountll(w));
        return static_cast<double>(n);
    });
    // One bundle (== channel) per destination site: report each
    // bundle's occupancy (token hold time over wall time) so hot
    // destinations stand out in snapshots.
    for (SiteId d = 0; d < config().siteCount(); ++d) {
        registry.add(
            prefix + ".ch" + std::to_string(d) + ".occupancy",
            [this, d] {
                const Tick t = now();
                return t == 0
                    ? 0.0
                    : static_cast<double>(arbBusyTicks_[d])
                        / static_cast<double>(t);
            });
    }
}

std::uint32_t
TokenRingCrossbar::forwardHops(std::uint32_t from, std::uint32_t to)
    const
{
    const std::uint32_t n = ringSize();
    return ((to + n - from - 1) % n) + 1;
}

Tick
TokenRingCrossbar::tokenArrival(SiteId dst, std::uint32_t pos,
                                Tick earliest) const
{
    const Tick loop = tokenRoundTrip();
    Tick arrival = arbTokenFree_[dst]
        + static_cast<Tick>(forwardHops(arbTokenPos_[dst], pos)) * hop_;
    if (arrival < earliest) {
        const Tick behind = earliest - arrival;
        const Tick loops = (behind + loop - 1) / loop;
        arrival += loops * loop;
    }
    return arrival;
}

std::vector<std::pair<SiteId, SiteId>>
TokenRingCrossbar::faultableLinks() const
{
    std::vector<std::pair<SiteId, SiteId>> links;
    links.reserve(config().siteCount());
    for (SiteId d = 0; d < config().siteCount(); ++d)
        links.emplace_back(d, d);
    return links;
}

bool
TokenRingCrossbar::applyLinkHealth(SiteId a, SiteId b,
                                   const LinkHealth &health)
{
    if (a != b || a >= config().siteCount())
        return false;
    setBit(downMask_, a, health.down);
    if (health.bandwidthFraction >= 1.0) {
        arbMasked_[a] = 0;
    } else {
        const auto masked = static_cast<std::uint32_t>(
            static_cast<double>(bundleLambdas_)
            * health.bandwidthFraction + 0.5);
        arbMasked_[a] = masked < 1 ? 1 : masked;
    }
    return true;
}

std::uint32_t
TokenRingCrossbar::allocWaiter()
{
    for (std::size_t w = 0; w < wFree_.size(); ++w) {
        if (wFree_[w] != 0) {
            const unsigned bit = lowestSetBit(wFree_[w]);
            wFree_[w] &= ~(std::uint64_t(1) << bit);
            return static_cast<std::uint32_t>(w * 64 + bit);
        }
    }
    // Grow the pool one 64-slot word at a time; claim the word's
    // first slot.
    const std::uint32_t base =
        static_cast<std::uint32_t>(wFree_.size() * 64);
    wFree_.push_back(~std::uint64_t(1));
    wMsg_.resize(wMsg_.size() + 64);
    wReady_.resize(wReady_.size() + 64, 0);
    wSrcPos_.resize(wSrcPos_.size() + 64, 0);
    return base;
}

void
TokenRingCrossbar::freeWaiter(std::uint32_t slot)
{
    wFree_[slot >> 6] |= std::uint64_t(1) << (slot & 63);
}

void
TokenRingCrossbar::route(Message msg)
{
    if (testBit(downMask_, msg.dst)) {
        dropPacket(std::move(msg), "destination bundle down");
        return;
    }
    const SiteId dst = msg.dst;
    const std::uint32_t slot = allocWaiter();
    wSrcPos_[slot] = ringPos_[msg.src];
    wReady_[slot] = now();
    wMsg_[slot] = std::move(msg);
    arbWaiting_[dst].push_back(slot);
    setBit(waitingMask_, dst, true);
    armGrant(dst);
}

void
TokenRingCrossbar::armGrant(SiteId dst)
{
    const std::vector<std::uint32_t> &queue = arbWaiting_[dst];
    if (queue.empty())
        return;
    // Recompute the earliest token passage among all waiters; a newly
    // arrived waiter may be reached by the token before the currently
    // scheduled one. The scan walks the pool's flat ready/ring-
    // position lanes in arrival order, so ties resolve exactly as the
    // old per-arbiter deque did.
    if (arbGrantEvent_[dst] != invalidEventId) {
        sim().events().cancel(arbGrantEvent_[dst]);
        arbGrantEvent_[dst] = invalidEventId;
    }
    Tick best = maxTick;
    std::uint32_t best_idx = 0;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(queue.size()); ++i) {
        const std::uint32_t slot = queue[i];
        const Tick arrival =
            tokenArrival(dst, wSrcPos_[slot], wReady_[slot]);
        if (arrival < best) {
            best = arrival;
            best_idx = i;
        }
    }
    arbGrantIdx_[dst] = best_idx;
    if (batching()) {
        arbGrantEvent_[dst] =
            sim().events().scheduleBatch(best, grantKernel_, dst);
        return;
    }
    arbGrantEvent_[dst] = sim().events().schedule(
        best, [this, dst, best_idx] { grant(dst, best_idx); },
        "net.tring.grant");
}

void
TokenRingCrossbar::grantBatch(void *ctx, Tick when,
                              const std::uint32_t *payloads,
                              std::size_t count)
{
    (void)when;
    auto *net = static_cast<TokenRingCrossbar *>(ctx);
    for (std::size_t i = 0; i < count; ++i) {
        const SiteId dst = payloads[i];
        net->grant(dst, net->arbGrantIdx_[dst]);
    }
}

void
TokenRingCrossbar::grant(SiteId dst, std::size_t waiter_idx)
{
    std::vector<std::uint32_t> &queue = arbWaiting_[dst];
    arbGrantEvent_[dst] = invalidEventId;
    if (waiter_idx >= queue.size())
        panic("TokenRingCrossbar::grant: stale waiter index");
    const std::uint32_t slot = queue[waiter_idx];
    Message msg = std::move(wMsg_[slot]);
    queue.erase(queue.begin()
                + static_cast<std::ptrdiff_t>(waiter_idx));
    freeWaiter(slot);
    if (queue.empty())
        setBit(waitingMask_, dst, false);

    if (testBit(downMask_, dst)) {
        // The bundle failed while this waiter held a grant slot.
        dropPacket(std::move(msg), "destination bundle down");
        armGrant(dst);
        return;
    }

    // The sender holds the token while it streams the packet onto
    // the destination's bundle, then re-injects it at its own ring
    // position. Masked (degraded) wavelengths stretch the hold.
    const std::uint32_t src_pos = ringPos_[msg.src];
    const std::uint32_t width = arbMasked_[dst]
        ? arbMasked_[dst] : bundleLambdas_;
    const Tick hold = OpticalChannel(width, 0)
        .serialization(msg.bytes);
    const Tick hold_end = now() + hold;
    arbTokenPos_[dst] = src_pos;
    arbTokenFree_[dst] = hold_end;
    arbBusyTicks_[dst] += hold;
    ++grants_;
    msg.serialization = hold;

    // Data flows forward along the serpentine bundle to the
    // destination site.
    const Tick data_prop =
        static_cast<Tick>(forwardHops(src_pos, ringPos_[dst])) * hop_;
    chargeOpticalHop(msg);
    deliverAt(std::move(msg), hold_end + data_prop);

    armGrant(dst);
}

std::uint64_t
TokenRingCrossbar::physicalWaveguides() const
{
    // 128-lambda bundles at WDM factor 2, with the loop's return
    // path, for each of the 64 destinations: 8192 physical
    // waveguides (section 6.4).
    const std::uint64_t per_bundle =
        (config().rxPerSite / wdmFactor) * 2;
    return static_cast<std::uint64_t>(config().siteCount())
        * per_bundle;
}

ComponentCounts
TokenRingCrossbar::componentCounts() const
{
    // Table 6: 512K Tx (every site modulates every destination's
    // bundle), 8192 Rx, 32K area-equivalent waveguides (each of the
    // 8192 physical waveguides is routed along every row of the
    // macrochip, quadrupling its area contribution), no switches.
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    c.transmitters = sites * sites * config().rxPerSite;
    c.receivers = sites * config().rxPerSite;
    c.waveguides = physicalWaveguides() * 4;
    return c;
}

std::vector<LaserPowerSpec>
TokenRingCrossbar::opticalPower() const
{
    // Every wavelength passes the off-resonance modulator rings of
    // all 64 sites (wdmFactor rings per site on its waveguide):
    // 128 x 0.1 dB = 12.8 dB of ring loss -> 19x laser power for the
    // 8192 circulating wavelengths (Table 5: 155 W).
    const std::uint64_t lambdas = static_cast<std::uint64_t>(
        config().siteCount()) * config().rxPerSite;
    const double ring_loss_db = 0.1
        * static_cast<double>(config().siteCount() * wdmFactor);
    return {LaserPowerSpec{"Token-Ring", lambdas,
                           lossFactorFromExtraLoss(
                               Decibel(ring_loss_db))}};
}

} // namespace macrosim
