#include "net/token_ring.hh"

#include "sim/logging.hh"

namespace macrosim
{

TokenRingCrossbar::TokenRingCrossbar(Simulator &sim,
                                     const MacrochipConfig &config)
    : Network(sim, config),
      hop_(geometry().ringHopDelay()),
      bundleLambdas_(config.rxPerSite),
      ringPos_(config.siteCount()),
      arbiters_(config.siteCount())
{
    // Serpentine (boustrophedon) ring order so consecutive ring
    // positions are physically adjacent sites.
    for (SiteId s = 0; s < config.siteCount(); ++s) {
        const SiteCoord c = geometry().coordOf(s);
        const std::uint32_t col_in_row =
            (c.row % 2 == 0) ? c.col : (geometry().cols() - 1 - c.col);
        ringPos_[s] = c.row * geometry().cols() + col_in_row;
    }
    primeEnergyModel();
    registerTelemetry();
}

void
TokenRingCrossbar::registerStats(StatRegistry &registry,
                                 const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    registry.add(prefix + ".grants", [this] {
        return static_cast<double>(grants_);
    });
    // One bundle (== channel) per destination site: report each
    // bundle's occupancy (token hold time over wall time) so hot
    // destinations stand out in snapshots.
    for (SiteId d = 0; d < config().siteCount(); ++d) {
        const Arbiter *arb = &arbiters_[d];
        registry.add(
            prefix + ".ch" + std::to_string(d) + ".occupancy",
            [this, arb] {
                const Tick t = now();
                return t == 0
                    ? 0.0
                    : static_cast<double>(arb->busyTicks)
                        / static_cast<double>(t);
            });
    }
}

std::uint32_t
TokenRingCrossbar::forwardHops(std::uint32_t from, std::uint32_t to)
    const
{
    const std::uint32_t n = ringSize();
    return ((to + n - from - 1) % n) + 1;
}

Tick
TokenRingCrossbar::tokenArrival(const Arbiter &arb, std::uint32_t pos,
                                Tick earliest) const
{
    const Tick loop = tokenRoundTrip();
    Tick arrival = arb.tokenFree
        + static_cast<Tick>(forwardHops(arb.tokenPos, pos)) * hop_;
    if (arrival < earliest) {
        const Tick behind = earliest - arrival;
        const Tick loops = (behind + loop - 1) / loop;
        arrival += loops * loop;
    }
    return arrival;
}

std::vector<std::pair<SiteId, SiteId>>
TokenRingCrossbar::faultableLinks() const
{
    std::vector<std::pair<SiteId, SiteId>> links;
    links.reserve(config().siteCount());
    for (SiteId d = 0; d < config().siteCount(); ++d)
        links.emplace_back(d, d);
    return links;
}

bool
TokenRingCrossbar::applyLinkHealth(SiteId a, SiteId b,
                                   const LinkHealth &health)
{
    if (a != b || a >= config().siteCount())
        return false;
    Arbiter &arb = arbiters_[a];
    arb.down = health.down;
    if (health.bandwidthFraction >= 1.0) {
        arb.maskedLambdas = 0;
    } else {
        const auto masked = static_cast<std::uint32_t>(
            static_cast<double>(bundleLambdas_)
            * health.bandwidthFraction + 0.5);
        arb.maskedLambdas = masked < 1 ? 1 : masked;
    }
    return true;
}

void
TokenRingCrossbar::route(Message msg)
{
    Arbiter &arb = arbiters_[msg.dst];
    if (arb.down) {
        dropPacket(std::move(msg), "destination bundle down");
        return;
    }
    arb.waiting.push_back(Waiter{std::move(msg), now()});
    armGrant(arb.waiting.back().msg.dst);
}

void
TokenRingCrossbar::armGrant(SiteId dst)
{
    Arbiter &arb = arbiters_[dst];
    if (arb.waiting.empty())
        return;
    // Recompute the earliest token passage among all waiters; a newly
    // arrived waiter may be reached by the token before the currently
    // scheduled one.
    if (arb.grantEvent != invalidEventId) {
        sim().events().cancel(arb.grantEvent);
        arb.grantEvent = invalidEventId;
    }
    Tick best = maxTick;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < arb.waiting.size(); ++i) {
        const Waiter &w = arb.waiting[i];
        const Tick arrival = tokenArrival(arb, ringPos_[w.msg.src],
                                          w.ready);
        if (arrival < best) {
            best = arrival;
            best_idx = i;
        }
    }
    arb.grantEvent = sim().events().schedule(
        best, [this, dst, best_idx] { grant(dst, best_idx); },
        "net.tring.grant");
}

void
TokenRingCrossbar::grant(SiteId dst, std::size_t waiter_idx)
{
    Arbiter &arb = arbiters_[dst];
    arb.grantEvent = invalidEventId;
    if (waiter_idx >= arb.waiting.size())
        panic("TokenRingCrossbar::grant: stale waiter index");
    Waiter w = std::move(arb.waiting[waiter_idx]);
    arb.waiting.erase(arb.waiting.begin()
                      + static_cast<std::ptrdiff_t>(waiter_idx));

    if (arb.down) {
        // The bundle failed while this waiter held a grant slot.
        dropPacket(std::move(w.msg), "destination bundle down");
        armGrant(dst);
        return;
    }

    // The sender holds the token while it streams the packet onto
    // the destination's bundle, then re-injects it at its own ring
    // position. Masked (degraded) wavelengths stretch the hold.
    const std::uint32_t src_pos = ringPos_[w.msg.src];
    const std::uint32_t width = arb.maskedLambdas
        ? arb.maskedLambdas : bundleLambdas_;
    const Tick hold = OpticalChannel(width, 0)
        .serialization(w.msg.bytes);
    const Tick hold_end = now() + hold;
    arb.tokenPos = src_pos;
    arb.tokenFree = hold_end;
    arb.busyTicks += hold;
    ++grants_;
    w.msg.serialization = hold;

    // Data flows forward along the serpentine bundle to the
    // destination site.
    const Tick data_prop =
        static_cast<Tick>(forwardHops(src_pos, ringPos_[dst])) * hop_;
    chargeOpticalHop(w.msg);
    deliverAt(std::move(w.msg), hold_end + data_prop);

    armGrant(dst);
}

std::uint64_t
TokenRingCrossbar::physicalWaveguides() const
{
    // 128-lambda bundles at WDM factor 2, with the loop's return
    // path, for each of the 64 destinations: 8192 physical
    // waveguides (section 6.4).
    const std::uint64_t per_bundle =
        (config().rxPerSite / wdmFactor) * 2;
    return static_cast<std::uint64_t>(config().siteCount())
        * per_bundle;
}

ComponentCounts
TokenRingCrossbar::componentCounts() const
{
    // Table 6: 512K Tx (every site modulates every destination's
    // bundle), 8192 Rx, 32K area-equivalent waveguides (each of the
    // 8192 physical waveguides is routed along every row of the
    // macrochip, quadrupling its area contribution), no switches.
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    c.transmitters = sites * sites * config().rxPerSite;
    c.receivers = sites * config().rxPerSite;
    c.waveguides = physicalWaveguides() * 4;
    return c;
}

std::vector<LaserPowerSpec>
TokenRingCrossbar::opticalPower() const
{
    // Every wavelength passes the off-resonance modulator rings of
    // all 64 sites (wdmFactor rings per site on its waveguide):
    // 128 x 0.1 dB = 12.8 dB of ring loss -> 19x laser power for the
    // 8192 circulating wavelengths (Table 5: 155 W).
    const std::uint64_t lambdas = static_cast<std::uint64_t>(
        config().siteCount()) * config().rxPerSite;
    const double ring_loss_db = 0.1
        * static_cast<double>(config().siteCount() * wdmFactor);
    return {LaserPowerSpec{"Token-Ring", lambdas,
                           lossFactorFromExtraLoss(
                               Decibel(ring_loss_db))}};
}

} // namespace macrosim
