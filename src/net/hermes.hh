/**
 * @file
 * HERMES-style hierarchical broadcast network (Mohamed et al.).
 *
 * The macrochip is tiled into clusters of sites. Each cluster owns a
 * wide WDM broadcast ring that snakes past its members: any member
 * modulates onto the shared ring and every member hears it, so
 * intra-cluster delivery is one serialized broadcast with no
 * arbitration hardware. Clusters are bridged by dedicated
 * point-to-point gateway links (one per ordered cluster pair);
 * cross-cluster packets take up to three legs — source ring to the
 * gateway, gateway-to-gateway bridge, destination ring to the
 * receiver — with an O-E-O hop at each gateway.
 *
 * The scaling argument this topology exists to test: broadcast loss
 * (1:N power split plus off-resonance ring passes) grows with the
 * *cluster* size, not the site count, so the per-wavelength laser
 * budget is scale-invariant where the flat token-ring crossbar's ring
 * loss grows linearly with sites. The price is shared intra-cluster
 * bandwidth and gateway serialization.
 */

#ifndef MACROSIM_NET_HERMES_HH
#define MACROSIM_NET_HERMES_HH

#include <cstdint>
#include <vector>

#include "net/channel.hh"
#include "net/network.hh"

namespace macrosim
{

/** Tuning knobs for the hierarchical decomposition. */
struct HermesParams
{
    /** Cluster tile height in sites (clamped to the grid). */
    std::uint32_t clusterRows = 4;
    /** Cluster tile width in sites (clamped to the grid). */
    std::uint32_t clusterCols = 4;
    /** Broadcast-ring width in wavelengths; 0 derives
     *  2 x wavelengthsPerWaveguide x (clusterRows x clusterCols). */
    std::uint32_t ringLambdas = 0;
    /** Gateway bridge width in wavelengths; 0 derives
     *  2 x wavelengthsPerWaveguide. */
    std::uint32_t bridgeLambdas = 0;
};

class HermesNetwork : public Network
{
  public:
    HermesNetwork(Simulator &sim, const MacrochipConfig &config,
                  const HermesParams &params = HermesParams{});

    std::string_view name() const override { return "Hermes"; }
    std::string_view statName() const override { return "hermes"; }

    ComponentCounts componentCounts() const override;
    std::vector<LaserPowerSpec> opticalPower() const override;

    /**
     * The lossier of the two physical link classes: the cluster-span
     * broadcast ring (derated by the 1:N split and ring passes) and
     * the full-chip gateway bridge (un-switched). Overrides the base
     * so the feasibility gate sees the hierarchical loss structure
     * instead of assuming the broadcast loss rides a chip-spanning
     * route.
     */
    OpticalPath worstCaseLink() const override;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) override;

    /* Decomposition accessors (exercised by the property tests). */

    std::uint32_t clusterCount() const
    {
        return static_cast<std::uint32_t>(members_.size());
    }

    std::uint32_t clusterOf(SiteId s) const { return clusterOf_[s]; }

    const std::vector<SiteId> &
    clusterMembers(std::uint32_t cluster) const
    {
        return members_[cluster];
    }

    std::uint32_t
    clusterSize(std::uint32_t cluster) const
    {
        return static_cast<std::uint32_t>(members_[cluster].size());
    }

    /** The cluster member carrying the inter-cluster bridges. */
    SiteId gatewayOf(std::uint32_t cluster) const
    {
        return gateways_[cluster];
    }

    /** Serpentine ring index of @p s within its own cluster. */
    std::uint32_t ringPosition(SiteId s) const { return ringPos_[s]; }

    /** Effective (clamped) cluster tile dimensions. */
    std::uint32_t clusterRows() const { return clusterRows_; }
    std::uint32_t clusterCols() const { return clusterCols_; }

    std::uint32_t ringLambdas() const { return ringLambdas_; }
    std::uint32_t bridgeLambdas() const { return bridgeLambdas_; }

    /** Ring propagation per hop (adjacent serpentine sites). */
    Tick ringHopDelay() const { return hop_; }

    /** Per-packet optical interface overhead (one clock cycle). */
    Tick interfaceOverhead() const { return interfaceOverhead_; }

    /** Electronic gateway forwarding latency (one clock cycle). */
    Tick routerLatency() const { return routerLatency_; }

    /** Forward ring hops from @p src to @p dst (same cluster). */
    std::uint32_t ringHops(SiteId src, SiteId dst) const;

    /** Cross-cluster packets carried so far. */
    std::uint64_t bridgedPackets() const { return bridged_; }

    /**
     * Fault granularity: each cluster's broadcast ring keyed by its
     * gateway (g, g) — masking models dropped ring wavelengths — and
     * each ordered gateway pair (gA, gB) as an independent bridge.
     */
    std::vector<std::pair<SiteId, SiteId>> faultableLinks() const override;

    bool applyLinkHealth(SiteId a, SiteId b,
                         const LinkHealth &health) override;

    /** A dead gateway severs its cluster's bridges (not its ring). */
    bool applySiteHealth(SiteId site, bool dead) override;

    /** Broadcast rings and bridge arbitration are shared by every
     *  site in a cluster — the topology cannot split across LPs. */
    PdesPartition
    pdesPartition() const override
    {
        return PdesPartition::Colocated;
    }

  protected:
    void route(Message msg) override;

  private:
    /** Second leg: O-E-O at the source gateway, onto the bridge. */
    void bridgeLeg(Message msg);
    /** Third leg: O-E-O at the destination gateway, onto its ring. */
    void destinationRingLeg(Message msg);

    OpticalChannel &bridgeAt(std::uint32_t from, std::uint32_t to)
    {
        return bridges_[static_cast<std::size_t>(from)
                        * clusterCount() + to];
    }

    /** Worst-case broadcast loss in dB: off-resonance ring passes
     *  plus the 1:N receiver power split, over the largest cluster. */
    double ringLossDb() const;

    std::uint32_t maxClusterSize() const;

    std::uint32_t clusterRows_;
    std::uint32_t clusterCols_;
    std::uint32_t ringLambdas_;
    std::uint32_t bridgeLambdas_;
    Tick hop_;
    Tick interfaceOverhead_;
    Tick routerLatency_;

    std::vector<std::uint32_t> clusterOf_;   ///< site -> cluster
    std::vector<std::uint32_t> ringPos_;     ///< site -> ring index
    std::vector<std::vector<SiteId>> members_; ///< ring order
    std::vector<SiteId> gateways_;           ///< cluster -> gateway
    std::vector<OpticalChannel> rings_;      ///< one per cluster
    std::vector<OpticalChannel> bridges_;    ///< dense pair matrix
    std::vector<bool> gatewayDead_;          ///< cluster -> severed

    std::uint64_t bridged_ = 0;
};

} // namespace macrosim

#endif // MACROSIM_NET_HERMES_HH
