/**
 * @file
 * Statically-routed WDM point-to-point network (paper section 4.2).
 *
 * Every ordered site pair owns a dedicated optical channel: the
 * transmitter picks the waveguide leading to the destination's column
 * and the wavelength that the destination's drop filter extracts, so
 * there is no arbitration, no switching and no routing — the only
 * queueing is for the pair's own narrow channel.
 *
 * With Table 4's 128 transmitters per site spread over 64 sites, each
 * channel is 2 wavelengths = 5 GB/s and 2 bits wide; the whole
 * network peaks at 20 TB/s.
 */

#ifndef MACROSIM_NET_PT2PT_HH
#define MACROSIM_NET_PT2PT_HH

#include <vector>

#include "net/channel.hh"
#include "net/network.hh"

namespace macrosim
{

class PointToPointNetwork : public Network
{
  public:
    PointToPointNetwork(Simulator &sim, const MacrochipConfig &config);

    std::string_view name() const override { return "Point-to-Point"; }
    std::string_view statName() const override { return "pt2pt"; }

    ComponentCounts componentCounts() const override;
    std::vector<LaserPowerSpec> opticalPower() const override;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) override;

    /** Wavelengths (data-path bits) per site-pair channel. */
    std::uint32_t wavelengthsPerChannel() const { return lambdas_; }

    /** Direct access for tests: the channel for an ordered pair. */
    const OpticalChannel &channel(SiteId src, SiteId dst) const;

    /** Every ordered pair owns a channel the fault model can degrade. */
    std::vector<std::pair<SiteId, SiteId>> faultableLinks() const override;

    bool applyLinkHealth(SiteId a, SiteId b,
                         const LinkHealth &health) override;

    /** An ordered pair's channel is written only by its source site's
     *  route(), so site groups parallelize with no shared state. */
    PdesPartition
    pdesPartition() const override
    {
        return PdesPartition::BySourceSite;
    }

    Tick pdesLookahead() const override;

  protected:
    void route(Message msg) override;

  private:
    OpticalChannel &channelRef(SiteId src, SiteId dst);

    std::uint32_t lambdas_;
    /** Per-direction E-O + O-E conversion overhead (one cycle). */
    Tick interfaceOverhead_;
    std::vector<OpticalChannel> channels_; // src * sites + dst
};

} // namespace macrosim

#endif // MACROSIM_NET_PT2PT_HH
