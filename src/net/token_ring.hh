/**
 * @file
 * Token-ring-arbitrated optical crossbar (paper section 4.4; Corona
 * adapted to the macrochip).
 *
 * Every destination site owns a 128-wavelength / 320 GB/s waveguide
 * bundle that snakes past all 64 sites; any site may modulate onto
 * the bundle, so access is arbitrated by a per-destination optical
 * token circulating the same serpentine ring. A site diverts the
 * token, holds it while transmitting (one cycle moves a 64-byte
 * packet at 320 B/ns), and re-injects it. Scaled to macrochip
 * dimensions, a full token round trip is 80 cycles (16 ns), which is
 * the latency a sender pays between back-to-back packets to the same
 * destination — the effect that caps one-to-one patterns below 1% of
 * peak (section 6.1).
 *
 * Corona's 64-way WDM would suffer 0.1 dB off-resonance modulator
 * loss x 4096 rings; the macrochip adaptation reduces WDM to 2 and
 * quadruples waveguides, limiting ring loss to 12.8 dB (19x laser
 * power, Table 5).
 */

#ifndef MACROSIM_NET_TOKEN_RING_HH
#define MACROSIM_NET_TOKEN_RING_HH

#include <cstdint>
#include <vector>

#include "net/channel.hh"
#include "net/network.hh"

namespace macrosim
{

class TokenRingCrossbar : public Network
{
  public:
    /** WDM factor after the macrochip adaptation of section 4.4. */
    static constexpr std::uint32_t wdmFactor = 2;

    TokenRingCrossbar(Simulator &sim, const MacrochipConfig &config);

    std::string_view name() const override { return "Token Ring"; }
    std::string_view statName() const override { return "tring"; }

    ComponentCounts componentCounts() const override;
    std::vector<LaserPowerSpec> opticalPower() const override;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) override;

    /** Grants issued (token captures) across all destinations. */
    std::uint64_t grantsIssued() const { return grants_; }

    /** Physical waveguides before area-equivalent accounting. */
    std::uint64_t physicalWaveguides() const;

    /** Ring position (serpentine order) of a site. */
    std::uint32_t ringPosition(SiteId s) const { return ringPos_[s]; }

    /** Token travel time for one full loop (80 cycles at 5 GHz). */
    Tick tokenRoundTrip() const { return hop_ * ringSize(); }

    std::uint32_t ringSize() const { return config().siteCount(); }

    /**
     * The fault granularity is the per-destination waveguide bundle,
     * keyed (d, d): any sender modulates the same bundle, so a fault
     * degrades every path toward that destination at once.
     */
    std::vector<std::pair<SiteId, SiteId>> faultableLinks() const override;

    bool applyLinkHealth(SiteId a, SiteId b,
                         const LinkHealth &health) override;

    /** The token's position is one global resource every injection
     *  contends for — the topology cannot split across LPs. */
    PdesPartition
    pdesPartition() const override
    {
        return PdesPartition::Colocated;
    }

  protected:
    void route(Message msg) override;

  private:
    /** Forward ring distance, in hops, from index @p from to @p to;
     *  a full loop (ringSize) when from == to. */
    std::uint32_t forwardHops(std::uint32_t from, std::uint32_t to) const;

    /** First time destination @p dst's token passes ring index
     *  @p pos at or after @p earliest. */
    Tick tokenArrival(SiteId dst, std::uint32_t pos,
                      Tick earliest) const;

    /** (Re)schedule the next grant for destination @p dst. */
    void armGrant(SiteId dst);

    /** Fire the grant chosen by armGrant(). */
    void grant(SiteId dst, std::size_t waiter_idx);

    /** Batch kernel draining a tick's worth of grant events; each
     *  payload is a destination site whose armed grant fires. */
    static void grantBatch(void *ctx, Tick when,
                           const std::uint32_t *payloads,
                           std::size_t count);

    /** Claim a waiter-pool slot (ctz over the free-mask words),
     *  growing the pool a word at a time. */
    std::uint32_t allocWaiter();
    void freeWaiter(std::uint32_t slot);

    /** Bit helpers over the per-destination flag words. */
    static bool
    testBit(const std::vector<std::uint64_t> &words, std::uint32_t i)
    {
        return (words[i >> 6] >> (i & 63)) & 1u;
    }
    static void
    setBit(std::vector<std::uint64_t> &words, std::uint32_t i, bool on)
    {
        if (on)
            words[i >> 6] |= std::uint64_t(1) << (i & 63);
        else
            words[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
    }

    Tick hop_;              ///< Token/data propagation per ring hop.
    std::uint32_t bundleLambdas_;
    std::uint64_t grants_ = 0;
    std::vector<std::uint32_t> ringPos_;  ///< site -> ring index

    /** Per-destination arbiter state as parallel arrays (index =
     *  destination site). The grant-scan and the batched grant kernel
     *  read one field across many destinations, so
     *  structure-of-arrays keeps those passes dense. */
    std::vector<std::uint32_t> arbTokenPos_; ///< Ring idx, last holder.
    std::vector<Tick> arbTokenFree_;    ///< When the token departed.
    std::vector<Tick> arbBusyTicks_;    ///< Cumulative token hold.
    std::vector<EventId> arbGrantEvent_;
    /** Index (within arbWaiting_[dst]) the armed grant will take. */
    std::vector<std::uint32_t> arbGrantIdx_;
    /** Masked bundle width; 0 means the full engineered width. */
    std::vector<std::uint32_t> arbMasked_;

    /** Dead-bundle and has-waiters flags packed into 64-bit words
     *  (bit = destination): route()/grant() test single bits, and
     *  summary stats reduce whole words instead of branching per
     *  destination. */
    std::vector<std::uint64_t> downMask_;
    std::vector<std::uint64_t> waitingMask_;

    /** Waiter pool as parallel arrays; free slots are set bits in
     *  wFree_, claimed with ctz. The per-destination queues hold pool
     *  indices in arrival order, so the grant scan walks flat
     *  ready/ring-position lanes while tie-breaking stays exactly
     *  the old deque's insertion order. */
    std::vector<Message> wMsg_;
    std::vector<Tick> wReady_;
    std::vector<std::uint32_t> wSrcPos_;
    std::vector<std::uint64_t> wFree_;
    std::vector<std::vector<std::uint32_t>> arbWaiting_;

    std::uint16_t grantKernel_ = 0;
};

} // namespace macrosim

#endif // MACROSIM_NET_TOKEN_RING_HH
