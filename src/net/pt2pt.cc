#include "net/pt2pt.hh"

#include "sim/logging.hh"

namespace macrosim
{

PointToPointNetwork::PointToPointNetwork(Simulator &sim,
                                         const MacrochipConfig &config)
    : Network(sim, config),
      lambdas_(config.txPerSite / config.siteCount()),
      interfaceOverhead_(config.clockPeriod)
{
    if (lambdas_ == 0)
        fatal("PointToPointNetwork: fewer transmitters (",
              config.txPerSite, ") than sites (", config.siteCount(),
              ")");

    const auto n = config.siteCount();
    channels_.reserve(static_cast<std::size_t>(n) * n);
    for (SiteId s = 0; s < n; ++s) {
        for (SiteId d = 0; d < n; ++d) {
            channels_.emplace_back(lambdas_,
                                   geometry().propagationDelay(s, d));
        }
    }
    primeEnergyModel();
    registerTelemetry();
}

void
PointToPointNetwork::registerStats(StatRegistry &registry,
                                   const std::string &prefix)
{
    Network::registerStats(registry, prefix);
    // 4096 per-pair channels is too many columns for a snapshot CSV;
    // report the fleet-mean occupancy (busy time over wall time,
    // averaged across channels) instead.
    registry.add(prefix + ".occupancy", [this] {
        const Tick t = now();
        if (t == 0 || channels_.empty())
            return 0.0;
        double busy = 0.0;
        for (const OpticalChannel &ch : channels_)
            busy += static_cast<double>(ch.busyTicks());
        return busy / static_cast<double>(t)
            / static_cast<double>(channels_.size());
    });
}

OpticalChannel &
PointToPointNetwork::channelRef(SiteId src, SiteId dst)
{
    return channels_[static_cast<std::size_t>(src)
                     * config().siteCount() + dst];
}

const OpticalChannel &
PointToPointNetwork::channel(SiteId src, SiteId dst) const
{
    return channels_[static_cast<std::size_t>(src)
                     * config().siteCount() + dst];
}

std::vector<std::pair<SiteId, SiteId>>
PointToPointNetwork::faultableLinks() const
{
    std::vector<std::pair<SiteId, SiteId>> links;
    const auto n = config().siteCount();
    links.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (SiteId s = 0; s < n; ++s)
        for (SiteId d = 0; d < n; ++d)
            if (s != d)
                links.emplace_back(s, d);
    return links;
}

bool
PointToPointNetwork::applyLinkHealth(SiteId a, SiteId b,
                                     const LinkHealth &health)
{
    if (a >= config().siteCount() || b >= config().siteCount())
        return false;
    OpticalChannel &ch = channelRef(a, b);
    ch.setDown(health.down);
    ch.maskWavelengths(static_cast<std::uint32_t>(
        static_cast<double>(lambdas_) * health.bandwidthFraction + 0.5));
    return true;
}

Tick
PointToPointNetwork::pdesLookahead() const
{
    // Every inter-site delivery pays E-O at the source, at least one
    // site pitch of flight plus a tick of serialization, and O-E at
    // the destination; channel queueing only pushes arrivals later.
    return Network::pdesLookahead() + 2 * interfaceOverhead_ + 1;
}

void
PointToPointNetwork::route(Message msg)
{
    // E-O at the source, serialize over the pair's channel, fly to
    // the destination column and down its drop filter, O-E at the
    // receiver. The channel's busy-until scheduling queues back-to-
    // back packets of this pair FIFO.
    OpticalChannel &ch = channelRef(msg.src, msg.dst);
    if (ch.down()) {
        dropPacket(std::move(msg), "pair channel down");
        return;
    }
    msg.serialization = ch.serialization(msg.bytes);
    const Tick arrival = ch.transmit(now() + interfaceOverhead_,
                                     msg.bytes);
    chargeOpticalHop(msg);
    deliverAt(msg, arrival + interfaceOverhead_);
}

ComponentCounts
PointToPointNetwork::componentCounts() const
{
    // Table 6: 8192 Tx, 8192 Rx, 3072 waveguides (1024 horizontal +
    // 2048 vertical: column channels need one waveguide per
    // direction), no switches.
    ComponentCounts c;
    const std::uint64_t sites = config().siteCount();
    c.transmitters = sites * config().txPerSite;
    c.receivers = sites * config().rxPerSite;
    const std::uint64_t horizontal =
        sites * (config().txPerSite / config().wavelengthsPerWaveguide);
    c.waveguides = horizontal + 2 * horizontal;
    return c;
}

std::vector<LaserPowerSpec>
PointToPointNetwork::opticalPower() const
{
    // No component beyond the canonical un-switched link: loss factor
    // 1x, 8192 wavelengths -> ~8 W (Table 5).
    const std::uint64_t lambdas = static_cast<std::uint64_t>(
        config().siteCount()) * config().txPerSite;
    return {LaserPowerSpec{"Point-to-Point", lambdas, 1.0}};
}

} // namespace macrosim
