/**
 * @file
 * Message tracer: records every delivered message's timing for
 * offline analysis (per-flow latency breakdowns, CSV export for
 * plotting, debugging a topology's scheduling decisions).
 *
 * The tracer attaches to a Network through the delivery-observer
 * hook, so it composes with whatever workload owns the per-site
 * handlers (the coherence engine, the packet injector, ...).
 */

#ifndef MACROSIM_NET_TRACER_HH
#define MACROSIM_NET_TRACER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/network.hh"

namespace macrosim
{

class TraceSink;

class MessageTracer
{
  public:
    struct Record
    {
        MessageId id = 0;
        SiteId src = 0;
        SiteId dst = 0;
        std::uint32_t bytes = 0;
        CoherenceMsg type = CoherenceMsg::Data;
        TxnId txn = 0;
        Tick created = 0;
        Tick injected = 0;
        Tick delivered = 0;
        /** Serialization time on the first optical channel crossed. */
        Tick serialization = 0;

        Tick latency() const { return delivered - created; }
        Tick queueing() const { return injected - created; }
    };

    /**
     * Attach to @p net; replaces any previous delivery observer.
     * The tracer must outlive the simulation it observes (the
     * network holds a reference to it), so it is pinned in place.
     */
    explicit MessageTracer(Network &net);

    MessageTracer(const MessageTracer &) = delete;
    MessageTracer &operator=(const MessageTracer &) = delete;

    const std::vector<Record> &records() const { return records_; }
    std::size_t count() const { return records_.size(); }

    /** Drop all recorded messages (e.g. after a warmup phase). */
    void clear() { records_.clear(); }

    /** Stop/resume recording without detaching. */
    void setEnabled(bool on) { enabled_ = on; }

    /** Mean end-to-end latency over the recorded messages, ns. */
    double meanLatencyNs() const;

    /** Write one CSV row per record, with a header line. */
    void writeCsv(std::ostream &os) const;

    /**
     * Emit the recorded messages into @p sink as Perfetto timeline
     * events under process @p pid: one "X" lifecycle span per message
     * on the source site's thread track (created -> delivered, with
     * queue/serialization breakdown in args), plus "s"/"f" flow
     * arrows stitching together the messages of each coherence
     * transaction (flow id = txn). @p process_name labels the pid row
     * in the UI.
     */
    void writeTrace(TraceSink &sink, std::uint32_t pid,
                    const std::string &process_name) const;

  private:
    bool enabled_ = true;
    std::vector<Record> records_;
};

} // namespace macrosim

#endif // MACROSIM_NET_TRACER_HH
