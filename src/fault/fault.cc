#include "fault/fault.hh"

#include <algorithm>
#include <numeric>

#include "net/network.hh"
#include "sim/random.hh"

namespace macrosim
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LaserDroop: return "laser_droop";
      case FaultKind::RingDrift: return "ring_drift";
      case FaultKind::WaveguideCreep: return "waveguide_creep";
      case FaultKind::ReceiverDegrade: return "receiver_degrade";
      case FaultKind::ChannelKill: return "channel_kill";
      case FaultKind::SiteKill: return "site_kill";
      case FaultKind::Repair: return "repair";
    }
    return "unknown";
}

std::string
FaultTarget::name(const Network &net) const
{
    if (scope == Scope::Site)
        return "arch.site" + std::to_string(a);
    return "net." + std::string(net.statName()) + ".ch"
        + std::to_string(a) + "_" + std::to_string(b);
}

std::vector<FaultEvent>
FaultSchedule::ordered() const
{
    std::vector<std::size_t> idx(events_.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(),
                     [this](std::size_t x, std::size_t y) {
                         return events_[x].at < events_[y].at;
                     });
    std::vector<FaultEvent> out;
    out.reserve(events_.size());
    for (std::size_t i : idx)
        out.push_back(events_[i]);
    return out;
}

FaultSchedule
FaultSchedule::random(std::uint64_t seed, const RandomFaultConfig &config,
                      const Network &net)
{
    // Same derivation discipline as deriveSeed(): the stream identity
    // is (seed, "fault", network name), so distinct networks under one
    // root seed draw independent timelines, and the same tuple always
    // draws the same one.
    Rng rng(mix64(hashCombine(hashCombine(seed, "fault"),
                              net.name())));
    const auto links = net.faultableLinks();
    const SiteId sites = net.config().siteCount();

    FaultSchedule sched;
    for (std::uint32_t i = 0; i < config.events; ++i) {
        FaultEvent ev;
        ev.at = 1 + static_cast<Tick>(rng.below(
            config.horizon > 0 ? config.horizon : 1));

        const bool kill = rng.chance(config.killFraction);
        const bool on_site = links.empty()
            || (kill && rng.chance(config.siteFraction));
        if (on_site) {
            ev.target = FaultTarget::site(
                static_cast<SiteId>(rng.below(sites)));
            ev.kind = FaultKind::SiteKill;
        } else {
            const auto &[a, b] = links[rng.below(links.size())];
            ev.target = FaultTarget::channel(a, b);
            if (kill) {
                ev.kind = FaultKind::ChannelKill;
            } else {
                switch (rng.below(4)) {
                  case 0: ev.kind = FaultKind::LaserDroop; break;
                  case 1: ev.kind = FaultKind::RingDrift; break;
                  case 2: ev.kind = FaultKind::WaveguideCreep; break;
                  default: ev.kind = FaultKind::ReceiverDegrade; break;
                }
                ev.magnitudeDb =
                    rng.uniform() * config.maxMagnitudeDb;
            }
        }
        sched.add(ev);

        if (rng.chance(config.repairFraction)) {
            FaultEvent fix;
            fix.target = ev.target;
            fix.kind = FaultKind::Repair;
            const Tick left = config.horizon > ev.at
                ? config.horizon - ev.at : 1;
            fix.at = ev.at + 1 + static_cast<Tick>(rng.below(left));
            sched.add(fix);
        }
    }
    return sched;
}

} // namespace macrosim
