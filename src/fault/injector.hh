/**
 * @file
 * Live fault injection: schedule replay + link-margin re-evaluation.
 *
 * A FaultInjector arms a FaultSchedule against one simulation: each
 * event fires at its appointed tick, updates the target's accumulated
 * degradation, and re-evaluates the affected OpticalPath's margin
 * through LinkBudget's deratedPath() — the same arithmetic the static
 * Table 5 analysis uses. Negative margin (or a hard kill) marks the
 * channel down; margin still positive but inside the derate threshold
 * masks wavelengths, reducing the channel's aggregate bandwidth. Both
 * transitions surface as trace instant events and "fault.*" stats.
 */

#ifndef MACROSIM_FAULT_INJECTOR_HH
#define MACROSIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>

#include "fault/fault.hh"
#include "net/network.hh"
#include "photonics/link_budget.hh"
#include "sim/simulator.hh"

namespace macrosim
{

class TraceSink;

/** Optical parameters the injector evaluates margins against. */
struct FaultModelParams
{
    /** The healthy path every channel is engineered to (17 dB). */
    OpticalPath basePath = canonicalUnswitchedLink();
    PowerDbm launch = launchPower;
    PowerDbm sensitivity = receiverSensitivity;
    /** Margin below this (but still >= 0) derates the channel. */
    Decibel derateThreshold{2.0};
    /** Bandwidth fraction of a derated (reduced-margin) channel. */
    double deratedFraction = 0.5;
};

class FaultInjector
{
  public:
    /**
     * @param trace Optional sink for "fault" instant events;
     *        @p trace_pid is the Perfetto process row to use.
     */
    FaultInjector(Simulator &sim, Network &net, FaultSchedule schedule,
                  const FaultModelParams &params = {},
                  TraceSink *trace = nullptr,
                  std::uint32_t trace_pid = 0);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule every fault event; call once, before running. */
    void arm();

    /** Replay one event immediately (tests / manual timelines). */
    void apply(const FaultEvent &ev);

    /** Margin of a channel target right now, in dB. */
    double marginDbOf(const FaultTarget &target) const;

    std::uint64_t injectedFaults() const { return injected_; }
    std::uint64_t repairs() const { return repairs_; }
    /** Channels currently down (killed or negative margin). */
    std::uint64_t linksDown() const { return linksDown_; }
    /** Channels currently bandwidth-derated (margin in (0, thr)). */
    std::uint64_t linksDerated() const { return derated_; }
    /** Sites whose routing resources are currently dead. */
    std::uint64_t sitesDown() const { return sitesDown_; }
    /** Lowest channel margin seen across the run, in dB. */
    double minMarginDb() const { return minMarginDb_; }

  private:
    /** Accumulated degradation of one channel target. */
    struct Health
    {
        double droopDb = 0.0;  ///< Laser launch-power droop.
        double dropDb = 0.0;   ///< Ring-drift drop-filter loss.
        double wgDb = 0.0;     ///< Waveguide loss creep.
        double rxDb = 0.0;     ///< Receiver sensitivity penalty.
        bool killed = false;
    };

    /** Margin -> LinkHealth under the model params. */
    LinkHealth evaluate(const Health &h, double &margin_db) const;

    void applyChannel(const FaultEvent &ev);
    void applySite(const FaultEvent &ev);
    void registerStats();

    Simulator &sim_;
    Network &net_;
    FaultSchedule schedule_;
    /** The armed timeline, pinned so the injection events capture
     *  just [this, index] instead of a FaultEvent by value. */
    std::vector<FaultEvent> armedEvents_;
    FaultModelParams params_;
    TraceSink *trace_;
    std::uint32_t tracePid_;
    bool armed_ = false;

    std::unordered_map<std::uint64_t, Health> channels_;
    std::unordered_map<std::uint64_t, bool> sites_;

    std::uint64_t injected_ = 0;
    std::uint64_t repairs_ = 0;
    std::uint64_t linksDown_ = 0;
    std::uint64_t derated_ = 0;
    std::uint64_t sitesDown_ = 0;
    double minMarginDb_;
};

} // namespace macrosim

#endif // MACROSIM_FAULT_INJECTOR_HH
