/**
 * @file
 * Live fault injection: schedule replay + link-margin re-evaluation.
 *
 * A FaultInjector arms a FaultSchedule against one simulation: each
 * event fires at its appointed tick, updates the target's accumulated
 * degradation, and re-evaluates the affected OpticalPath's margin —
 * the same arithmetic the static Table 5 analysis uses. Negative
 * margin (or a hard kill) marks the channel down; margin still
 * positive but inside the derate threshold masks wavelengths,
 * reducing the channel's aggregate bandwidth. Both transitions
 * surface as trace instant events and "fault.*" stats.
 *
 * Margin arithmetic comes in two bit-identical flavours. The scalar
 * reference (evaluateScalar) walks the object path: deratedPath()
 * copies the OpticalPath (a heap allocation per call) and margin()
 * folds the element losses through Decibel operators. The flat path
 * (evaluateFlat / sweepMargins) keeps per-link degradation in
 * structure-of-arrays lanes — droop/drop/waveguide/receiver dB,
 * kill flags, cached margins — and replays the identical operation
 * sequence over precomputed per-element loss terms, so a whole
 * topology's links re-evaluate in one vectorizable pass with no
 * allocation. setBatching() selects the flavour (default: flat).
 */

#ifndef MACROSIM_FAULT_INJECTOR_HH
#define MACROSIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/fault.hh"
#include "net/network.hh"
#include "photonics/link_budget.hh"
#include "sim/flat_map.hh"
#include "sim/simulator.hh"

namespace macrosim
{

class TraceSink;

/** Optical parameters the injector evaluates margins against. */
struct FaultModelParams
{
    /** The healthy path every channel is engineered to (17 dB). */
    OpticalPath basePath = canonicalUnswitchedLink();
    PowerDbm launch = launchPower;
    PowerDbm sensitivity = receiverSensitivity;
    /** Margin below this (but still >= 0) derates the channel. */
    Decibel derateThreshold{2.0};
    /** Bandwidth fraction of a derated (reduced-margin) channel. */
    double deratedFraction = 0.5;
};

class FaultInjector
{
  public:
    /**
     * @param trace Optional sink for "fault" instant events;
     *        @p trace_pid is the Perfetto process row to use.
     */
    FaultInjector(Simulator &sim, Network &net, FaultSchedule schedule,
                  const FaultModelParams &params = {},
                  TraceSink *trace = nullptr,
                  std::uint32_t trace_pid = 0);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule every fault event; call once, before running. */
    void arm();

    /** Replay one event immediately (tests / manual timelines). */
    void apply(const FaultEvent &ev);

    /** Margin of a channel target right now, in dB. */
    double marginDbOf(const FaultTarget &target) const;

    /**
     * Re-evaluate every tracked link's margin in one flat pass over
     * the degradation lanes (or, with batching off, one scalar
     * evaluate() per link — the differential reference), refreshing
     * the margin cache. @return the minimum margin across all
     * tracked links, in dB (the base margin when none are tracked).
     */
    double sweepMargins();

    /** Number of links with degradation lanes (every faultable link
     *  of the network, plus any targets events added). */
    std::size_t trackedLinks() const { return laneKeys_.size(); }

    /**
     * Choose the margin-arithmetic path: flat SoA lanes (true, the
     * default — from batchDispatchDefault() at construction) or the
     * scalar object path. Both are bit-identical; the knob exists for
     * differential tests and benchmarks.
     */
    void setBatching(bool on) { batching_ = on; }
    bool batching() const { return batching_; }

    std::uint64_t injectedFaults() const { return injected_; }
    std::uint64_t repairs() const { return repairs_; }
    /** Channels currently down (killed or negative margin). */
    std::uint64_t linksDown() const { return linksDown_; }
    /** Channels currently bandwidth-derated (margin in (0, thr)). */
    std::uint64_t linksDerated() const { return derated_; }
    /** Sites whose routing resources are currently dead. */
    std::uint64_t sitesDown() const { return sitesDown_; }
    /** Lowest channel margin seen across the run, in dB. */
    double minMarginDb() const { return minMarginDb_; }

  private:
    /** Accumulated degradation of one channel target (scalar form,
     *  assembled from the lanes for the reference path). */
    struct Health
    {
        double droopDb = 0.0;  ///< Laser launch-power droop.
        double dropDb = 0.0;   ///< Ring-drift drop-filter loss.
        double wgDb = 0.0;     ///< Waveguide loss creep.
        double rxDb = 0.0;     ///< Receiver sensitivity penalty.
        bool killed = false;
    };

    /** Scalar reference: deratedPath() + margin() over the object
     *  path. Allocates (path copy) per call. */
    double evaluateScalar(const Health &h) const;

    /** Flat margin of lane @p i: identical operation order over the
     *  precomputed element-loss terms, no allocation. */
    double evaluateFlat(std::uint32_t i) const;

    /** Margin -> LinkHealth under the model params. */
    LinkHealth healthAt(std::uint32_t i, double margin_db) const;

    /** Lane of @p key, creating zeroed lanes on first sight. */
    std::uint32_t laneFor(std::uint64_t key);

    /** Margin of lane @p i via the configured path. */
    double marginOfLane(std::uint32_t i) const;

    /** Batch kernel draining a tick's worth of "fault.inject"
     *  events; payloads index armedEvents_. */
    static void injectBatch(void *ctx, Tick when,
                            const std::uint32_t *payloads,
                            std::size_t count);

    void applyChannel(const FaultEvent &ev);
    void applySite(const FaultEvent &ev);
    void registerStats();

    Simulator &sim_;
    Network &net_;
    FaultSchedule schedule_;
    /** The armed timeline, pinned so the injection events capture
     *  just [this, index] (or carry the index as a batch payload)
     *  instead of a FaultEvent by value. */
    std::vector<FaultEvent> armedEvents_;
    FaultModelParams params_;
    TraceSink *trace_;
    std::uint32_t tracePid_;
    bool armed_ = false;
    bool batching_ = true;
    std::uint16_t injectKernel_ = 0;

    /** Per-link degradation lanes (index = lane id). Seeded with
     *  every faultableLinks() key at construction; events against
     *  other keys grow the lanes on demand. */
    std::vector<std::uint64_t> laneKeys_;
    std::vector<double> droopDb_;
    std::vector<double> dropDb_;
    std::vector<double> wgDb_;
    std::vector<double> rxDb_;
    std::vector<std::uint8_t> killed_;
    /** Cached margins, refreshed on every mutation and by
     *  sweepMargins(). */
    std::vector<double> marginDb_;
    FlatMap<std::uint64_t, std::uint32_t> laneIndex_;

    /** Per-element loss terms of params_.basePath, in path order:
     *  insertionLoss x count, exactly the terms totalLoss() folds. */
    std::vector<double> elemLossDb_;
    double baseExtraDb_ = 0.0;
    double launchDbm_ = 0.0;
    double sensitivityDbm_ = 0.0;

    std::unordered_map<std::uint64_t, bool> sites_;

    std::uint64_t injected_ = 0;
    std::uint64_t repairs_ = 0;
    std::uint64_t linksDown_ = 0;
    std::uint64_t derated_ = 0;
    std::uint64_t sitesDown_ = 0;
    double minMarginDb_;
};

} // namespace macrosim

#endif // MACROSIM_FAULT_INJECTOR_HH
