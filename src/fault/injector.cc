#include "fault/injector.hh"

#include "sim/logging.hh"
#include "sim/telemetry/trace.hh"

namespace macrosim
{

FaultInjector::FaultInjector(Simulator &sim, Network &net,
                             FaultSchedule schedule,
                             const FaultModelParams &params,
                             TraceSink *trace, std::uint32_t trace_pid)
    : sim_(sim), net_(net), schedule_(std::move(schedule)),
      params_(params), trace_(trace), tracePid_(trace_pid),
      minMarginDb_(params.basePath
                       .margin(params.launch, params.sensitivity)
                       .value())
{
    batching_ = batchDispatchDefault();
    injectKernel_ = sim_.events().registerBatchKernel(
        "fault.inject", &FaultInjector::injectBatch, this);

    // Flatten the base path once: the per-element loss terms, in path
    // order, are exactly what totalLoss() folds — keeping them as a
    // dense array lets evaluateFlat() replay the identical operation
    // sequence without rebuilding (and heap-copying) the path.
    baseExtraDb_ = params_.basePath.extraLoss().value();
    elemLossDb_.reserve(params_.basePath.elements().size());
    for (const PathElement &e : params_.basePath.elements()) {
        elemLossDb_.push_back(
            (properties(e.component).insertionLoss * e.count).value());
    }
    launchDbm_ = params_.launch.value();
    sensitivityDbm_ = params_.sensitivity.value();

    // Seed one degradation lane per faultable link of the topology,
    // so sweepMargins() covers the whole network from the start.
    for (const auto &[a, b] : net_.faultableLinks())
        laneFor(FaultTarget{FaultTarget::Scope::Channel, a, b}.key());

    registerStats();
}

void
FaultInjector::registerStats()
{
    StatRegistry &reg = sim_.telemetry();
    const std::string prefix = reg.uniquePrefix("fault");
    reg.add(prefix + ".injected", [this] {
        return static_cast<double>(injected_);
    });
    reg.add(prefix + ".repairs", [this] {
        return static_cast<double>(repairs_);
    });
    reg.add(prefix + ".links_down", [this] {
        return static_cast<double>(linksDown_);
    });
    reg.add(prefix + ".derated", [this] {
        return static_cast<double>(derated_);
    });
    reg.add(prefix + ".site_kills", [this] {
        return static_cast<double>(sitesDown_);
    });
    reg.add(prefix + ".min_margin_db", [this] {
        return minMarginDb_;
    });
    reg.add(prefix + ".tracked_links", [this] {
        return static_cast<double>(laneKeys_.size());
    });
}

std::uint32_t
FaultInjector::laneFor(std::uint64_t key)
{
    const auto it = laneIndex_.find(key);
    if (it != laneIndex_.end())
        return it->second;
    const auto i = static_cast<std::uint32_t>(laneKeys_.size());
    laneKeys_.push_back(key);
    droopDb_.push_back(0.0);
    dropDb_.push_back(0.0);
    wgDb_.push_back(0.0);
    rxDb_.push_back(0.0);
    killed_.push_back(0);
    // A fresh lane's margin is the base margin; cache it directly so
    // construction does not pay one evaluate per faultable link.
    marginDb_.push_back(params_.basePath
                            .margin(params_.launch, params_.sensitivity)
                            .value());
    laneIndex_.try_emplace(key, i);
    return i;
}

void
FaultInjector::arm()
{
    if (armed_)
        panic("FaultInjector::arm: already armed");
    armed_ = true;
    armedEvents_ = schedule_.ordered();
    for (std::size_t i = 0; i < armedEvents_.size(); ++i) {
        if (batching_) {
            sim_.events().scheduleBatch(
                armedEvents_[i].at, injectKernel_,
                static_cast<std::uint32_t>(i));
        } else {
            sim_.events().schedule(armedEvents_[i].at,
                                   [this, i] { apply(armedEvents_[i]); },
                                   "fault.inject");
        }
    }
}

void
FaultInjector::injectBatch(void *ctx, Tick when,
                           const std::uint32_t *payloads,
                           std::size_t count)
{
    (void)when;
    auto *inj = static_cast<FaultInjector *>(ctx);
    for (std::size_t i = 0; i < count; ++i)
        inj->apply(inj->armedEvents_[payloads[i]]);
}

double
FaultInjector::evaluateScalar(const Health &h) const
{
    // The accumulated soft degradation re-runs the section 2 budget:
    // added component loss through deratedPath(), dimmer launch,
    // deafer receiver. This is the reference arithmetic the flat
    // lanes must reproduce bit for bit.
    return params_.basePath
        .deratedPath(Decibel(h.dropDb + h.wgDb))
        .margin(params_.launch - Decibel(h.droopDb),
                params_.sensitivity + Decibel(h.rxDb))
        .value();
}

double
FaultInjector::evaluateFlat(std::uint32_t i) const
{
    // Same operation sequence as evaluateScalar: totalLoss() starts
    // from the extra (derate) loss and folds each element's term in
    // path order; margin is (launch - loss) - sensitivity. Keeping
    // the fold order makes the two paths bit-identical despite FP
    // non-associativity.
    double total = baseExtraDb_ + (dropDb_[i] + wgDb_[i]);
    for (const double term : elemLossDb_)
        total += term;
    return ((launchDbm_ - droopDb_[i]) - total)
        - (sensitivityDbm_ + rxDb_[i]);
}

double
FaultInjector::marginOfLane(std::uint32_t i) const
{
    if (batching_)
        return evaluateFlat(i);
    return evaluateScalar(Health{droopDb_[i], dropDb_[i], wgDb_[i],
                                 rxDb_[i], killed_[i] != 0});
}

LinkHealth
FaultInjector::healthAt(std::uint32_t i, double margin_db) const
{
    LinkHealth out;
    out.down = killed_[i] != 0 || margin_db < 0.0;
    if (!out.down && margin_db < params_.derateThreshold.value())
        out.bandwidthFraction = params_.deratedFraction;
    return out;
}

double
FaultInjector::sweepMargins()
{
    if (laneKeys_.empty()) {
        return params_.basePath
            .margin(params_.launch, params_.sensitivity)
            .value();
    }
    if (batching_) {
        // One flat pass over the lanes: the hot loop the compiler can
        // vectorize — no path copies, no Decibel temporaries.
        const std::size_t n = laneKeys_.size();
        for (std::size_t i = 0; i < n; ++i) {
            double total = baseExtraDb_ + (dropDb_[i] + wgDb_[i]);
            for (const double term : elemLossDb_)
                total += term;
            marginDb_[i] = ((launchDbm_ - droopDb_[i]) - total)
                - (sensitivityDbm_ + rxDb_[i]);
        }
    } else {
        for (std::size_t i = 0; i < laneKeys_.size(); ++i) {
            marginDb_[i] = evaluateScalar(
                Health{droopDb_[i], dropDb_[i], wgDb_[i], rxDb_[i],
                       killed_[i] != 0});
        }
    }
    double min = marginDb_[0];
    for (const double m : marginDb_)
        min = m < min ? m : min;
    return min;
}

double
FaultInjector::marginDbOf(const FaultTarget &target) const
{
    const auto it = laneIndex_.find(target.key());
    if (it != laneIndex_.end())
        return marginOfLane(it->second);
    // Unknown target: fresh health, base margin.
    return evaluateScalar(Health{});
}

void
FaultInjector::apply(const FaultEvent &ev)
{
    if (ev.target.scope == FaultTarget::Scope::Site)
        applySite(ev);
    else
        applyChannel(ev);

    if (trace_) {
        trace_->instant(std::string(faultKindName(ev.kind)) + " "
                            + ev.target.name(net_),
                        "fault", tracePid_, 0, sim_.now());
    }
}

void
FaultInjector::applyChannel(const FaultEvent &ev)
{
    const std::uint32_t lane = laneFor(ev.target.key());
    const double before_db = marginOfLane(lane);
    const LinkHealth before = healthAt(lane, before_db);

    switch (ev.kind) {
      case FaultKind::LaserDroop:
        droopDb_[lane] += ev.magnitudeDb;
        break;
      case FaultKind::RingDrift:
        dropDb_[lane] += ev.magnitudeDb;
        break;
      case FaultKind::WaveguideCreep:
        wgDb_[lane] += ev.magnitudeDb;
        break;
      case FaultKind::ReceiverDegrade:
        rxDb_[lane] += ev.magnitudeDb;
        break;
      case FaultKind::ChannelKill:
        killed_[lane] = 1;
        break;
      case FaultKind::Repair:
        droopDb_[lane] = 0.0;
        dropDb_[lane] = 0.0;
        wgDb_[lane] = 0.0;
        rxDb_[lane] = 0.0;
        killed_[lane] = 0;
        break;
      case FaultKind::SiteKill:
        panic("FaultInjector: SiteKill against a channel target");
    }

    const double after_db = marginOfLane(lane);
    marginDb_[lane] = after_db;
    const LinkHealth after = healthAt(lane, after_db);
    if (!net_.applyLinkHealth(ev.target.a, ev.target.b, after)) {
        warn_once("fault: network '", net_.name(),
                  "' has no channel (", ev.target.a, ", ",
                  ev.target.b, "); event ignored");
        return;
    }

    if (ev.kind == FaultKind::Repair)
        ++repairs_;
    else
        ++injected_;
    if (after_db < minMarginDb_)
        minMarginDb_ = after_db;

    const bool was_derated = !before.down
        && before.bandwidthFraction < 1.0;
    const bool is_derated = !after.down
        && after.bandwidthFraction < 1.0;
    if (after.down && !before.down)
        ++linksDown_;
    else if (!after.down && before.down)
        --linksDown_;
    if (is_derated && !was_derated)
        ++derated_;
    else if (!is_derated && was_derated)
        --derated_;
}

void
FaultInjector::applySite(const FaultEvent &ev)
{
    bool &dead = sites_[ev.target.key()];
    const bool was_dead = dead;
    dead = ev.kind != FaultKind::Repair;
    if (!net_.applySiteHealth(ev.target.a, dead)) {
        dead = was_dead;
        warn_once("fault: network '", net_.name(),
                  "' has no per-site routing resource; site event "
                  "ignored");
        return;
    }

    if (ev.kind == FaultKind::Repair)
        ++repairs_;
    else
        ++injected_;
    if (dead && !was_dead)
        ++sitesDown_;
    else if (!dead && was_dead)
        --sitesDown_;
}

} // namespace macrosim
