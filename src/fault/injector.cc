#include "fault/injector.hh"

#include "sim/logging.hh"
#include "sim/telemetry/trace.hh"

namespace macrosim
{

FaultInjector::FaultInjector(Simulator &sim, Network &net,
                             FaultSchedule schedule,
                             const FaultModelParams &params,
                             TraceSink *trace, std::uint32_t trace_pid)
    : sim_(sim), net_(net), schedule_(std::move(schedule)),
      params_(params), trace_(trace), tracePid_(trace_pid),
      minMarginDb_(params.basePath
                       .margin(params.launch, params.sensitivity)
                       .value())
{
    registerStats();
}

void
FaultInjector::registerStats()
{
    StatRegistry &reg = sim_.telemetry();
    const std::string prefix = reg.uniquePrefix("fault");
    reg.add(prefix + ".injected", [this] {
        return static_cast<double>(injected_);
    });
    reg.add(prefix + ".repairs", [this] {
        return static_cast<double>(repairs_);
    });
    reg.add(prefix + ".links_down", [this] {
        return static_cast<double>(linksDown_);
    });
    reg.add(prefix + ".derated", [this] {
        return static_cast<double>(derated_);
    });
    reg.add(prefix + ".site_kills", [this] {
        return static_cast<double>(sitesDown_);
    });
    reg.add(prefix + ".min_margin_db", [this] {
        return minMarginDb_;
    });
}

void
FaultInjector::arm()
{
    if (armed_)
        panic("FaultInjector::arm: already armed");
    armed_ = true;
    armedEvents_ = schedule_.ordered();
    for (std::size_t i = 0; i < armedEvents_.size(); ++i) {
        sim_.events().schedule(armedEvents_[i].at,
                               [this, i] { apply(armedEvents_[i]); },
                               "fault.inject");
    }
}

LinkHealth
FaultInjector::evaluate(const Health &h, double &margin_db) const
{
    // The accumulated soft degradation re-runs the section 2 budget:
    // added component loss through deratedPath(), dimmer launch,
    // deafer receiver. One arithmetic path, shared with the tests.
    const Decibel margin = params_.basePath
        .deratedPath(Decibel(h.dropDb + h.wgDb))
        .margin(params_.launch - Decibel(h.droopDb),
                params_.sensitivity + Decibel(h.rxDb));
    margin_db = margin.value();

    LinkHealth out;
    out.down = h.killed || margin.value() < 0.0;
    if (!out.down && margin < params_.derateThreshold)
        out.bandwidthFraction = params_.deratedFraction;
    return out;
}

double
FaultInjector::marginDbOf(const FaultTarget &target) const
{
    Health h;
    const auto it = channels_.find(target.key());
    if (it != channels_.end())
        h = it->second;
    double margin_db = 0.0;
    evaluate(h, margin_db);
    return margin_db;
}

void
FaultInjector::apply(const FaultEvent &ev)
{
    if (ev.target.scope == FaultTarget::Scope::Site)
        applySite(ev);
    else
        applyChannel(ev);

    if (trace_) {
        trace_->instant(std::string(faultKindName(ev.kind)) + " "
                            + ev.target.name(net_),
                        "fault", tracePid_, 0, sim_.now());
    }
}

void
FaultInjector::applyChannel(const FaultEvent &ev)
{
    Health &h = channels_[ev.target.key()];
    double before_db = 0.0;
    const LinkHealth before = evaluate(h, before_db);

    switch (ev.kind) {
      case FaultKind::LaserDroop:
        h.droopDb += ev.magnitudeDb;
        break;
      case FaultKind::RingDrift:
        h.dropDb += ev.magnitudeDb;
        break;
      case FaultKind::WaveguideCreep:
        h.wgDb += ev.magnitudeDb;
        break;
      case FaultKind::ReceiverDegrade:
        h.rxDb += ev.magnitudeDb;
        break;
      case FaultKind::ChannelKill:
        h.killed = true;
        break;
      case FaultKind::Repair:
        h = Health{};
        break;
      case FaultKind::SiteKill:
        panic("FaultInjector: SiteKill against a channel target");
    }

    double after_db = 0.0;
    const LinkHealth after = evaluate(h, after_db);
    if (!net_.applyLinkHealth(ev.target.a, ev.target.b, after)) {
        warn_once("fault: network '", net_.name(),
                  "' has no channel (", ev.target.a, ", ",
                  ev.target.b, "); event ignored");
        return;
    }

    if (ev.kind == FaultKind::Repair)
        ++repairs_;
    else
        ++injected_;
    if (after_db < minMarginDb_)
        minMarginDb_ = after_db;

    const bool was_derated = !before.down
        && before.bandwidthFraction < 1.0;
    const bool is_derated = !after.down
        && after.bandwidthFraction < 1.0;
    if (after.down && !before.down)
        ++linksDown_;
    else if (!after.down && before.down)
        --linksDown_;
    if (is_derated && !was_derated)
        ++derated_;
    else if (!is_derated && was_derated)
        --derated_;
}

void
FaultInjector::applySite(const FaultEvent &ev)
{
    bool &dead = sites_[ev.target.key()];
    const bool was_dead = dead;
    dead = ev.kind != FaultKind::Repair;
    if (!net_.applySiteHealth(ev.target.a, dead)) {
        dead = was_dead;
        warn_once("fault: network '", net_.name(),
                  "' has no per-site routing resource; site event "
                  "ignored");
        return;
    }

    if (ev.kind == FaultKind::Repair)
        ++repairs_;
    else
        ++injected_;
    if (dead && !was_dead)
        ++sitesDown_;
    else if (!dead && was_dead)
        --sitesDown_;
}

} // namespace macrosim
