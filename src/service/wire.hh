/**
 * @file
 * Compact binary serialization for the macrosimd wire protocol and
 * the campaign journal (DESIGN.md §13).
 *
 * Layout rules, chosen for bit-exactness and cross-version safety:
 *
 *  - All fixed-width integers are little-endian, written byte by
 *    byte (no memcpy of host-order words), so the format is
 *    identical on every host.
 *  - Unsigned counts and lengths use LEB128 varints (7 bits per
 *    byte, MSB = continuation), capped at 10 bytes.
 *  - Strings and blobs are varint-length-prefixed. A decoder
 *    rejects any length that exceeds the bytes remaining, so a
 *    corrupted length can never trigger a huge allocation.
 *  - Doubles travel as their IEEE-754 bit pattern in a u64, so a
 *    value round-trips bit-exactly (the checkpoint/resume
 *    bit-identity guarantee rests on this).
 *
 * Framing: every protocol message and journal record is one frame,
 *
 *    [u32 payload length][u16 version][u16 message id][body]
 *
 * where the length counts everything after itself (version + id +
 * body). The version is (major << 8) | minor. A reader rejects a
 * frame whose major differs from its own; a frame with an equal or
 * newer minor may carry appended trailing fields, which old readers
 * ignore (decode what you know, skip the rest). Within one version,
 * decoders are exact: trailing bytes mean corruption.
 */

#ifndef MACROSIM_SERVICE_WIRE_HH
#define MACROSIM_SERVICE_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace macrosim::service
{

constexpr std::uint8_t protoMajor = 1;
constexpr std::uint8_t protoMinor = 0;
constexpr std::uint16_t protoVersion =
    (static_cast<std::uint16_t>(protoMajor) << 8) | protoMinor;

/** Hard ceiling on one frame's payload; larger lengths are treated
 *  as stream corruption, not as a request to buffer 4 GiB. */
constexpr std::uint32_t maxFramePayload = 64u << 20;

/**
 * Whether a peer's frame version is acceptable: same major; any
 * minor (newer minors only ever append fields).
 */
constexpr bool
versionCompatible(std::uint16_t v)
{
    return (v >> 8) == protoMajor;
}

/** Append-only binary writer. */
class BinSerializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    /** IEEE-754 bit pattern: round-trips every double bit-exactly,
     *  including NaNs and infinities. */
    void f64(double v);

    /** LEB128 unsigned varint. */
    void
    varint(std::uint64_t v)
    {
        while (v >= 0x80) {
            u8(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        u8(static_cast<std::uint8_t>(v));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Varint length + raw bytes. */
    void str(std::string_view s);

    void bytes(const void *data, std::size_t n);

    std::size_t size() const { return buf_.size(); }
    const std::uint8_t *data() const { return buf_.data(); }
    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    void clear() { buf_.clear(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked binary reader. Any out-of-range read latches
 * ok() == false and returns a zero value; callers may therefore
 * decode a whole message unconditionally and check ok() once.
 */
class BinDeserializer
{
  public:
    BinDeserializer(const std::uint8_t *data, std::size_t len)
        : p_(data), end_(data + len)
    {}

    explicit BinDeserializer(const std::vector<std::uint8_t> &buf)
        : BinDeserializer(buf.data(), buf.size())
    {}

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return *p_++;
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo
                                          | (std::uint16_t{u8()} << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t{u16()} << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t{u32()} << 32);
    }

    double f64();

    std::uint64_t varint();

    bool boolean() { return u8() != 0; }

    std::string str();

    /** Read @p n raw bytes into @p out (resized). */
    bool bytes(std::vector<std::uint8_t> &out, std::size_t n);

    bool ok() const { return ok_; }

    std::size_t
    remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    bool atEnd() const { return remaining() == 0; }

    /**
     * Exact-consumption check for same-version bodies: ok() and
     * nothing left over. A newer-minor frame is allowed trailing
     * bytes; this helper is for readers that know the writer's
     * minor is their own.
     */
    bool exact() const { return ok_ && atEnd(); }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *p_;
    const std::uint8_t *end_;
    bool ok_ = true;
};

/** One decoded frame: version + message id + body bytes. */
struct Frame
{
    std::uint16_t version = protoVersion;
    std::uint16_t id = 0;
    std::vector<std::uint8_t> body;
};

/**
 * Encode a full frame (length prefix + header + body) ready for a
 * socket write or a journal append.
 */
std::vector<std::uint8_t> encodeFrame(std::uint16_t id,
                                      const BinSerializer &body);

/**
 * Incremental frame splitter for a byte stream that arrives in
 * arbitrary chunks (socket reads, journal tails).
 *
 * Bad means unrecoverable stream corruption: a payload length over
 * maxFramePayload or an incompatible major version. NeedMore at
 * end-of-input is how a journal reader tolerates a frame that was
 * mid-write when the process died.
 */
class FrameReader
{
  public:
    enum class Status
    {
        Ready,    ///< *out holds the next complete frame.
        NeedMore, ///< The buffered bytes end mid-frame.
        Bad,      ///< Corrupt stream; stop reading.
    };

    void feed(const void *data, std::size_t n);

    Status next(Frame *out, std::string *error = nullptr);

    /** Bytes buffered but not yet returned as frames. */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
};

} // namespace macrosim::service

#endif // MACROSIM_SERVICE_WIRE_HH
