#include "service/journal.hh"

#include <cerrno>
#include <cstring>
#include <vector>

#include "service/protocol.hh"

namespace macrosim::service
{

bool
JournalWriter::create(const std::string &path, std::uint64_t jobId,
                      const CampaignSpec &spec)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        return false;
    path_ = path;

    BinSerializer body;
    body.u32(journalMagic);
    body.u64(jobId);
    body.u64(spec.fingerprint());
    spec.encode(body);
    return writeFrame(encodeFrame(
        static_cast<std::uint16_t>(MsgId::JournalHeader), body));
}

bool
JournalWriter::openAppend(const std::string &path)
{
    close();
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr)
        return false;
    path_ = path;
    return true;
}

bool
JournalWriter::append(const CellOutcome &cell)
{
    if (file_ == nullptr)
        return false;
    BinSerializer body;
    cell.encode(body);
    return writeFrame(encodeFrame(
        static_cast<std::uint16_t>(MsgId::JournalCell), body));
}

void
JournalWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    path_.clear();
}

bool
JournalWriter::writeFrame(const std::vector<std::uint8_t> &frame)
{
    if (std::fwrite(frame.data(), 1, frame.size(), file_)
        != frame.size())
        return false;
    // Flush to the OS: a daemon killed an instant later loses only
    // a record that never finished fwrite, which the reader drops.
    return std::fflush(file_) == 0;
}

JournalContents
readJournal(const std::string &path)
{
    JournalContents out;

    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        out.error = std::string("cannot open '") + path
                    + "': " + std::strerror(errno);
        return out;
    }

    FrameReader reader;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        reader.feed(buf, n);
    std::fclose(file);

    bool sawHeader = false;
    for (;;) {
        Frame frame;
        std::string err;
        const FrameReader::Status st = reader.next(&frame, &err);
        if (st == FrameReader::Status::NeedMore) {
            out.truncatedTail = reader.buffered() > 0;
            break;
        }
        if (st == FrameReader::Status::Bad) {
            // Corruption mid-file: keep everything before it.
            out.error = "journal corrupt after "
                        + std::to_string(out.cells.size())
                        + " cells: " + err;
            out.truncatedTail = true;
            break;
        }
        if (!sawHeader) {
            if (frame.id
                != static_cast<std::uint16_t>(MsgId::JournalHeader)) {
                out.error = "not a campaign journal (first frame id "
                            + std::to_string(frame.id) + ")";
                return out;
            }
            BinDeserializer d(frame.body);
            if (d.u32() != journalMagic) {
                out.error = "bad journal magic";
                return out;
            }
            out.jobId = d.u64();
            out.fingerprint = d.u64();
            if (!out.spec.decode(d) || !d.ok()) {
                out.error = "journal header spec undecodable";
                return out;
            }
            sawHeader = true;
            continue;
        }
        if (frame.id
            != static_cast<std::uint16_t>(MsgId::JournalCell)) {
            out.error = "unexpected journal frame id "
                        + std::to_string(frame.id);
            out.truncatedTail = true;
            break;
        }
        BinDeserializer d(frame.body);
        CellOutcome cell;
        if (!cell.decode(d)) {
            out.error = "cell record undecodable after "
                        + std::to_string(out.cells.size())
                        + " cells";
            out.truncatedTail = true;
            break;
        }
        out.cells[cell.index] = std::move(cell);
    }

    if (!sawHeader) {
        if (out.error.empty())
            out.error = "journal has no header frame";
        return out;
    }
    out.valid = true;
    return out;
}

std::string
journalFileName(std::uint64_t jobId)
{
    return "job" + std::to_string(jobId) + ".mjr";
}

} // namespace macrosim::service
