#include "service/server.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "service/journal.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"

namespace macrosim::service
{

namespace
{

/** Count a result's executed (non-skipped) cells. */
std::uint64_t
cellsDone(const CampaignResult &res)
{
    std::uint64_t n = 0;
    for (const CellOutcome &cell : res.cells)
        if (!cell.skipped)
            ++n;
    return n;
}

} // namespace

Daemon::Daemon(DaemonOptions opts) : opts_(std::move(opts)) {}

Daemon::~Daemon()
{
    if (executor_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(jobsMutex_);
            stopExecutor_ = true;
        }
        queueCv_.notify_all();
        executor_.join();
    }
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
}

bool
Daemon::setupSocket()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.empty()
        || opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        warn("macrosimd: bad socket path '", opts_.socketPath, "'");
        return false;
    }
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);

    ::unlink(opts_.socketPath.c_str());
    listenFd_ = ::socket(AF_UNIX,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
        warn("macrosimd: socket(): ", std::strerror(errno));
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("macrosimd: bind('", opts_.socketPath,
             "'): ", std::strerror(errno));
        return false;
    }
    if (::listen(listenFd_, 16) != 0) {
        warn("macrosimd: listen(): ", std::strerror(errno));
        return false;
    }
    return true;
}

bool
Daemon::setupWakePipe()
{
    int fds[2];
    if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
        warn("macrosimd: pipe2(): ", std::strerror(errno));
        return false;
    }
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
    return true;
}

void
Daemon::resumeFromJournals()
{
    DIR *dir = ::opendir(opts_.journalDir.c_str());
    if (dir == nullptr) {
        warn("macrosimd: --resume: cannot open journal dir '",
             opts_.journalDir, "': ", std::strerror(errno));
        return;
    }
    std::vector<std::string> names;
    while (dirent *ent = ::readdir(dir)) {
        const std::string name = ent->d_name;
        if (name.size() > 7 && name.rfind("job", 0) == 0
            && name.compare(name.size() - 4, 4, ".mjr") == 0)
            names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());

    std::lock_guard<std::mutex> lk(jobsMutex_);
    for (const std::string &name : names) {
        const std::string path = opts_.journalDir + "/" + name;
        JournalContents jc = readJournal(path);
        if (!jc.valid) {
            warn("macrosimd: --resume: skipping ", path, ": ",
                 jc.error);
            continue;
        }
        if (jc.fingerprint != jc.spec.fingerprint()) {
            warn("macrosimd: --resume: skipping ", path,
                 ": spec fingerprint mismatch (journal written by an "
                 "incompatible build?)");
            continue;
        }
        auto job = std::make_shared<Job>();
        job->id = jc.jobId;
        job->spec = jc.spec;
        job->totalCells = jc.spec.cellCount();
        job->hasJournal = true;
        for (auto &[idx, cell] : jc.cells)
            if (!cell.skipped && idx < job->totalCells)
                job->prior.emplace(idx, std::move(cell));

        if (job->prior.size() == job->totalCells) {
            CampaignResult res;
            res.spec = job->spec;
            for (auto &[idx, cell] : job->prior)
                res.cells.push_back(cell);
            job->result = std::move(res);
            job->state = JobState::Done;
            job->doneCells = job->totalCells;
            inform("macrosimd: resume: job ", job->id,
                   " already complete (", job->totalCells, " cells)");
        } else {
            job->state = JobState::Queued;
            job->doneCells = job->prior.size();
            queue_.push_back(job->id);
            inform("macrosimd: resume: job ", job->id, " re-queued (",
                   job->prior.size(), "/", job->totalCells,
                   " cells journaled)");
        }
        jobs_[job->id] = job;
        nextJobId_ = std::max(nextJobId_, job->id + 1);
    }
}

int
Daemon::run()
{
    installSweepSignalHandlers();
    if (!setupWakePipe() || !setupSocket())
        return 1;
    if (opts_.resume)
        resumeFromJournals();

    executor_ = std::thread(&Daemon::executorLoop, this);
    inform("macrosimd: listening on ", opts_.socketPath,
           " (journals in ", opts_.journalDir, ")");

    while (!shuttingDown_) {
        if (sweepInterrupted()) {
            beginShutdown();
            break;
        }

        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        fds.push_back({wakeRead_, POLLIN, 0});
        for (auto &[fd, conn] : conns_) {
            short ev = POLLIN;
            if (conn.outPos < conn.out.size())
                ev |= POLLOUT;
            fds.push_back({fd, ev, 0});
        }

        const int rc = ::poll(fds.data(), fds.size(), 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("macrosimd: poll(): ", std::strerror(errno));
            break;
        }

        if (fds[1].revents != 0)
            drainWakePipe();
        routeOutbox();
        if (fds[0].revents != 0)
            acceptClients();

        for (std::size_t i = 2; i < fds.size(); ++i) {
            auto it = conns_.find(fds[i].fd);
            if (it == conns_.end())
                continue;
            Connection &conn = it->second;
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                readFromConn(conn);
            if (!conn.dead && (fds[i].revents & POLLOUT))
                flushConn(conn);
        }

        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->second.dead) {
                ::close(it->first);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Graceful teardown: cancel the running campaign (its in-flight
    // cells drain and are journaled), stop the executor, then flush
    // final replies/events to whoever is still connected.
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        stopExecutor_ = true;
        for (auto &[id, job] : jobs_)
            if (job->state == JobState::Running)
                job->cancel.store(true);
    }
    queueCv_.notify_all();
    executor_.join();

    drainWakePipe();
    routeOutbox();
    for (auto &[fd, conn] : conns_) {
        flushConn(conn);
        ::close(fd);
    }
    conns_.clear();
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opts_.socketPath.c_str());

    const int status = sweepExitStatus();
    inform("macrosimd: shut down",
           status != 0 ? " (interrupted)" : "");
    return status;
}

void
Daemon::beginShutdown()
{
    if (shuttingDown_)
        return;
    shuttingDown_ = true;
    std::lock_guard<std::mutex> lk(jobsMutex_);
    for (auto &[id, job] : jobs_)
        if (job->state == JobState::Running)
            job->cancel.store(true);
}

void
Daemon::executorLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(jobsMutex_);
            queueCv_.wait(lk, [&] {
                return stopExecutor_ || !queue_.empty();
            });
            if (stopExecutor_)
                return;
            job = jobs_.at(queue_.front());
            queue_.pop_front();
            job->state = JobState::Running;
        }
        runJob(job);
    }
}

void
Daemon::runJob(const std::shared_ptr<Job> &job)
{
    const std::string path =
        opts_.journalDir + "/" + journalFileName(job->id);
    JournalWriter journal;
    const bool jok = job->hasJournal
                         ? journal.openAppend(path)
                         : journal.create(path, job->id, job->spec);
    if (!jok) {
        const std::string err = "cannot open journal " + path;
        {
            std::lock_guard<std::mutex> lk(jobsMutex_);
            job->state = JobState::Failed;
            job->error = err;
        }
        CampaignDoneEventMsg done;
        done.jobId = job->id;
        done.state = JobState::Failed;
        done.error = err;
        postEvent(job->id, encodeMessage(done));
        return;
    }

    // Hooks run on sweep worker threads, serialized by the campaign
    // runner's completion mutex (campaign.hh).
    std::uint64_t journaled = 0;
    CampaignHooks hooks;
    hooks.cancel = &job->cancel;
    hooks.cellDone = [&](const CellOutcome &cell) {
        if (!journal.append(cell))
            warn("macrosimd: journal append failed for job ",
                 job->id, " cell ", cell.index);
        ++journaled;
        CellDoneEventMsg ev;
        ev.jobId = job->id;
        ev.cell = cell;
        postEvent(job->id, encodeMessage(ev));
        // Crash injection for the kill/resume e2e: die as abruptly
        // as a kill -9, right after the Nth cell hit the journal.
        if (opts_.exitAfterCells != 0
            && journaled >= opts_.exitAfterCells)
            std::_Exit(42);
    };
    hooks.progress = [&](const CampaignProgress &p) {
        {
            std::lock_guard<std::mutex> lk(jobsMutex_);
            job->doneCells = p.done;
            job->etaSec = p.etaSec;
        }
        ProgressEventMsg ev;
        ev.jobId = job->id;
        ev.cellIndex = p.cellIndex;
        ev.label = p.label;
        ev.doneCells = p.done;
        ev.totalCells = p.total;
        ev.etaSec = p.etaSec;
        postEvent(job->id, encodeMessage(ev));
    };

    CampaignResult res;
    std::string err;
    bool failed = false;
    try {
        res = runCampaignOffline(job->spec, opts_.jobs, hooks,
                                 job->prior.empty() ? nullptr
                                                    : &job->prior,
                                 false);
    } catch (const std::exception &e) {
        failed = true;
        err = e.what();
    }
    journal.close();

    JobState final = JobState::Done;
    if (failed) {
        final = JobState::Failed;
    } else if (res.interrupted) {
        if (!job->cancel.load()) {
            // Interrupted by daemon shutdown, not by CancelJob: put
            // the job back to Queued so its state reads as
            // resumable; the journal holds every completed cell.
            std::lock_guard<std::mutex> lk(jobsMutex_);
            job->state = JobState::Queued;
            job->doneCells = cellsDone(res);
            return;
        }
        final = JobState::Cancelled;
    }

    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        job->state = final;
        job->error = err;
        if (!failed) {
            job->doneCells = cellsDone(res);
            job->result = std::move(res);
        }
    }
    CampaignDoneEventMsg done;
    done.jobId = job->id;
    done.state = final;
    done.error = err;
    postEvent(job->id, encodeMessage(done));
}

void
Daemon::postEvent(std::uint64_t jobId, std::vector<std::uint8_t> frame)
{
    {
        std::lock_guard<std::mutex> lk(outboxMutex_);
        outbox_.emplace_back(jobId, std::move(frame));
    }
    const char byte = 1;
    // A full pipe already guarantees a pending wake-up.
    (void)!::write(wakeWrite_, &byte, 1);
}

void
Daemon::acceptClients()
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK
                && errno != EINTR)
                warn("macrosimd: accept(): ", std::strerror(errno));
            return;
        }
        Connection conn;
        conn.fd = fd;
        conns_.emplace(fd, std::move(conn));
    }
}

void
Daemon::drainWakePipe()
{
    char buf[256];
    while (::read(wakeRead_, buf, sizeof(buf)) > 0) {}
}

void
Daemon::routeOutbox()
{
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
        pending;
    {
        std::lock_guard<std::mutex> lk(outboxMutex_);
        pending.swap(outbox_);
    }
    for (auto &[jobId, frame] : pending)
        for (auto &[fd, conn] : conns_)
            if (!conn.dead && conn.subscriptions.count(jobId) != 0)
                queueToConn(conn, frame);
}

void
Daemon::readFromConn(Connection &conn)
{
    for (;;) {
        char buf[65536];
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.reader.feed(buf, static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof(buf)))
                break;
            continue;
        }
        if (n == 0) {
            conn.dead = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        conn.dead = true;
        break;
    }

    while (!conn.dead) {
        Frame frame;
        std::string err;
        const FrameReader::Status st = conn.reader.next(&frame, &err);
        if (st == FrameReader::Status::NeedMore)
            break;
        if (st == FrameReader::Status::Bad) {
            warn("macrosimd: dropping connection: ", err);
            conn.dead = true;
            break;
        }
        dispatchFrame(conn, frame);
    }
}

void
Daemon::flushConn(Connection &conn)
{
    while (conn.outPos < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outPos,
                   conn.out.size() - conn.outPos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.outPos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // POLLOUT will resume
        if (n < 0 && errno == EINTR)
            continue;
        conn.dead = true;
        return;
    }
    conn.out.clear();
    conn.outPos = 0;
}

void
Daemon::queueToConn(Connection &conn,
                    const std::vector<std::uint8_t> &bytes)
{
    if (conn.dead)
        return;
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    flushConn(conn);
}

void
Daemon::dispatchFrame(Connection &conn, const Frame &frame)
{
    switch (static_cast<MsgId>(frame.id)) {
      case MsgId::SubmitCampaign:
        handleSubmit(conn, frame);
        return;
      case MsgId::QueryStatus:
        handleStatus(conn, frame);
        return;
      case MsgId::CancelJob:
        handleCancel(conn, frame);
        return;
      case MsgId::SubscribeProgress:
        handleSubscribe(conn, frame);
        return;
      case MsgId::FetchResults:
        handleResults(conn, frame);
        return;
      case MsgId::Shutdown:
        handleShutdown(conn);
        return;
      default:
        sendError(conn, ErrorCode::BadRequest,
                  "unexpected message id "
                      + std::to_string(frame.id));
        return;
    }
}

void
Daemon::handleSubmit(Connection &conn, const Frame &frame)
{
    SubmitCampaignMsg msg;
    if (!decodeMessage(frame, &msg)) {
        sendError(conn, ErrorCode::BadRequest,
                  "undecodable SubmitCampaign");
        return;
    }
    const std::string problem = msg.spec.validate();
    if (!problem.empty()) {
        sendError(conn, ErrorCode::BadCampaign, problem);
        return;
    }
    if (shuttingDown_) {
        sendError(conn, ErrorCode::Internal, "daemon shutting down");
        return;
    }

    auto job = std::make_shared<Job>();
    job->spec = msg.spec;
    job->totalCells = msg.spec.cellCount();
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        job->id = nextJobId_++;
        jobs_[job->id] = job;
        queue_.push_back(job->id);
    }
    queueCv_.notify_one();

    SubmitReplyMsg reply;
    reply.jobId = job->id;
    reply.totalCells = job->totalCells;
    queueToConn(conn, encodeMessage(reply));
    inform("macrosimd: job ", job->id, " submitted (",
           job->totalCells, " cells)");
}

void
Daemon::handleStatus(Connection &conn, const Frame &frame)
{
    QueryStatusMsg msg;
    if (!decodeMessage(frame, &msg)) {
        sendError(conn, ErrorCode::BadRequest,
                  "undecodable QueryStatus");
        return;
    }
    auto job = findJob(msg.jobId);
    if (!job) {
        sendError(conn, ErrorCode::UnknownJob,
                  "no job " + std::to_string(msg.jobId));
        return;
    }
    StatusReplyMsg reply;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        reply.jobId = job->id;
        reply.state = job->state;
        reply.doneCells = job->doneCells;
        reply.totalCells = job->totalCells;
        reply.etaSec = job->etaSec;
        reply.error = job->error;
    }
    queueToConn(conn, encodeMessage(reply));
}

void
Daemon::handleCancel(Connection &conn, const Frame &frame)
{
    CancelJobMsg msg;
    if (!decodeMessage(frame, &msg)) {
        sendError(conn, ErrorCode::BadRequest,
                  "undecodable CancelJob");
        return;
    }
    auto job = findJob(msg.jobId);
    if (!job) {
        sendError(conn, ErrorCode::UnknownJob,
                  "no job " + std::to_string(msg.jobId));
        return;
    }

    bool accepted = false;
    bool wasQueued = false;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        if (job->state == JobState::Queued) {
            auto it =
                std::find(queue_.begin(), queue_.end(), job->id);
            if (it != queue_.end())
                queue_.erase(it);
            job->state = JobState::Cancelled;
            job->result.spec = job->spec;
            job->result.interrupted = true;
            accepted = true;
            wasQueued = true;
        } else if (job->state == JobState::Running) {
            job->cancel.store(true);
            accepted = true;
        }
    }
    if (wasQueued) {
        CampaignDoneEventMsg done;
        done.jobId = job->id;
        done.state = JobState::Cancelled;
        postEvent(job->id, encodeMessage(done));
    }

    CancelReplyMsg reply;
    reply.jobId = job->id;
    reply.accepted = accepted;
    queueToConn(conn, encodeMessage(reply));
    if (accepted)
        inform("macrosimd: job ", job->id, " cancel requested");
}

void
Daemon::handleSubscribe(Connection &conn, const Frame &frame)
{
    SubscribeProgressMsg msg;
    if (!decodeMessage(frame, &msg)) {
        sendError(conn, ErrorCode::BadRequest,
                  "undecodable SubscribeProgress");
        return;
    }
    auto job = findJob(msg.jobId);
    if (!job) {
        sendError(conn, ErrorCode::UnknownJob,
                  "no job " + std::to_string(msg.jobId));
        return;
    }
    conn.subscriptions.insert(msg.jobId);
    SubscribeReplyMsg reply;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        reply.jobId = job->id;
        reply.state = job->state;
        reply.doneCells = job->doneCells;
        reply.totalCells = job->totalCells;
    }
    queueToConn(conn, encodeMessage(reply));
}

void
Daemon::handleResults(Connection &conn, const Frame &frame)
{
    FetchResultsMsg msg;
    if (!decodeMessage(frame, &msg)) {
        sendError(conn, ErrorCode::BadRequest,
                  "undecodable FetchResults");
        return;
    }
    auto job = findJob(msg.jobId);
    if (!job) {
        sendError(conn, ErrorCode::UnknownJob,
                  "no job " + std::to_string(msg.jobId));
        return;
    }
    ResultsReplyMsg reply;
    {
        std::lock_guard<std::mutex> lk(jobsMutex_);
        reply.jobId = job->id;
        reply.state = job->state;
        if (job->state == JobState::Done
            || job->state == JobState::Cancelled) {
            reply.table = job->result.table();
            reply.cells = job->result.cells;
        }
    }
    if (reply.state == JobState::Queued
        || reply.state == JobState::Running) {
        sendError(conn, ErrorCode::NotReady,
                  "job " + std::to_string(msg.jobId)
                      + " not finished ("
                      + to_string(reply.state) + ")");
        return;
    }
    queueToConn(conn, encodeMessage(reply));
}

void
Daemon::handleShutdown(Connection &conn)
{
    ShutdownReplyMsg reply;
    queueToConn(conn, encodeMessage(reply));
    inform("macrosimd: shutdown requested");
    beginShutdown();
}

void
Daemon::sendError(Connection &conn, ErrorCode code,
                  const std::string &text)
{
    ErrorReplyMsg reply;
    reply.code = static_cast<std::uint32_t>(code);
    reply.text = text;
    queueToConn(conn, encodeMessage(reply));
}

std::shared_ptr<Daemon::Job>
Daemon::findJob(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(jobsMutex_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

} // namespace macrosim::service
