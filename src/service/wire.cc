#include "service/wire.hh"

#include <bit>
#include <cstring>

namespace macrosim::service
{

void
BinSerializer::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
BinSerializer::str(std::string_view s)
{
    varint(s.size());
    bytes(s.data(), s.size());
}

void
BinSerializer::bytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
}

double
BinDeserializer::f64()
{
    return std::bit_cast<double>(u64());
}

std::uint64_t
BinDeserializer::varint()
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        const std::uint8_t byte = u8();
        if (!ok_)
            return 0;
        // The 10th byte may only contribute the top bit of a u64.
        if (shift == 63 && (byte & 0xFE) != 0) {
            ok_ = false;
            return 0;
        }
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            return v;
    }
    ok_ = false; // 10 continuation bytes: not a valid u64 varint
    return 0;
}

std::string
BinDeserializer::str()
{
    const std::uint64_t n = varint();
    if (!ok_ || n > remaining()) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char *>(p_),
                  static_cast<std::size_t>(n));
    p_ += n;
    return s;
}

bool
BinDeserializer::bytes(std::vector<std::uint8_t> &out, std::size_t n)
{
    if (!need(n))
        return false;
    out.assign(p_, p_ + n);
    p_ += n;
    return true;
}

std::vector<std::uint8_t>
encodeFrame(std::uint16_t id, const BinSerializer &body)
{
    BinSerializer frame;
    const std::uint32_t payload =
        static_cast<std::uint32_t>(4 + body.size());
    frame.u32(payload);
    frame.u16(protoVersion);
    frame.u16(id);
    frame.bytes(body.data(), body.size());
    return frame.take();
}

void
FrameReader::feed(const void *data, std::size_t n)
{
    // Compact once the consumed prefix dominates the buffer.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + n);
}

FrameReader::Status
FrameReader::next(Frame *out, std::string *error)
{
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4)
        return Status::NeedMore;

    BinDeserializer header(buf_.data() + pos_, avail);
    const std::uint32_t payload = header.u32();
    if (payload < 4 || payload > maxFramePayload) {
        if (error)
            *error = "bad frame length " + std::to_string(payload);
        return Status::Bad;
    }
    if (avail < 4 + static_cast<std::size_t>(payload))
        return Status::NeedMore;

    const std::uint16_t version = header.u16();
    const std::uint16_t id = header.u16();
    if (!versionCompatible(version)) {
        if (error) {
            *error = "incompatible protocol version "
                     + std::to_string(version >> 8) + "."
                     + std::to_string(version & 0xFF) + " (mine is "
                     + std::to_string(protoMajor) + "."
                     + std::to_string(protoMinor) + ")";
        }
        return Status::Bad;
    }

    out->version = version;
    out->id = id;
    const std::size_t body = payload - 4;
    out->body.assign(buf_.data() + pos_ + 8,
                     buf_.data() + pos_ + 8 + body);
    pos_ += 4 + payload;
    return Status::Ready;
}

} // namespace macrosim::service
