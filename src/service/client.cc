#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace macrosim::service
{

namespace
{

bool
isEventId(std::uint16_t id)
{
    return id >= 128 && id < 192;
}

} // namespace

bool
ServiceClient::connectUnix(const std::string &path, std::string *error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "bad socket path '" + path + "'";
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    // Retry briefly on a socket that is missing or not yet accepting:
    // a daemon that just started (or just replaced a stale socket
    // file left behind by a killed predecessor) wins the race within
    // a few tries.
    for (int attempt = 0;; ++attempt) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd_ < 0) {
            if (error)
                *error =
                    std::string("socket(): ") + std::strerror(errno);
            return false;
        }
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return true;
        const int err = errno;
        close();
        if ((err != ECONNREFUSED && err != ENOENT) || attempt >= 50) {
            if (error)
                *error = "connect('" + path
                         + "'): " + std::strerror(err);
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_ = FrameReader();
}

bool
ServiceClient::sendFrame(const std::vector<std::uint8_t> &frame)
{
    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n = ::send(fd_, frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error_ = std::string("send(): ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
ServiceClient::recvFrame(Frame *out)
{
    for (;;) {
        std::string err;
        const FrameReader::Status st = reader_.next(out, &err);
        if (st == FrameReader::Status::Ready)
            return true;
        if (st == FrameReader::Status::Bad) {
            error_ = "corrupt stream: " + err;
            return false;
        }
        char buf[65536];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            reader_.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            error_ = "connection closed by daemon";
            return false;
        }
        if (errno == EINTR)
            continue;
        error_ = std::string("recv(): ") + std::strerror(errno);
        return false;
    }
}

bool
ServiceClient::recvReply(Frame *out)
{
    for (;;) {
        if (!recvFrame(out))
            return false;
        if (!isEventId(out->id))
            return true;
        if (onEvent_)
            onEvent_(*out);
    }
}

template <typename Req, typename Reply>
bool
ServiceClient::roundTrip(const Req &req, Reply *out)
{
    if (!send(req))
        return false;
    Frame frame;
    if (!recvReply(&frame))
        return false;
    if (frame.id == static_cast<std::uint16_t>(MsgId::ErrorReply)) {
        ErrorReplyMsg err;
        if (decodeMessage(frame, &err))
            error_ = "daemon error " + std::to_string(err.code)
                     + ": " + err.text;
        else
            error_ = "undecodable ErrorReply";
        return false;
    }
    if (!decodeMessage(frame, out)) {
        error_ = "unexpected reply id " + std::to_string(frame.id);
        return false;
    }
    return true;
}

bool
ServiceClient::submit(const CampaignSpec &spec, SubmitReplyMsg *out)
{
    SubmitCampaignMsg req;
    req.spec = spec;
    return roundTrip(req, out);
}

bool
ServiceClient::queryStatus(std::uint64_t jobId, StatusReplyMsg *out)
{
    QueryStatusMsg req;
    req.jobId = jobId;
    return roundTrip(req, out);
}

bool
ServiceClient::cancel(std::uint64_t jobId, CancelReplyMsg *out)
{
    CancelJobMsg req;
    req.jobId = jobId;
    return roundTrip(req, out);
}

bool
ServiceClient::subscribe(std::uint64_t jobId, SubscribeReplyMsg *out)
{
    SubscribeProgressMsg req;
    req.jobId = jobId;
    return roundTrip(req, out);
}

bool
ServiceClient::fetchResults(std::uint64_t jobId, ResultsReplyMsg *out)
{
    FetchResultsMsg req;
    req.jobId = jobId;
    return roundTrip(req, out);
}

bool
ServiceClient::shutdownDaemon()
{
    ShutdownReplyMsg reply;
    return roundTrip(ShutdownMsg{}, &reply);
}

bool
ServiceClient::waitForDone(std::uint64_t jobId, JobState *finalState)
{
    for (;;) {
        Frame frame;
        if (!recvFrame(&frame))
            return false;
        if (isEventId(frame.id) && onEvent_)
            onEvent_(frame);
        if (frame.id
            == static_cast<std::uint16_t>(MsgId::CampaignDoneEvent)) {
            CampaignDoneEventMsg done;
            if (decodeMessage(frame, &done) && done.jobId == jobId) {
                if (finalState)
                    *finalState = done.state;
                return true;
            }
        }
    }
}

} // namespace macrosim::service
