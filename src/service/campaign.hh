/**
 * @file
 * Campaign spec/result types shared by the bench binaries and the
 * macrosimd daemon (DESIGN.md §13).
 *
 * A *campaign* is a declarative description of a sweep: which cells
 * to run (pattern × network × load for the injector kind, workload ×
 * network for the trace-CPU matrix kind), under which root seed.
 * enumerateCells() decomposes a spec into an ordered cell list, and
 * runCampaignCell() runs one cell in its own Simulator with a seed
 * derived purely from (root seed, cell identity) via deriveSeed() —
 * the same splitmix64 derivation the figure benches use. Because
 * every cell is a pure function of the spec, a campaign's result
 * table is bit-identical whether the cells ran offline through
 * SweepRunner, through the daemon's job queue, across any --jobs
 * count, or split across a kill/--resume cycle (the journal stores
 * each double's exact bit pattern).
 *
 * The bench harness shares the network factory below (NetSel is
 * bench::NetId), so "Token Ring" means the same constructor here,
 * in fig6, and in a daemon campaign.
 */

#ifndef MACROSIM_SERVICE_CAMPAIGN_HH
#define MACROSIM_SERVICE_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/config.hh"
#include "service/wire.hh"
#include "sim/simulator.hh"
#include "workloads/packet_injector.hh"
#include "workloads/trace_cpu.hh"

namespace macrosim
{
class Network;
}

namespace macrosim::service
{

/**
 * The canonical network selector: the paper's five architectures,
 * the ALT arbitration variant, and the hermes extension. The bench
 * harness aliases this as NetId, so enumerator names follow the
 * original bench enum.
 */
enum class NetSel : std::uint8_t
{
    TokenRing = 0,
    CircuitSwitched = 1,
    PointToPoint = 2,
    LimitedPtToPt = 3,
    TwoPhase = 4,
    TwoPhaseAlt = 5,
    Hermes = 6,
};

/** Display name, as printed in every figure/table ("Token Ring"). */
std::string netDisplayName(NetSel id);

/** Short flag-friendly name ("tring", "pt2pt", "2phase-alt"…). */
std::string netShortName(NetSel id);

/** Parse either the short or the display name. */
bool netFromString(std::string_view name, NetSel *out);

/** Construct the selected topology (the shared factory). */
std::unique_ptr<Network> makeNetworkFor(NetSel id, Simulator &sim,
                                        const MacrochipConfig &cfg);

enum class CampaignKind : std::uint8_t
{
    InjectorSweep = 0,  ///< open-loop packet injector load points
    WorkloadMatrix = 1, ///< closed-loop trace-CPU workload × network
};

/**
 * A submittable sweep description. Everything that influences a
 * cell's result lives here, so fingerprint() identifies a campaign
 * for journal-resume compatibility checks.
 */
struct CampaignSpec
{
    CampaignKind kind = CampaignKind::InjectorSweep;
    std::uint64_t seed = 17;
    /** Snapshot each cell's StatRegistry into its outcome/event. */
    bool emitCellStats = false;

    /* InjectorSweep */
    std::vector<std::string> patterns; ///< to_string(TrafficPattern)
    std::vector<NetSel> networks;
    std::vector<double> loads; ///< fraction of per-site peak (0, 1]
    std::uint64_t warmupNs = 500;
    std::uint64_t windowNs = 2500;

    /* WorkloadMatrix */
    std::uint64_t instructionsPerCore = 2000;
    std::vector<std::string> workloads; ///< workloadByName() names

    std::size_t cellCount() const;

    /** Order-sensitive content hash (journal spec check). */
    std::uint64_t fingerprint() const;

    void encode(BinSerializer &s) const;
    bool decode(BinDeserializer &d);

    /**
     * Check the spec is runnable (known patterns/workloads/networks,
     * at least one cell, sane loads). @return Empty string if valid,
     * else a description of the first problem.
     */
    std::string validate() const;

    /** The small deterministic campaign behind --smoke and the
     *  service e2e test: uniform × {tring, pt2pt, 2phase} ×
     *  {1%, 2%} with a short measurement window. */
    static CampaignSpec smokeInjector();
};

/** One decomposed unit of work, in deterministic enumeration order. */
struct CampaignCell
{
    std::uint32_t index = 0;
    std::string label;
    NetSel net = NetSel::TokenRing;
    /* InjectorSweep */
    TrafficPattern pattern = TrafficPattern::Uniform;
    double load = 0.0;
    /* WorkloadMatrix */
    std::string workload;
};

/** Decompose @p spec into its ordered cell list. */
std::vector<CampaignCell> enumerateCells(const CampaignSpec &spec);

/**
 * The result of one cell. kind mirrors the spec's; exactly one of
 * the payloads is meaningful. skipped marks a cell a cancelled run
 * never executed.
 */
struct CellOutcome
{
    std::uint32_t index = 0;
    std::string label;
    std::uint8_t kind = 0;
    bool skipped = false;
    InjectorResult injector;
    TraceCpuResult trace;
    /** StatRegistry snapshot (when the spec asked for it). */
    std::vector<std::pair<std::string, double>> stats;

    void encode(BinSerializer &s) const;
    bool decode(BinDeserializer &d);
};

/** A completed (or partially completed) campaign. */
struct CampaignResult
{
    CampaignSpec spec;
    std::vector<CellOutcome> cells; ///< in cell-index order
    bool interrupted = false;

    /**
     * Render the canonical CSV result table. Doubles print as
     * %.17g, so two tables are byte-identical iff the results are
     * bit-identical — the acceptance check for daemon-vs-offline
     * and kill/resume runs.
     */
    std::string table() const;
};

/** Run one cell to completion (a pure function of spec + cell). */
CellOutcome runCampaignCell(const CampaignSpec &spec,
                            const CampaignCell &cell);

/** Per-cell completion report, forwarded to progress subscribers. */
struct CampaignProgress
{
    std::uint32_t cellIndex = 0;
    std::string label;
    std::size_t done = 0;  ///< cells finished so far (incl. prior)
    std::size_t total = 0; ///< cells in the campaign
    double cellWallNs = 0.0;
    double etaSec = 0.0;
};

/**
 * Observation and control hooks for a campaign run. cellDone and
 * progress are invoked from sweep worker threads but serialized
 * under one internal mutex, in cell *completion* order — the
 * journal append path hangs off cellDone. cancel, when set and
 * flipped true, cooperatively skips cells that have not started;
 * running cells drain normally (their results are still journaled).
 */
struct CampaignHooks
{
    std::function<void(const CellOutcome &)> cellDone;
    std::function<void(const CampaignProgress &)> progress;
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Run a campaign through the SweepRunner thread pool and return the
 * assembled result (cells in index order).
 *
 * @p jobs is the worker count (0 = MACROSIM_JOBS / hardware).
 * @p prior maps cell index → outcome for cells already completed
 * (journal replay on --resume); those cells are not re-run, their
 * outcomes are spliced into the result, and they count as done in
 * progress reports. The returned table is bit-identical for any
 * (jobs, prior) split of the same spec.
 */
CampaignResult runCampaignOffline(
    const CampaignSpec &spec, std::size_t jobs,
    const CampaignHooks &hooks = {},
    const std::map<std::uint32_t, CellOutcome> *prior = nullptr,
    bool progressLog = false);

} // namespace macrosim::service

#endif // MACROSIM_SERVICE_CAMPAIGN_HH
