/**
 * @file
 * macrosimd: the simulation-as-a-service daemon (DESIGN.md §13).
 *
 * One poll()-driven thread owns the Unix-domain listening socket and
 * every connection (nonblocking sockets, a FrameReader and a write
 * buffer per connection); one executor thread drains the campaign
 * job queue, running one campaign at a time through
 * runCampaignOffline() — so a daemon-run campaign goes through
 * exactly the same SweepRunner/seed-derivation path as an offline
 * bench run and produces a bit-identical result table.
 *
 * Campaign hooks fire on sweep worker threads; they append to the
 * job's journal (checkpoint) and post protocol events into an
 * outbox, then wake the poll loop through a self-pipe, which routes
 * each event to the connections subscribed to that job.
 *
 * SIGINT/SIGTERM request a graceful shutdown: the running campaign
 * is cancelled cooperatively (in-flight cells drain and are
 * journaled), the journal is flushed, and the daemon exits 130 so a
 * later --resume re-runs only the unfinished cells.
 */

#ifndef MACROSIM_SERVICE_SERVER_HH
#define MACROSIM_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/campaign.hh"
#include "service/protocol.hh"
#include "service/wire.hh"

namespace macrosim::service
{

struct DaemonOptions
{
    /** Unix-domain socket path to listen on (required). */
    std::string socketPath;
    /** Directory holding one job<id>.mjr journal per job. */
    std::string journalDir = ".";
    /** Replay journalDir on startup, re-queueing unfinished jobs. */
    bool resume = false;
    /** Sweep worker threads per campaign (0 = hardware default). */
    std::size_t jobs = 0;
    /**
     * Crash-injection hook for the kill/resume e2e test: _exit(42)
     * immediately after the Nth cell journaled in this process
     * (0 = disabled). Deterministic, unlike a timed kill.
     */
    std::uint64_t exitAfterCells = 0;
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions opts);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, (optionally) resume, serve until Shutdown or a signal.
     * @return Process exit status (0, or 130 on signal).
     */
    int run();

  private:
    struct Job
    {
        std::uint64_t id = 0;
        CampaignSpec spec;
        JobState state = JobState::Queued;
        std::uint64_t doneCells = 0;
        std::uint64_t totalCells = 0;
        double etaSec = 0.0;
        std::string error;
        /** Valid once state is Done/Cancelled/Failed. */
        CampaignResult result;
        /** Journal-replayed outcomes to splice (resume path). */
        std::map<std::uint32_t, CellOutcome> prior;
        /** Journal already has its header (resume path). */
        bool hasJournal = false;
        std::atomic<bool> cancel{false};
    };

    struct Connection
    {
        int fd = -1;
        FrameReader reader;
        std::vector<std::uint8_t> out;
        std::size_t outPos = 0;
        std::set<std::uint64_t> subscriptions;
        bool dead = false;
    };

    bool setupSocket();
    bool setupWakePipe();
    void resumeFromJournals();

    void executorLoop();
    void runJob(const std::shared_ptr<Job> &job);

    /** Queue an event frame for subscribers of @p jobId and wake
     *  the poll loop (called from sweep worker threads). */
    void postEvent(std::uint64_t jobId,
                   std::vector<std::uint8_t> frame);

    void acceptClients();
    void drainWakePipe();
    void routeOutbox();
    void readFromConn(Connection &conn);
    void flushConn(Connection &conn);
    void queueToConn(Connection &conn,
                     const std::vector<std::uint8_t> &bytes);

    void dispatchFrame(Connection &conn, const Frame &frame);
    void handleSubmit(Connection &conn, const Frame &frame);
    void handleStatus(Connection &conn, const Frame &frame);
    void handleCancel(Connection &conn, const Frame &frame);
    void handleSubscribe(Connection &conn, const Frame &frame);
    void handleResults(Connection &conn, const Frame &frame);
    void handleShutdown(Connection &conn);
    void sendError(Connection &conn, ErrorCode code,
                   const std::string &text);

    void beginShutdown();

    std::shared_ptr<Job> findJob(std::uint64_t id);

    DaemonOptions opts_;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::map<int, Connection> conns_;

    std::mutex jobsMutex_;
    std::condition_variable queueCv_;
    std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
    std::deque<std::uint64_t> queue_;
    std::uint64_t nextJobId_ = 1;
    bool stopExecutor_ = false;

    std::mutex outboxMutex_;
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
        outbox_;

    std::thread executor_;
    bool shuttingDown_ = false;
};

} // namespace macrosim::service

#endif // MACROSIM_SERVICE_SERVER_HH
