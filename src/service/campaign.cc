#include "service/campaign.hh"

#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "net/circuit_switched.hh"
#include "net/hermes.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sweep.hh"

namespace macrosim::service
{

namespace
{

constexpr std::array<NetSel, 7> allNetSels = {
    NetSel::TokenRing,    NetSel::CircuitSwitched,
    NetSel::PointToPoint, NetSel::LimitedPtToPt,
    NetSel::TwoPhase,     NetSel::TwoPhaseAlt,
    NetSel::Hermes,
};

/** %.17g: enough digits that distinct doubles print distinctly. */
std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
netDisplayName(NetSel id)
{
    switch (id) {
      case NetSel::TokenRing: return "Token Ring";
      case NetSel::CircuitSwitched: return "Circuit-Switched";
      case NetSel::PointToPoint: return "Point-to-Point";
      case NetSel::LimitedPtToPt: return "Limited Point-to-Point";
      case NetSel::TwoPhase: return "2-Phase Arb.";
      case NetSel::TwoPhaseAlt: return "2-Phase Arb. ALT";
      case NetSel::Hermes: return "Hermes";
    }
    return "?";
}

std::string
netShortName(NetSel id)
{
    switch (id) {
      case NetSel::TokenRing: return "tring";
      case NetSel::CircuitSwitched: return "cswitch";
      case NetSel::PointToPoint: return "pt2pt";
      case NetSel::LimitedPtToPt: return "lpt2pt";
      case NetSel::TwoPhase: return "2phase";
      case NetSel::TwoPhaseAlt: return "2phase-alt";
      case NetSel::Hermes: return "hermes";
    }
    return "?";
}

bool
netFromString(std::string_view name, NetSel *out)
{
    for (const NetSel id : allNetSels) {
        if (name == netShortName(id) || name == netDisplayName(id)) {
            *out = id;
            return true;
        }
    }
    return false;
}

std::unique_ptr<Network>
makeNetworkFor(NetSel id, Simulator &sim, const MacrochipConfig &cfg)
{
    switch (id) {
      case NetSel::TokenRing:
        return std::make_unique<TokenRingCrossbar>(sim, cfg);
      case NetSel::CircuitSwitched:
        return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
      case NetSel::PointToPoint:
        return std::make_unique<PointToPointNetwork>(sim, cfg);
      case NetSel::LimitedPtToPt:
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
      case NetSel::TwoPhase:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
      case NetSel::TwoPhaseAlt:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                          true);
      case NetSel::Hermes:
        return std::make_unique<HermesNetwork>(sim, cfg);
    }
    panic("makeNetworkFor: bad id");
}

std::size_t
CampaignSpec::cellCount() const
{
    if (kind == CampaignKind::InjectorSweep)
        return patterns.size() * networks.size() * loads.size();
    return workloads.size() * networks.size();
}

std::uint64_t
CampaignSpec::fingerprint() const
{
    std::uint64_t h = 0x6d616372736d6331ULL; // "macrsmc1"
    h = hashCombine(h, static_cast<std::uint64_t>(kind));
    h = hashCombine(h, seed);
    h = hashCombine(h, static_cast<std::uint64_t>(emitCellStats));
    h = hashCombine(h, patterns.size());
    for (const std::string &p : patterns)
        h = hashCombine(h, p);
    h = hashCombine(h, networks.size());
    for (const NetSel n : networks)
        h = hashCombine(h, static_cast<std::uint64_t>(n));
    h = hashCombine(h, loads.size());
    for (const double l : loads)
        h = hashCombine(h, std::bit_cast<std::uint64_t>(l));
    h = hashCombine(h, warmupNs);
    h = hashCombine(h, windowNs);
    h = hashCombine(h, instructionsPerCore);
    h = hashCombine(h, workloads.size());
    for (const std::string &w : workloads)
        h = hashCombine(h, w);
    return h;
}

void
CampaignSpec::encode(BinSerializer &s) const
{
    s.u8(static_cast<std::uint8_t>(kind));
    s.u64(seed);
    s.boolean(emitCellStats);
    s.varint(patterns.size());
    for (const std::string &p : patterns)
        s.str(p);
    s.varint(networks.size());
    for (const NetSel n : networks)
        s.u8(static_cast<std::uint8_t>(n));
    s.varint(loads.size());
    for (const double l : loads)
        s.f64(l);
    s.u64(warmupNs);
    s.u64(windowNs);
    s.u64(instructionsPerCore);
    s.varint(workloads.size());
    for (const std::string &w : workloads)
        s.str(w);
}

bool
CampaignSpec::decode(BinDeserializer &d)
{
    kind = static_cast<CampaignKind>(d.u8());
    seed = d.u64();
    emitCellStats = d.boolean();
    std::uint64_t n = d.varint();
    if (!d.ok() || n > d.remaining())
        return false;
    patterns.clear();
    for (std::uint64_t i = 0; i < n && d.ok(); ++i)
        patterns.push_back(d.str());
    n = d.varint();
    if (!d.ok() || n > d.remaining())
        return false;
    networks.clear();
    for (std::uint64_t i = 0; i < n && d.ok(); ++i)
        networks.push_back(static_cast<NetSel>(d.u8()));
    n = d.varint();
    if (!d.ok() || n * 8 > d.remaining())
        return false;
    loads.clear();
    for (std::uint64_t i = 0; i < n && d.ok(); ++i)
        loads.push_back(d.f64());
    warmupNs = d.u64();
    windowNs = d.u64();
    instructionsPerCore = d.u64();
    n = d.varint();
    if (!d.ok() || n > d.remaining())
        return false;
    workloads.clear();
    for (std::uint64_t i = 0; i < n && d.ok(); ++i)
        workloads.push_back(d.str());
    return d.ok();
}

std::string
CampaignSpec::validate() const
{
    if (kind != CampaignKind::InjectorSweep
        && kind != CampaignKind::WorkloadMatrix) {
        return "unknown campaign kind "
               + std::to_string(static_cast<int>(kind));
    }
    if (networks.empty())
        return "no networks selected";
    for (const NetSel n : networks) {
        if (netDisplayName(n) == "?") {
            return "unknown network id "
                   + std::to_string(static_cast<int>(n));
        }
    }
    if (kind == CampaignKind::InjectorSweep) {
        if (patterns.empty())
            return "injector campaign has no patterns";
        if (loads.empty())
            return "injector campaign has no load points";
        for (const std::string &p : patterns) {
            TrafficPattern parsed;
            if (!patternFromString(p, &parsed))
                return "unknown traffic pattern '" + p + "'";
        }
        for (const double l : loads) {
            if (!(l > 0.0) || l > 1.0) {
                return "load " + fmtDouble(l)
                       + " outside (0, 1]";
            }
        }
        if (windowNs == 0)
            return "measurement window is zero";
    } else {
        if (workloads.empty())
            return "matrix campaign has no workloads";
        for (const std::string &w : workloads) {
            try {
                (void)workloadByName(w);
            } catch (const FatalError &) {
                return "unknown workload '" + w + "'";
            }
        }
        if (instructionsPerCore == 0)
            return "instructionsPerCore is zero";
    }
    if (cellCount() == 0)
        return "campaign decomposes into zero cells";
    return {};
}

CampaignSpec
CampaignSpec::smokeInjector()
{
    CampaignSpec spec;
    spec.kind = CampaignKind::InjectorSweep;
    spec.seed = 17;
    spec.patterns = {"uniform"};
    spec.networks = {NetSel::TokenRing, NetSel::PointToPoint,
                     NetSel::TwoPhase};
    spec.loads = {0.01, 0.02};
    spec.warmupNs = 200;
    spec.windowNs = 600;
    return spec;
}

std::vector<CampaignCell>
enumerateCells(const CampaignSpec &spec)
{
    std::vector<CampaignCell> cells;
    cells.reserve(spec.cellCount());
    std::uint32_t index = 0;
    if (spec.kind == CampaignKind::InjectorSweep) {
        for (const std::string &p : spec.patterns) {
            TrafficPattern pattern = TrafficPattern::Uniform;
            if (!patternFromString(p, &pattern))
                fatal("enumerateCells: unknown pattern '", p, "'");
            for (const NetSel net : spec.networks) {
                for (const double load : spec.loads) {
                    CampaignCell cell;
                    cell.index = index++;
                    cell.net = net;
                    cell.pattern = pattern;
                    cell.load = load;
                    std::ostringstream label;
                    label << p << " @ " << load * 100.0 << "% on "
                          << netDisplayName(net);
                    cell.label = label.str();
                    cells.push_back(std::move(cell));
                }
            }
        }
    } else {
        for (const std::string &w : spec.workloads) {
            for (const NetSel net : spec.networks) {
                CampaignCell cell;
                cell.index = index++;
                cell.net = net;
                cell.workload = w;
                cell.label = w + " on " + netDisplayName(net);
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

namespace
{

void
encodeInjector(BinSerializer &s, const InjectorResult &r)
{
    s.f64(r.offeredLoadPct);
    s.f64(r.meanLatencyNs);
    s.f64(r.maxLatencyNs);
    s.f64(r.p50LatencyNs);
    s.f64(r.p99LatencyNs);
    s.f64(r.deliveredBytesPerNsPerSite);
    s.f64(r.deliveredPct);
    s.u64(r.measuredPackets);
    s.u64(r.overflowPackets);
    s.f64(r.offeredMeasuredPct);
}

void
decodeInjector(BinDeserializer &d, InjectorResult &r)
{
    r.offeredLoadPct = d.f64();
    r.meanLatencyNs = d.f64();
    r.maxLatencyNs = d.f64();
    r.p50LatencyNs = d.f64();
    r.p99LatencyNs = d.f64();
    r.deliveredBytesPerNsPerSite = d.f64();
    r.deliveredPct = d.f64();
    r.measuredPackets = d.u64();
    r.overflowPackets = d.u64();
    r.offeredMeasuredPct = d.f64();
}

void
encodeTrace(BinSerializer &s, const TraceCpuResult &r)
{
    s.str(r.workload);
    s.str(r.network);
    s.u64(r.runtime);
    s.u64(r.instructions);
    s.u64(r.coherenceOps);
    s.f64(r.opLatencyNs);
    s.f64(r.totalJoules);
    s.f64(r.routerJoules);
    s.f64(r.cpuJoules);
    s.f64(r.edp);
}

void
decodeTrace(BinDeserializer &d, TraceCpuResult &r)
{
    r.workload = d.str();
    r.network = d.str();
    r.runtime = d.u64();
    r.instructions = d.u64();
    r.coherenceOps = d.u64();
    r.opLatencyNs = d.f64();
    r.totalJoules = d.f64();
    r.routerJoules = d.f64();
    r.cpuJoules = d.f64();
    r.edp = d.f64();
}

} // namespace

void
CellOutcome::encode(BinSerializer &s) const
{
    s.u32(index);
    s.str(label);
    s.u8(kind);
    s.boolean(skipped);
    if (kind == static_cast<std::uint8_t>(
            CampaignKind::InjectorSweep)) {
        encodeInjector(s, injector);
    } else {
        encodeTrace(s, trace);
    }
    s.varint(stats.size());
    for (const auto &[name, value] : stats) {
        s.str(name);
        s.f64(value);
    }
}

bool
CellOutcome::decode(BinDeserializer &d)
{
    index = d.u32();
    label = d.str();
    kind = d.u8();
    skipped = d.boolean();
    if (kind == static_cast<std::uint8_t>(
            CampaignKind::InjectorSweep)) {
        decodeInjector(d, injector);
    } else if (kind == static_cast<std::uint8_t>(
                   CampaignKind::WorkloadMatrix)) {
        decodeTrace(d, trace);
    } else {
        return false;
    }
    const std::uint64_t n = d.varint();
    if (!d.ok() || n > d.remaining())
        return false;
    stats.clear();
    for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
        std::string name = d.str();
        const double value = d.f64();
        stats.emplace_back(std::move(name), value);
    }
    return d.ok();
}

std::string
CampaignResult::table() const
{
    std::ostringstream os;
    const bool injector =
        spec.kind == CampaignKind::InjectorSweep;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "# macrosim campaign kind=%s seed=%llu cells=%zu "
                  "fingerprint=%016llx\n",
                  injector ? "injector" : "matrix",
                  static_cast<unsigned long long>(spec.seed),
                  cells.size(),
                  static_cast<unsigned long long>(
                      spec.fingerprint()));
    os << head;
    if (injector) {
        os << "index,pattern,network,load_frac,offered_pct,mean_ns,"
              "p50_ns,p99_ns,max_ns,delivered_bpns,delivered_pct,"
              "measured,overflow,offered_measured_pct\n";
    } else {
        os << "index,workload,network,runtime_ticks,instructions,"
              "coherence_ops,op_latency_ns,total_j,router_j,cpu_j,"
              "edp\n";
    }
    for (const CellOutcome &cell : cells) {
        if (cell.skipped) {
            os << cell.index << "," << cell.label << ",SKIPPED\n";
            continue;
        }
        if (injector) {
            // The label is "<pattern> @ <load>% on <net>"; recover
            // the parts from the cell payload instead of parsing.
            const InjectorResult &r = cell.injector;
            const std::size_t at = cell.label.find(" @ ");
            const std::size_t on = cell.label.find(" on ");
            const std::string pattern = cell.label.substr(0, at);
            const std::string net =
                on == std::string::npos ? "?"
                                        : cell.label.substr(on + 4);
            os << cell.index << "," << pattern << "," << net << ","
               << fmtDouble(r.offeredLoadPct / 100.0) << ","
               << fmtDouble(r.offeredLoadPct) << ","
               << fmtDouble(r.meanLatencyNs) << ","
               << fmtDouble(r.p50LatencyNs) << ","
               << fmtDouble(r.p99LatencyNs) << ","
               << fmtDouble(r.maxLatencyNs) << ","
               << fmtDouble(r.deliveredBytesPerNsPerSite) << ","
               << fmtDouble(r.deliveredPct) << ","
               << r.measuredPackets << "," << r.overflowPackets
               << "," << fmtDouble(r.offeredMeasuredPct) << "\n";
        } else {
            const TraceCpuResult &r = cell.trace;
            os << cell.index << "," << r.workload << ","
               << r.network << "," << r.runtime << ","
               << r.instructions << "," << r.coherenceOps << ","
               << fmtDouble(r.opLatencyNs) << ","
               << fmtDouble(r.totalJoules) << ","
               << fmtDouble(r.routerJoules) << ","
               << fmtDouble(r.cpuJoules) << "," << fmtDouble(r.edp)
               << "\n";
        }
    }
    if (interrupted)
        os << "# INTERRUPTED: table is partial\n";
    return os.str();
}

CellOutcome
runCampaignCell(const CampaignSpec &spec, const CampaignCell &cell)
{
    CellOutcome out;
    out.index = cell.index;
    out.label = cell.label;
    out.kind = static_cast<std::uint8_t>(spec.kind);

    if (spec.kind == CampaignKind::InjectorSweep) {
        // The seed label uses the full-precision load so two nearby
        // load points can never share a random stream.
        const std::string seed_label =
            std::string(to_string(cell.pattern)) + "@"
            + fmtDouble(cell.load);
        const std::uint64_t cell_seed = deriveSeed(
            spec.seed, seed_label, netDisplayName(cell.net));
        Simulator sim(cell_seed);
        auto net = makeNetworkFor(cell.net, sim, simulatedConfig());
        InjectorConfig cfg;
        cfg.pattern = cell.pattern;
        cfg.load = cell.load;
        cfg.warmup = spec.warmupNs * tickNs;
        cfg.window = spec.windowNs * tickNs;
        cfg.seed = cell_seed;
        out.injector = runOpenLoop(sim, *net, cfg);
        if (spec.emitCellStats)
            out.stats = sim.telemetry().snapshot();
    } else {
        WorkloadSpec w = workloadByName(cell.workload);
        w.instructionsPerCore = spec.instructionsPerCore;
        // Identical derivation to bench::runWorkloadMatrix, so a
        // daemon matrix campaign reproduces the figure benches'
        // per-cell streams bit for bit.
        const std::uint64_t cell_seed = deriveSeed(
            spec.seed, w.name, netDisplayName(cell.net));
        Simulator sim(cell_seed);
        auto net = makeNetworkFor(cell.net, sim, simulatedConfig());
        TraceCpuSystem cpu(sim, *net, w, mix64(cell_seed));
        out.trace = cpu.run();
        if (spec.emitCellStats)
            out.stats = sim.telemetry().snapshot();
    }
    return out;
}

CampaignResult
runCampaignOffline(const CampaignSpec &spec, std::size_t jobs,
                   const CampaignHooks &hooks,
                   const std::map<std::uint32_t, CellOutcome> *prior,
                   bool progressLog)
{
    const std::string problem = spec.validate();
    if (!problem.empty())
        fatal("runCampaignOffline: invalid campaign: ", problem);

    const std::vector<CampaignCell> cells = enumerateCells(spec);
    const std::size_t total = cells.size();

    CampaignResult result;
    result.spec = spec;
    result.cells.resize(total);

    // Splice prior (journaled) outcomes in and collect the cells
    // that still need to run.
    std::vector<const CampaignCell *> pending;
    std::size_t priorDone = 0;
    for (const CampaignCell &cell : cells) {
        bool replayed = false;
        if (prior != nullptr) {
            const auto it = prior->find(cell.index);
            if (it != prior->end() && !it->second.skipped) {
                result.cells[cell.index] = it->second;
                ++priorDone;
                replayed = true;
            }
        }
        if (!replayed)
            pending.push_back(&cell);
    }

    // Completion-side bookkeeping, serialized under one mutex: the
    // journal append (hooks.cellDone) and the progress event
    // (hooks.progress) see cells in completion order.
    std::mutex doneMutex;
    std::size_t doneCells = priorDone;
    std::size_t ranCells = 0;
    const auto runStart = std::chrono::steady_clock::now();

    std::vector<SweepJob<CellOutcome>> sweep;
    sweep.reserve(pending.size());
    for (const CampaignCell *cell : pending) {
        sweep.push_back(SweepJob<CellOutcome>{
            cell->label, [&spec, cell, &hooks, &doneMutex,
                          &doneCells, &ranCells, runStart, total] {
                CellOutcome out = runCampaignCell(spec, *cell);
                std::lock_guard<std::mutex> lock(doneMutex);
                if (hooks.cellDone)
                    hooks.cellDone(out);
                ++doneCells;
                ++ranCells;
                if (hooks.progress) {
                    const double elapsed_s =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now()
                            - runStart)
                            .count();
                    CampaignProgress p;
                    p.cellIndex = out.index;
                    p.label = out.label;
                    p.done = doneCells;
                    p.total = total;
                    p.cellWallNs = 0.0; // filled by observer users
                    p.etaSec = doneCells < total && ranCells > 0
                        ? elapsed_s / static_cast<double>(ranCells)
                            * static_cast<double>(total - doneCells)
                        : 0.0;
                    hooks.progress(p);
                }
                return out;
            }});
    }

    SweepRunner runner(jobs, progressLog);
    SweepOutcome<CellOutcome> outcome = runner.runCancellable(
        "campaign", std::move(sweep), hooks.cancel);

    for (std::size_t i = 0; i < pending.size(); ++i) {
        const CampaignCell &cell = *pending[i];
        if (outcome.ran[i]) {
            result.cells[cell.index] =
                std::move(outcome.results[i]);
        } else {
            CellOutcome &skip = result.cells[cell.index];
            skip.index = cell.index;
            skip.label = cell.label;
            skip.kind = static_cast<std::uint8_t>(spec.kind);
            skip.skipped = true;
        }
    }
    result.interrupted = outcome.interrupted;
    return result;
}

} // namespace macrosim::service
