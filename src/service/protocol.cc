#include "service/protocol.hh"

namespace macrosim::service
{

const char *
to_string(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

void
StatusReplyMsg::encode(BinSerializer &s) const
{
    s.u64(jobId);
    s.u8(static_cast<std::uint8_t>(state));
    s.u64(doneCells);
    s.u64(totalCells);
    s.f64(etaSec);
    s.str(error);
}

bool
StatusReplyMsg::decode(BinDeserializer &d)
{
    jobId = d.u64();
    state = static_cast<JobState>(d.u8());
    doneCells = d.u64();
    totalCells = d.u64();
    etaSec = d.f64();
    error = d.str();
    return d.ok();
}

void
SubscribeReplyMsg::encode(BinSerializer &s) const
{
    s.u64(jobId);
    s.u8(static_cast<std::uint8_t>(state));
    s.u64(doneCells);
    s.u64(totalCells);
}

bool
SubscribeReplyMsg::decode(BinDeserializer &d)
{
    jobId = d.u64();
    state = static_cast<JobState>(d.u8());
    doneCells = d.u64();
    totalCells = d.u64();
    return d.ok();
}

void
ResultsReplyMsg::encode(BinSerializer &s) const
{
    s.u64(jobId);
    s.u8(static_cast<std::uint8_t>(state));
    s.str(table);
    s.varint(cells.size());
    for (const CellOutcome &cell : cells)
        cell.encode(s);
}

bool
ResultsReplyMsg::decode(BinDeserializer &d)
{
    jobId = d.u64();
    state = static_cast<JobState>(d.u8());
    table = d.str();
    const std::uint64_t n = d.varint();
    if (!d.ok() || n > d.remaining())
        return false;
    cells.clear();
    for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
        CellOutcome cell;
        if (!cell.decode(d))
            return false;
        cells.push_back(std::move(cell));
    }
    return d.ok();
}

void
ProgressEventMsg::encode(BinSerializer &s) const
{
    s.u64(jobId);
    s.u32(cellIndex);
    s.str(label);
    s.u64(doneCells);
    s.u64(totalCells);
    s.f64(etaSec);
}

bool
ProgressEventMsg::decode(BinDeserializer &d)
{
    jobId = d.u64();
    cellIndex = d.u32();
    label = d.str();
    doneCells = d.u64();
    totalCells = d.u64();
    etaSec = d.f64();
    return d.ok();
}

} // namespace macrosim::service
