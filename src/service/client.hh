/**
 * @file
 * Blocking client for the macrosimd protocol — the guts of
 * macrosimctl, kept in the library so tests can drive a daemon
 * in-process.
 *
 * The transport is deliberately simple: a blocking Unix-domain
 * socket, sendFrame()/recvFrame() with an incremental FrameReader,
 * and typed request helpers that send one request and demultiplex
 * replies, surfacing any interleaved events through a callback
 * (subscription events can arrive between a request and its reply).
 */

#ifndef MACROSIM_SERVICE_CLIENT_HH
#define MACROSIM_SERVICE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

#include "service/protocol.hh"
#include "service/wire.hh"

namespace macrosim::service
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient() { close(); }

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect to a daemon's Unix socket. */
    bool connectUnix(const std::string &path, std::string *error);

    void close();
    bool isOpen() const { return fd_ >= 0; }

    /** The last transport/protocol error. */
    const std::string &lastError() const { return error_; }

    bool sendFrame(const std::vector<std::uint8_t> &frame);

    /** Block until one complete frame arrives. */
    bool recvFrame(Frame *out);

    template <typename Msg>
    bool
    send(const Msg &msg)
    {
        return sendFrame(encodeMessage(msg));
    }

    /**
     * Called for each event frame (ProgressEvent/CellDoneEvent/
     * CampaignDoneEvent) received while waiting for a reply.
     */
    using EventFn = std::function<void(const Frame &)>;
    void setEventHandler(EventFn fn) { onEvent_ = std::move(fn); }

    /**
     * Receive frames until a non-event arrives, dispatching events
     * to the handler along the way.
     */
    bool recvReply(Frame *out);

    /*
     * Typed round-trips. Each returns false on transport failure,
     * protocol mismatch, or an ErrorReply (lastError() explains).
     */
    bool submit(const CampaignSpec &spec, SubmitReplyMsg *out);
    bool queryStatus(std::uint64_t jobId, StatusReplyMsg *out);
    bool cancel(std::uint64_t jobId, CancelReplyMsg *out);
    bool subscribe(std::uint64_t jobId, SubscribeReplyMsg *out);
    bool fetchResults(std::uint64_t jobId, ResultsReplyMsg *out);
    bool shutdownDaemon();

    /**
     * Block until the subscribed job's CampaignDoneEvent arrives
     * (subscribe first!). @return false on transport failure.
     */
    bool waitForDone(std::uint64_t jobId, JobState *finalState);

  private:
    template <typename Req, typename Reply>
    bool roundTrip(const Req &req, Reply *out);

    int fd_ = -1;
    FrameReader reader_;
    EventFn onEvent_;
    std::string error_;
};

} // namespace macrosim::service

#endif // MACROSIM_SERVICE_CLIENT_HH
