/**
 * @file
 * Campaign checkpoint journal (DESIGN.md §13).
 *
 * One journal file per job, reusing the wire frame format on disk:
 *
 *   [JournalHeader frame: magic, job id, spec fingerprint, spec]
 *   [JournalCell frame: CellOutcome]*
 *
 * The writer appends one JournalCell frame per completed cell, in
 * completion order, and fflush()es after every append — a killed
 * daemon therefore loses at most the record that was mid-write, and
 * the reader tolerates exactly that: a truncated trailing frame
 * ends replay cleanly (everything before it is recovered).
 *
 * Doubles are stored as IEEE-754 bit patterns, so a resumed
 * campaign's result table is byte-identical to an uninterrupted
 * run's — the subsystem's acceptance criterion.
 */

#ifndef MACROSIM_SERVICE_JOURNAL_HH
#define MACROSIM_SERVICE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "service/campaign.hh"

namespace macrosim::service
{

/** First field of the header frame; rejects non-journals early. */
constexpr std::uint32_t journalMagic = 0x4D4A524Eu; // 'MJRN'

/**
 * Append-side of a job's journal. Not internally synchronized: the
 * campaign runner already serializes cellDone hooks under its
 * completion mutex (campaign.hh).
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter() { close(); }

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Create (truncate) @p path and write the header frame.
     * @return Whether the file opened and the header hit the OS.
     */
    bool create(const std::string &path, std::uint64_t jobId,
                const CampaignSpec &spec);

    /**
     * Open an existing journal for appending further cell records
     * (the --resume path; the header is already on disk).
     */
    bool openAppend(const std::string &path);

    /** Append one completed cell, flushed before returning. */
    bool append(const CellOutcome &cell);

    void close();

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

  private:
    bool writeFrame(const std::vector<std::uint8_t> &frame);

    std::FILE *file_ = nullptr;
    std::string path_;
};

/** Everything recovered from one journal file. */
struct JournalContents
{
    bool valid = false;
    std::string error; ///< why valid is false (or a tail warning)
    std::uint64_t jobId = 0;
    std::uint64_t fingerprint = 0;
    CampaignSpec spec;
    /** Completed cells by index; duplicates keep the later record. */
    std::map<std::uint32_t, CellOutcome> cells;
    /** Whether a truncated trailing frame was dropped (benign). */
    bool truncatedTail = false;
};

/**
 * Read a journal back. valid == false means the header was
 * unusable (wrong magic/fingerprint mismatch is the *caller's*
 * check — here it means unreadable); a corrupt or truncated cell
 * record stops replay at the last good frame with valid == true.
 */
JournalContents readJournal(const std::string &path);

/** The journal filename for a job: "job<id>.mjr". */
std::string journalFileName(std::uint64_t jobId);

} // namespace macrosim::service

#endif // MACROSIM_SERVICE_JOURNAL_HH
