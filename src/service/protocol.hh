/**
 * @file
 * The macrosimd request/response/event protocol (DESIGN.md §13).
 *
 * Every message is one frame (service/wire.hh). Requests flow
 * client → daemon; each gets exactly one reply (the matching
 * *Reply, or ErrorReply). Events flow daemon → client, only on
 * connections that subscribed to the job, interleaved with replies;
 * clients demultiplex on the frame's message id.
 *
 * Message ids are partitioned by role so a stray frame is easy to
 * classify: requests 1–63, replies 64–127, events 128–191, journal
 * records 192+ (journal.hh reuses the frame format on disk).
 */

#ifndef MACROSIM_SERVICE_PROTOCOL_HH
#define MACROSIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/campaign.hh"
#include "service/wire.hh"

namespace macrosim::service
{

enum class MsgId : std::uint16_t
{
    /* requests */
    SubmitCampaign = 1,
    QueryStatus = 2,
    CancelJob = 3,
    SubscribeProgress = 4,
    FetchResults = 5,
    Shutdown = 6,

    /* replies */
    SubmitReply = 64,
    StatusReply = 65,
    CancelReply = 66,
    SubscribeReply = 67,
    ResultsReply = 68,
    ShutdownReply = 69,
    ErrorReply = 70,

    /* events */
    ProgressEvent = 128,
    CellDoneEvent = 129,
    CampaignDoneEvent = 130,

    /* journal records (never cross a socket) */
    JournalHeader = 192,
    JournalCell = 193,
};

enum class JobState : std::uint8_t
{
    Queued = 0,
    Running = 1,
    Done = 2,
    Cancelled = 3,
    Failed = 4,
};

const char *to_string(JobState s);

struct SubmitCampaignMsg
{
    static constexpr MsgId id = MsgId::SubmitCampaign;
    CampaignSpec spec;

    void encode(BinSerializer &s) const { spec.encode(s); }
    bool decode(BinDeserializer &d) { return spec.decode(d); }
};

/** Shared shape of the four single-jobId requests. */
struct JobIdMsg
{
    std::uint64_t jobId = 0;

    void encode(BinSerializer &s) const { s.u64(jobId); }
    bool
    decode(BinDeserializer &d)
    {
        jobId = d.u64();
        return d.ok();
    }
};

struct QueryStatusMsg : JobIdMsg
{
    static constexpr MsgId id = MsgId::QueryStatus;
};

struct CancelJobMsg : JobIdMsg
{
    static constexpr MsgId id = MsgId::CancelJob;
};

struct SubscribeProgressMsg : JobIdMsg
{
    static constexpr MsgId id = MsgId::SubscribeProgress;
};

struct FetchResultsMsg : JobIdMsg
{
    static constexpr MsgId id = MsgId::FetchResults;
};

struct ShutdownMsg
{
    static constexpr MsgId id = MsgId::Shutdown;

    void encode(BinSerializer &) const {}
    bool decode(BinDeserializer &d) { return d.ok(); }
};

struct SubmitReplyMsg
{
    static constexpr MsgId id = MsgId::SubmitReply;
    std::uint64_t jobId = 0;
    std::uint64_t totalCells = 0;

    void
    encode(BinSerializer &s) const
    {
        s.u64(jobId);
        s.u64(totalCells);
    }

    bool
    decode(BinDeserializer &d)
    {
        jobId = d.u64();
        totalCells = d.u64();
        return d.ok();
    }
};

struct StatusReplyMsg
{
    static constexpr MsgId id = MsgId::StatusReply;
    std::uint64_t jobId = 0;
    JobState state = JobState::Queued;
    std::uint64_t doneCells = 0;
    std::uint64_t totalCells = 0;
    double etaSec = 0.0;
    std::string error; ///< non-empty when state == Failed

    void encode(BinSerializer &s) const;
    bool decode(BinDeserializer &d);
};

struct CancelReplyMsg
{
    static constexpr MsgId id = MsgId::CancelReply;
    std::uint64_t jobId = 0;
    bool accepted = false;

    void
    encode(BinSerializer &s) const
    {
        s.u64(jobId);
        s.boolean(accepted);
    }

    bool
    decode(BinDeserializer &d)
    {
        jobId = d.u64();
        accepted = d.boolean();
        return d.ok();
    }
};

struct SubscribeReplyMsg
{
    static constexpr MsgId id = MsgId::SubscribeReply;
    std::uint64_t jobId = 0;
    JobState state = JobState::Queued;
    std::uint64_t doneCells = 0;
    std::uint64_t totalCells = 0;

    void encode(BinSerializer &s) const;
    bool decode(BinDeserializer &d);
};

struct ResultsReplyMsg
{
    static constexpr MsgId id = MsgId::ResultsReply;
    std::uint64_t jobId = 0;
    JobState state = JobState::Queued;
    /** The canonical result table (CampaignResult::table()); empty
     *  unless state is Done or Cancelled. */
    std::string table;
    /** Full binary outcomes, bit-exact (doubles as bit patterns). */
    std::vector<CellOutcome> cells;

    void encode(BinSerializer &s) const;
    bool decode(BinDeserializer &d);
};

struct ShutdownReplyMsg
{
    static constexpr MsgId id = MsgId::ShutdownReply;

    void encode(BinSerializer &) const {}
    bool decode(BinDeserializer &d) { return d.ok(); }
};

enum class ErrorCode : std::uint32_t
{
    BadRequest = 1,   ///< frame decoded but request is invalid
    UnknownJob = 2,   ///< no such job id
    BadCampaign = 3,  ///< CampaignSpec::validate() failed
    NotReady = 4,     ///< results requested before completion
    Internal = 5,
};

struct ErrorReplyMsg
{
    static constexpr MsgId id = MsgId::ErrorReply;
    std::uint32_t code = 0;
    std::string text;

    void
    encode(BinSerializer &s) const
    {
        s.u32(code);
        s.str(text);
    }

    bool
    decode(BinDeserializer &d)
    {
        code = d.u32();
        text = d.str();
        return d.ok();
    }
};

/** One cell finished (the "[job k/N]" line as a protocol event). */
struct ProgressEventMsg
{
    static constexpr MsgId id = MsgId::ProgressEvent;
    std::uint64_t jobId = 0;
    std::uint32_t cellIndex = 0;
    std::string label;
    std::uint64_t doneCells = 0;
    std::uint64_t totalCells = 0;
    double etaSec = 0.0;

    void encode(BinSerializer &s) const;
    bool decode(BinDeserializer &d);
};

/** A cell's full outcome (with its StatRegistry snapshot when the
 *  campaign asked for per-cell stats). */
struct CellDoneEventMsg
{
    static constexpr MsgId id = MsgId::CellDoneEvent;
    std::uint64_t jobId = 0;
    CellOutcome cell;

    void
    encode(BinSerializer &s) const
    {
        s.u64(jobId);
        cell.encode(s);
    }

    bool
    decode(BinDeserializer &d)
    {
        jobId = d.u64();
        return cell.decode(d) && d.ok();
    }
};

struct CampaignDoneEventMsg
{
    static constexpr MsgId id = MsgId::CampaignDoneEvent;
    std::uint64_t jobId = 0;
    JobState state = JobState::Done;
    std::string error;

    void
    encode(BinSerializer &s) const
    {
        s.u64(jobId);
        s.u8(static_cast<std::uint8_t>(state));
        s.str(error);
    }

    bool
    decode(BinDeserializer &d)
    {
        jobId = d.u64();
        state = static_cast<JobState>(d.u8());
        error = d.str();
        return d.ok();
    }
};

/** Encode @p msg as a complete wire frame (length prefix included). */
template <typename Msg>
std::vector<std::uint8_t>
encodeMessage(const Msg &msg)
{
    BinSerializer body;
    msg.encode(body);
    return encodeFrame(static_cast<std::uint16_t>(Msg::id), body);
}

/**
 * Decode @p frame's body as @p Msg. Exact-consumption is enforced
 * for same-minor frames; a newer minor may carry trailing fields.
 */
template <typename Msg>
bool
decodeMessage(const Frame &frame, Msg *out)
{
    if (frame.id != static_cast<std::uint16_t>(Msg::id))
        return false;
    BinDeserializer d(frame.body);
    if (!out->decode(d))
        return false;
    if ((frame.version & 0xFF) <= protoMinor && !d.atEnd())
        return false; // same or older minor: trailing bytes = corrupt
    return true;
}

} // namespace macrosim::service

#endif // MACROSIM_SERVICE_PROTOCOL_HH
