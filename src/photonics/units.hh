/**
 * @file
 * Optical power and loss unit types.
 *
 * Link budgets mix logarithmic (dB, dBm) and linear (mW) quantities;
 * getting a sign or a log10 wrong is the classic bug in photonic
 * power analysis. These small strong types make the arithmetic
 * self-checking:
 *
 *   PowerDbm - PowerDbm -> Decibel        (a ratio)
 *   PowerDbm - Decibel  -> PowerDbm       (attenuation)
 *   Decibel  + Decibel  -> Decibel        (cascaded losses)
 *
 * while meaningless operations (adding two dBm values) do not compile.
 */

#ifndef MACROSIM_PHOTONICS_UNITS_HH
#define MACROSIM_PHOTONICS_UNITS_HH

#include <cmath>
#include <compare>

namespace macrosim
{

/** A power ratio in decibels (positive = gain, negative = loss). */
class Decibel
{
  public:
    Decibel() = default;

    constexpr explicit Decibel(double db) : db_(db) {}

    constexpr double value() const { return db_; }

    /** Linear power ratio: 10 dB -> 10x, -3 dB -> ~0.5x. */
    double
    linear() const
    {
        return std::pow(10.0, db_ / 10.0);
    }

    /** Construct from a linear power ratio. */
    static Decibel
    fromLinear(double ratio)
    {
        return Decibel(10.0 * std::log10(ratio));
    }

    constexpr Decibel
    operator+(Decibel other) const
    {
        return Decibel(db_ + other.db_);
    }

    constexpr Decibel
    operator-(Decibel other) const
    {
        return Decibel(db_ - other.db_);
    }

    constexpr Decibel operator-() const { return Decibel(-db_); }

    constexpr Decibel &
    operator+=(Decibel other)
    {
        db_ += other.db_;
        return *this;
    }

    constexpr Decibel
    operator*(double n) const
    {
        return Decibel(db_ * n);
    }

    constexpr auto operator<=>(const Decibel &) const = default;

  private:
    double db_ = 0.0;
};

constexpr Decibel
operator""_dB(long double v)
{
    return Decibel(static_cast<double>(v));
}

/** Absolute optical power on the dBm scale (0 dBm = 1 mW). */
class PowerDbm
{
  public:
    PowerDbm() = default;

    constexpr explicit PowerDbm(double dbm) : dbm_(dbm) {}

    constexpr double value() const { return dbm_; }

    double
    milliwatts() const
    {
        return std::pow(10.0, dbm_ / 10.0);
    }

    static PowerDbm
    fromMilliwatts(double mw)
    {
        return PowerDbm(10.0 * std::log10(mw));
    }

    /** Attenuate (or amplify) by a ratio. */
    constexpr PowerDbm
    operator-(Decibel loss) const
    {
        return PowerDbm(dbm_ - loss.value());
    }

    constexpr PowerDbm
    operator+(Decibel gain) const
    {
        return PowerDbm(dbm_ + gain.value());
    }

    /** The ratio between two absolute powers. */
    constexpr Decibel
    operator-(PowerDbm other) const
    {
        return Decibel(dbm_ - other.dbm_);
    }

    /** Negation, so that -21.0_dBm parses as expected. */
    constexpr PowerDbm operator-() const { return PowerDbm(-dbm_); }

    constexpr auto operator<=>(const PowerDbm &) const = default;

  private:
    double dbm_ = 0.0;
};

constexpr PowerDbm
operator""_dBm(long double v)
{
    return PowerDbm(static_cast<double>(v));
}

/** Energy per bit in femtojoules, used for transceiver accounting. */
struct FemtojoulesPerBit
{
    double value = 0.0;
};

/** Electrical power in milliwatts (tuning, receiver bias, switches). */
struct Milliwatts
{
    double value = 0.0;
};

} // namespace macrosim

#endif // MACROSIM_PHOTONICS_UNITS_HH
