/**
 * @file
 * Optical link-budget calculator.
 *
 * An OpticalPath is an ordered list of components a signal traverses
 * from modulator to receiver. The calculator sums insertion losses,
 * computes received power for a given launch power, and checks margin
 * against the receiver sensitivity — reproducing section 2's "17 dB
 * un-switched link loss, 4 dB margin" arithmetic.
 */

#ifndef MACROSIM_PHOTONICS_LINK_BUDGET_HH
#define MACROSIM_PHOTONICS_LINK_BUDGET_HH

#include <cstdint>
#include <vector>

#include "photonics/components.hh"
#include "photonics/units.hh"

namespace macrosim
{

/** One traversed element: a component, possibly repeated. */
struct PathElement
{
    Component component;
    /**
     * Multiplicity. For waveguides this is the length in cm (may be
     * fractional); for everything else an integer traversal count.
     */
    double count = 1.0;
};

/** An ordered optical path from source modulator to receiver. */
class OpticalPath
{
  public:
    OpticalPath() = default;

    /** Append @p count traversals of @p c; returns *this for chaining. */
    OpticalPath &
    add(Component c, double count = 1.0)
    {
        elements_.push_back({c, count});
        return *this;
    }

    /** Append @p cm centimetres of global routing waveguide. */
    OpticalPath &
    addGlobalWaveguide(double cm)
    {
        return add(Component::WaveguideGlobal, cm);
    }

    /** Append @p cm centimetres of local (on-die) waveguide. */
    OpticalPath &
    addLocalWaveguide(double cm)
    {
        return add(Component::WaveguideLocal, cm);
    }

    const std::vector<PathElement> &elements() const { return elements_; }

    /**
     * A copy of this path carrying @p extra decibels of added loss on
     * top of its components — the shared arithmetic behind fault
     * modelling (thermal ring drift, waveguide loss creep): the fault
     * subsystem and its tests both derate through this one helper, so
     * the section 2 "17 dB un-switched loss, 4 dB margin" numbers stay
     * pinned in a single place.
     */
    OpticalPath
    deratedPath(Decibel extra) const
    {
        OpticalPath p = *this;
        p.extraLoss_ += extra;
        return p;
    }

    /** Added (fault) loss this path carries beyond its components. */
    Decibel extraLoss() const { return extraLoss_; }

    /** Total insertion loss along the path, added loss included. */
    Decibel totalLoss() const;

    /** Received power for a given launch power. */
    PowerDbm
    receivedPower(PowerDbm launch = launchPower) const
    {
        return launch - totalLoss();
    }

    /** Margin above receiver sensitivity (negative = link fails). */
    Decibel
    margin(PowerDbm launch = launchPower,
           PowerDbm sensitivity = receiverSensitivity) const
    {
        return receivedPower(launch) - sensitivity;
    }

    /** Whether the link closes with non-negative margin. */
    bool
    closes(PowerDbm launch = launchPower,
           PowerDbm sensitivity = receiverSensitivity) const
    {
        return margin(launch, sensitivity).value() >= 0.0;
    }

    /**
     * The launch power (and hence laser power) multiplier needed to
     * close the link relative to @p budget of acceptable loss. This is
     * the paper's "power loss factor" (Table 5): extra loss beyond the
     * canonical un-switched budget, as a linear ratio.
     */
    double
    lossFactorBeyond(Decibel budget) const
    {
        const Decibel extra = totalLoss() - budget;
        return extra.value() <= 0.0 ? 1.0 : extra.linear();
    }

  private:
    std::vector<PathElement> elements_;
    Decibel extraLoss_{0.0};
};

/**
 * The canonical worst-case un-switched macrochip link of section 2:
 * modulator, mux, OPxC down to the routing layer, 6 dB of global
 * waveguide (worst-case site-to-site), OPxC up to the destination,
 * six non-selected drop-filter passes (the other sites in the
 * destination column), and the final drop. Total: 17 dB.
 */
OpticalPath canonicalUnswitchedLink();

/** Worst-case global-waveguide loss across the macrochip: 6 dB. */
constexpr Decibel worstCaseWaveguideLoss{6.0};

/** The canonical link-loss budget every network is engineered to. */
constexpr Decibel unswitchedLinkBudget{17.0};

/**
 * Maximum per-wavelength launch power before two-photon absorption
 * and carrier nonlinearity in the silicon waveguide eat the extra
 * power instead of delivering it (the scaling ceiling the Al-Qadasi
 * survey identifies): ~20 mW, i.e. 13 dBm. A link whose loss demands
 * more launch than this cannot be closed by turning the laser up —
 * the scale point is physically infeasible.
 */
constexpr PowerDbm maxLaunchPower{13.0};

/**
 * The routing-substrate detour factor implied by section 2: the
 * canonical worst-case route is 60 cm of global waveguide while the
 * worst-case Manhattan distance on the 8x8 / 2.5 cm grid is only
 * 35 cm. Scaled grids keep that ratio, so unswitchedLinkFor(8, 8)
 * is the canonical 17 dB link exactly.
 */
constexpr double routingDetourFactor = 60.0 / 35.0;

/**
 * The canonical un-switched link generalized to an R x C grid:
 * worst-case Manhattan route times the detour factor of global
 * waveguide, and rows-2 non-selected drop-filter passes (the other
 * sites in the destination column). Identical to
 * canonicalUnswitchedLink() at rows = cols = 8, pitch = 2.5.
 */
OpticalPath unswitchedLinkFor(std::uint32_t rows, std::uint32_t cols,
                              double site_pitch_cm = 2.5);

/** Physical verdict on one worst-case link at a scale point. */
struct LinkFeasibility
{
    /** Total insertion loss of the assessed path. */
    Decibel totalLoss{0.0};
    /** Launch power needed to hit sensitivity exactly. */
    PowerDbm requiredLaunch{0.0};
    /** Headroom below the nonlinearity ceiling (negative = fails). */
    Decibel margin{0.0};
    /** True when requiredLaunch fits under the ceiling. */
    bool feasible = false;
};

/** Assess @p path against the launch-power ceiling. */
LinkFeasibility assessLink(const OpticalPath &path,
                           PowerDbm max_launch = maxLaunchPower);

} // namespace macrosim

#endif // MACROSIM_PHOTONICS_LINK_BUDGET_HH
