#include "photonics/components.hh"

#include "sim/logging.hh"

namespace macrosim
{

namespace
{

// Table 1 of the paper, plus the per-device numbers quoted in the
// running text of section 2 (mux insertion loss, modulator
// off-resonance loss, tuning powers, switch power).
constexpr ComponentProperties propertyTable[] = {
    // name                 fJ/bit   static mW  insertion dB
    {"modulator",           {35.0},  {0.7},     Decibel(4.0)},
    {"opxc-coupler",        {0.0},   {0.0},     Decibel(1.2)},
    {"waveguide-local/cm",  {0.0},   {0.0},     Decibel(0.5)},
    {"waveguide-global/cm", {0.0},   {0.0},     Decibel(0.1)},
    {"drop-filter-pass",    {0.0},   {0.1},     Decibel(0.1)},
    {"drop-filter-drop",    {0.0},   {0.1},     Decibel(1.5)},
    {"multiplexer",         {0.0},   {0.1},     Decibel(2.5)},
    {"receiver",            {65.0},  {1.3},     Decibel(0.0)},
    {"switch",              {0.0},   {0.5},     Decibel(1.0)},
    {"laser",               {50.0},  {0.0},     Decibel(0.0)},
    {"modulator-off",       {0.0},   {0.0},     Decibel(0.1)},
    {"inter-layer-coupler", {0.0},   {0.0},     Decibel(1.2)},
    {"splitter",            {0.0},   {0.0},     Decibel(3.0)},
};

} // namespace

const ComponentProperties &
properties(Component c)
{
    const auto idx = static_cast<std::size_t>(c);
    if (idx >= std::size(propertyTable))
        panic("properties: unknown component id ", idx);
    return propertyTable[idx];
}

} // namespace macrosim
