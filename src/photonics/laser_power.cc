#include "photonics/laser_power.hh"

namespace macrosim
{

double
lossFactorFromExtraLoss(Decibel extra)
{
    return extra.value() <= 0.0 ? 1.0 : extra.linear();
}

} // namespace macrosim
