#include "photonics/link_budget.hh"

namespace macrosim
{

Decibel
OpticalPath::totalLoss() const
{
    Decibel total = extraLoss_;
    for (const auto &e : elements_)
        total += properties(e.component).insertionLoss * e.count;
    return total;
}

OpticalPath
canonicalUnswitchedLink()
{
    OpticalPath p;
    p.add(Component::Modulator)
        .add(Component::Multiplexer)
        .add(Component::OpxcCoupler)            // source die -> substrate
        .addGlobalWaveguide(60.0)               // 6 dB worst case routing
        .add(Component::OpxcCoupler)            // substrate -> dest die
        .add(Component::DropFilterPass, 6.0)    // other sites in column
        .add(Component::DropFilterDrop);        // our wavelength dropped
    return p;
}

} // namespace macrosim
