#include "photonics/link_budget.hh"

namespace macrosim
{

Decibel
OpticalPath::totalLoss() const
{
    Decibel total = extraLoss_;
    for (const auto &e : elements_)
        total += properties(e.component).insertionLoss * e.count;
    return total;
}

OpticalPath
canonicalUnswitchedLink()
{
    OpticalPath p;
    p.add(Component::Modulator)
        .add(Component::Multiplexer)
        .add(Component::OpxcCoupler)            // source die -> substrate
        .addGlobalWaveguide(60.0)               // 6 dB worst case routing
        .add(Component::OpxcCoupler)            // substrate -> dest die
        .add(Component::DropFilterPass, 6.0)    // other sites in column
        .add(Component::DropFilterDrop);        // our wavelength dropped
    return p;
}

OpticalPath
unswitchedLinkFor(std::uint32_t rows, std::uint32_t cols,
                  double site_pitch_cm)
{
    const std::uint32_t row_span = rows > 0 ? rows - 1 : 0;
    const std::uint32_t col_span = cols > 0 ? cols - 1 : 0;
    const double manhattan_cm =
        site_pitch_cm * static_cast<double>(row_span + col_span);
    const double passes = rows > 2 ? rows - 2 : 0;

    OpticalPath p;
    p.add(Component::Modulator)
        .add(Component::Multiplexer)
        .add(Component::OpxcCoupler)
        .addGlobalWaveguide(manhattan_cm * routingDetourFactor)
        .add(Component::OpxcCoupler)
        .add(Component::DropFilterPass, passes)
        .add(Component::DropFilterDrop);
    return p;
}

LinkFeasibility
assessLink(const OpticalPath &path, PowerDbm max_launch)
{
    LinkFeasibility f;
    f.totalLoss = path.totalLoss();
    f.requiredLaunch = receiverSensitivity + f.totalLoss;
    f.margin = max_launch - f.requiredLaunch;
    f.feasible = f.margin.value() >= 0.0;
    return f;
}

} // namespace macrosim
