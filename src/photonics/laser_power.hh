/**
 * @file
 * Laser power accounting (paper section 6.3, Table 5).
 *
 * The base assumption is 1 mW of laser power per wavelength. When a
 * network's topology adds loss beyond the canonical un-switched link
 * budget (off-resonance modulator passes, switch hops, snooping
 * splitters), every laser feeding it must be scaled up by the linear
 * "power loss factor". Total network optical power is then
 *
 *     watts = wavelengths x 1 mW x lossFactor / 1000.
 */

#ifndef MACROSIM_PHOTONICS_LASER_POWER_HH
#define MACROSIM_PHOTONICS_LASER_POWER_HH

#include <cstdint>
#include <string>

#include "photonics/components.hh"
#include "photonics/units.hh"

namespace macrosim
{

/** One row of Table 5: a network's (or subnetwork's) laser budget. */
struct LaserPowerSpec
{
    std::string name;
    /** Total modulated wavelengths sourced into the network. */
    std::uint64_t wavelengths = 0;
    /** Linear laser power multiplier to overcome extra loss. */
    double lossFactor = 1.0;

    /** Total laser power in watts. */
    double
    watts() const
    {
        return static_cast<double>(wavelengths)
            * baseLaserMwPerWavelength * lossFactor / 1000.0;
    }

    /** Number of 10 mW off-chip DFB sources needed. */
    std::uint64_t
    laserSources() const
    {
        const double mw = watts() * 1000.0;
        return static_cast<std::uint64_t>(
            (mw + laserSourceMw - 1.0) / laserSourceMw);
    }
};

/** Linear power factor for a given amount of extra loss (>= 1). */
double lossFactorFromExtraLoss(Decibel extra);

} // namespace macrosim

#endif // MACROSIM_PHOTONICS_LASER_POWER_HH
