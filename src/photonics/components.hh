/**
 * @file
 * Silicon-photonic component property table (paper section 2, Table 1).
 *
 * Parameters are the paper's 2014-2015 device projections. They drive
 * both the link-budget calculator and the network power model; nothing
 * downstream hard-codes a Table 1 number.
 */

#ifndef MACROSIM_PHOTONICS_COMPONENTS_HH
#define MACROSIM_PHOTONICS_COMPONENTS_HH

#include <string_view>

#include "photonics/units.hh"

namespace macrosim
{

/** The optical component classes of Table 1. */
enum class Component
{
    Modulator,     ///< EO ring modulator (carrier-depletion).
    OpxcCoupler,   ///< Optical proximity coupler (chip-to-chip).
    WaveguideLocal, ///< Thinned-SOI local waveguide (per cm).
    WaveguideGlobal, ///< 3um SOI routing-layer waveguide (per cm).
    DropFilterPass, ///< Ring drop filter, non-selected wavelength.
    DropFilterDrop, ///< Ring drop filter, selected (dropped) wavelength.
    Multiplexer,   ///< Cascaded-ring WDM mux (worst-case channel).
    Receiver,      ///< Waveguide photodetector + TIA.
    Switch,        ///< Quasi-broadband 1x2 ring switch.
    Laser,         ///< Off-chip CW DFB source (per wavelength).
    ModulatorOff,  ///< Ring modulator passed while off-resonance.
    InterLayerCoupler, ///< Via-like coupler between routing layers.
    Splitter,      ///< 1:2 broadband power splitter (3 dB inherent).
};

/** Static and per-bit properties of one component class. */
struct ComponentProperties
{
    std::string_view name;
    /** Dynamic switching energy per transmitted bit. */
    FemtojoulesPerBit dynamicEnergy;
    /** Static electrical power while the device is active. */
    Milliwatts staticPower;
    /** Insertion loss seen by a signal traversing the device. */
    Decibel insertionLoss;
};

/** Look up the Table 1 properties of a component class. */
const ComponentProperties &properties(Component c);

/* Link-level constants from section 2 of the paper. */

/** Per-wavelength modulation rate: 20 Gb/s. */
constexpr double bitRateGbps = 20.0;

/** Bytes per nanosecond delivered by one wavelength (2.5 GB/s). */
constexpr double bytesPerNsPerWavelength = bitRateGbps / 8.0;

/** Receiver sensitivity: -21 dBm at 20 Gb/s. */
constexpr PowerDbm receiverSensitivity{-21.0};

/** Laser launch power at the modulator: 0 dBm (1 mW). */
constexpr PowerDbm launchPower{0.0};

/** Base laser electrical/optical power per wavelength: 1 mW. */
constexpr double baseLaserMwPerWavelength = 1.0;

/** Ring tuning power (mux and drop filters): 0.1 mW per wavelength. */
constexpr double tuningMwPerWavelength = 0.1;

/** Optical propagation: 0.1 ns/cm (about 0.3c in SOI waveguides). */
constexpr double propagationNsPerCm = 0.1;

/** A single off-chip DFB laser source provides 10 mW. */
constexpr double laserSourceMw = 10.0;

} // namespace macrosim

#endif // MACROSIM_PHOTONICS_COMPONENTS_HH
