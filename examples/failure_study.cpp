/**
 * @file
 * Yield / failure study on the limited point-to-point network.
 *
 * The macrochip's reason to exist is tolerating imperfect silicon
 * (section 1: reticle limits and process yield). The one proposed
 * network with active electronics per site is the limited
 * point-to-point, whose 7x7 routers are single points of failure for
 * forwarded traffic. This example kills an increasing number of
 * sites' routers (all within one row, the always-survivable pattern),
 * reruns a uniform coherent workload, and reports the throughput and
 * latency cost of rerouting through alternate forwarders — plus a
 * message trace of the rerouted paths.
 *
 *   $ ./failure_study
 */

#include <cstdio>
#include <iostream>

#include "net/limited_pt2pt.hh"
#include "net/tracer.hh"
#include "sim/logging.hh"
#include "workloads/trace_cpu.hh"

using namespace macrosim;

int
main()
{
    setQuiet(true);
    WorkloadSpec spec = workloadByName("swaptions");
    spec.instructionsPerCore = 1000;

    std::printf("Router-failure study on the limited point-to-point "
                "network (swaptions kernel)\n\n");
    std::printf("%14s %12s %14s %14s %12s\n", "failed routers",
                "runtime(ns)", "op-lat(ns)", "rerouted", "slowdown");

    double baseline = 0.0;
    for (const std::uint32_t failures : {0u, 1u, 2u, 4u, 8u}) {
        Simulator sim(11);
        LimitedPointToPointNetwork net(sim, simulatedConfig());
        // Fail routers across row 0 (survivable for every pair).
        for (std::uint32_t f = 0; f < failures; ++f)
            net.failSiteRouters(f);

        TraceCpuSystem cpu(sim, net, spec, 13);
        const TraceCpuResult res = cpu.run();
        if (failures == 0)
            baseline = static_cast<double>(res.runtime);

        std::printf("%14u %12.0f %14.1f %14llu %11.2f%%\n", failures,
                    res.runtimeNs(), res.opLatencyNs,
                    static_cast<unsigned long long>(
                        net.reroutedPackets()),
                    (static_cast<double>(res.runtime) / baseline
                     - 1.0) * 100.0);
    }

    // A small traced run showing an actual rerouted path.
    std::printf("\nTrace of one rerouted transfer (site 1's routers "
                "failed, 0 -> 9):\n");
    Simulator sim(1);
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.failSiteRouters(1);
    MessageTracer tracer(net);
    net.setDefaultHandler([](const Message &) {});
    Message m;
    m.src = 0;
    m.dst = 9;
    net.inject(m);
    sim.run();
    std::printf("  primary forwarder (0,1)=site 1 dead; alternate "
                "(1,0)=site %u used\n",
                net.alternateForwarderFor(0, 9));
    tracer.writeCsv(std::cout);
    return 0;
}
