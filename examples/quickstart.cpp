/**
 * @file
 * Quickstart: build a 64-site macrochip with the static WDM
 * point-to-point network, push a few cache-line packets through it,
 * and then run a small cache-coherent kernel end to end.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "net/pt2pt.hh"
#include "sim/logging.hh"
#include "workloads/trace_cpu.hh"

using namespace macrosim;

int
main()
{
    setQuiet(true);

    // --- 1. A simulator and a network -------------------------------
    // Every experiment owns a Simulator (event queue + seeded RNG)
    // and one Network built from a MacrochipConfig. simulatedConfig()
    // is the paper's Table 4 system: 8x8 sites, 8 cores/site,
    // 320 GB/s per site.
    Simulator sim(/*seed=*/42);
    const MacrochipConfig cfg = simulatedConfig();
    PointToPointNetwork net(sim, cfg);

    std::printf("macrochip: %u sites, %u cores, %.0f GB/s per site, "
                "%.1f TB/s peak\n",
                cfg.siteCount(), cfg.coreCount(),
                cfg.siteBandwidthBytesPerNs(), cfg.peakBandwidthTBs());
    std::printf("network:   %s (%u wavelengths per channel, "
                "%.1f W of lasers)\n\n",
                std::string(net.name()).c_str(),
                net.wavelengthsPerChannel(), net.laserWatts());

    // --- 2. Raw packets ---------------------------------------------
    // Deliveries arrive through a handler; packets carry their own
    // timing breadcrumbs.
    net.setDefaultHandler([](const Message &m) {
        std::printf("  packet %llu: site %u -> site %u, %u B, "
                    "%.2f ns\n",
                    static_cast<unsigned long long>(m.id), m.src,
                    m.dst, m.bytes, ticksToNs(m.latency()));
    });
    for (SiteId dst : {SiteId{1}, SiteId{7}, SiteId{63}}) {
        Message m;
        m.src = 0;
        m.dst = dst;
        m.bytes = 64;
        net.inject(m);
    }
    sim.run();

    // --- 3. A cache-coherent workload --------------------------------
    // The trace-CPU system runs 512 cores against the network: L2
    // misses become MOESI coherence transactions, and finite MSHRs
    // make core throughput depend on network latency.
    Simulator sim2(42);
    PointToPointNetwork net2(sim2, cfg);
    WorkloadSpec spec = workloadByName("swaptions");
    spec.instructionsPerCore = 2000;
    TraceCpuSystem cpu(sim2, net2, spec);
    const TraceCpuResult res = cpu.run();

    std::printf("\nswaptions kernel on %s:\n",
                res.network.c_str());
    std::printf("  instructions        %llu\n",
                static_cast<unsigned long long>(res.instructions));
    std::printf("  coherence ops       %llu\n",
                static_cast<unsigned long long>(res.coherenceOps));
    std::printf("  runtime             %.0f ns\n", res.runtimeNs());
    std::printf("  latency/coherence   %.1f ns\n", res.opLatencyNs);
    std::printf("  network energy      %.3f mJ (EDP %.3g J*s)\n",
                res.totalJoules * 1e3, res.edp);
    return 0;
}
