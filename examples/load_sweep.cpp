/**
 * @file
 * CSV load-sweep generator: drive one network with one synthetic
 * pattern across a range of offered loads and emit a figure-6-style
 * latency curve, ready for plotting.
 *
 *   $ ./load_sweep [network] [pattern] [max-load-pct]
 *
 * Networks: p2p limited token circuit two-phase two-phase-alt
 * Patterns: uniform transpose butterfly neighbor all-to-all
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "net/circuit_switched.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "sim/logging.hh"
#include "workloads/packet_injector.hh"

using namespace macrosim;

namespace
{

std::unique_ptr<Network>
buildNetwork(const std::string &name, Simulator &sim,
             const MacrochipConfig &cfg)
{
    if (name == "p2p")
        return std::make_unique<PointToPointNetwork>(sim, cfg);
    if (name == "limited")
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
    if (name == "token")
        return std::make_unique<TokenRingCrossbar>(sim, cfg);
    if (name == "circuit")
        return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
    if (name == "two-phase")
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
    if (name == "two-phase-alt")
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                           true);
    fatal("unknown network '", name,
          "' (want p2p, limited, token, circuit, two-phase, "
          "two-phase-alt)");
}

TrafficPattern
parsePattern(const std::string &name)
{
    if (name == "uniform")
        return TrafficPattern::Uniform;
    if (name == "transpose")
        return TrafficPattern::Transpose;
    if (name == "butterfly")
        return TrafficPattern::Butterfly;
    if (name == "neighbor")
        return TrafficPattern::Neighbor;
    if (name == "all-to-all")
        return TrafficPattern::AllToAll;
    fatal("unknown pattern '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string net_name = argc > 1 ? argv[1] : "p2p";
    const std::string pattern_name = argc > 2 ? argv[2] : "uniform";
    const double max_pct = argc > 3 ? std::atof(argv[3]) : 95.0;

    try {
        std::printf("network,pattern,offered_pct,latency_ns,"
                    "delivered_pct,packets\n");
        // Geometric load grid: fine resolution near zero, coarse at
        // the top, 12 points.
        for (int i = 1; i <= 12; ++i) {
            const double frac = static_cast<double>(i) / 12.0;
            const double load_pct = max_pct * frac * frac;
            if (load_pct <= 0.0)
                continue;
            Simulator sim(23);
            auto net = buildNetwork(net_name, sim, simulatedConfig());
            InjectorConfig cfg;
            cfg.pattern = parsePattern(pattern_name);
            cfg.load = load_pct / 100.0;
            cfg.warmup = 500 * tickNs;
            cfg.window = 2500 * tickNs;
            cfg.seed = 23;
            const InjectorResult r = runOpenLoop(sim, *net, cfg);
            std::printf("%s,%s,%.3f,%.2f,%.3f,%llu\n",
                        net_name.c_str(), pattern_name.c_str(),
                        r.offeredLoadPct, r.meanLatencyNs,
                        r.deliveredPct,
                        static_cast<unsigned long long>(
                            r.measuredPackets));
            std::fflush(stdout);
            if (r.meanLatencyNs > 2000.0)
                break; // deep in saturation; stop the sweep
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return 0;
}
