/**
 * @file
 * The paper's headline experiment in miniature: run one
 * cache-coherent kernel on all six network configurations and
 * compare runtime, coherence-operation latency, power and EDP.
 *
 *   $ ./compare_networks [workload] [instructions-per-core]
 *
 * Workloads: radix barnes blackscholes densities forces swaptions
 *            all-to-all transpose transpose-MS neighbor butterfly
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/circuit_switched.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "sim/logging.hh"
#include "workloads/trace_cpu.hh"

using namespace macrosim;

namespace
{

std::unique_ptr<Network>
buildNetwork(int which, Simulator &sim, const MacrochipConfig &cfg)
{
    switch (which) {
      case 0: return std::make_unique<TokenRingCrossbar>(sim, cfg);
      case 1: return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
      case 2: return std::make_unique<PointToPointNetwork>(sim, cfg);
      case 3:
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
      case 4:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
      default:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                           true);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string workload = argc > 1 ? argv[1] : "swaptions";
    const std::uint64_t instr =
        argc > 2 ? static_cast<std::uint64_t>(std::atol(argv[2]))
                 : 2000;

    WorkloadSpec spec = workloadByName(workload);
    spec.instructionsPerCore = instr;

    std::printf("Workload: %s (%llu instructions/core, %u cores)\n\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(instr),
                simulatedConfig().coreCount());
    std::printf("%-24s %12s %10s %12s %12s %12s\n", "network",
                "runtime(ns)", "speedup", "op-lat(ns)", "static(W)",
                "EDP vs p2p");

    std::vector<TraceCpuResult> results;
    std::vector<double> static_watts;
    for (int i = 0; i < 6; ++i) {
        Simulator sim(7);
        auto net = buildNetwork(i, sim, simulatedConfig());
        TraceCpuSystem cpu(sim, *net, spec, 11);
        results.push_back(cpu.run());
        static_watts.push_back(net->staticWatts());
    }

    // Normalize as the paper does: speedup vs the slowest network,
    // EDP vs the point-to-point network (index 2).
    double slowest = 0.0;
    for (const auto &r : results)
        slowest = std::max(slowest, static_cast<double>(r.runtime));
    const double p2p_edp = results[2].edp;

    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::printf("%-24s %12.0f %10.2f %12.1f %12.1f %12.1f\n",
                    r.network.c_str(), r.runtimeNs(),
                    slowest / static_cast<double>(r.runtime),
                    r.opLatencyNs, static_watts[i], r.edp / p2p_edp);
    }
    return 0;
}
