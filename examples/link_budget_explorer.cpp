/**
 * @file
 * Photonics design exploration with the link-budget API:
 *
 *  1. Walk the canonical un-switched macrochip link component by
 *     component and verify it closes with the paper's 4 dB margin.
 *  2. Show how many broadband switch hops a link can tolerate before
 *     the laser power must be scaled up (the origin of Table 5's
 *     loss factors).
 *  3. Sweep the WDM factor of a token-ring-style bundle to reproduce
 *     the section 4.4 trade-off: more wavelengths per waveguide means
 *     fewer waveguides but catastrophically more off-resonance ring
 *     loss (Corona's 64-way WDM would need 409.6 dB!).
 *
 *   $ ./link_budget_explorer
 */

#include <cstdio>
#include <string>

#include "photonics/laser_power.hh"
#include "photonics/link_budget.hh"

using namespace macrosim;

int
main()
{
    // --- 1. The canonical link, element by element -------------------
    std::printf("Canonical un-switched link budget:\n");
    const OpticalPath link = canonicalUnswitchedLink();
    double running = 0.0;
    for (const PathElement &e : link.elements()) {
        const auto &p = properties(e.component);
        const double db = p.insertionLoss.value() * e.count;
        running += db;
        std::printf("  %-22s x%-6.1f %6.2f dB   (running %6.2f dB)\n",
                    std::string(p.name).c_str(), e.count, db, running);
    }
    std::printf("  margin over %.0f dBm sensitivity: %.2f dB -> %s\n\n",
                receiverSensitivity.value(), link.margin().value(),
                link.closes() ? "link closes" : "LINK FAILS");

    // --- 2. Switch hops vs laser power --------------------------------
    std::printf("Broadband switch hops vs required laser power "
                "(1 mW base):\n");
    for (int hops = 0; hops <= 31; hops += (hops < 8 ? 1 : 23)) {
        OpticalPath p = canonicalUnswitchedLink();
        p.add(Component::Switch, hops);
        const double factor = p.lossFactorBeyond(unswitchedLinkBudget);
        std::printf("  %2d hops: %5.2f dB extra -> %6.2fx laser power"
                    "%s\n",
                    hops, hops * 1.0, factor,
                    hops == 7 ? "   <- two-phase worst case (Table 5)"
                              : "");
    }

    // --- 3. WDM factor sweep for a ring crossbar ----------------------
    std::printf("\nRing-crossbar WDM factor sweep (64 sites, "
                "0.1 dB per off-resonance modulator):\n");
    std::printf("  %4s %12s %14s %16s\n", "WDM", "ring loss",
                "loss factor", "laser power (W)");
    for (std::uint32_t wdm : {1u, 2u, 4u, 8u, 16u, 64u}) {
        const double ring_db = 0.1 * 64.0 * wdm;
        const double factor =
            lossFactorFromExtraLoss(Decibel(ring_db));
        LaserPowerSpec spec{"ring", 8192, factor};
        std::printf("  %4u %9.1f dB %14.4g %16.4g%s\n", wdm, ring_db,
                    factor, spec.watts(),
                    wdm == 2 ? "   <- the macrochip adaptation"
                             : (wdm == 64 ? "   <- Corona as published"
                                          : ""));
    }
    std::printf("\nThe 12.8 dB / 19x / ~155 W row is Table 5's "
                "token-ring entry; WDM factors above ~4 cannot close "
                "the link at any sane laser power, which is why "
                "section 4.4 trades WDM for 4x more waveguides.\n");
    return 0;
}
