/**
 * @file
 * macrosimctl — command-line client for macrosimd (DESIGN.md §13).
 *
 *   macrosimctl --socket=PATH submit --smoke --wait --output=t.csv
 *   macrosimctl --socket=PATH status 1
 *   macrosimctl --socket=PATH watch 1
 *   macrosimctl --socket=PATH results 1 --wait --output=t.csv
 *   macrosimctl --socket=PATH cancel 1
 *   macrosimctl --socket=PATH shutdown
 *   macrosimctl offline --smoke --output=t.csv
 *
 * "offline" runs the same campaign in-process through SweepRunner —
 * no daemon — and is the reference side of the bit-identity check:
 * for any spec, the table from a daemon run (even one killed and
 * resumed) is byte-identical to the offline table.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "flags.hh"
#include "harness.hh"
#include "service/client.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"

using namespace macrosim;
using namespace macrosim::bench;
using namespace macrosim::service;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: macrosimctl [--socket=PATH] COMMAND [args]\n"
        "  submit [campaign flags] [--wait] [--output=FILE]\n"
        "  status JOBID\n"
        "  watch JOBID\n"
        "  results JOBID [--wait] [--output=FILE]\n"
        "  cancel JOBID\n"
        "  shutdown\n"
        "  offline [campaign flags] [--output=FILE]   (no daemon)\n"
        "campaign flags: --smoke --kind=injector|matrix "
        "--patterns=... --networks=... --loads=... --warmup-ns=N "
        "--window-ns=N --instr=N --workloads=... --cell-stats "
        "--seed=N\n");
}

std::uint64_t
jobIdArg(int argc, char **argv, const char *cmd)
{
    if (argc < 3)
        fatal("macrosimctl ", cmd, ": missing JOBID");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(argv[2], &end, 10);
    if (errno != 0 || end == argv[2] || *end != '\0')
        fatal("macrosimctl ", cmd, ": bad JOBID '", argv[2], "'");
    return static_cast<std::uint64_t>(v);
}

void
printEvent(const Frame &frame)
{
    if (frame.id
        == static_cast<std::uint16_t>(MsgId::ProgressEvent)) {
        ProgressEventMsg ev;
        if (decodeMessage(frame, &ev)) {
            std::fprintf(stderr,
                         "  [job %llu/%llu] %s (eta %.1f s)\n",
                         static_cast<unsigned long long>(
                             ev.doneCells),
                         static_cast<unsigned long long>(
                             ev.totalCells),
                         ev.label.c_str(), ev.etaSec);
        }
    } else if (frame.id
               == static_cast<std::uint16_t>(
                   MsgId::CampaignDoneEvent)) {
        CampaignDoneEventMsg ev;
        if (decodeMessage(frame, &ev)) {
            std::fprintf(stderr, "  job %llu: %s%s%s\n",
                         static_cast<unsigned long long>(ev.jobId),
                         to_string(ev.state),
                         ev.error.empty() ? "" : " — ",
                         ev.error.c_str());
        }
    }
    // CellDoneEvents carry the binary outcome; the progress line
    // above already reports the completion, so stay quiet here.
}

/** Emit a finished job's table to stdout or --output. */
int
deliverTable(const ResultsReplyMsg &results,
             const std::string &output)
{
    if (output.empty()) {
        std::fputs(results.table.c_str(), stdout);
        return 0;
    }
    writeTextFile(output, results.table);
    std::fprintf(stderr, "macrosimctl: wrote %zu bytes to %s\n",
                 results.table.size(), output.c_str());
    return 0;
}

int
fetchAndDeliver(ServiceClient &client, std::uint64_t jobId,
                const std::string &output)
{
    ResultsReplyMsg results;
    if (!client.fetchResults(jobId, &results))
        fatal("macrosimctl: ", client.lastError());
    if (results.state == JobState::Failed)
        fatal("macrosimctl: job ", jobId, " failed");
    const int rc = deliverTable(results, output);
    if (rc == 0 && results.state == JobState::Cancelled) {
        std::fprintf(stderr,
                     "macrosimctl: job %llu was cancelled; table is "
                     "partial\n",
                     static_cast<unsigned long long>(jobId));
        return 3;
    }
    return rc;
}

int
cmdSubmit(ServiceClient &client, int argc, char **argv)
{
    const bool wait = stripSwitch(argc, argv, "wait");
    std::string output;
    stripValueFlag(argc, argv, "output", &output);
    const CampaignSpec spec = campaignArgs(argc, argv);

    SubmitReplyMsg reply;
    if (!client.submit(spec, &reply))
        fatal("macrosimctl: ", client.lastError());
    std::fprintf(stderr, "macrosimctl: job %llu submitted (%llu "
                 "cells)\n",
                 static_cast<unsigned long long>(reply.jobId),
                 static_cast<unsigned long long>(reply.totalCells));
    if (!wait) {
        std::printf("%llu\n",
                    static_cast<unsigned long long>(reply.jobId));
        return 0;
    }

    client.setEventHandler(printEvent);
    SubscribeReplyMsg sub;
    if (!client.subscribe(reply.jobId, &sub))
        fatal("macrosimctl: ", client.lastError());
    JobState state = JobState::Queued;
    if (!client.waitForDone(reply.jobId, &state))
        fatal("macrosimctl: ", client.lastError());
    return fetchAndDeliver(client, reply.jobId, output);
}

int
cmdStatus(ServiceClient &client, int argc, char **argv)
{
    const std::uint64_t jobId = jobIdArg(argc, argv, "status");
    StatusReplyMsg reply;
    if (!client.queryStatus(jobId, &reply))
        fatal("macrosimctl: ", client.lastError());
    std::printf("job %llu: %s %llu/%llu cells",
                static_cast<unsigned long long>(reply.jobId),
                to_string(reply.state),
                static_cast<unsigned long long>(reply.doneCells),
                static_cast<unsigned long long>(reply.totalCells));
    if (reply.state == JobState::Running)
        std::printf(" (eta %.1f s)", reply.etaSec);
    if (!reply.error.empty())
        std::printf(" — %s", reply.error.c_str());
    std::printf("\n");
    return 0;
}

int
cmdWatch(ServiceClient &client, int argc, char **argv)
{
    const std::uint64_t jobId = jobIdArg(argc, argv, "watch");
    client.setEventHandler(printEvent);
    SubscribeReplyMsg sub;
    if (!client.subscribe(jobId, &sub))
        fatal("macrosimctl: ", client.lastError());
    if (sub.state == JobState::Done
        || sub.state == JobState::Cancelled
        || sub.state == JobState::Failed) {
        std::fprintf(stderr, "macrosimctl: job %llu already %s\n",
                     static_cast<unsigned long long>(jobId),
                     to_string(sub.state));
        return 0;
    }
    std::fprintf(stderr,
                 "macrosimctl: watching job %llu (%llu/%llu)\n",
                 static_cast<unsigned long long>(jobId),
                 static_cast<unsigned long long>(sub.doneCells),
                 static_cast<unsigned long long>(sub.totalCells));
    JobState state = JobState::Queued;
    if (!client.waitForDone(jobId, &state))
        fatal("macrosimctl: ", client.lastError());
    return 0;
}

int
cmdResults(ServiceClient &client, int argc, char **argv)
{
    const bool wait = stripSwitch(argc, argv, "wait");
    std::string output;
    stripValueFlag(argc, argv, "output", &output);
    const std::uint64_t jobId = jobIdArg(argc, argv, "results");

    if (wait) {
        // Subscribe BEFORE checking state: events only flow to
        // subscribers, so checking first could miss the done event.
        client.setEventHandler(printEvent);
        SubscribeReplyMsg sub;
        if (!client.subscribe(jobId, &sub))
            fatal("macrosimctl: ", client.lastError());
        if (sub.state != JobState::Done
            && sub.state != JobState::Cancelled
            && sub.state != JobState::Failed) {
            JobState state = JobState::Queued;
            if (!client.waitForDone(jobId, &state))
                fatal("macrosimctl: ", client.lastError());
        }
    }
    return fetchAndDeliver(client, jobId, output);
}

int
cmdCancel(ServiceClient &client, int argc, char **argv)
{
    const std::uint64_t jobId = jobIdArg(argc, argv, "cancel");
    CancelReplyMsg reply;
    if (!client.cancel(jobId, &reply))
        fatal("macrosimctl: ", client.lastError());
    std::fprintf(stderr, "macrosimctl: job %llu cancel %s\n",
                 static_cast<unsigned long long>(jobId),
                 reply.accepted ? "accepted" : "rejected (already "
                                               "finished?)");
    return reply.accepted ? 0 : 1;
}

int
cmdOffline(int argc, char **argv)
{
    setQuiet(true);
    installSweepSignalHandlers();
    std::string output;
    stripValueFlag(argc, argv, "output", &output);
    const std::size_t jobs = stripJobsFlag(argc, argv);
    const CampaignSpec spec = campaignArgs(argc, argv);
    const std::string problem = spec.validate();
    if (!problem.empty())
        fatal("macrosimctl offline: ", problem);

    const CampaignResult result =
        runCampaignOffline(spec, jobs, {}, nullptr,
                           /*progressLog=*/true);
    ResultsReplyMsg shim;
    shim.table = result.table();
    const int rc = deliverTable(shim, output);
    if (rc != 0)
        return rc;
    return sweepExitStatus();
}

} // namespace

int
main(int argc, char **argv)
{
    if (stripSwitch(argc, argv, "help")) {
        usage();
        return 0;
    }
    std::string socket;
    stripValueFlag(argc, argv, "socket", &socket);
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];

    try {
        if (cmd == "offline")
            return cmdOffline(argc, argv);

        if (socket.empty())
            fatal("macrosimctl: --socket=PATH is required for '",
                  cmd, "'");
        ServiceClient client;
        std::string err;
        if (!client.connectUnix(socket, &err))
            fatal("macrosimctl: ", err);

        if (cmd == "submit")
            return cmdSubmit(client, argc, argv);
        if (cmd == "status")
            return cmdStatus(client, argc, argv);
        if (cmd == "watch")
            return cmdWatch(client, argc, argv);
        if (cmd == "results")
            return cmdResults(client, argc, argv);
        if (cmd == "cancel")
            return cmdCancel(client, argc, argv);
        if (cmd == "shutdown") {
            if (!client.shutdownDaemon())
                fatal("macrosimctl: ", client.lastError());
            std::fprintf(stderr, "macrosimctl: daemon shutting "
                         "down\n");
            return 0;
        }
        std::fprintf(stderr, "macrosimctl: unknown command '%s'\n",
                     cmd.c_str());
        usage();
        return 2;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
