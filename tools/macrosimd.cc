/**
 * @file
 * macrosimd — the simulation-as-a-service daemon (DESIGN.md §13).
 *
 * Serves the macrosim campaign protocol on a Unix-domain socket:
 *
 *   macrosimd --socket=/tmp/macrosim.sock --journal-dir=/tmp/jobs
 *   macrosimd --socket=... --journal-dir=... --resume
 *
 * Every completed cell is journaled before its event is published,
 * so a killed daemon restarted with --resume re-runs only the
 * unfinished cells and produces a byte-identical result table.
 * --exit-after-cells=N is the deterministic crash-injection hook
 * behind the service_e2e_smoke test.
 */

#include <cstdio>
#include <cstring>

#include "flags.hh"
#include "service/server.hh"
#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;
using namespace macrosim::service;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: macrosimd --socket=PATH [options]\n"
        "  --socket=PATH           Unix-domain socket to listen on\n"
        "  --journal-dir=DIR       per-job checkpoint journals "
        "(default .)\n"
        "  --resume                replay journals, re-running only "
        "unfinished cells\n"
        "  --jobs=N                sweep worker threads per campaign\n"
        "  --exit-after-cells=N    _exit(42) after the Nth journaled "
        "cell (test hook)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (stripSwitch(argc, argv, "help")) {
        usage();
        return 0;
    }

    DaemonOptions opts;
    stripValueFlag(argc, argv, "socket", &opts.socketPath);
    stripValueFlag(argc, argv, "journal-dir", &opts.journalDir);
    opts.resume = stripSwitch(argc, argv, "resume");
    opts.jobs = stripJobsFlag(argc, argv);
    stripNumberFlag(argc, argv, "exit-after-cells",
                    &opts.exitAfterCells);

    if (argc > 1 || opts.socketPath.empty()) {
        if (argc > 1)
            std::fprintf(stderr, "macrosimd: unexpected argument "
                         "'%s'\n", argv[1]);
        else
            std::fprintf(stderr, "macrosimd: --socket is required\n");
        usage();
        return 2;
    }

    try {
        Daemon daemon(std::move(opts));
        return daemon.run();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "macrosimd: %s\n", e.what());
        return 1;
    }
}
