/**
 * @file
 * End-to-end hot-path throughput bench with a heap-counting hook.
 *
 * Pins three cells to BENCH_hotpath.json (alongside the
 * BENCH_simcore.json flow) so the events/sec trajectory of the
 * allocation-free hot path is tracked across PRs:
 *
 *  - schedule-heavy: the raw schedule/execute path with
 *    deliverAt-sized captures (a Message payload per event), the
 *    pattern every topology's delivery path produces. Steady-state
 *    allocations-per-event is measured with a global operator-new
 *    counter and must be zero: captures live in the event arena's
 *    inline callback storage, never on the heap.
 *  - coherence-steady-state: a closed-loop directory-mode
 *    CoherenceEngine over the point-to-point network, issue/retire
 *    at a fixed outstanding-transaction depth — the txns_/lineLocks_/
 *    outstanding_/directory flat-table path.
 *  - uniform-random: a fig6-style open-loop packet-injector cell at
 *    moderate load, the paper's load-sweep inner loop.
 *
 * --smoke runs reduced rounds and enforces the allocation budget
 * plus a --jobs determinism check (the sweep discipline of
 * test_determinism.cc: per-cell seeds derived from cell identity,
 * results compared for exact equality across jobs counts); it is
 * wired into ctest and meant to run under MACROSIM_SANITIZE=address.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "harness.hh"
#include "net/pt2pt.hh"
#include "sim/random.hh"
#include "sweep.hh"
#include "workloads/coherence.hh"
#include "workloads/packet_injector.hh"

using namespace macrosim;
using namespace macrosim::bench;

// ---------------------------------------------------------------
// Heap-counting hook: every C++ allocation in the process bumps one
// relaxed atomic. The cells snapshot the counter around their
// steady-state region; the smoke test fails if the schedule-heavy
// cell allocates at all per event.
// ---------------------------------------------------------------

namespace
{

std::atomic<std::uint64_t> g_heapAllocs{0};

std::uint64_t
heapAllocs()
{
    return g_heapAllocs.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *)
                                                  : align,
                       size ? size : 1)
        != 0) {
        throw std::bad_alloc();
    }
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

// ---------------------------------------------------------------
// Cell result plumbing
// ---------------------------------------------------------------

struct CellResult
{
    double eventsPerSec = 0.0;
    /** Heap allocations per executed event in the steady state. */
    double allocsPerEvent = 0.0;
};

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Pre-PR baseline (same machine, RelWithDebInfo, commit 718bae9):
 * the coherence-steady-state cell's events/sec before the inline
 * callback + flat-table rework. The JSON reports the current run's
 * speedup against this pin so the >= 1.5x acceptance bar is visible
 * in every run.
 */
/** Pre-PR coherence-steady-state throughput (std::function closures
 *  + node-based unordered_maps), measured on the reference machine
 *  with the same cell parameters. The speedup field in
 *  BENCH_hotpath.json is relative to this pin. */
constexpr double baselineCoherenceEventsPerSec = 2.214137e+06;

// ---------------------------------------------------------------
// Cell 1: schedule-heavy
// ---------------------------------------------------------------

/** Delivery-sized payload: what Network::deliverAt captures. */
struct FatPayload
{
    Message msg;
};

std::uint64_t
scheduleHeavyRound(EventQueue &q, std::uint64_t *sink)
{
    constexpr int events = 4096;
    for (int i = 0; i < events; ++i) {
        FatPayload payload;
        payload.msg.id = static_cast<MessageId>(i);
        payload.msg.bytes = 64;
        q.schedule(q.now() + static_cast<Tick>(i * 7 % 997 + 1),
                   [payload, sink] { *sink += payload.msg.bytes; },
                   "bench.fat");
    }
    q.runUntil();
    return 2 * events; // schedules + executions
}

CellResult
runScheduleHeavy(bool smoke)
{
    EventQueue q;
    std::uint64_t sink = 0;
    // Warm up: grow the arena, the heap and the callback storage to
    // steady-state footprint.
    scheduleHeavyRound(q, &sink);

    const std::uint64_t allocs0 = heapAllocs();
    const Clock::time_point t0 = Clock::now();
    std::uint64_t ops = 0;
    const double target = smoke ? 0.02 : 0.3;
    do {
        for (int i = 0; i < 8; ++i)
            ops += scheduleHeavyRound(q, &sink);
    } while (secondsSince(t0) < target);
    const double seconds = secondsSince(t0);
    const std::uint64_t allocs = heapAllocs() - allocs0;

    CellResult r;
    r.eventsPerSec = static_cast<double>(ops) / seconds;
    r.allocsPerEvent =
        static_cast<double>(allocs) / static_cast<double>(ops);
    return r;
}

// ---------------------------------------------------------------
// Cell 2: coherence-steady-state
// ---------------------------------------------------------------

/**
 * Closed-loop driver: each site keeps a fixed number of accesses
 * outstanding against a working set larger than the aggregate L2, so
 * the engine sits in steady-state issue/retire (misses, directory
 * lookups, data replies, evictions, writebacks) for the whole run.
 */
struct ClosedLoop
{
    Simulator &sim;
    CoherenceEngine &eng;
    Rng rng;
    std::uint64_t remaining;

    /** 2^19 lines (32 MB) >> 64 x 256 KB of L2. */
    static constexpr std::uint64_t workingSetLines = 1u << 19;

    ClosedLoop(Simulator &s, CoherenceEngine &e, std::uint64_t seed,
               std::uint64_t budget)
        : sim(s), eng(e), rng(seed), remaining(budget)
    {}

    void
    issue(SiteId site)
    {
        while (remaining > 0) {
            --remaining;
            const Addr addr = rng.below(workingSetLines) * 64;
            const MemOp op =
                rng.chance(0.3) ? MemOp::Write : MemOp::Read;
            const auto txn = eng.startAccess(
                site, addr, op,
                [this, site](TxnId, Tick) { issue(site); });
            if (txn.has_value())
                return; // the completion callback re-enters
        }
    }
};

CellResult
runCoherenceSteadyState(bool smoke)
{
    const std::uint64_t budget = smoke ? 20000 : 150000;
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    const int rounds = smoke ? 1 : 3;
    for (int round = 0; round < rounds; ++round) {
        Simulator sim(1234 + static_cast<std::uint64_t>(round));
        PointToPointNetwork net(sim, simulatedConfig());
        CoherenceEngine eng(sim, net, /*directory_mode=*/true);
        ClosedLoop loop(sim, eng, 99 + static_cast<std::uint64_t>(round),
                        budget);

        // Prime: 4 outstanding accesses per site, then let the
        // engine reach steady state before the timed region.
        const SiteId sites = net.config().siteCount();
        for (int depth = 0; depth < 4; ++depth) {
            for (SiteId s = 0; s < sites; ++s)
                loop.issue(s);
        }
        sim.run(sim.now() + 40 * tickUs);

        const std::uint64_t ev0 = sim.events().executed();
        const std::uint64_t allocs0 = heapAllocs();
        const Clock::time_point t0 = Clock::now();
        sim.run();
        seconds += secondsSince(t0);
        events += sim.events().executed() - ev0;
        allocs += heapAllocs() - allocs0;
    }

    CellResult r;
    r.eventsPerSec = static_cast<double>(events) / seconds;
    r.allocsPerEvent =
        static_cast<double>(allocs) / static_cast<double>(events);
    return r;
}

// ---------------------------------------------------------------
// Cell 3: uniform-random fig6-style
// ---------------------------------------------------------------

InjectorConfig
uniformCellConfig(double load, std::uint64_t seed, bool smoke)
{
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = load;
    cfg.warmup = (smoke ? 200 : 1000) * tickNs;
    cfg.window = (smoke ? 1000 : 6000) * tickNs;
    cfg.seed = seed;
    return cfg;
}

CellResult
runUniformRandom(bool smoke)
{
    double seconds = 0.0;
    std::uint64_t events = 0;
    const int rounds = smoke ? 1 : 3;
    for (int round = 0; round < rounds; ++round) {
        Simulator sim(777 + static_cast<std::uint64_t>(round));
        PointToPointNetwork net(sim, simulatedConfig());
        const InjectorConfig cfg = uniformCellConfig(
            0.5, deriveSeed(42, "hotpath", "uniform"), smoke);
        const Clock::time_point t0 = Clock::now();
        (void)runOpenLoop(sim, net, cfg);
        seconds += secondsSince(t0);
        events += sim.events().executed();
    }
    CellResult r;
    r.eventsPerSec = static_cast<double>(events) / seconds;
    return r;
}

// ---------------------------------------------------------------
// --jobs determinism check (test_determinism.cc discipline)
// ---------------------------------------------------------------

/** One sweep of fig6-style cells; the simulated results must be a
 *  pure function of each cell's identity, never of the jobs count. */
std::vector<InjectorResult>
uniformSweep(std::size_t jobs)
{
    const double loads[] = {0.2, 0.4, 0.6};
    std::vector<SweepJob<InjectorResult>> cells;
    for (const double load : loads) {
        const std::uint64_t seed = deriveSeed(
            42, "hotpath-cell", std::to_string(load));
        cells.push_back(SweepJob<InjectorResult>{
            "uniform load " + std::to_string(load), [load, seed] {
                Simulator sim(seed);
                PointToPointNetwork net(sim, simulatedConfig());
                return runOpenLoop(
                    sim, net, uniformCellConfig(load, seed, true));
            }});
    }
    return SweepRunner(jobs, /*progress=*/false)
        .run("hotpath-determinism", std::move(cells));
}

bool
identical(const InjectorResult &a, const InjectorResult &b)
{
    return a.offeredLoadPct == b.offeredLoadPct
        && a.meanLatencyNs == b.meanLatencyNs
        && a.maxLatencyNs == b.maxLatencyNs
        && a.p50LatencyNs == b.p50LatencyNs
        && a.p99LatencyNs == b.p99LatencyNs
        && a.deliveredBytesPerNsPerSite == b.deliveredBytesPerNsPerSite
        && a.measuredPackets == b.measuredPackets;
}

bool
checkJobsDeterminism()
{
    const std::vector<InjectorResult> serial = uniformSweep(1);
    const std::vector<InjectorResult> parallel = uniformSweep(3);
    if (serial.size() != parallel.size())
        return false;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (!identical(serial[i], parallel[i])) {
            std::fprintf(stderr,
                         "bench_micro_hotpath: cell %zu differs "
                         "between --jobs 1 and --jobs 3\n",
                         i);
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    installSweepSignalHandlers();
    const bool smoke = stripSwitch(argc, argv, "smoke");

    const CellResult sched = runScheduleHeavy(smoke);
    const CellResult coh = runCoherenceSteadyState(smoke);
    const CellResult uniform = runUniformRandom(smoke);
    const double speedup = baselineCoherenceEventsPerSec > 0.0
        ? coh.eventsPerSec / baselineCoherenceEventsPerSec
        : 0.0;

    char json[640];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"hotpath\","
        "\"schedule_heavy_events_per_sec\":%.6e,"
        "\"schedule_heavy_allocs_per_event\":%.6f,"
        "\"coherence_steady_events_per_sec\":%.6e,"
        "\"coherence_steady_allocs_per_event\":%.6f,"
        "\"uniform_random_events_per_sec\":%.6e,"
        "\"baseline_coherence_steady_events_per_sec\":%.6e,"
        "\"coherence_steady_speedup\":%.3f}",
        sched.eventsPerSec, sched.allocsPerEvent, coh.eventsPerSec,
        coh.allocsPerEvent, uniform.eventsPerSec,
        baselineCoherenceEventsPerSec, speedup);
    std::printf("%s\n", json);
    std::fflush(stdout);
    if (!smoke) {
        if (std::FILE *f = std::fopen("BENCH_hotpath.json", "w")) {
            std::fprintf(f, "%s\n", json);
            std::fclose(f);
        } else {
            std::fprintf(stderr,
                         "bench_micro_hotpath: cannot write "
                         "BENCH_hotpath.json\n");
        }
    }

    bool ok = true;
    if (smoke) {
        // Steady-state allocation budget: the schedule/execute path
        // must not allocate at all once warmed up.
        constexpr double allocBudgetPerEvent = 0.0;
        if (sched.allocsPerEvent > allocBudgetPerEvent) {
            std::fprintf(stderr,
                         "bench_micro_hotpath: schedule-heavy cell "
                         "allocated %.6f times per event "
                         "(budget %.1f)\n",
                         sched.allocsPerEvent, allocBudgetPerEvent);
            ok = false;
        }
        if (!checkJobsDeterminism())
            ok = false;
    }
    if (!ok)
        return 1;
    return sweepExitStatus();
}
