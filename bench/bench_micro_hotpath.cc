/**
 * @file
 * End-to-end hot-path throughput bench with a heap-counting hook.
 *
 * Pins three cells to BENCH_hotpath.json (alongside the
 * BENCH_simcore.json flow) so the events/sec trajectory of the
 * allocation-free hot path is tracked across PRs:
 *
 *  - schedule-heavy: the raw schedule/execute path with
 *    deliverAt-sized captures (a Message payload per event), the
 *    pattern every topology's delivery path produces. Steady-state
 *    allocations-per-event is measured with a global operator-new
 *    counter and must be zero: captures live in the event arena's
 *    inline callback storage, never on the heap.
 *  - coherence-steady-state: a closed-loop directory-mode
 *    CoherenceEngine over the point-to-point network, issue/retire
 *    at a fixed outstanding-transaction depth — the txns_/lineLocks_/
 *    outstanding_/directory flat-table path.
 *  - uniform-random: a fig6-style open-loop packet-injector cell at
 *    moderate load, the paper's load-sweep inner loop.
 *
 * --smoke runs reduced rounds and enforces the allocation budget
 * plus a --jobs determinism check (the sweep discipline of
 * test_determinism.cc: per-cell seeds derived from cell identity,
 * results compared for exact equality across jobs counts); it is
 * wired into ctest and meant to run under MACROSIM_SANITIZE=address.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <new>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fault/injector.hh"
#include "harness.hh"
#include "net/pt2pt.hh"
#include "net/two_phase.hh"
#include "sim/random.hh"
#include "sweep.hh"
#include "workloads/coherence.hh"
#include "workloads/packet_injector.hh"

using namespace macrosim;
using namespace macrosim::bench;

// ---------------------------------------------------------------
// Heap-counting hook: every C++ allocation in the process bumps one
// relaxed atomic. The cells snapshot the counter around their
// steady-state region; the smoke test fails if the schedule-heavy
// cell allocates at all per event.
// ---------------------------------------------------------------

namespace
{

std::atomic<std::uint64_t> g_heapAllocs{0};

std::uint64_t
heapAllocs()
{
    return g_heapAllocs.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *)
                                                  : align,
                       size ? size : 1)
        != 0) {
        throw std::bad_alloc();
    }
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

// ---------------------------------------------------------------
// Cell result plumbing
// ---------------------------------------------------------------

struct CellResult
{
    double eventsPerSec = 0.0;
    /** Heap allocations per executed event in the steady state. */
    double allocsPerEvent = 0.0;
};

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Pre-PR baseline (same machine, RelWithDebInfo, commit 718bae9):
 * the coherence-steady-state cell's events/sec before the inline
 * callback + flat-table rework. The JSON reports the current run's
 * speedup against this pin so the >= 1.5x acceptance bar is visible
 * in every run.
 */
/** Pre-PR coherence-steady-state throughput (std::function closures
 *  + node-based unordered_maps), measured on the reference machine
 *  with the same cell parameters. The speedup field in
 *  BENCH_hotpath.json is relative to this pin. */
constexpr double baselineCoherenceEventsPerSec = 2.214137e+06;

// ---------------------------------------------------------------
// Cell 1: schedule-heavy
// ---------------------------------------------------------------

/** Delivery-sized payload: what Network::deliverAt captures. */
struct FatPayload
{
    Message msg;
};

std::uint64_t
scheduleHeavyRound(EventQueue &q, std::uint64_t *sink)
{
    constexpr int events = 4096;
    for (int i = 0; i < events; ++i) {
        FatPayload payload;
        payload.msg.id = static_cast<MessageId>(i);
        payload.msg.bytes = 64;
        q.schedule(q.now() + static_cast<Tick>(i * 7 % 997 + 1),
                   [payload, sink] { *sink += payload.msg.bytes; },
                   "bench.fat");
    }
    q.runUntil();
    return 2 * events; // schedules + executions
}

CellResult
runScheduleHeavy(bool smoke)
{
    EventQueue q;
    std::uint64_t sink = 0;
    // Warm up: grow the arena, the heap and the callback storage to
    // steady-state footprint.
    scheduleHeavyRound(q, &sink);

    const std::uint64_t allocs0 = heapAllocs();
    const Clock::time_point t0 = Clock::now();
    std::uint64_t ops = 0;
    const double target = smoke ? 0.02 : 0.3;
    do {
        for (int i = 0; i < 8; ++i)
            ops += scheduleHeavyRound(q, &sink);
    } while (secondsSince(t0) < target);
    const double seconds = secondsSince(t0);
    const std::uint64_t allocs = heapAllocs() - allocs0;

    CellResult r;
    r.eventsPerSec = static_cast<double>(ops) / seconds;
    r.allocsPerEvent =
        static_cast<double>(allocs) / static_cast<double>(ops);
    return r;
}

// ---------------------------------------------------------------
// Cell 2: coherence-steady-state
// ---------------------------------------------------------------

/**
 * Closed-loop driver: each site keeps a fixed number of accesses
 * outstanding against a working set larger than the aggregate L2, so
 * the engine sits in steady-state issue/retire (misses, directory
 * lookups, data replies, evictions, writebacks) for the whole run.
 */
struct ClosedLoop
{
    Simulator &sim;
    CoherenceEngine &eng;
    Rng rng;
    std::uint64_t remaining;

    /** 2^19 lines (32 MB) >> 64 x 256 KB of L2. */
    static constexpr std::uint64_t workingSetLines = 1u << 19;

    ClosedLoop(Simulator &s, CoherenceEngine &e, std::uint64_t seed,
               std::uint64_t budget)
        : sim(s), eng(e), rng(seed), remaining(budget)
    {}

    void
    issue(SiteId site)
    {
        while (remaining > 0) {
            --remaining;
            const Addr addr = rng.below(workingSetLines) * 64;
            const MemOp op =
                rng.chance(0.3) ? MemOp::Write : MemOp::Read;
            const auto txn = eng.startAccess(
                site, addr, op,
                [this, site](TxnId, Tick) { issue(site); });
            if (txn.has_value())
                return; // the completion callback re-enters
        }
    }
};

CellResult
runCoherenceSteadyState(bool smoke)
{
    const std::uint64_t budget = smoke ? 20000 : 150000;
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    const int rounds = smoke ? 1 : 3;
    for (int round = 0; round < rounds; ++round) {
        Simulator sim(1234 + static_cast<std::uint64_t>(round));
        PointToPointNetwork net(sim, simulatedConfig());
        CoherenceEngine eng(sim, net, /*directory_mode=*/true);
        ClosedLoop loop(sim, eng, 99 + static_cast<std::uint64_t>(round),
                        budget);

        // Prime: 4 outstanding accesses per site, then let the
        // engine reach steady state before the timed region.
        const SiteId sites = net.config().siteCount();
        for (int depth = 0; depth < 4; ++depth) {
            for (SiteId s = 0; s < sites; ++s)
                loop.issue(s);
        }
        sim.run(sim.now() + 40 * tickUs);

        const std::uint64_t ev0 = sim.events().executed();
        const std::uint64_t allocs0 = heapAllocs();
        const Clock::time_point t0 = Clock::now();
        sim.run();
        seconds += secondsSince(t0);
        events += sim.events().executed() - ev0;
        allocs += heapAllocs() - allocs0;
    }

    CellResult r;
    r.eventsPerSec = static_cast<double>(events) / seconds;
    r.allocsPerEvent =
        static_cast<double>(allocs) / static_cast<double>(events);
    return r;
}

// ---------------------------------------------------------------
// Cell 3: uniform-random fig6-style
// ---------------------------------------------------------------

InjectorConfig
uniformCellConfig(double load, std::uint64_t seed, bool smoke)
{
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = load;
    cfg.warmup = (smoke ? 200 : 1000) * tickNs;
    cfg.window = (smoke ? 1000 : 6000) * tickNs;
    cfg.seed = seed;
    return cfg;
}

CellResult
runUniformRandom(bool smoke)
{
    double seconds = 0.0;
    std::uint64_t events = 0;
    const int rounds = smoke ? 1 : 3;
    for (int round = 0; round < rounds; ++round) {
        Simulator sim(777 + static_cast<std::uint64_t>(round));
        PointToPointNetwork net(sim, simulatedConfig());
        const InjectorConfig cfg = uniformCellConfig(
            0.5, deriveSeed(42, "hotpath", "uniform"), smoke);
        const Clock::time_point t0 = Clock::now();
        (void)runOpenLoop(sim, net, cfg);
        seconds += secondsSince(t0);
        events += sim.events().executed();
    }
    CellResult r;
    r.eventsPerSec = static_cast<double>(events) / seconds;
    return r;
}

// ---------------------------------------------------------------
// Cells 4-6: scalar vs batched execution of the per-tick inner
// loops (see DESIGN.md section 14). The scalar side reproduces the
// pre-batch implementation end to end — per-event InlineCallbacks
// over the old AoS layout (fat per-channel objects, deque-of-Waiter
// arbiters, per-link OpticalPath math) — while the batched side
// runs the SoA kernels the subsystems now ship with. Both compute
// bit-identical results (checksummed); the speedup pins the
// combined layout + dispatch win.
// ---------------------------------------------------------------

/** Scalar vs batched throughput of one scenario. */
struct BatchCellResult
{
    double scalarEventsPerSec = 0.0;
    double batchedEventsPerSec = 0.0;
    /** Heap allocations per event, batched steady state. */
    double allocsPerEvent = 0.0;
    /** Work checksums; scalar and batched must agree exactly. */
    std::uint64_t scalarSink = 0;
    std::uint64_t batchedSink = 0;

    double
    speedup() const
    {
        return scalarEventsPerSec > 0.0
            ? batchedEventsPerSec / scalarEventsPerSec
            : 0.0;
    }
};

/**
 * Arbitration-sweep: the two-phase slot-evaluation pattern. 512
 * shared channels split into 64 groups of eight candidates; every
 * event scans its message's group for the earliest-free channel and
 * reserves it with the BusyResource::reserve() arithmetic. The
 * scalar side walks fat cache-line-sized channel objects (the
 * pre-SoA DataChannel layout) from per-event callbacks; the batched
 * side scans flat busy-until lanes from the drained kernel, with
 * the pending Message parked in a pool and a 4-byte index shipped
 * as the payload. Identical arithmetic, identical winners.
 */
struct ArbSweepState
{
    static constexpr std::uint32_t channels = 512;
    static constexpr std::uint32_t groupSize = 8;
    static constexpr std::uint32_t groups = channels / groupSize;

    /** The pre-SoA per-channel object: busy window plus the stat
     *  fields that rode along in one 64-byte line. */
    struct alignas(64) FatChannel
    {
        Tick busyUntil = 0;
        Tick busyTicks = 0;
        std::uint64_t reservations = 0;
        std::uint64_t bytesCarried = 0;
        std::uint32_t wavelengths = 128;
        std::uint32_t active = 128;
        Tick lastStart = 0;
    };
    std::vector<FatChannel> fat;

    // The SoA replacement: one hot lane the candidate scan touches,
    // cold stat lanes written only for the winner.
    std::vector<Tick> busyUntil;
    std::vector<Tick> busyTicks;
    std::vector<std::uint64_t> reservations;
    std::vector<std::uint64_t> bytesCarried;
    std::vector<Tick> lastStart;

    std::vector<Message> pool;
    std::vector<std::uint32_t> free;
    std::uint64_t sink = 0;

    ArbSweepState()
        : fat(channels), busyUntil(channels, 0),
          busyTicks(channels, 0), reservations(channels, 0),
          bytesCarried(channels, 0), lastStart(channels, 0)
    {}

    static std::uint32_t
    groupOf(const Message &msg)
    {
        return (static_cast<std::uint32_t>(msg.src) * 61
                + static_cast<std::uint32_t>(msg.dst))
            % groups;
    }

    void
    evaluateAoS(Tick now, const Message &msg)
    {
        const std::size_t base =
            static_cast<std::size_t>(groupOf(msg)) * groupSize;
        std::uint32_t best_i = 0;
        Tick best = fat[base].busyUntil;
        for (std::uint32_t i = 1; i < groupSize; ++i) {
            if (fat[base + i].busyUntil < best) {
                best = fat[base + i].busyUntil;
                best_i = i;
            }
        }
        FatChannel &ch = fat[base + best_i];
        const Tick ser = 1 + msg.bytes / 320;
        const Tick start = now > best ? now : best;
        ch.busyUntil = start + ser;
        ch.busyTicks += ser;
        ch.reservations += 1;
        ch.bytesCarried += msg.bytes;
        ch.lastStart = start;
        sink += static_cast<std::uint64_t>(start) + base + best_i;
    }

    void
    evaluateSoA(Tick now, const Message &msg)
    {
        const std::size_t base =
            static_cast<std::size_t>(groupOf(msg)) * groupSize;
        std::uint32_t best_i = 0;
        Tick best = busyUntil[base];
        for (std::uint32_t i = 1; i < groupSize; ++i) {
            if (busyUntil[base + i] < best) {
                best = busyUntil[base + i];
                best_i = i;
            }
        }
        const std::size_t ch = base + best_i;
        const Tick ser = 1 + msg.bytes / 320;
        const Tick start = now > best ? now : best;
        busyUntil[ch] = start + ser;
        busyTicks[ch] += ser;
        reservations[ch] += 1;
        bytesCarried[ch] += msg.bytes;
        lastStart[ch] = start;
        sink += static_cast<std::uint64_t>(start) + ch;
    }
};

std::uint64_t
arbSweepRound(EventQueue &q, ArbSweepState &st, bool batched,
              std::uint16_t kernel)
{
    constexpr int events = 4096;
    const Tick base = q.now();
    for (int i = 0; i < events; ++i) {
        Message msg;
        msg.src = static_cast<SiteId>(i % 64);
        msg.dst = static_cast<SiteId>((i * 7) % 64);
        msg.bytes = 64;
        // ~64 same-tick events per tick: figure-6-like burst shape.
        const Tick when = base + static_cast<Tick>(i / 64 + 1);
        if (batched) {
            std::uint32_t idx;
            if (!st.free.empty()) {
                idx = st.free.back();
                st.free.pop_back();
            } else {
                idx = static_cast<std::uint32_t>(st.pool.size());
                st.pool.emplace_back();
            }
            st.pool[idx] = msg;
            q.scheduleBatch(when, kernel, idx);
        } else {
            q.schedule(
                when,
                [&st, msg, when] { st.evaluateAoS(when, msg); },
                "bench.arb");
        }
    }
    q.runUntil();
    return events;
}

std::uint16_t
registerArbKernel(EventQueue &q, ArbSweepState &st)
{
    return q.registerBatchKernel(
        "bench.arb",
        [](void *ctx, Tick when, const std::uint32_t *payloads,
           std::size_t n) {
            auto *s = static_cast<ArbSweepState *>(ctx);
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t idx = payloads[i];
                const Message msg = s->pool[idx];
                s->free.push_back(idx);
                s->evaluateSoA(when, msg);
            }
        },
        &st);
}

BatchCellResult
runArbitrationSweep(bool smoke)
{
    BatchCellResult r;
    const double target = smoke ? 0.02 : 0.25;

    // Differential phase: a fixed round count on fresh state; the
    // two dispatch modes must produce the same work checksum.
    for (const bool batched : {false, true}) {
        EventQueue q;
        ArbSweepState st;
        const std::uint16_t kernel = registerArbKernel(q, st);
        for (int i = 0; i < 4; ++i)
            arbSweepRound(q, st, batched, kernel);
        (batched ? r.batchedSink : r.scalarSink) = st.sink;
    }

    for (const bool batched : {false, true}) {
        EventQueue q;
        ArbSweepState st;
        const std::uint16_t kernel = registerArbKernel(q, st);
        arbSweepRound(q, st, batched, kernel); // warm-up
        const std::uint64_t allocs0 = heapAllocs();
        const Clock::time_point t0 = Clock::now();
        std::uint64_t ops = 0;
        do {
            for (int i = 0; i < 8; ++i)
                ops += arbSweepRound(q, st, batched, kernel);
        } while (secondsSince(t0) < target);
        const double seconds = secondsSince(t0);
        const double rate = static_cast<double>(ops) / seconds;
        if (batched) {
            r.batchedEventsPerSec = rate;
            r.allocsPerEvent = static_cast<double>(heapAllocs()
                                                   - allocs0)
                / static_cast<double>(ops);
        } else {
            r.scalarEventsPerSec = rate;
        }
    }
    return r;
}

/**
 * Grant-scan: the token-ring pattern. 64 destination arbiters, each
 * with an eight-deep waiter queue; every grant event scans its
 * queue for the earliest token arrival (the armGrant() loop) and
 * rotates the token to the winner. The scalar side keeps the
 * pre-SoA Arbiter — a std::deque<Waiter> with a full Message
 * embedded in every entry, indexed per waiter exactly like the old
 * armGrant() — while the batched side scans the flat ready /
 * ring-position lanes the crossbar now keeps, with the destination
 * id riding the drain as payload. Identical arithmetic, identical
 * winners.
 */
struct GrantScanState
{
    static constexpr std::uint32_t dsts = 64;
    static constexpr std::uint32_t depth = 8;

    /** The pre-SoA waiter: the queued packet rides in the arbiter. */
    struct Waiter
    {
        Message msg;
        Tick ready = 0;
    };

    /** The pre-SoA per-destination arbiter. */
    struct Arbiter
    {
        std::uint32_t tokenPos = 0;
        Tick tokenFree = 0;
        std::deque<Waiter> waiting;
    };
    std::vector<Arbiter> arb;

    // The SoA replacement: token state and waiter lanes, flat.
    std::vector<Tick> tokenFree;
    std::vector<std::uint32_t> tokenPos;
    std::vector<Tick> wReady;
    std::vector<std::uint32_t> wSrcPos;
    std::uint64_t sink = 0;

    GrantScanState()
        : arb(dsts), tokenFree(dsts, 0), tokenPos(dsts, 0),
          wReady(static_cast<std::size_t>(dsts) * depth, 0),
          wSrcPos(static_cast<std::size_t>(dsts) * depth, 0)
    {
        for (std::uint32_t d = 0; d < dsts; ++d) {
            for (std::uint32_t k = 0; k < depth; ++k) {
                const std::size_t i =
                    static_cast<std::size_t>(d) * depth + k;
                wSrcPos[i] = static_cast<std::uint32_t>((i * 13)
                                                        % 64);
                wReady[i] = static_cast<Tick>(i % 29);
                Waiter w;
                w.msg.src = static_cast<SiteId>(wSrcPos[i]);
                w.msg.dst = static_cast<SiteId>(d);
                w.msg.bytes = 64;
                w.ready = wReady[i];
                arb[d].waiting.push_back(w);
            }
        }
    }

    void
    scanAoS(Tick now, std::uint32_t dst)
    {
        // The pre-SoA armGrant() loop: index the deque per waiter
        // and chase the embedded Message for the ring position.
        Arbiter &a = arb[dst];
        Tick best = maxTick;
        std::uint32_t best_i = 0;
        for (std::uint32_t i = 0; i < depth; ++i) {
            const Waiter &w = a.waiting[i];
            const std::uint32_t pos =
                static_cast<std::uint32_t>(w.msg.src);
            const std::uint32_t hops =
                ((pos + 64 - a.tokenPos - 1) % 64) + 1;
            Tick arrival = a.tokenFree + hops * 2;
            const Tick ready = now + w.ready;
            if (arrival < ready)
                arrival = ready;
            if (arrival < best) {
                best = arrival;
                best_i = i;
            }
        }
        a.tokenPos =
            static_cast<std::uint32_t>(a.waiting[best_i].msg.src);
        a.tokenFree = best + 1;
        sink += static_cast<std::uint64_t>(best) + best_i;
    }

    void
    scanSoA(Tick now, std::uint32_t dst)
    {
        // Same loop over the flat lanes: earliest token passage,
        // strict < tie-break in arrival order.
        Tick best = maxTick;
        std::uint32_t best_i = 0;
        const std::size_t base =
            static_cast<std::size_t>(dst) * depth;
        for (std::uint32_t i = 0; i < depth; ++i) {
            const std::uint32_t hops =
                ((wSrcPos[base + i] + 64 - tokenPos[dst] - 1) % 64)
                + 1;
            Tick arrival = tokenFree[dst] + hops * 2;
            const Tick ready = now + wReady[base + i];
            if (arrival < ready)
                arrival = ready;
            if (arrival < best) {
                best = arrival;
                best_i = i;
            }
        }
        tokenPos[dst] = wSrcPos[base + best_i];
        tokenFree[dst] = best + 1;
        sink += static_cast<std::uint64_t>(best) + best_i;
    }
};

std::uint64_t
grantScanRound(EventQueue &q, GrantScanState &st, bool batched,
               std::uint16_t kernel)
{
    constexpr int rounds = 64;
    const Tick base = q.now();
    for (int t = 0; t < rounds; ++t) {
        const Tick when = base + static_cast<Tick>(t + 1);
        for (std::uint32_t dst = 0; dst < GrantScanState::dsts;
             ++dst) {
            if (batched) {
                q.scheduleBatch(when, kernel, dst);
            } else {
                q.schedule(
                    when,
                    [&st, dst, when] { st.scanAoS(when, dst); },
                    "bench.grant");
            }
        }
    }
    q.runUntil();
    return static_cast<std::uint64_t>(rounds) * GrantScanState::dsts;
}

std::uint16_t
registerGrantKernel(EventQueue &q, GrantScanState &st)
{
    return q.registerBatchKernel(
        "bench.grant",
        [](void *ctx, Tick when, const std::uint32_t *payloads,
           std::size_t n) {
            auto *s = static_cast<GrantScanState *>(ctx);
            for (std::size_t i = 0; i < n; ++i)
                s->scanSoA(when, payloads[i]);
        },
        &st);
}

BatchCellResult
runGrantScan(bool smoke)
{
    BatchCellResult r;
    const double target = smoke ? 0.02 : 0.25;

    for (const bool batched : {false, true}) {
        EventQueue q;
        GrantScanState st;
        const std::uint16_t kernel = registerGrantKernel(q, st);
        for (int i = 0; i < 4; ++i)
            grantScanRound(q, st, batched, kernel);
        (batched ? r.batchedSink : r.scalarSink) = st.sink;
    }

    for (const bool batched : {false, true}) {
        EventQueue q;
        GrantScanState st;
        const std::uint16_t kernel = registerGrantKernel(q, st);
        grantScanRound(q, st, batched, kernel); // warm-up
        const std::uint64_t allocs0 = heapAllocs();
        const Clock::time_point t0 = Clock::now();
        std::uint64_t ops = 0;
        do {
            for (int i = 0; i < 8; ++i)
                ops += grantScanRound(q, st, batched, kernel);
        } while (secondsSince(t0) < target);
        const double seconds = secondsSince(t0);
        const double rate = static_cast<double>(ops) / seconds;
        if (batched) {
            r.batchedEventsPerSec = rate;
            r.allocsPerEvent = static_cast<double>(heapAllocs()
                                                   - allocs0)
                / static_cast<double>(ops);
        } else {
            r.scalarEventsPerSec = rate;
        }
    }
    return r;
}

/**
 * Fault-margin-sweep: FaultInjector::sweepMargins() over every
 * faultable link of the full 8x8 two-phase topology, scalar object
 * path (an OpticalPath copy per link) vs the flat lane pass. An
 * "event" is one link margin re-evaluation.
 */
BatchCellResult
runFaultMarginSweep(bool smoke)
{
    BatchCellResult r;
    const double target = smoke ? 0.02 : 0.25;
    Simulator sim(11);
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    FaultInjector inj(sim, net, FaultSchedule{});
    // Degrade a spread of lanes so the sweep folds nonzero terms.
    const auto links = net.faultableLinks();
    for (std::size_t i = 0; i < links.size(); i += 3) {
        FaultEvent ev;
        ev.kind = FaultKind::WaveguideCreep;
        ev.target =
            FaultTarget::channel(links[i].first, links[i].second);
        ev.magnitudeDb = 0.25 + static_cast<double>(i % 7) * 0.05;
        inj.apply(ev);
    }
    const std::uint64_t linksPerSweep = inj.trackedLinks();

    for (const bool batched : {false, true}) {
        inj.setBatching(batched);
        double min_db = inj.sweepMargins(); // warm-up
        const std::uint64_t allocs0 = heapAllocs();
        const Clock::time_point t0 = Clock::now();
        std::uint64_t ops = 0;
        do {
            for (int i = 0; i < 16; ++i) {
                min_db = inj.sweepMargins();
                ops += linksPerSweep;
            }
        } while (secondsSince(t0) < target);
        const double seconds = secondsSince(t0);
        const double rate = static_cast<double>(ops) / seconds;
        // The sweep is a pure function of the (unchanging) lanes, so
        // the min margin's bit pattern is the differential checksum.
        std::uint64_t bits;
        std::memcpy(&bits, &min_db, sizeof(bits));
        if (batched) {
            r.batchedEventsPerSec = rate;
            r.batchedSink = bits;
            r.allocsPerEvent = static_cast<double>(heapAllocs()
                                                   - allocs0)
                / static_cast<double>(ops);
        } else {
            r.scalarEventsPerSec = rate;
            r.scalarSink = bits;
        }
    }
    return r;
}

// ---------------------------------------------------------------
// --jobs determinism check (test_determinism.cc discipline)
// ---------------------------------------------------------------

/** One sweep of fig6-style cells; the simulated results must be a
 *  pure function of each cell's identity, never of the jobs count. */
std::vector<InjectorResult>
uniformSweep(std::size_t jobs)
{
    const double loads[] = {0.2, 0.4, 0.6};
    std::vector<SweepJob<InjectorResult>> cells;
    for (const double load : loads) {
        const std::uint64_t seed = deriveSeed(
            42, "hotpath-cell", std::to_string(load));
        cells.push_back(SweepJob<InjectorResult>{
            "uniform load " + std::to_string(load), [load, seed] {
                Simulator sim(seed);
                PointToPointNetwork net(sim, simulatedConfig());
                return runOpenLoop(
                    sim, net, uniformCellConfig(load, seed, true));
            }});
    }
    return SweepRunner(jobs, /*progress=*/false)
        .run("hotpath-determinism", std::move(cells));
}

bool
identical(const InjectorResult &a, const InjectorResult &b)
{
    return a.offeredLoadPct == b.offeredLoadPct
        && a.meanLatencyNs == b.meanLatencyNs
        && a.maxLatencyNs == b.maxLatencyNs
        && a.p50LatencyNs == b.p50LatencyNs
        && a.p99LatencyNs == b.p99LatencyNs
        && a.deliveredBytesPerNsPerSite == b.deliveredBytesPerNsPerSite
        && a.measuredPackets == b.measuredPackets;
}

bool
checkJobsDeterminism()
{
    const std::vector<InjectorResult> serial = uniformSweep(1);
    const std::vector<InjectorResult> parallel = uniformSweep(3);
    if (serial.size() != parallel.size())
        return false;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (!identical(serial[i], parallel[i])) {
            std::fprintf(stderr,
                         "bench_micro_hotpath: cell %zu differs "
                         "between --jobs 1 and --jobs 3\n",
                         i);
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    installSweepSignalHandlers();
    const bool smoke = stripSwitch(argc, argv, "smoke");

    // --batch-smoke: only the scalar-vs-batched scenarios, with the
    // differential checksum and allocation checks — the fast ctest
    // entry meant to also run under TSan and UBSan configurations.
    if (stripSwitch(argc, argv, "batch-smoke")) {
        const BatchCellResult cells[] = {runArbitrationSweep(true),
                                         runGrantScan(true),
                                         runFaultMarginSweep(true)};
        const char *names[] = {"arbitration-sweep", "grant-scan",
                               "fault-margin-sweep"};
        bool batch_ok = true;
        for (int i = 0; i < 3; ++i) {
            std::printf("%s: scalar %.3e ev/s, batched %.3e ev/s "
                        "(%.2fx)\n",
                        names[i], cells[i].scalarEventsPerSec,
                        cells[i].batchedEventsPerSec,
                        cells[i].speedup());
            if (cells[i].scalarSink != cells[i].batchedSink) {
                std::fprintf(stderr,
                             "bench_micro_hotpath: %s checksum "
                             "diverges between scalar and batched "
                             "dispatch\n",
                             names[i]);
                batch_ok = false;
            }
            if (cells[i].allocsPerEvent > 0.0) {
                std::fprintf(stderr,
                             "bench_micro_hotpath: %s batched cell "
                             "allocated %.6f times per event\n",
                             names[i], cells[i].allocsPerEvent);
                batch_ok = false;
            }
        }
        return batch_ok ? 0 : 1;
    }

    const CellResult sched = runScheduleHeavy(smoke);
    const CellResult coh = runCoherenceSteadyState(smoke);
    const CellResult uniform = runUniformRandom(smoke);
    const BatchCellResult arb = runArbitrationSweep(smoke);
    const BatchCellResult grant = runGrantScan(smoke);
    const BatchCellResult margin = runFaultMarginSweep(smoke);
    const double speedup = baselineCoherenceEventsPerSec > 0.0
        ? coh.eventsPerSec / baselineCoherenceEventsPerSec
        : 0.0;

    char json[1536];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"hotpath\","
        "\"schedule_heavy_events_per_sec\":%.6e,"
        "\"schedule_heavy_allocs_per_event\":%.6f,"
        "\"coherence_steady_events_per_sec\":%.6e,"
        "\"coherence_steady_allocs_per_event\":%.6f,"
        "\"uniform_random_events_per_sec\":%.6e,"
        "\"baseline_coherence_steady_events_per_sec\":%.6e,"
        "\"coherence_steady_speedup\":%.3f,"
        "\"arbitration_sweep_scalar_events_per_sec\":%.6e,"
        "\"arbitration_sweep_batched_events_per_sec\":%.6e,"
        "\"arbitration_sweep_speedup\":%.3f,"
        "\"grant_scan_scalar_events_per_sec\":%.6e,"
        "\"grant_scan_batched_events_per_sec\":%.6e,"
        "\"grant_scan_speedup\":%.3f,"
        "\"fault_margin_sweep_scalar_links_per_sec\":%.6e,"
        "\"fault_margin_sweep_batched_links_per_sec\":%.6e,"
        "\"fault_margin_sweep_speedup\":%.3f}",
        sched.eventsPerSec, sched.allocsPerEvent, coh.eventsPerSec,
        coh.allocsPerEvent, uniform.eventsPerSec,
        baselineCoherenceEventsPerSec, speedup,
        arb.scalarEventsPerSec, arb.batchedEventsPerSec,
        arb.speedup(), grant.scalarEventsPerSec,
        grant.batchedEventsPerSec, grant.speedup(),
        margin.scalarEventsPerSec, margin.batchedEventsPerSec,
        margin.speedup());
    std::printf("%s\n", json);
    std::fflush(stdout);
    if (!smoke) {
        if (std::FILE *f = std::fopen("BENCH_hotpath.json", "w")) {
            std::fprintf(f, "%s\n", json);
            std::fclose(f);
        } else {
            std::fprintf(stderr,
                         "bench_micro_hotpath: cannot write "
                         "BENCH_hotpath.json\n");
        }
    }

    bool ok = true;
    if (smoke) {
        // Steady-state allocation budget: the schedule/execute path
        // must not allocate at all once warmed up.
        constexpr double allocBudgetPerEvent = 0.0;
        if (sched.allocsPerEvent > allocBudgetPerEvent) {
            std::fprintf(stderr,
                         "bench_micro_hotpath: schedule-heavy cell "
                         "allocated %.6f times per event "
                         "(budget %.1f)\n",
                         sched.allocsPerEvent, allocBudgetPerEvent);
            ok = false;
        }
        // The batched dispatch scenarios must match their scalar
        // references exactly — same work, same checksum — and stay
        // allocation-free in the batched steady state.
        const struct
        {
            const char *name;
            const BatchCellResult *cell;
        } scenarios[] = {{"arbitration-sweep", &arb},
                         {"grant-scan", &grant},
                         {"fault-margin-sweep", &margin}};
        for (const auto &[name, cell] : scenarios) {
            if (cell->scalarSink != cell->batchedSink) {
                std::fprintf(stderr,
                             "bench_micro_hotpath: %s checksum "
                             "diverges between scalar and batched "
                             "dispatch\n",
                             name);
                ok = false;
            }
            if (cell->allocsPerEvent > allocBudgetPerEvent) {
                std::fprintf(stderr,
                             "bench_micro_hotpath: %s batched cell "
                             "allocated %.6f times per event "
                             "(budget %.1f)\n",
                             name, cell->allocsPerEvent,
                             allocBudgetPerEvent);
                ok = false;
            }
        }
        if (!checkJobsDeterminism())
            ok = false;
    }
    if (!ok)
        return 1;
    return sweepExitStatus();
}
