#include "flags.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/sweep.hh"

namespace macrosim::bench
{

namespace
{

/**
 * Strict unsigned parse shared by every numeric flag: the whole
 * string must be one non-negative integer (any strtoull base).
 * Rejects what strtoull quietly accepts — empty strings, trailing
 * garbage ("4x"), negative values (which strtoull wraps), leading
 * whitespace — and out-of-range values uniformly, all via fatal()
 * naming the offending flag.
 */
std::uint64_t
parseUnsignedOrFatal(const char *what, const std::string &text)
{
    const char *s = text.c_str();
    if (*s == '\0' || std::isspace(static_cast<unsigned char>(*s))
        || *s == '-' || *s == '+') {
        fatal(what, " must be an unsigned integer, got '", text, "'");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal(what, " must be an unsigned integer, got '", text, "'");
    if (errno == ERANGE)
        fatal(what, " is out of range, got '", text, "'");
    return static_cast<std::uint64_t>(v);
}

} // namespace

bool
stripValueFlag(int &argc, char **argv, const char *name,
               std::string *value)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        int consumed = 0;
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size())
            == 0) {
            *value = argv[i] + prefix.size();
            consumed = 1;
        } else if (std::strcmp(argv[i],
                               (std::string("--") + name).c_str())
                       == 0
                   && i + 1 < argc) {
            *value = argv[i + 1];
            consumed = 2;
        } else {
            continue;
        }
        for (int j = i; j + consumed <= argc; ++j)
            argv[j] = argv[j + consumed];
        argc -= consumed;
        return true;
    }
    return false;
}

bool
stripSwitch(int &argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag.c_str()) != 0)
            continue;
        for (int j = i; j + 1 <= argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return true;
    }
    return false;
}

bool
stripNumberFlag(int &argc, char **argv, const char *name,
                std::uint64_t *value)
{
    std::string text;
    if (!stripValueFlag(argc, argv, name, &text))
        return false;
    *value = parseUnsignedOrFatal(
        (std::string("--") + name).c_str(), text);
    return true;
}

std::size_t
stripJobsFlag(int &argc, char **argv)
{
    std::uint64_t v = 0;
    if (!stripNumberFlag(argc, argv, "jobs", &v))
        return 0;
    return static_cast<std::size_t>(v);
}

std::size_t
jobsArg(int &argc, char **argv)
{
    return stripJobsFlag(argc, argv);
}

std::uint64_t
seedArg(int &argc, char **argv, std::uint64_t fallback)
{
    std::string text;
    if (!stripValueFlag(argc, argv, "seed", &text)) {
        const char *env = std::getenv("MACROSIM_SEED");
        if (env == nullptr || *env == '\0')
            return fallback;
        text = env;
    }
    return parseUnsignedOrFatal("seedArg: --seed / MACROSIM_SEED",
                                text);
}

namespace
{

/** Set by simStatsArg(); the env fallback is evaluated lazily. */
bool simStatsFlag = false;

bool
simStatsEnv()
{
    const char *env = std::getenv("MACROSIM_SIM_STATS");
    return env != nullptr && *env != '\0'
           && std::strcmp(env, "0") != 0;
}

} // namespace

bool
simStatsArg(int &argc, char **argv)
{
    if (stripSwitch(argc, argv, "sim-stats"))
        simStatsFlag = true;
    return simStatsEnabled();
}

bool
simStatsEnabled()
{
    return simStatsFlag || simStatsEnv();
}

TelemetryOptions
telemetryArgs(int &argc, char **argv)
{
    TelemetryOptions opts;
    stripValueFlag(argc, argv, "trace", &opts.tracePath);
    stripValueFlag(argc, argv, "metrics", &opts.metricsPath);
    std::string period;
    if (stripValueFlag(argc, argv, "metrics-period", &period)) {
        const std::uint64_t v =
            parseUnsignedOrFatal("--metrics-period", period);
        if (v == 0)
            fatal("telemetryArgs: --metrics-period must be a "
                  "positive tick count, got '", period, "'");
        opts.metricsPeriod = static_cast<Tick>(v);
    }
    opts.profile = stripSwitch(argc, argv, "profile");
    opts.smoke = stripSwitch(argc, argv, "smoke");
    return opts;
}

BenchFlags
benchFlags(int &argc, char **argv, std::uint64_t seed_fallback)
{
    installSweepSignalHandlers();
    BenchFlags flags;
    flags.jobs = jobsArg(argc, argv);
    flags.simStats = simStatsArg(argc, argv);
    flags.seed = seedArg(argc, argv, seed_fallback);
    flags.telemetry = telemetryArgs(argc, argv);
    return flags;
}

namespace
{

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > pos)
            out.push_back(text.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

service::CampaignSpec
campaignArgs(int &argc, char **argv)
{
    service::CampaignSpec spec;
    if (stripSwitch(argc, argv, "smoke"))
        spec = service::CampaignSpec::smokeInjector();

    std::string text;
    if (stripValueFlag(argc, argv, "kind", &text)) {
        if (text == "injector")
            spec.kind = service::CampaignKind::InjectorSweep;
        else if (text == "matrix")
            spec.kind = service::CampaignKind::WorkloadMatrix;
        else
            fatal("--kind must be 'injector' or 'matrix', got '",
                  text, "'");
    }
    if (stripValueFlag(argc, argv, "patterns", &text))
        spec.patterns = splitList(text);
    if (stripValueFlag(argc, argv, "networks", &text)) {
        spec.networks.clear();
        for (const std::string &name : splitList(text)) {
            service::NetSel net;
            if (!service::netFromString(name, &net))
                fatal("--networks: unknown network '", name, "'");
            spec.networks.push_back(net);
        }
    }
    if (stripValueFlag(argc, argv, "loads", &text)) {
        spec.loads.clear();
        for (const std::string &item : splitList(text)) {
            errno = 0;
            char *end = nullptr;
            const double v = std::strtod(item.c_str(), &end);
            if (errno != 0 || end == item.c_str() || *end != '\0'
                || !std::isfinite(v) || v < 0.0)
                fatal("--loads: bad load fraction '", item, "'");
            spec.loads.push_back(v);
        }
    }
    stripNumberFlag(argc, argv, "warmup-ns", &spec.warmupNs);
    stripNumberFlag(argc, argv, "window-ns", &spec.windowNs);
    stripNumberFlag(argc, argv, "instr", &spec.instructionsPerCore);
    if (stripValueFlag(argc, argv, "workloads", &text))
        spec.workloads = splitList(text);
    if (stripSwitch(argc, argv, "cell-stats"))
        spec.emitCellStats = true;
    spec.seed = seedArg(argc, argv, spec.seed);
    return spec;
}

} // namespace macrosim::bench
