#include "sweep.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace macrosim::bench
{

namespace
{

std::mutex logMutex;

} // namespace

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("MACROSIM_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::size_t
stripJobsFlag(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        long v = 0;
        int consumed = 0;
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            v = std::atol(argv[i] + 7);
            consumed = 1;
        } else if (std::strcmp(argv[i], "--jobs") == 0
                   && i + 1 < argc) {
            v = std::atol(argv[i + 1]);
            consumed = 2;
        } else {
            continue;
        }
        for (int j = i; j + consumed <= argc; ++j)
            argv[j] = argv[j + consumed];
        argc -= consumed;
        return v > 0 ? static_cast<std::size_t>(v) : 0;
    }
    return 0;
}

void
sweepLog(const std::string &line)
{
    std::lock_guard<std::mutex> lock(logMutex);
    std::fprintf(stderr, "%s\n", line.c_str());
}

SweepRunner::SweepRunner(std::size_t jobs, bool progress)
    : jobs_(jobs > 0 ? jobs : defaultJobs()), progress_(progress)
{}

void
SweepRunner::beginSweep(std::size_t total,
                        std::chrono::steady_clock::time_point start)
{
    std::lock_guard<std::mutex> lock(logMutex);
    total_ = total;
    done_ = 0;
    sweepStart_ = start;
}

void
SweepRunner::noteJobDone(const std::string &label, double ns,
                         double *busy_ns)
{
    std::lock_guard<std::mutex> lock(logMutex);
    *busy_ns += ns;
    ++done_;
    if (!progress_)
        return;
    // ETA from wall elapsed / cells finished: cells complete in the
    // same ratio no matter how many workers run them, so the estimate
    // holds for any --jobs value.
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - sweepStart_)
            .count();
    const double eta_s = done_ < total_
        ? elapsed_s / static_cast<double>(done_)
            * static_cast<double>(total_ - done_)
        : 0.0;
    std::fprintf(stderr, "  [job %zu/%zu] %s: %.1f ms (eta %.1f s)\n",
                 done_, total_, label.c_str(), ns * 1e-6, eta_s);
}

void
SweepRunner::noteSweepDone(const std::string &name, std::size_t count,
                           double wall_ns, double busy_ns)
{
    if (!progress_)
        return;
    std::lock_guard<std::mutex> lock(logMutex);
    std::fprintf(stderr,
                 "[sweep] %s: %zu jobs on %zu threads, %.1f ms wall, "
                 "%.1f ms cpu, speedup %.2fx\n",
                 name.c_str(), count, jobs_, wall_ns * 1e-6,
                 busy_ns * 1e-6,
                 wall_ns > 0.0 ? busy_ns / wall_ns : 0.0);
}

} // namespace macrosim::bench
