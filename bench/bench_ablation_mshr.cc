/**
 * @file
 * Ablation: MSHRs per core — the knob that couples network latency
 * to application runtime (section 5's "finite MSHRs").
 *
 * With one MSHR a core blocks on every miss, so runtime tracks raw
 * operation latency; with many MSHRs latency is overlapped and only
 * bandwidth matters. The point-to-point network's advantage over the
 * circuit-switched network persists across the sweep because it wins
 * on both axes.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::uint64_t instr = instructionsArg(argc, argv, 1200);
    WorkloadSpec spec = workloadByName("swaptions");
    spec.instructionsPerCore = instr;

    std::printf("MSHR ablation (swaptions, %llu instr/core)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%8s %14s %14s %12s\n", "MSHRs", "p2p rt (ns)",
                "CS rt (ns)", "p2p speedup");

    for (const std::uint32_t mshrs : {1u, 2u, 4u, 8u, 16u}) {
        MacrochipConfig cfg = simulatedConfig();
        cfg.mshrsPerCore = mshrs;

        Simulator sim_a(3);
        PointToPointNetwork p2p(sim_a, cfg);
        const auto a = TraceCpuSystem(sim_a, p2p, spec, 7).run();

        Simulator sim_b(3);
        CircuitSwitchedTorus cs(sim_b, cfg);
        const auto b = TraceCpuSystem(sim_b, cs, spec, 7).run();

        std::printf("%8u %14.0f %14.0f %12.2f\n", mshrs,
                    a.runtimeNs(), b.runtimeNs(),
                    static_cast<double>(b.runtime)
                        / static_cast<double>(a.runtime));
        std::fflush(stdout);
    }
    return 0;
}
