/**
 * @file
 * Regenerates Figure 6: latency vs offered load for the uniform,
 * transpose, nearest-neighbor and butterfly patterns across the five
 * networks, using the open-loop 64-byte packet injector of
 * section 6.1. Offered load is a percentage of 320 B/ns per site.
 *
 * Shape targets from the paper: point-to-point sustains ~95% of peak
 * on uniform (5 GB/s = 1.56% on the one-to-one patterns); token ring
 * ~40% uniform but <1% one-to-one; limited point-to-point ~47%
 * uniform and ~25% nearest-neighbor; circuit-switched ~2.5%;
 * two-phase ~7.5%.
 *
 * Telemetry (all optional, see TelemetryOptions in harness.hh):
 * --trace=<file> writes a Perfetto trace-event JSON with one process
 * per (pattern, network, load) run — message lifecycle spans,
 * channel-occupancy counter tracks and the event-loop self-profile —
 * and self-validates the JSON before exiting. --metrics=<file> plus
 * --metrics-period=<ticks> write periodic StatRegistry snapshots as
 * a time-series CSV. --smoke reduces the sweep for CI.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "harness.hh"
#include "sweep.hh"

#include "net/tracer.hh"
#include "sim/logging.hh"
#include "sim/telemetry/json.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

struct PatternSweep
{
    TrafficPattern pattern;
    std::vector<double> loads; // fraction of per-site peak
};

/** One (pattern, network) curve: its load points up to saturation. */
struct Curve
{
    NetId id;
    std::vector<InjectorResult> points;
    double maxSustainedPct = 0.0;
    CellTelemetry telemetry;
};

const std::vector<PatternSweep> sweeps = {
    {TrafficPattern::Uniform,
     {0.01, 0.02, 0.05, 0.08, 0.12, 0.20, 0.30, 0.40, 0.50, 0.70,
      0.90}},
    {TrafficPattern::Transpose,
     {0.0025, 0.005, 0.01, 0.014, 0.02, 0.03, 0.04, 0.06}},
    {TrafficPattern::Neighbor,
     {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25}},
    {TrafficPattern::Butterfly,
     {0.0025, 0.005, 0.01, 0.014, 0.02, 0.03, 0.04, 0.06}},
};

/** Latency past which a load point counts as saturated. */
constexpr double saturatedNs = 400.0;

/** Each curve owns a block of pids: one per load point. */
constexpr std::uint32_t pidsPerCurve = 16;

/**
 * Trace one (pattern, network) latency-load curve serially: the
 * points of a curve feed an early-exit at saturation, so the curve
 * is the unit of parallelism, not the point. With telemetry enabled
 * each point's run additionally records message spans, occupancy
 * counters and the event-loop profile into the curve's sink under
 * its own pid (pid_base + point index).
 */
Curve
traceCurve(const PatternSweep &sweep, NetId id,
           std::uint32_t pid_base, const TelemetryOptions &topt,
           std::uint64_t seed)
{
    Curve curve;
    curve.id = id;
    std::uint32_t point = 0;
    for (const double load : sweep.loads) {
        Simulator sim(seed);
        auto net = makeNetwork(id, sim, simulatedConfig());

        std::ostringstream label_os;
        label_os << to_string(sweep.pattern) << " / " << netName(id)
                 << " @ " << load * 100.0 << "%";
        const std::string label = label_os.str();
        const std::uint32_t pid = pid_base + point++;

        std::unique_ptr<MessageTracer> tracer;
        std::unique_ptr<PeriodicSampler> counters;
        std::unique_ptr<SnapshotRecorder> snapshots;
        if (topt.tracing()) {
            tracer = std::make_unique<MessageTracer>(*net);
            counters = occupancyCounterSampler(
                sim, curve.telemetry.trace, pid, topt.period());
            sim.events().setProfiling(true);
        }
        if (topt.metrics()) {
            snapshots =
                std::make_unique<SnapshotRecorder>(sim, topt.period());
        }
        if (topt.profile)
            sim.events().setProfiling(true);

        InjectorConfig cfg;
        cfg.pattern = sweep.pattern;
        cfg.load = load;
        cfg.warmup = 500 * tickNs;
        cfg.window = 2500 * tickNs;
        cfg.seed = seed;
        const InjectorResult r = runOpenLoop(sim, *net, cfg);

        if (tracer) {
            tracer->writeTrace(curve.telemetry.trace, pid, label);
            traceEventProfile(curve.telemetry.trace, pid, sim);
        }
        if (snapshots) {
            curve.telemetry.metricsCsv += "# " + label + "\n"
                + snapshots->csv();
        }
        if (topt.profile)
            dumpEventProfile(label, sim);
        if (simStatsEnabled())
            dumpSimStats(label, sim);

        curve.points.push_back(r);
        if (r.meanLatencyNs > saturatedNs)
            break;
        curve.maxSustainedPct =
            std::max(curve.maxSustainedPct, r.deliveredPct);
    }
    return curve;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchFlags flags = benchFlags(argc, argv, 17);
    const std::size_t jobs = flags.jobs;
    const std::uint64_t seed = flags.seed;
    const TelemetryOptions &topt = flags.telemetry;

    // --smoke: one pattern, two load points — enough to exercise the
    // full telemetry path in seconds for the CI trace-validation test.
    std::vector<PatternSweep> selected = sweeps;
    if (topt.smoke) {
        selected.resize(1);
        selected[0].loads.resize(2);
    }

    std::printf("Figure 6: Latency vs. Offered Load "
                "(64 B packets, %% of 320 B/ns per site)\n\n");
    std::printf("pattern,network,offered_pct,latency_ns,p99_ns,"
                "delivered_pct\n");

    MatrixTelemetry merged;
    SweepRunner runner(jobs);
    std::uint32_t curve_idx = 0;
    for (const PatternSweep &sweep : selected) {
        const std::string pattern_name =
            std::string(to_string(sweep.pattern));

        std::vector<SweepJob<Curve>> curve_jobs;
        for (const NetId id : fig6Networks) {
            const std::uint32_t pid_base = curve_idx++ * pidsPerCurve;
            curve_jobs.push_back(SweepJob<Curve>{
                pattern_name + " / " + netName(id),
                [&sweep, id, pid_base, &topt, seed] {
                    return traceCurve(sweep, id, pid_base, topt,
                                      seed);
                }});
        }
        std::vector<Curve> curves =
            runner.run("fig6-" + pattern_name, std::move(curve_jobs));
        if (sweepInterrupted())
            return sweepExitStatus();

        for (const Curve &curve : curves) {
            for (const InjectorResult &r : curve.points) {
                std::printf("%s,%s,%.2f,%.1f,%.1f,%.2f\n",
                            pattern_name.c_str(),
                            netName(curve.id).c_str(),
                            r.offeredLoadPct, r.meanLatencyNs,
                            r.p99LatencyNs, r.deliveredPct);
            }
        }
        std::fflush(stdout);

        std::printf("\n# %s: max sustained bandwidth "
                    "(%% of per-site peak)\n",
                    pattern_name.c_str());
        for (const Curve &curve : curves) {
            std::printf("#   %-24s %6.2f%%\n",
                        netName(curve.id).c_str(),
                        curve.maxSustainedPct);
        }
        std::printf("\n");

        // Merge in submission order: deterministic for any --jobs.
        for (Curve &curve : curves) {
            merged.trace.append(std::move(curve.telemetry.trace));
            merged.metricsCsv += curve.telemetry.metricsCsv;
        }
    }

    if (topt.metrics() && !topt.metricsPath.empty())
        writeTextFile(topt.metricsPath, merged.metricsCsv);

    if (topt.tracing()) {
        std::ostringstream json;
        merged.trace.writeJson(json);
        writeTextFile(topt.tracePath, json.str());
        std::string error;
        if (!jsonValid(json.str(), &error)) {
            std::fprintf(stderr,
                         "fig6: trace '%s' is not valid JSON: %s\n",
                         topt.tracePath.c_str(), error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "fig6: wrote %zu trace events to %s (%llu "
                     "dropped)\n",
                     merged.trace.size(), topt.tracePath.c_str(),
                     static_cast<unsigned long long>(
                         merged.trace.dropped()));
    }
    return sweepExitStatus();
}
