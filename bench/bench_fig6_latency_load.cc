/**
 * @file
 * Regenerates Figure 6: latency vs offered load for the uniform,
 * transpose, nearest-neighbor and butterfly patterns across the five
 * networks, using the open-loop 64-byte packet injector of
 * section 6.1. Offered load is a percentage of 320 B/ns per site.
 *
 * Shape targets from the paper: point-to-point sustains ~95% of peak
 * on uniform (5 GB/s = 1.56% on the one-to-one patterns); token ring
 * ~40% uniform but <1% one-to-one; limited point-to-point ~47%
 * uniform and ~25% nearest-neighbor; circuit-switched ~2.5%;
 * two-phase ~7.5%.
 */

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "harness.hh"
#include "sweep.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

struct PatternSweep
{
    TrafficPattern pattern;
    std::vector<double> loads; // fraction of per-site peak
};

/** One (pattern, network) curve: its load points up to saturation. */
struct Curve
{
    NetId id;
    std::vector<InjectorResult> points;
    double maxSustainedPct = 0.0;
};

const std::vector<PatternSweep> sweeps = {
    {TrafficPattern::Uniform,
     {0.01, 0.02, 0.05, 0.08, 0.12, 0.20, 0.30, 0.40, 0.50, 0.70,
      0.90}},
    {TrafficPattern::Transpose,
     {0.0025, 0.005, 0.01, 0.014, 0.02, 0.03, 0.04, 0.06}},
    {TrafficPattern::Neighbor,
     {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25}},
    {TrafficPattern::Butterfly,
     {0.0025, 0.005, 0.01, 0.014, 0.02, 0.03, 0.04, 0.06}},
};

/** Latency past which a load point counts as saturated. */
constexpr double saturatedNs = 400.0;

/**
 * Trace one (pattern, network) latency-load curve serially: the
 * points of a curve feed an early-exit at saturation, so the curve
 * is the unit of parallelism, not the point.
 */
Curve
traceCurve(const PatternSweep &sweep, NetId id)
{
    Curve curve{id, {}, 0.0};
    for (const double load : sweep.loads) {
        Simulator sim(17);
        auto net = makeNetwork(id, sim, simulatedConfig());
        InjectorConfig cfg;
        cfg.pattern = sweep.pattern;
        cfg.load = load;
        cfg.warmup = 500 * tickNs;
        cfg.window = 2500 * tickNs;
        cfg.seed = 17;
        const InjectorResult r = runOpenLoop(sim, *net, cfg);
        if (simStatsEnabled()) {
            std::ostringstream label;
            label << to_string(sweep.pattern) << " / " << netName(id)
                  << " @ " << r.offeredLoadPct << "%";
            dumpSimStats(label.str(), sim);
        }
        curve.points.push_back(r);
        if (r.meanLatencyNs > saturatedNs)
            break;
        curve.maxSustainedPct =
            std::max(curve.maxSustainedPct, r.deliveredPct);
    }
    return curve;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t jobs = jobsArg(argc, argv);
    simStatsArg(argc, argv);
    std::printf("Figure 6: Latency vs. Offered Load "
                "(64 B packets, %% of 320 B/ns per site)\n\n");
    std::printf("pattern,network,offered_pct,latency_ns,p99_ns,"
                "delivered_pct\n");

    SweepRunner runner(jobs);
    for (const PatternSweep &sweep : sweeps) {
        const std::string pattern_name =
            std::string(to_string(sweep.pattern));

        std::vector<SweepJob<Curve>> curve_jobs;
        for (const NetId id : fig6Networks) {
            curve_jobs.push_back(SweepJob<Curve>{
                pattern_name + " / " + netName(id),
                [&sweep, id] { return traceCurve(sweep, id); }});
        }
        const std::vector<Curve> curves =
            runner.run("fig6-" + pattern_name, std::move(curve_jobs));

        for (const Curve &curve : curves) {
            for (const InjectorResult &r : curve.points) {
                std::printf("%s,%s,%.2f,%.1f,%.1f,%.2f\n",
                            pattern_name.c_str(),
                            netName(curve.id).c_str(),
                            r.offeredLoadPct, r.meanLatencyNs,
                            r.p99LatencyNs, r.deliveredPct);
            }
        }
        std::fflush(stdout);

        std::printf("\n# %s: max sustained bandwidth "
                    "(%% of per-site peak)\n",
                    pattern_name.c_str());
        for (const Curve &curve : curves) {
            std::printf("#   %-24s %6.2f%%\n",
                        netName(curve.id).c_str(),
                        curve.maxSustainedPct);
        }
        std::printf("\n");
    }
    return 0;
}
