/**
 * @file
 * Regenerates Figure 7: speedup of every network relative to the
 * circuit-switched network, for the six application kernels and the
 * five synthetic coherence workloads.
 *
 * Shape targets from the paper: the point-to-point network wins
 * overall (3-8.3x over circuit-switched), is at least ~4.5x better
 * than the arbitrated networks on the MS mix, the limited
 * point-to-point leads on nearest-neighbor (~5x over
 * circuit-switched), the two-phase beats token-ring/circuit-switched
 * by >=1.6x, ALT improves ~1.4x on all-to-all, and Barnes shows
 * small spreads because it barely stresses any network.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchFlags flags = benchFlags(argc, argv, 1);
    const std::size_t jobs = flags.jobs;
    const std::uint64_t seed = flags.seed;
    const TelemetryOptions &topt = flags.telemetry;
    const std::uint64_t instr =
        instructionsArg(argc, argv, topt.smoke ? 200 : 1200);
    std::fprintf(stderr, "fig7: %llu instructions/core\n",
                 static_cast<unsigned long long>(instr));
    const auto matrix =
        runWorkloadMatrixWithTelemetry(instr, seed, jobs, topt);
    // An interrupted sweep has holes; there is no partial figure to
    // print, so exit with the interrupt status (130) right away.
    if (sweepInterrupted())
        return sweepExitStatus();

    std::printf("Figure 7: Speedup vs. Circuit-Switched Network\n\n");
    std::printf("%-14s", "workload");
    for (const NetId id : allNetworks)
        std::printf(" %16s", netName(id).c_str());
    std::printf("\n");

    for (const WorkloadSpec &spec : figureWorkloads(instr)) {
        const double cs_runtime =
            static_cast<double>(find(matrix, spec.name,
                                     NetId::CircuitSwitched)
                                    .runtime);
        std::printf("%-14s", spec.name.c_str());
        for (const NetId id : allNetworks) {
            const auto &r = find(matrix, spec.name, id);
            std::printf(" %16.2f",
                        cs_runtime / static_cast<double>(r.runtime));
        }
        std::printf("\n");
    }
    return sweepExitStatus();
}
