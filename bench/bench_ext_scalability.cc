/**
 * @file
 * Extension bench: scaling the macrochip beyond the paper.
 *
 * Sweeps the R x C grid through 8x8 -> 16x16 -> 24x24 (the Table 4
 * system and two "what if the 2015 vision kept growing" points) for
 * all six networks — the paper's five architectures plus the
 * hierarchical hermes broadcast network. Every (grid, network) point
 * first passes the photonic feasibility gate: the worst-case link's
 * required launch power is checked against the waveguide-nonlinearity
 * ceiling (photonics/link_budget). Feasible points run the open-loop
 * uniform-traffic injector and report simulated latency, delivered
 * throughput and network energy alongside the analytic laser power;
 * infeasible points report the verdict and the analytic numbers only
 * — no amount of laser power closes those links, so simulating them
 * would manufacture results for unbuildable hardware.
 *
 * Also retained from the original section 6.4 bench: the WDM-scaling
 * table showing point-to-point bandwidth growing at constant
 * waveguide count.
 *
 * Flags:
 *   --rows N --cols M   sweep a single custom grid instead
 *   --network <slug>    one network only (tring, cswitch, pt2pt,
 *                       lpt2pt, 2phase, hermes)
 *   --smoke             16x16 only, short window (CI)
 *   --jobs N, --seed N  the usual sweep knobs
 *
 * A full (non-smoke) run pins the table in BENCH_scaling.json.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hh"
#include "net/analysis.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sweep.hh"
#include "workloads/packet_injector.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

struct GridSpec
{
    std::uint32_t rows = 8;
    std::uint32_t cols = 8;
};

struct Point
{
    GridSpec grid;
    NetId id = NetId::PointToPoint;
    LinkFeasibility feas;
    double laserW = 0.0;
    double staticW = 0.0;
    bool simulated = false;
    InjectorResult traffic;
    double energyMj = 0.0;
};

Point
runPoint(GridSpec grid, NetId id, std::uint64_t seed,
         const TelemetryOptions &topt)
{
    const std::string label = std::to_string(grid.rows) + "x"
        + std::to_string(grid.cols);
    const std::uint64_t cell_seed =
        deriveSeed(seed, "scale-" + label, netName(id));

    const MacrochipConfig cfg = scaledConfig(grid.rows, grid.cols);
    Simulator sim(cell_seed);
    auto net = makeNetwork(id, sim, cfg);

    Point p;
    p.grid = grid;
    p.id = id;
    p.feas = net->feasibility();
    p.laserW = net->laserWatts();
    p.staticW = net->staticWatts();
    if (!p.feas.feasible) {
        // The gate: links this lossy cannot be closed under the
        // launch-power ceiling, so no latency/energy numbers exist
        // for this point.
        return p;
    }

    InjectorConfig icfg;
    icfg.pattern = TrafficPattern::Uniform;
    icfg.load = 0.05;
    icfg.warmup = topt.smoke ? 250 * tickNs : 500 * tickNs;
    icfg.window = topt.smoke ? 1000 * tickNs : 2000 * tickNs;
    icfg.seed = cell_seed;
    p.traffic = runOpenLoop(sim, *net, icfg);
    p.energyMj = net->energy().totalJoules(sim.now()) * 1e3;
    p.simulated = true;

    if (simStatsEnabled())
        dumpSimStats(netName(id) + " @ " + label, sim);
    return p;
}

/** Positive-integer flag on top of the shared stripNumberFlag(). */
bool
numberFlag(int &argc, char **argv, const char *name,
           std::uint32_t &out)
{
    std::uint64_t v = 0;
    if (!stripNumberFlag(argc, argv, name, &v))
        return false;
    if (v == 0 || v > 0xFFFFFFFFull)
        fatal("bench_ext_scalability: --", name,
              " must be a positive integer, got ", v);
    out = static_cast<std::uint32_t>(v);
    return true;
}

void
printWdmTable()
{
    std::printf("Section 6.4: WDM scaling at 64 sites (constant "
                "point-to-point waveguides)\n");
    std::printf("  %-24s %4s %9s %10s %12s\n", "network", "wdm",
                "TB/s", "waveguides", "wgs per TB/s");
    for (std::uint32_t wdm : {8u, 16u, 32u}) {
        MacrochipConfig cfg = simulatedConfig();
        cfg.wavelengthsPerWaveguide = wdm;
        cfg.txPerSite = 128 * wdm / 8;
        cfg.rxPerSite = cfg.txPerSite;
        const auto rows = analyzeAllNetworks(cfg);
        const auto &p2p = rows[2];
        std::printf("  %-24s %4u %9.1f %10llu %12.2f\n",
                    p2p.network.c_str(), wdm, p2p.peakTBs,
                    static_cast<unsigned long long>(
                        p2p.counts.waveguides),
                    p2p.waveguidesPerTBs());
    }
    std::printf("  %-24s %4s %9s %10llu wires (16-bit links)\n",
                "electronic full mesh", "-", "-",
                static_cast<unsigned long long>(
                    electronicPointToPointWires(64, 16)));
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t jobs = jobsArg(argc, argv);
    simStatsArg(argc, argv);
    const std::uint64_t seed = seedArg(argc, argv, 1);
    installSweepSignalHandlers();

    std::uint32_t rows_flag = 0;
    std::uint32_t cols_flag = 0;
    const bool have_rows = numberFlag(argc, argv, "rows", rows_flag);
    const bool have_cols = numberFlag(argc, argv, "cols", cols_flag);
    std::string net_flag;
    const bool have_net =
        stripValueFlag(argc, argv, "network", &net_flag);
    const TelemetryOptions topt = telemetryArgs(argc, argv);

    std::vector<GridSpec> grids = {{8, 8}, {16, 16}, {24, 24}};
    if (topt.smoke)
        grids = {{16, 16}};
    if (have_rows || have_cols) {
        GridSpec g;
        g.rows = have_rows ? rows_flag : 8;
        g.cols = have_cols ? cols_flag : g.rows;
        grids = {g};
    }

    std::vector<NetId> nets(extendedNetworks.begin(),
                            extendedNetworks.end());
    if (have_net) {
        NetId only;
        if (!service::netFromString(net_flag, &only))
            fatal("bench_ext_scalability: unknown --network '",
                  net_flag, "' (try tring, cswitch, pt2pt, lpt2pt, "
                  "2phase, hermes)");
        nets = {only};
    }

    printWdmTable();

    std::printf("\nGrid scaling with the feasibility gate "
                "(uniform traffic @ 5%% load)\n\n");
    std::printf("grid,network,feasible,loss_db,required_launch_dbm,"
                "margin_db,laser_w,static_w,mean_ns,p99_ns,"
                "delivered_pct,energy_mj\n");

    std::vector<SweepJob<Point>> sweep;
    for (const GridSpec grid : grids) {
        for (const NetId id : nets) {
            sweep.push_back(SweepJob<Point>{
                netName(id) + " @ " + std::to_string(grid.rows) + "x"
                    + std::to_string(grid.cols),
                [grid, id, seed, &topt] {
                    return runPoint(grid, id, seed, topt);
                }});
        }
    }

    const std::vector<Point> points =
        SweepRunner(jobs).run("scalability", std::move(sweep));
    if (sweepInterrupted())
        return sweepExitStatus();

    std::ostringstream json;
    json << "{\n  \"bench\": \"scaling\",\n  \"points\": [\n";
    bool first = true;
    for (const Point &p : points) {
        char line[256];
        if (p.simulated) {
            std::snprintf(line, sizeof(line),
                          "%ux%u,%s,yes,%.2f,%.2f,%.2f,%.1f,%.1f,"
                          "%.1f,%.1f,%.2f,%.3f\n",
                          p.grid.rows, p.grid.cols,
                          netName(p.id).c_str(),
                          p.feas.totalLoss.value(),
                          p.feas.requiredLaunch.value(),
                          p.feas.margin.value(), p.laserW, p.staticW,
                          p.traffic.meanLatencyNs,
                          p.traffic.p99LatencyNs,
                          p.traffic.deliveredPct, p.energyMj);
        } else {
            std::snprintf(line, sizeof(line),
                          "%ux%u,%s,infeasible,%.2f,%.2f,%.2f,%.1f,"
                          "%.1f,-,-,-,-\n",
                          p.grid.rows, p.grid.cols,
                          netName(p.id).c_str(),
                          p.feas.totalLoss.value(),
                          p.feas.requiredLaunch.value(),
                          p.feas.margin.value(), p.laserW,
                          p.staticW);
        }
        std::fputs(line, stdout);

        char entry[512];
        std::snprintf(entry, sizeof(entry),
                      "    {\"grid\": \"%ux%u\", \"network\": "
                      "\"%s\", \"feasible\": %s, \"loss_db\": %.2f, "
                      "\"required_launch_dbm\": %.2f, \"margin_db\": "
                      "%.2f, \"laser_w\": %.1f, \"mean_ns\": %s, "
                      "\"p99_ns\": %s, \"delivered_pct\": %s, "
                      "\"energy_mj\": %s}",
                      p.grid.rows, p.grid.cols,
                      netName(p.id).c_str(),
                      p.feas.feasible ? "true" : "false",
                      p.feas.totalLoss.value(),
                      p.feas.requiredLaunch.value(),
                      p.feas.margin.value(), p.laserW,
                      p.simulated
                          ? std::to_string(p.traffic.meanLatencyNs)
                                .c_str()
                          : "null",
                      p.simulated
                          ? std::to_string(p.traffic.p99LatencyNs)
                                .c_str()
                          : "null",
                      p.simulated
                          ? std::to_string(p.traffic.deliveredPct)
                                .c_str()
                          : "null",
                      p.simulated ? std::to_string(p.energyMj).c_str()
                                  : "null");
        json << (first ? "" : ",\n") << entry;
        first = false;
    }
    json << "\n  ]\n}\n";

    if (!topt.smoke && !have_net && !have_rows && !have_cols)
        writeTextFile("BENCH_scaling.json", json.str());
    return sweepExitStatus();
}
