/**
 * @file
 * Extension bench: the section 6.4 scalability argument, quantified.
 *
 * 1. WDM scaling on the 64-site macrochip: as wavelengths per
 *    waveguide improve (8 -> 16 -> 32), the photonic point-to-point
 *    network's peak bandwidth grows with a *constant* waveguide
 *    count — while an electronic full mesh needs a wire per bit of
 *    every link.
 * 2. Grid scaling (4x4 -> 8x8 -> 16x16 sites) at a constant 2-lambda
 *    channel width, including the full-scale section 3 system.
 */

#include <cstdio>

#include "net/analysis.hh"

using namespace macrosim;

namespace
{

void
printRows(const std::vector<ScalingPoint> &rows)
{
    for (const auto &r : rows) {
        std::printf("  %-24s %9.1f %10llu %10llu %12.2f %10.1f "
                    "%9.1f%%\n",
                    r.network.c_str(), r.peakTBs,
                    static_cast<unsigned long long>(
                        r.counts.waveguides),
                    static_cast<unsigned long long>(
                        r.counts.opticalSwitches),
                    r.waveguidesPerTBs(), r.laserWatts,
                    r.substrateFraction() * 100.0);
    }
}

} // namespace

int
main()
{
    std::printf("Section 6.4 extension: scalability of the "
                "architectures\n\n");
    std::printf("  %-24s %9s %10s %10s %12s %10s %10s\n", "network",
                "TB/s", "waveguides", "switches", "wgs per TB/s",
                "laser W", "area");

    // --- WDM scaling, 64 sites --------------------------------------
    for (std::uint32_t wdm : {8u, 16u, 32u}) {
        MacrochipConfig cfg = simulatedConfig();
        cfg.wavelengthsPerWaveguide = wdm;
        cfg.txPerSite = 128 * wdm / 8;
        cfg.rxPerSite = cfg.txPerSite;
        std::printf("\n64 sites, %u wavelengths/waveguide:\n", wdm);
        printRows(analyzeAllNetworks(cfg));
        std::printf("  %-24s %9s %10llu wires (16-bit links)\n",
                    "electronic full mesh", "-",
                    static_cast<unsigned long long>(
                        electronicPointToPointWires(cfg.siteCount(),
                                                    16)));
    }

    // --- Grid scaling -------------------------------------------------
    for (std::uint32_t dim : {4u, 8u, 16u}) {
        MacrochipConfig cfg = simulatedConfig();
        cfg.rows = dim;
        cfg.cols = dim;
        cfg.txPerSite = 2 * dim * dim; // 2 lambdas per destination
        cfg.rxPerSite = cfg.txPerSite;
        std::printf("\n%ux%u sites, %u Tx/site:\n", dim, dim,
                    cfg.txPerSite);
        printRows(analyzeAllNetworks(cfg));
        std::printf("  %-24s %9s %10llu wires (16-bit links)\n",
                    "electronic full mesh", "-",
                    static_cast<unsigned long long>(
                        electronicPointToPointWires(cfg.siteCount(),
                                                    16)));
    }

    // --- The full-scale 2015 target ------------------------------------
    std::printf("\nFull-scale section 3 system (64 cores/site, "
                "1024 Tx/site, 16-way WDM):\n");
    printRows(analyzeAllNetworks(fullScaleConfig()));
    return 0;
}
