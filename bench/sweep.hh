/**
 * @file
 * SweepRunner: the parallel experiment engine behind the figure
 * benches.
 *
 * A sweep is an ordered list of labelled jobs, each a closure that
 * builds and runs one independent Simulator and returns its result.
 * SweepRunner fans the jobs out over a ThreadPool and hands the
 * results back in submission order, so table-printing code is
 * oblivious to the parallelism. Determinism is the caller's half of
 * the contract: derive each job's RNG seed from the job's identity
 * with deriveSeed() (sim/random.hh), never from shared mutable
 * state, and results are bit-identical for any --jobs value.
 *
 * Each job's wall-clock time and the aggregate parallel speedup are
 * reported to stderr, so every bench run doubles as a perf
 * trajectory sample.
 */

#ifndef MACROSIM_BENCH_SWEEP_HH
#define MACROSIM_BENCH_SWEEP_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "sim/thread_pool.hh"

namespace macrosim::bench
{

/** One cell of a sweep: a display label plus the work itself. */
template <typename Result>
struct SweepJob
{
    std::string label;
    std::function<Result()> fn;
};

/**
 * Default worker count: the MACROSIM_JOBS environment variable if
 * set to a positive integer, else hardware_concurrency().
 */
std::size_t defaultJobs();

/**
 * Remove a leading "--jobs N" (or "--jobs=N") from argv and return
 * N; returns 0 when the flag is absent, leaving the remaining
 * positional arguments (e.g. instructions/core) where the benches
 * already expect them.
 */
std::size_t stripJobsFlag(int &argc, char **argv);

/** Serialized stderr progress line (threads share the stream). */
void sweepLog(const std::string &line);

class SweepRunner
{
  public:
    /**
     * @p jobs worker threads; 0 means defaultJobs(). @p progress
     * false silences the per-job and aggregate stderr lines (the
     * test suite runs sweeps quietly).
     */
    explicit SweepRunner(std::size_t jobs = 0, bool progress = true);

    std::size_t jobs() const { return jobs_; }

    /**
     * Run every job and return their results in submission order.
     * A job's exception is rethrown here, after the pool drains.
     */
    template <typename Result>
    std::vector<Result>
    run(const std::string &name, std::vector<SweepJob<Result>> sweep)
    {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point start = Clock::now();
        double busy_ns = 0.0;
        beginSweep(sweep.size(), start);

        std::vector<std::future<Result>> futures;
        futures.reserve(sweep.size());
        {
            ThreadPool pool(jobs_);
            for (SweepJob<Result> &job : sweep) {
                futures.push_back(pool.submit(
                    [this, job = std::move(job), &busy_ns] {
                        const Clock::time_point t0 = Clock::now();
                        Result r = job.fn();
                        const double ns = std::chrono::duration<
                            double, std::nano>(Clock::now() - t0)
                                              .count();
                        noteJobDone(job.label, ns, &busy_ns);
                        return r;
                    }));
            }
        } // pool drains here

        std::vector<Result> results;
        results.reserve(futures.size());
        for (std::future<Result> &f : futures)
            results.push_back(f.get());

        const double wall_ns = std::chrono::duration<double, std::nano>(
                                   Clock::now() - start)
                                   .count();
        noteSweepDone(name, results.size(), wall_ns, busy_ns);
        return results;
    }

  private:
    /** Reset the live progress counters for a new sweep (locked). */
    void beginSweep(std::size_t total,
                    std::chrono::steady_clock::time_point start);

    /**
     * Log one finished job and accumulate busy time (locked). The
     * progress line reports cells done/total plus an ETA projected
     * from wall-clock elapsed over cells finished — worker-count
     * agnostic, so it stays honest for any --jobs value.
     */
    void noteJobDone(const std::string &label, double ns,
                     double *busy_ns);

    /** Log the aggregate wall time and parallel speedup. */
    void noteSweepDone(const std::string &name, std::size_t count,
                       double wall_ns, double busy_ns);

    std::size_t jobs_;
    bool progress_;

    /** Live progress state of the sweep currently in run(). */
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::chrono::steady_clock::time_point sweepStart_;
};

} // namespace macrosim::bench

#endif // MACROSIM_BENCH_SWEEP_HH
