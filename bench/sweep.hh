/**
 * @file
 * Compatibility alias: SweepRunner moved into the simulator library
 * (sim/sweep.hh, namespace macrosim) so the macrosimd campaign
 * executor can share the exact engine the figure benches use. The
 * bench binaries and tests keep including "sweep.hh" and naming
 * macrosim::bench::SweepRunner; both resolve to the moved types.
 *
 * stripJobsFlag() lives in flags.hh with the rest of the bench flag
 * parsing (re-exported through this header for old includes).
 */

#ifndef MACROSIM_BENCH_SWEEP_HH
#define MACROSIM_BENCH_SWEEP_HH

#include "flags.hh"
#include "sim/sweep.hh"

namespace macrosim::bench
{

using macrosim::SweepJob;
using macrosim::SweepOutcome;
using macrosim::SweepRunner;
using macrosim::SweepJobDone;
using macrosim::defaultJobs;
using macrosim::sweepLog;
using macrosim::installSweepSignalHandlers;
using macrosim::sweepInterrupted;
using macrosim::requestSweepInterrupt;
using macrosim::clearSweepInterrupt;
using macrosim::sweepExitStatus;

} // namespace macrosim::bench

#endif // MACROSIM_BENCH_SWEEP_HH
