/**
 * @file
 * Parallel-in-model PDES speedup bench: one 16x16 open-loop injector
 * simulation partitioned across {1, 2, 4} logical processes (one
 * worker thread per LP), timed wall-clock.
 *
 * Two numbers matter:
 *  - correctness: every LP count must produce a bit-identical
 *    InjectorResult (the binary exits non-zero otherwise), and
 *  - speedup: events/sec at 4 LPs over the single-LP run.
 *
 * Timed points run with metrics timing on, so the per-LP horizon
 * breakdown (busy vs blocked wall time, spills, peak channel depth)
 * lands in BENCH_pdes.json next to the speedup — the perf trajectory
 * records *why* a point is slow. --sim-stats prints each point's
 * load-balance report (PdesLoadReport).
 *
 * Shared harness telemetry flags:
 *   --trace=<file>    capture the 4-LP run's parallel Perfetto
 *                     timeline (PdesTracer) — captured twice, with 1
 *                     and 3 worker threads, and the two serializations
 *                     must be byte-identical (exit non-zero
 *                     otherwise); the JSON is self-validated before
 *                     writing.
 *   --metrics=<file>  dump the 4-LP point's pdes.* stat registry.
 *   --profile         print each timed point's per-LP event-loop
 *                     profile, folded in fixed LP order.
 *
 * --smoke shrinks the window for CI (the smoke run is also wired
 * into the MACROSIM_SANITIZE=thread configuration, where it doubles
 * as a TSan exercise of the horizon protocol under real load);
 * full runs pin their measurement in BENCH_pdes.json.
 *
 * --lp N / --threads-per-sim T time one extra point with N logical
 * processes on T worker threads (T defaults to N).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.hh"
#include "harness.hh"
#include "net/pt2pt.hh"
#include "sim/telemetry/json.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;
using Clock = std::chrono::steady_clock;

struct PdesBenchPoint
{
    std::uint32_t lps = 1;
    std::size_t threads = 1;
    PdesInjectorResult run;
    double wallSec = 0.0;
    double eventsPerSec = 0.0;
    std::string profile;
    std::string metrics;
};

InjectorConfig
benchConfig(bool smoke)
{
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = 0.10;
    cfg.warmup = (smoke ? 300 : 2000) * tickNs;
    cfg.window = (smoke ? 1500 : 10000) * tickNs;
    cfg.seed = 42;
    return cfg;
}

PdesNetworkFactory
benchFactory()
{
    return [](Simulator &sim) -> std::unique_ptr<Network> {
        return std::make_unique<PointToPointNetwork>(
            sim, scaledConfig(16, 16));
    };
}

PdesBenchPoint
timePoint(const InjectorConfig &cfg, std::uint32_t lps,
          std::size_t threads, const TelemetryOptions &topts)
{
    PdesBenchPoint p;
    p.lps = lps;
    p.threads = threads;
    PdesObservability obs;
    obs.timing = true;
    obs.profile = topts.profile;
    if (topts.profile)
        obs.profileOut = &p.profile;
    if (!topts.metricsPath.empty())
        obs.metricsOut = &p.metrics;
    const Clock::time_point t0 = Clock::now();
    p.run = runOpenLoopPdes(benchFactory(), cfg, lps, threads, &obs);
    const Clock::time_point t1 = Clock::now();
    p.wallSec =
        std::chrono::duration<double>(t1 - t0).count();
    p.eventsPerSec = p.wallSec > 0.0
        ? static_cast<double>(p.run.eventsExecuted) / p.wallSec
        : 0.0;
    return p;
}

/**
 * How much CPU this machine actually gives 4 concurrent threads,
 * measured with pure busy loops: 4.0 on >= 4 free cores, ~1.0 in a
 * single-core container. The PDES wall-clock speedup is bounded above
 * by this number, so it is pinned next to the speedup — a 1.0x PDES
 * result on a 1.0x machine is the protocol breaking even, not
 * failing to scale.
 */
double
machineThreadScaling()
{
    constexpr std::uint64_t iters = 60'000'000;
    std::atomic<std::uint64_t> sink{0};
    const auto burn = [&sink] {
        std::uint64_t s = 0;
        for (std::uint64_t i = 0; i < iters; ++i)
            s += i * i;
        sink.fetch_add(s, std::memory_order_relaxed);
    };
    const Clock::time_point t0 = Clock::now();
    burn();
    const Clock::time_point t1 = Clock::now();
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i)
        threads.emplace_back(burn);
    for (std::thread &t : threads)
        t.join();
    const Clock::time_point t2 = Clock::now();
    const double serial = std::chrono::duration<double>(t1 - t0).count();
    const double par = std::chrono::duration<double>(t2 - t1).count();
    return par > 0.0 ? 4.0 * serial / par : 0.0;
}

bool
identical(const InjectorResult &a, const InjectorResult &b)
{
    return a.offeredLoadPct == b.offeredLoadPct
        && a.meanLatencyNs == b.meanLatencyNs
        && a.maxLatencyNs == b.maxLatencyNs
        && a.p50LatencyNs == b.p50LatencyNs
        && a.p99LatencyNs == b.p99LatencyNs
        && a.deliveredBytesPerNsPerSite == b.deliveredBytesPerNsPerSite
        && a.deliveredPct == b.deliveredPct
        && a.measuredPackets == b.measuredPackets
        && a.overflowPackets == b.overflowPackets
        && a.offeredMeasuredPct == b.offeredMeasuredPct;
}

/**
 * Capture the PDES Perfetto timeline of one untimed run and return
 * its serialized JSON. Called twice with different worker-thread
 * counts: the two strings must be byte-identical (the PdesTracer
 * determinism bar).
 */
std::string
captureTrace(const InjectorConfig &cfg, std::uint32_t lps,
             std::size_t threads)
{
    TraceSink sink;
    PdesObservability obs;
    obs.trace = &sink;
    runOpenLoopPdes(benchFactory(), cfg, lps, threads, &obs);
    std::ostringstream os;
    sink.writeJson(os);
    return os.str();
}

/** "[a,b,c]" from a per-LP extractor, %g-rendered. */
template <typename Fn>
std::string
jsonLpArray(const PdesLoadReport &load, Fn &&value)
{
    std::string out = "[";
    for (std::size_t i = 0; i < load.lps.size(); ++i) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%s%.6g", i ? "," : "",
                      value(load.lps[i]));
        out += buf;
    }
    out += "]";
    return out;
}

std::string
jsonNum(const char *key, double v, const char *fmt = "%.6g")
{
    char buf[96];
    std::string pattern = std::string("\"%s\":") + fmt;
    std::snprintf(buf, sizeof(buf), pattern.c_str(), key, v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    installSweepSignalHandlers();
    const TelemetryOptions topts = telemetryArgs(argc, argv);
    const bool simStats = simStatsArg(argc, argv);
    const bool smoke = topts.smoke;
    std::uint32_t extra_lp = 0;
    std::size_t extra_threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--lp") == 0 && i + 1 < argc) {
            extra_lp = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--threads-per-sim") == 0
                   && i + 1 < argc) {
            extra_threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        }
    }

    const InjectorConfig cfg = benchConfig(smoke);
    std::vector<PdesBenchPoint> points;
    for (const std::uint32_t lps : {1u, 2u, 4u})
        points.push_back(timePoint(cfg, lps, lps, topts));
    if (extra_lp > 0) {
        points.push_back(timePoint(
            cfg, extra_lp,
            extra_threads > 0 ? extra_threads : extra_lp, topts));
    }

    bool ok = true;
    for (const PdesBenchPoint &p : points) {
        std::printf("pdes lp=%-2u threads=%-2zu  %10.6f s  "
                    "%.3e events/s  cross=%llu  mean=%.3f ns  "
                    "delivered=%.2f%%\n",
                    p.lps, p.threads, p.wallSec, p.eventsPerSec,
                    static_cast<unsigned long long>(p.run.crossPosts),
                    p.run.result.meanLatencyNs,
                    p.run.result.deliveredPct);
        if (!identical(points.front().run.result, p.run.result)) {
            std::fprintf(stderr,
                         "bench_pdes: lp=%u threads=%zu result "
                         "differs from the single-LP run\n",
                         p.lps, p.threads);
            ok = false;
        }
        if (simStats)
            p.run.load.print(std::cerr);
        if (topts.profile && !p.profile.empty())
            std::cerr << p.profile;
    }

    // Perfetto capture: two untimed runs of the largest point on
    // different worker-thread counts must serialize byte-identical
    // trace JSON — the observability layer is held to the same
    // determinism bar as the results (DESIGN.md §12).
    if (topts.tracing()) {
        const std::uint32_t trace_lps = extra_lp > 0 ? extra_lp : 4;
        const std::string t1 = captureTrace(cfg, trace_lps, 1);
        const std::string t3 = captureTrace(cfg, trace_lps, 3);
        if (t1 != t3) {
            std::fprintf(stderr,
                         "bench_pdes: trace JSON differs between 1 "
                         "and 3 worker threads (%zu vs %zu bytes)\n",
                         t1.size(), t3.size());
            ok = false;
        }
        std::string err;
        if (!jsonValid(t1, &err)) {
            std::fprintf(stderr,
                         "bench_pdes: trace JSON invalid: %s\n",
                         err.c_str());
            ok = false;
        }
        writeTextFile(topts.tracePath, t1);
        std::fprintf(stderr,
                     "bench_pdes: wrote %s (%zu bytes, lp=%u, "
                     "thread-count invariant: %s)\n",
                     topts.tracePath.c_str(), t1.size(), trace_lps,
                     t1 == t3 ? "yes" : "NO");
    }
    if (!topts.metricsPath.empty())
        writeTextFile(topts.metricsPath, points.back().metrics);

    const double base = points[0].eventsPerSec;
    const double speedup2 = base > 0.0
        ? points[1].eventsPerSec / base : 0.0;
    const double speedup4 = base > 0.0
        ? points[2].eventsPerSec / base : 0.0;
    const double scaling = machineThreadScaling();
    std::printf("pdes speedup: 2 LPs %.2fx, 4 LPs %.2fx "
                "(machine gives 4 threads %.2fx)\n",
                speedup2, speedup4, scaling);

    // The 4-LP point's per-LP breakdown goes into the pinned JSON:
    // busy (drain+exec) and blocked wall per LP sum to roughly
    // wall_sec_4lp x active workers, so a slow point explains itself.
    const PdesBenchPoint &p4 = points[2];
    const PdesLoadReport &load4 = p4.run.load;
    std::string json = "{\"bench\":\"pdes\",\"grid\":\"16x16\",";
    json += jsonNum("load", cfg.load, "%.2f") + ",";
    json += jsonNum("events_per_sec_1lp", points[0].eventsPerSec,
                    "%.6e") + ",";
    json += jsonNum("events_per_sec_2lp", points[1].eventsPerSec,
                    "%.6e") + ",";
    json += jsonNum("events_per_sec_4lp", points[2].eventsPerSec,
                    "%.6e") + ",";
    json += jsonNum("speedup_2lp", speedup2, "%.3f") + ",";
    json += jsonNum("speedup_4lp", speedup4, "%.3f") + ",";
    json += jsonNum("machine_thread_scaling_4", scaling, "%.3f") + ",";
    json += jsonNum("cross_posts_4lp",
                    static_cast<double>(p4.run.crossPosts), "%.0f")
        + ",";
    json += jsonNum("spsc_spills_4lp",
                    static_cast<double>(p4.run.spscSpills), "%.0f")
        + ",";
    json += jsonNum("wall_sec_4lp", p4.wallSec, "%.6f") + ",";
    json += jsonNum("blocked_frac_4lp", load4.blockedFraction, "%.4f")
        + ",";
    json += jsonNum("imbalance_4lp", load4.eventImbalance, "%.4f")
        + ",";
    json += jsonNum("critical_lp_4lp",
                    static_cast<double>(load4.criticalLp), "%.0f")
        + ",";
    json += "\"lp_events_4lp\":"
        + jsonLpArray(load4,
                      [](const PdesLpLoad &l) {
                          return static_cast<double>(l.executed);
                      })
        + ",";
    json += "\"lp_drain_wall_ns_4lp\":"
        + jsonLpArray(load4,
                      [](const PdesLpLoad &l) { return l.drainWallNs; })
        + ",";
    json += "\"lp_exec_wall_ns_4lp\":"
        + jsonLpArray(load4,
                      [](const PdesLpLoad &l) { return l.execWallNs; })
        + ",";
    json += "\"lp_blocked_wall_ns_4lp\":"
        + jsonLpArray(load4,
                      [](const PdesLpLoad &l) {
                          return l.blockedWallNs;
                      })
        + ",";
    json += "\"lp_posts_4lp\":"
        + jsonLpArray(load4,
                      [](const PdesLpLoad &l) {
                          return static_cast<double>(l.posts);
                      })
        + ",";
    json += "\"lp_spills_4lp\":"
        + jsonLpArray(load4,
                      [](const PdesLpLoad &l) {
                          return static_cast<double>(l.spills);
                      })
        + ",";
    json += "\"bit_identical\":";
    json += ok ? "true" : "false";
    json += "}";

    std::string jerr;
    if (!jsonValid(json, &jerr)) {
        std::fprintf(stderr, "bench_pdes: result JSON invalid: %s\n",
                     jerr.c_str());
        ok = false;
    }
    std::printf("%s\n", json.c_str());
    std::fflush(stdout);
    if (!smoke) {
        if (std::FILE *f = std::fopen("BENCH_pdes.json", "w")) {
            std::fprintf(f, "%s\n", json.c_str());
            std::fclose(f);
        } else {
            std::fprintf(stderr,
                         "bench_pdes: cannot write BENCH_pdes.json\n");
        }
    }
    if (!ok)
        return 1;
    return sweepExitStatus();
}
