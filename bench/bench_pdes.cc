/**
 * @file
 * Parallel-in-model PDES speedup bench: one 16x16 open-loop injector
 * simulation partitioned across {1, 2, 4} logical processes (one
 * worker thread per LP), timed wall-clock.
 *
 * Two numbers matter:
 *  - correctness: every LP count must produce a bit-identical
 *    InjectorResult (the binary exits non-zero otherwise), and
 *  - speedup: events/sec at 4 LPs over the single-LP run.
 *
 * --smoke shrinks the window for CI (the smoke run is also wired
 * into the MACROSIM_SANITIZE=thread configuration, where it doubles
 * as a TSan exercise of the horizon protocol under real load);
 * full runs pin their measurement in BENCH_pdes.json.
 *
 * --lp N / --threads-per-sim T time one extra point with N logical
 * processes on T worker threads (T defaults to N).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.hh"
#include "net/pt2pt.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;
using Clock = std::chrono::steady_clock;

struct PdesBenchPoint
{
    std::uint32_t lps = 1;
    std::size_t threads = 1;
    PdesInjectorResult run;
    double wallSec = 0.0;
    double eventsPerSec = 0.0;
};

InjectorConfig
benchConfig(bool smoke)
{
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = 0.10;
    cfg.warmup = (smoke ? 300 : 2000) * tickNs;
    cfg.window = (smoke ? 1500 : 10000) * tickNs;
    cfg.seed = 42;
    return cfg;
}

PdesNetworkFactory
benchFactory()
{
    return [](Simulator &sim) -> std::unique_ptr<Network> {
        return std::make_unique<PointToPointNetwork>(
            sim, scaledConfig(16, 16));
    };
}

PdesBenchPoint
timePoint(const InjectorConfig &cfg, std::uint32_t lps,
          std::size_t threads)
{
    PdesBenchPoint p;
    p.lps = lps;
    p.threads = threads;
    const Clock::time_point t0 = Clock::now();
    p.run = runOpenLoopPdes(benchFactory(), cfg, lps, threads);
    const Clock::time_point t1 = Clock::now();
    p.wallSec =
        std::chrono::duration<double>(t1 - t0).count();
    p.eventsPerSec = p.wallSec > 0.0
        ? static_cast<double>(p.run.eventsExecuted) / p.wallSec
        : 0.0;
    return p;
}

/**
 * How much CPU this machine actually gives 4 concurrent threads,
 * measured with pure busy loops: 4.0 on >= 4 free cores, ~1.0 in a
 * single-core container. The PDES wall-clock speedup is bounded above
 * by this number, so it is pinned next to the speedup — a 1.0x PDES
 * result on a 1.0x machine is the protocol breaking even, not
 * failing to scale.
 */
double
machineThreadScaling()
{
    constexpr std::uint64_t iters = 60'000'000;
    std::atomic<std::uint64_t> sink{0};
    const auto burn = [&sink] {
        std::uint64_t s = 0;
        for (std::uint64_t i = 0; i < iters; ++i)
            s += i * i;
        sink.fetch_add(s, std::memory_order_relaxed);
    };
    const Clock::time_point t0 = Clock::now();
    burn();
    const Clock::time_point t1 = Clock::now();
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i)
        threads.emplace_back(burn);
    for (std::thread &t : threads)
        t.join();
    const Clock::time_point t2 = Clock::now();
    const double serial = std::chrono::duration<double>(t1 - t0).count();
    const double par = std::chrono::duration<double>(t2 - t1).count();
    return par > 0.0 ? 4.0 * serial / par : 0.0;
}

bool
identical(const InjectorResult &a, const InjectorResult &b)
{
    return a.offeredLoadPct == b.offeredLoadPct
        && a.meanLatencyNs == b.meanLatencyNs
        && a.maxLatencyNs == b.maxLatencyNs
        && a.p50LatencyNs == b.p50LatencyNs
        && a.p99LatencyNs == b.p99LatencyNs
        && a.deliveredBytesPerNsPerSite == b.deliveredBytesPerNsPerSite
        && a.deliveredPct == b.deliveredPct
        && a.measuredPackets == b.measuredPackets
        && a.overflowPackets == b.overflowPackets
        && a.offeredMeasuredPct == b.offeredMeasuredPct;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::uint32_t extra_lp = 0;
    std::size_t extra_threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--lp") == 0 && i + 1 < argc) {
            extra_lp = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--threads-per-sim") == 0
                   && i + 1 < argc) {
            extra_threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        }
    }

    const InjectorConfig cfg = benchConfig(smoke);
    std::vector<PdesBenchPoint> points;
    for (const std::uint32_t lps : {1u, 2u, 4u})
        points.push_back(timePoint(cfg, lps, lps));
    if (extra_lp > 0) {
        points.push_back(timePoint(
            cfg, extra_lp,
            extra_threads > 0 ? extra_threads : extra_lp));
    }

    bool ok = true;
    for (const PdesBenchPoint &p : points) {
        std::printf("pdes lp=%-2u threads=%-2zu  %10.6f s  "
                    "%.3e events/s  cross=%llu  mean=%.3f ns  "
                    "delivered=%.2f%%\n",
                    p.lps, p.threads, p.wallSec, p.eventsPerSec,
                    static_cast<unsigned long long>(p.run.crossPosts),
                    p.run.result.meanLatencyNs,
                    p.run.result.deliveredPct);
        if (!identical(points.front().run.result, p.run.result)) {
            std::fprintf(stderr,
                         "bench_pdes: lp=%u threads=%zu result "
                         "differs from the single-LP run\n",
                         p.lps, p.threads);
            ok = false;
        }
    }

    const double base = points[0].eventsPerSec;
    const double speedup2 = base > 0.0
        ? points[1].eventsPerSec / base : 0.0;
    const double speedup4 = base > 0.0
        ? points[2].eventsPerSec / base : 0.0;
    const double scaling = machineThreadScaling();
    std::printf("pdes speedup: 2 LPs %.2fx, 4 LPs %.2fx "
                "(machine gives 4 threads %.2fx)\n",
                speedup2, speedup4, scaling);

    char json[640];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"pdes\",\"grid\":\"16x16\",\"load\":%.2f,"
        "\"events_per_sec_1lp\":%.6e,"
        "\"events_per_sec_2lp\":%.6e,"
        "\"events_per_sec_4lp\":%.6e,"
        "\"speedup_2lp\":%.3f,\"speedup_4lp\":%.3f,"
        "\"machine_thread_scaling_4\":%.3f,"
        "\"cross_posts_4lp\":%llu,\"spsc_spills_4lp\":%llu,"
        "\"bit_identical\":%s}",
        cfg.load, points[0].eventsPerSec, points[1].eventsPerSec,
        points[2].eventsPerSec, speedup2, speedup4, scaling,
        static_cast<unsigned long long>(points[2].run.crossPosts),
        static_cast<unsigned long long>(points[2].run.spscSpills),
        ok ? "true" : "false");
    std::printf("%s\n", json);
    std::fflush(stdout);
    if (!smoke) {
        if (std::FILE *f = std::fopen("BENCH_pdes.json", "w")) {
            std::fprintf(f, "%s\n", json);
            std::fclose(f);
        } else {
            std::fprintf(stderr,
                         "bench_pdes: cannot write BENCH_pdes.json\n");
        }
    }
    return ok ? 0 : 1;
}
