/**
 * @file
 * Shared support for the per-table / per-figure bench binaries:
 * network factories, the figure 7-10 workload matrix, and table
 * printing helpers.
 */

#ifndef MACROSIM_BENCH_HARNESS_HH
#define MACROSIM_BENCH_HARNESS_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/circuit_switched.hh"
#include "net/hermes.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "sim/telemetry/sampler.hh"
#include "sim/telemetry/trace.hh"
#include "workloads/packet_injector.hh"
#include "workloads/trace_cpu.hh"

namespace macrosim::bench
{

enum class NetId
{
    TokenRing,
    CircuitSwitched,
    PointToPoint,
    LimitedPtToPt,
    TwoPhase,
    TwoPhaseAlt,
    Hermes,
};

/** Figure order: the paper's legend ordering. */
constexpr std::array<NetId, 6> allNetworks = {
    NetId::TokenRing,    NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase,       NetId::TwoPhaseAlt,
};

/** The five networks of figure 6 (no ALT variant there). */
constexpr std::array<NetId, 5> fig6Networks = {
    NetId::TokenRing, NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase,
};

/**
 * The paper's five architectures plus the hierarchical hermes
 * extension — the "six networks" of the scaling and resilience
 * studies. The figure benches keep the paper-exact lists above so
 * their outputs stay byte-identical to the seed.
 */
constexpr std::array<NetId, 6> extendedNetworks = {
    NetId::TokenRing, NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase, NetId::Hermes,
};

std::string netName(NetId id);

std::unique_ptr<Network> makeNetwork(NetId id, Simulator &sim,
                                     const MacrochipConfig &cfg);

/** Figure 7 x-axis order: six applications then five synthetics. */
std::vector<WorkloadSpec> figureWorkloads(std::uint64_t instr_per_core);

/**
 * Telemetry knobs shared by every bench binary, stripped from argv
 * by telemetryArgs():
 *   --trace=<file>           write a Perfetto trace-event JSON
 *   --metrics=<file>         write periodic StatRegistry snapshots
 *   --metrics-period=<ticks> snapshot period (default 1 us when
 *                            --metrics is given without it)
 *   --profile                dump the event-loop self-profile table
 *   --smoke                  reduced run for CI smoke tests
 */
struct TelemetryOptions
{
    std::string tracePath;
    std::string metricsPath;
    Tick metricsPeriod = 0;
    bool profile = false;
    bool smoke = false;

    bool tracing() const { return !tracePath.empty(); }
    bool metrics() const
    {
        return metricsPeriod > 0 || !metricsPath.empty();
    }

    /** The snapshot period to use: the flag, or 1 us unset. */
    Tick
    period() const
    {
        return metricsPeriod > 0 ? metricsPeriod : tickUs;
    }
};

/**
 * Strip the telemetry flags (see TelemetryOptions) from argv,
 * leaving positional arguments where the benches expect them.
 */
TelemetryOptions telemetryArgs(int &argc, char **argv);

/**
 * Per-run telemetry collected by a matrix/curve cell: a Perfetto
 * event stream plus a snapshot CSV, merged by the caller in
 * deterministic submission order after the sweep drains.
 */
struct CellTelemetry
{
    TraceSink trace;
    std::string metricsCsv;
};

/** Telemetry for a whole workload matrix run. */
struct MatrixTelemetry
{
    TraceSink trace;
    std::string metricsCsv;
};

/**
 * Run every (workload x network) pair of figures 7-10, fanned out
 * over @p jobs worker threads (0 = --jobs / MACROSIM_JOBS /
 * hardware_concurrency), and collect the results in figure order.
 * Each cell runs in its own Simulator with a seed derived from
 * (@p seed, workload, network), so the matrix is bit-identical for
 * every jobs value. Emits one progress line per cell to stderr.
 *
 * With @p telemetry_out non-null, each cell additionally records a
 * message-lifecycle trace (when opts.tracing()) and periodic stat
 * snapshots (when opts.metrics()); both are merged into
 * @p telemetry_out in cell-submission order, so the output is
 * bit-identical for any --jobs count.
 */
std::vector<TraceCpuResult>
runWorkloadMatrix(std::uint64_t instr_per_core, std::uint64_t seed = 1,
                  std::size_t jobs = 0, bool progress = true,
                  const TelemetryOptions &opts = {},
                  MatrixTelemetry *telemetry_out = nullptr);

/**
 * runWorkloadMatrix() plus the file side of the telemetry flags:
 * writes --trace (validated as JSON, fatal() if malformed) and
 * --metrics outputs when requested. The shared entry point for the
 * figure-7..10 mains.
 */
std::vector<TraceCpuResult>
runWorkloadMatrixWithTelemetry(std::uint64_t instr_per_core,
                               std::uint64_t seed, std::size_t jobs,
                               const TelemetryOptions &opts);

/** Locate a result in the matrix. */
const TraceCpuResult &find(const std::vector<TraceCpuResult> &matrix,
                           const std::string &workload,
                           NetId net);

/** Instructions per core: argv[1] if given, else @p fallback. */
std::uint64_t instructionsArg(int argc, char **argv,
                              std::uint64_t fallback);

/**
 * Worker-thread knob shared by every bench: strips "--jobs N" from
 * argv (so positional arguments keep their place) and returns N, or
 * 0 when unset — in which case SweepRunner falls back to
 * MACROSIM_JOBS and then hardware_concurrency().
 */
std::size_t jobsArg(int &argc, char **argv);

/**
 * Base-seed knob shared by every bench: strips "--seed N" /
 * "--seed=N" from argv (so positional arguments keep their place)
 * and returns N; falls back to the MACROSIM_SEED environment
 * variable, then to @p fallback — each bench's historical hard-coded
 * seed, so default outputs stay byte-identical. Per-cell seeds are
 * still derived from the base via deriveSeed(base, workload, network).
 */
std::uint64_t seedArg(int &argc, char **argv, std::uint64_t fallback);

/**
 * Event-core observability knob shared by every bench: strips
 * "--sim-stats" from argv and enables per-simulation EventQueueStats
 * reporting. The MACROSIM_SIM_STATS environment variable (any
 * non-empty value except "0") enables it too, flag or no flag.
 *
 * @return Whether stats reporting is now enabled.
 */
bool simStatsArg(int &argc, char **argv);

/** Whether --sim-stats / MACROSIM_SIM_STATS is in effect. */
bool simStatsEnabled();

/**
 * If simStatsEnabled(), dump @p sim's full telemetry registry
 * (simcore, net, arch subtrees) as one "[simstats] label: ..."
 * stderr line. Thread-safe: sweep cells call this from worker
 * threads.
 */
void dumpSimStats(const std::string &label, const Simulator &sim);

/**
 * Dump @p sim's event-loop self-profile table to stderr under
 * @p label (one serialized block; sweep cells may call this from
 * worker threads). No-op unless the sim's profiler was enabled.
 */
void dumpEventProfile(const std::string &label, const Simulator &sim);

/**
 * Append @p sim's event-loop self-profile to @p sink as spans on a
 * synthetic "event-loop profile" thread of @p pid: one span per tag,
 * laid end to end, span length = wall-clock ns spent (1 ns = 1 tick),
 * with count/wall_ns args. Gives the trace the profiler's story
 * without a separate report.
 */
void traceEventProfile(TraceSink &sink, std::uint32_t pid,
                       const Simulator &sim);

/** Write @p text to @p path; fatal() on any I/O failure. */
void writeTextFile(const std::string &path, const std::string &text);

/**
 * Arm a sampler that snapshots every "*.occupancy"-suffixed stat of
 * @p sim's registry into @p sink as Perfetto counter tracks, every
 * @p period ticks. Keep the returned sampler alive for the run.
 */
std::unique_ptr<PeriodicSampler>
occupancyCounterSampler(Simulator &sim, TraceSink &sink,
                        std::uint32_t pid, Tick period);

} // namespace macrosim::bench

#endif // MACROSIM_BENCH_HARNESS_HH
