/**
 * @file
 * Shared support for the per-table / per-figure bench binaries:
 * network factories, the figure 7-10 workload matrix, and table
 * printing helpers.
 */

#ifndef MACROSIM_BENCH_HARNESS_HH
#define MACROSIM_BENCH_HARNESS_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "flags.hh"
#include "net/circuit_switched.hh"
#include "net/hermes.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "service/campaign.hh"
#include "sim/telemetry/sampler.hh"
#include "sim/telemetry/trace.hh"
#include "workloads/packet_injector.hh"
#include "workloads/trace_cpu.hh"

namespace macrosim::bench
{

/**
 * The network selector moved into the service layer (the campaign
 * types share it with macrosimd); the benches keep their historical
 * spelling. Enumerator names are unchanged.
 */
using NetId = service::NetSel;

/** Figure order: the paper's legend ordering. */
constexpr std::array<NetId, 6> allNetworks = {
    NetId::TokenRing,    NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase,       NetId::TwoPhaseAlt,
};

/** The five networks of figure 6 (no ALT variant there). */
constexpr std::array<NetId, 5> fig6Networks = {
    NetId::TokenRing, NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase,
};

/**
 * The paper's five architectures plus the hierarchical hermes
 * extension — the "six networks" of the scaling and resilience
 * studies. The figure benches keep the paper-exact lists above so
 * their outputs stay byte-identical to the seed.
 */
constexpr std::array<NetId, 6> extendedNetworks = {
    NetId::TokenRing, NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase, NetId::Hermes,
};

/** Display name ("Token Ring"), via service::netDisplayName(). */
std::string netName(NetId id);

/** Topology factory, via service::makeNetworkFor(). */
std::unique_ptr<Network> makeNetwork(NetId id, Simulator &sim,
                                     const MacrochipConfig &cfg);

/** Figure 7 x-axis order: six applications then five synthetics. */
std::vector<WorkloadSpec> figureWorkloads(std::uint64_t instr_per_core);

/*
 * TelemetryOptions/telemetryArgs(), jobsArg(), seedArg() and
 * simStatsArg() moved to flags.hh (included above) with the rest of
 * the bench flag parsing.
 */

/**
 * Per-run telemetry collected by a matrix/curve cell: a Perfetto
 * event stream plus a snapshot CSV, merged by the caller in
 * deterministic submission order after the sweep drains.
 */
struct CellTelemetry
{
    TraceSink trace;
    std::string metricsCsv;
};

/** Telemetry for a whole workload matrix run. */
struct MatrixTelemetry
{
    TraceSink trace;
    std::string metricsCsv;
};

/**
 * Run every (workload x network) pair of figures 7-10, fanned out
 * over @p jobs worker threads (0 = --jobs / MACROSIM_JOBS /
 * hardware_concurrency), and collect the results in figure order.
 * Each cell runs in its own Simulator with a seed derived from
 * (@p seed, workload, network), so the matrix is bit-identical for
 * every jobs value. Emits one progress line per cell to stderr.
 *
 * With @p telemetry_out non-null, each cell additionally records a
 * message-lifecycle trace (when opts.tracing()) and periodic stat
 * snapshots (when opts.metrics()); both are merged into
 * @p telemetry_out in cell-submission order, so the output is
 * bit-identical for any --jobs count.
 */
std::vector<TraceCpuResult>
runWorkloadMatrix(std::uint64_t instr_per_core, std::uint64_t seed = 1,
                  std::size_t jobs = 0, bool progress = true,
                  const TelemetryOptions &opts = {},
                  MatrixTelemetry *telemetry_out = nullptr);

/**
 * runWorkloadMatrix() plus the file side of the telemetry flags:
 * writes --trace (validated as JSON, fatal() if malformed) and
 * --metrics outputs when requested. The shared entry point for the
 * figure-7..10 mains.
 */
std::vector<TraceCpuResult>
runWorkloadMatrixWithTelemetry(std::uint64_t instr_per_core,
                               std::uint64_t seed, std::size_t jobs,
                               const TelemetryOptions &opts);

/** Locate a result in the matrix. */
const TraceCpuResult &find(const std::vector<TraceCpuResult> &matrix,
                           const std::string &workload,
                           NetId net);

/** Instructions per core: argv[1] if given, else @p fallback. */
std::uint64_t instructionsArg(int argc, char **argv,
                              std::uint64_t fallback);

/**
 * If simStatsEnabled(), dump @p sim's full telemetry registry
 * (simcore, net, arch subtrees) as one "[simstats] label: ..."
 * stderr line. Thread-safe: sweep cells call this from worker
 * threads.
 */
void dumpSimStats(const std::string &label, const Simulator &sim);

/**
 * Dump @p sim's event-loop self-profile table to stderr under
 * @p label (one serialized block; sweep cells may call this from
 * worker threads). No-op unless the sim's profiler was enabled.
 */
void dumpEventProfile(const std::string &label, const Simulator &sim);

/**
 * Append @p sim's event-loop self-profile to @p sink as spans on a
 * synthetic "event-loop profile" thread of @p pid: one span per tag,
 * laid end to end, span length = wall-clock ns spent (1 ns = 1 tick),
 * with count/wall_ns args. Gives the trace the profiler's story
 * without a separate report.
 */
void traceEventProfile(TraceSink &sink, std::uint32_t pid,
                       const Simulator &sim);

/** Write @p text to @p path; fatal() on any I/O failure. */
void writeTextFile(const std::string &path, const std::string &text);

/**
 * Arm a sampler that snapshots every "*.occupancy"-suffixed stat of
 * @p sim's registry into @p sink as Perfetto counter tracks, every
 * @p period ticks. Keep the returned sampler alive for the run.
 */
std::unique_ptr<PeriodicSampler>
occupancyCounterSampler(Simulator &sim, TraceSink &sink,
                        std::uint32_t pid, Tick period);

} // namespace macrosim::bench

#endif // MACROSIM_BENCH_HARNESS_HH
