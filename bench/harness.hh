/**
 * @file
 * Shared support for the per-table / per-figure bench binaries:
 * network factories, the figure 7-10 workload matrix, and table
 * printing helpers.
 */

#ifndef MACROSIM_BENCH_HARNESS_HH
#define MACROSIM_BENCH_HARNESS_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/circuit_switched.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "workloads/packet_injector.hh"
#include "workloads/trace_cpu.hh"

namespace macrosim::bench
{

enum class NetId
{
    TokenRing,
    CircuitSwitched,
    PointToPoint,
    LimitedPtToPt,
    TwoPhase,
    TwoPhaseAlt,
};

/** Figure order: the paper's legend ordering. */
constexpr std::array<NetId, 6> allNetworks = {
    NetId::TokenRing,    NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase,       NetId::TwoPhaseAlt,
};

/** The five networks of figure 6 (no ALT variant there). */
constexpr std::array<NetId, 5> fig6Networks = {
    NetId::TokenRing, NetId::CircuitSwitched, NetId::PointToPoint,
    NetId::LimitedPtToPt, NetId::TwoPhase,
};

std::string netName(NetId id);

std::unique_ptr<Network> makeNetwork(NetId id, Simulator &sim,
                                     const MacrochipConfig &cfg);

/** Figure 7 x-axis order: six applications then five synthetics. */
std::vector<WorkloadSpec> figureWorkloads(std::uint64_t instr_per_core);

/**
 * Run every (workload x network) pair of figures 7-10, fanned out
 * over @p jobs worker threads (0 = --jobs / MACROSIM_JOBS /
 * hardware_concurrency), and collect the results in figure order.
 * Each cell runs in its own Simulator with a seed derived from
 * (@p seed, workload, network), so the matrix is bit-identical for
 * every jobs value. Emits one progress line per cell to stderr.
 */
std::vector<TraceCpuResult>
runWorkloadMatrix(std::uint64_t instr_per_core, std::uint64_t seed = 1,
                  std::size_t jobs = 0, bool progress = true);

/** Locate a result in the matrix. */
const TraceCpuResult &find(const std::vector<TraceCpuResult> &matrix,
                           const std::string &workload,
                           NetId net);

/** Instructions per core: argv[1] if given, else @p fallback. */
std::uint64_t instructionsArg(int argc, char **argv,
                              std::uint64_t fallback);

/**
 * Worker-thread knob shared by every bench: strips "--jobs N" from
 * argv (so positional arguments keep their place) and returns N, or
 * 0 when unset — in which case SweepRunner falls back to
 * MACROSIM_JOBS and then hardware_concurrency().
 */
std::size_t jobsArg(int &argc, char **argv);

/**
 * Event-core observability knob shared by every bench: strips
 * "--sim-stats" from argv and enables per-simulation EventQueueStats
 * reporting. The MACROSIM_SIM_STATS environment variable (any
 * non-empty value except "0") enables it too, flag or no flag.
 *
 * @return Whether stats reporting is now enabled.
 */
bool simStatsArg(int &argc, char **argv);

/** Whether --sim-stats / MACROSIM_SIM_STATS is in effect. */
bool simStatsEnabled();

/**
 * If simStatsEnabled(), dump @p sim's event-queue stats (registered
 * through a StatGroup) as one "[simstats] label: ..." stderr line.
 * Thread-safe: sweep cells call this from worker threads.
 */
void dumpSimStats(const std::string &label, const Simulator &sim);

} // namespace macrosim::bench

#endif // MACROSIM_BENCH_HARNESS_HH
