/**
 * @file
 * Extension bench: three additional SPLASH-2 kernels (FFT, LU,
 * Ocean) beyond the paper's Table 2 set, on all six networks.
 *
 * Expected shape, extrapolating figure 7: FFT behaves like radix
 * (transpose-heavy, point-to-point strong); LU behaves like barnes
 * (low miss rate, small spreads); Ocean's neighbor locality favours
 * the limited point-to-point the way fluidanimate does.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::uint64_t instr = instructionsArg(argc, argv, 1200);

    std::printf("Extended application kernels: speedup vs "
                "circuit-switched / latency per op (ns)\n\n");
    std::printf("%-10s", "workload");
    for (const NetId id : allNetworks)
        std::printf(" %22s", netName(id).c_str());
    std::printf("\n");

    for (WorkloadSpec spec : extendedWorkloads()) {
        spec.instructionsPerCore = instr;
        struct Row
        {
            Tick runtime;
            double opLat;
        };
        std::vector<Row> rows;
        for (const NetId id : allNetworks) {
            Simulator sim(3);
            auto net = makeNetwork(id, sim, simulatedConfig());
            TraceCpuSystem cpu(sim, *net, spec, 5);
            const TraceCpuResult r = cpu.run();
            rows.push_back({r.runtime, r.opLatencyNs});
        }
        const double cs_runtime =
            static_cast<double>(rows[1].runtime); // CS is index 1
        std::printf("%-10s", spec.name.c_str());
        for (const Row &r : rows) {
            std::printf("        %6.2fx /%6.1f",
                        cs_runtime / static_cast<double>(r.runtime),
                        r.opLat);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
