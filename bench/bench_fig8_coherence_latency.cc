/**
 * @file
 * Regenerates Figure 8: average latency per coherence operation (ns)
 * for each workload on each network.
 *
 * Shape targets from the paper: the point-to-point network stays at
 * or below ~54 ns on the application kernels and ~100 ns on the
 * synthetics, while the arbitrated and circuit-switched networks
 * reach hundreds of nanoseconds.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchFlags flags = benchFlags(argc, argv, 1);
    const std::size_t jobs = flags.jobs;
    const std::uint64_t seed = flags.seed;
    const TelemetryOptions &topt = flags.telemetry;
    const std::uint64_t instr =
        instructionsArg(argc, argv, topt.smoke ? 200 : 1200);
    const auto matrix =
        runWorkloadMatrixWithTelemetry(instr, seed, jobs, topt);
    if (sweepInterrupted())
        return sweepExitStatus();

    std::printf("Figure 8: Latency per Coherence Operation (ns)\n\n");
    std::printf("%-14s", "workload");
    for (const NetId id : allNetworks)
        std::printf(" %16s", netName(id).c_str());
    std::printf("\n");

    for (const WorkloadSpec &spec : figureWorkloads(instr)) {
        std::printf("%-14s", spec.name.c_str());
        for (const NetId id : allNetworks) {
            std::printf(" %16.1f",
                        find(matrix, spec.name, id).opLatencyNs);
        }
        std::printf("\n");
    }
    return sweepExitStatus();
}
