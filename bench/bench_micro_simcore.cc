/**
 * @file
 * google-benchmark microbenchmarks of the simulation core: event
 * queue throughput, RNG speed, channel reservation, and a full
 * point-to-point network packet path. These track the simulator's
 * own performance (events/second), not the modelled system.
 */

#include <benchmark/benchmark.h>

#include "net/pt2pt.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "workloads/patterns.hh"

using namespace macrosim;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            q.schedule(static_cast<Tick>(i * 7 % 997),
                       [&sink] { ++sink; });
        q.runUntil();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(42);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc += rng.next();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_ChannelTransmit(benchmark::State &state)
{
    OpticalChannel ch(2, 250);
    Tick t = 0;
    for (auto _ : state) {
        t = ch.transmit(t, 64);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTransmit);

void
BM_PointToPointPacket(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim(1);
        PointToPointNetwork net(sim, simulatedConfig());
        net.setDefaultHandler([](const Message &) {});
        Rng rng(7);
        state.ResumeTiming();
        for (int i = 0; i < 512; ++i) {
            Message m;
            m.src = static_cast<SiteId>(rng.below(64));
            m.dst = static_cast<SiteId>(rng.below(64));
            net.inject(m);
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PointToPointPacket);

void
BM_DestinationGenerator(benchmark::State &state)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(
        static_cast<TrafficPattern>(state.range(0)), geom);
    Rng rng(3);
    SiteId acc = 0;
    for (auto _ : state)
        acc ^= gen.next(acc % 64, rng);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DestinationGenerator)->DenseRange(0, 4);

} // namespace

BENCHMARK_MAIN();
