/**
 * @file
 * Microbenchmarks of the simulation core. Two layers:
 *
 * 1. A pinned event-core throughput baseline: three fixed scenarios
 *    (push-pop, cancel-heavy, same-tick-burst) timed with
 *    steady_clock and emitted both to stdout and to
 *    BENCH_simcore.json, so the events/sec trajectory is tracked
 *    across PRs. Events/sec counts every core operation performed
 *    (schedule + cancel + execute).
 * 2. google-benchmark micros of the queue, RNG, channel reservation
 *    and a full point-to-point packet path.
 *
 * These track the simulator's own performance, not the modelled
 * system.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "net/pt2pt.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "workloads/patterns.hh"

using namespace macrosim;

namespace
{

// ---------------------------------------------------------------
// Pinned throughput scenarios (BENCH_simcore.json)
// ---------------------------------------------------------------

/**
 * Schedule a spread of 4096 events, then drain: the pure
 * sift-up/sift-down path with zero cancellation.
 */
std::uint64_t
scenarioPushPop()
{
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 4096; ++i)
        q.schedule(static_cast<Tick>(i * 7 % 997), [&sink] { ++sink; });
    q.runUntil();
    benchmark::DoNotOptimize(sink);
    return 2 * 4096; // schedules + executions
}

/**
 * Cancellation churn: ~75% of scheduled events are cancelled from a
 * random live set while scheduling continues, then the queue drains.
 * This is the token-ring grant-re-arm pattern at maximum intensity,
 * and the scenario the tombstone-compacting arena is built for.
 */
std::uint64_t
scenarioCancelHeavy()
{
    EventQueue q;
    Rng rng(42);
    int sink = 0;
    std::uint64_t ops = 0;
    std::vector<EventId> live;
    live.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        live.push_back(
            q.schedule(q.now() + 1 + static_cast<Tick>(rng.below(997)),
                       [&sink] { ++sink; }));
        ++ops;
        if (live.size() >= 2 && (i & 1)) {
            for (int burst = 0; burst < 2 && !live.empty(); ++burst) {
                const std::size_t k = rng.below(live.size());
                q.cancel(live[k]);
                ++ops;
                live[k] = live.back();
                live.pop_back();
            }
        }
    }
    ops += q.runUntil();
    benchmark::DoNotOptimize(sink);
    return ops;
}

/**
 * Same-tick bursts: 16 ticks x 256 FIFO events each — the pattern a
 * saturated network produces, and the worst case for heap churn at a
 * single timestamp.
 */
std::uint64_t
scenarioSameTickBurst()
{
    EventQueue q;
    int sink = 0;
    for (int t = 0; t < 16; ++t) {
        for (int i = 0; i < 256; ++i)
            q.schedule(static_cast<Tick>(t * 10), [&sink] { ++sink; });
    }
    q.runUntil();
    benchmark::DoNotOptimize(sink);
    return 2 * 16 * 256;
}

/** Repeat @p scenario until >= ~0.3 s of wall time; return ops/sec. */
template <typename Scenario>
double
eventsPerSec(Scenario &&scenario)
{
    using Clock = std::chrono::steady_clock;
    // Warm up allocators and caches.
    scenario();
    std::uint64_t ops = 0;
    double seconds = 0.0;
    while (seconds < 0.3) {
        const Clock::time_point t0 = Clock::now();
        for (int i = 0; i < 20; ++i)
            ops += scenario();
        seconds += std::chrono::duration<double>(Clock::now() - t0)
                       .count();
    }
    return static_cast<double>(ops) / seconds;
}

/**
 * Run the three pinned scenarios and emit one JSON line to stdout
 * and to BENCH_simcore.json in the working directory.
 */
void
emitSimcoreBaseline()
{
    const double push_pop = eventsPerSec(scenarioPushPop);
    const double cancel_heavy = eventsPerSec(scenarioCancelHeavy);
    const double burst = eventsPerSec(scenarioSameTickBurst);

    char json[256];
    std::snprintf(json, sizeof(json),
                  "{\"bench\":\"simcore\","
                  "\"push_pop_events_per_sec\":%.6e,"
                  "\"cancel_heavy_events_per_sec\":%.6e,"
                  "\"same_tick_burst_events_per_sec\":%.6e}",
                  push_pop, cancel_heavy, burst);
    std::printf("%s\n", json);
    std::fflush(stdout);
    if (std::FILE *f = std::fopen("BENCH_simcore.json", "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    } else {
        std::fprintf(stderr,
                     "bench_micro_simcore: cannot write "
                     "BENCH_simcore.json\n");
    }
}

// ---------------------------------------------------------------
// google-benchmark micros
// ---------------------------------------------------------------

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            q.schedule(static_cast<Tick>(i * 7 % 997),
                       [&sink] { ++sink; });
        q.runUntil();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(scenarioCancelHeavy());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void
BM_EventQueueSameTickBurst(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(scenarioSameTickBurst());
    }
    state.SetItemsProcessed(state.iterations() * 16 * 256);
}
BENCHMARK(BM_EventQueueSameTickBurst);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(42);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc += rng.next();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void
BM_ChannelTransmit(benchmark::State &state)
{
    OpticalChannel ch(2, 250);
    Tick t = 0;
    for (auto _ : state) {
        t = ch.transmit(t, 64);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelTransmit);

void
BM_PointToPointPacket(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim(1);
        PointToPointNetwork net(sim, simulatedConfig());
        net.setDefaultHandler([](const Message &) {});
        Rng rng(7);
        state.ResumeTiming();
        for (int i = 0; i < 512; ++i) {
            Message m;
            m.src = static_cast<SiteId>(rng.below(64));
            m.dst = static_cast<SiteId>(rng.below(64));
            net.inject(m);
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PointToPointPacket);

void
BM_DestinationGenerator(benchmark::State &state)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(
        static_cast<TrafficPattern>(state.range(0)), geom);
    Rng rng(3);
    SiteId acc = 0;
    for (auto _ : state)
        acc ^= gen.next(acc % 64, rng);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DestinationGenerator)->DenseRange(0, 4);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    emitSimcoreBaseline();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
