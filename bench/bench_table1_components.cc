/**
 * @file
 * Regenerates Table 1 (optical component properties) and the
 * section 2 link-budget arithmetic: 17 dB un-switched link loss,
 * 0 dBm launch, -21 dBm sensitivity, 4 dB margin.
 */

#include <cstdio>
#include <string>

#include "photonics/link_budget.hh"

using namespace macrosim;

int
main()
{
    std::printf("Table 1: Optical Component Properties\n");
    std::printf("%-22s %14s %12s %12s\n", "Component", "Energy",
                "Static (mW)", "Loss (dB)");
    const Component rows[] = {
        Component::Modulator,       Component::OpxcCoupler,
        Component::WaveguideLocal,  Component::WaveguideGlobal,
        Component::DropFilterPass,  Component::DropFilterDrop,
        Component::Multiplexer,     Component::Receiver,
        Component::Switch,          Component::Laser,
        Component::ModulatorOff,    Component::InterLayerCoupler,
    };
    for (const Component c : rows) {
        const ComponentProperties &p = properties(c);
        std::printf("%-22s %9.1f fJ/b %12.2f %12.2f\n",
                    std::string(p.name).c_str(), p.dynamicEnergy.value,
                    p.staticPower.value, p.insertionLoss.value());
    }

    const OpticalPath link = canonicalUnswitchedLink();
    std::printf("\nCanonical un-switched link:\n");
    std::printf("  total loss      %6.2f dB (paper: 17 dB)\n",
                link.totalLoss().value());
    std::printf("  received power  %6.2f dBm at 0 dBm launch\n",
                link.receivedPower().value());
    std::printf("  margin          %6.2f dB over -21 dBm sensitivity "
                "(paper: 4 dB)\n",
                link.margin().value());
    std::printf("  link closes     %s\n",
                link.closes() ? "yes" : "NO");
    return link.closes() ? 0 : 1;
}
