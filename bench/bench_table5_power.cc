/**
 * @file
 * Regenerates Table 5 (network optical power): per-network power
 * loss factor and total laser power, derived from each topology's
 * analytic descriptor.
 *
 * Paper reference values: Token-Ring 19x / 155 W, Point-to-Point
 * 1x / 8 W, Circuit-Switched 30x / 245 W, Limited Pt-to-Pt 1x / 8 W,
 * Two-Phase data 5x / 41 W (ALT 4x / 65.5 W), arbitration 8x / 1 W.
 */

#include <cstdio>

#include "harness.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main()
{
    std::printf("Table 5: Network Optical Power\n");
    std::printf("%-26s %12s %12s %14s\n", "Network Type", "Loss Factor",
                "Laser P (W)", "10mW sources");

    Simulator sim;
    const MacrochipConfig cfg = simulatedConfig();
    for (const NetId id : allNetworks) {
        auto net = makeNetwork(id, sim, cfg);
        for (const LaserPowerSpec &spec : net->opticalPower()) {
            std::printf("%-26s %11.2fx %12.1f %14llu\n",
                        spec.name.c_str(), spec.lossFactor,
                        spec.watts(),
                        static_cast<unsigned long long>(
                            spec.laserSources()));
        }
    }

    std::printf("\nTotal static power (lasers + ring tuning + switch "
                "bias):\n");
    for (const NetId id : allNetworks) {
        auto net = makeNetwork(id, sim, cfg);
        std::printf("%-26s %12.1f W\n", netName(id).c_str(),
                    net->staticWatts());
    }
    return 0;
}
