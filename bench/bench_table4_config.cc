/**
 * @file
 * Regenerates Table 4 (simulated macrochip configuration) and the
 * section 3 full-scale system parameters.
 */

#include <cstdio>

#include "arch/config.hh"

using namespace macrosim;

namespace
{

void
printConfig(const char *title, const MacrochipConfig &c)
{
    std::printf("%s\n", title);
    std::printf("  Number of sites          %u\n", c.siteCount());
    std::printf("  Cores per site           %u\n", c.coresPerSite);
    std::printf("  Threads per core         %u\n", c.threadsPerCore);
    std::printf("  Shared L2 per site       %u KB\n",
                c.l2CacheBytes / 1024);
    std::printf("  Bandwidth per site       %.0f GB/s\n",
                c.siteBandwidthBytesPerNs());
    std::printf("  Total peak bandwidth     %.2f TB/s\n",
                c.peakBandwidthTBs());
    std::printf("  Tx/Rx per site           %u / %u at 20 Gb/s\n",
                c.txPerSite, c.rxPerSite);
    std::printf("  Wavelengths/waveguide    %u\n",
                c.wavelengthsPerWaveguide);
    std::printf("  Clock                    %.1f GHz\n",
                c.clock().frequencyGhz());
    std::printf("\n");
}

} // namespace

int
main()
{
    printConfig("Table 4: Simulated Macrochip Configuration",
                simulatedConfig());
    printConfig("Section 3: Full-scale 2015 target", fullScaleConfig());
    return 0;
}
