/**
 * @file
 * Regenerates Figure 9: energy used by the electronic routers of the
 * limited point-to-point network as a percentage of its total
 * network energy, per workload.
 *
 * Shape targets from the paper: at most ~17% on the synthetic
 * workloads and ~10.4% on the application kernels.
 */

#include <cstdio>
#include <utility>

#include "harness.hh"
#include "sweep.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchFlags flags = benchFlags(argc, argv, 1);
    const std::size_t jobs = flags.jobs;
    const std::uint64_t seed = flags.seed;
    const std::uint64_t instr = instructionsArg(argc, argv, 1200);

    std::printf("Figure 9: Router Energy in the Limited "
                "Point-to-Point Network (%% of total system "
                "energy)\n\n");
    std::printf("%-14s %12s %14s %14s %14s\n", "workload",
                "router_pct", "router_mJ", "network_mJ", "cpu_mJ");

    std::vector<SweepJob<TraceCpuResult>> sweep;
    for (WorkloadSpec spec : figureWorkloads(instr)) {
        const std::uint64_t cell_seed =
            deriveSeed(seed, spec.name, "Limited Point-to-Point");
        sweep.push_back(SweepJob<TraceCpuResult>{
            spec.name, [spec = std::move(spec), cell_seed] {
                Simulator sim(cell_seed);
                LimitedPointToPointNetwork net(sim, simulatedConfig());
                TraceCpuSystem cpu(sim, net, spec, mix64(cell_seed));
                return cpu.run();
            }});
    }

    const std::vector<TraceCpuResult> results =
        SweepRunner(jobs).run("fig9-workloads", std::move(sweep));
    if (sweepInterrupted())
        return sweepExitStatus();
    for (const TraceCpuResult &r : results) {
        std::printf("%-14s %11.2f%% %14.4f %14.4f %14.4f\n",
                    r.workload.c_str(), r.routerEnergyPct(),
                    r.routerJoules * 1e3, r.totalJoules * 1e3,
                    r.cpuJoules * 1e3);
    }
    return sweepExitStatus();
}
