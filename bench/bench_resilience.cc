/**
 * @file
 * Availability sweep under fault injection: fault rate x topology.
 *
 * Each cell runs the open-loop injector (uniform traffic, fixed
 * offered load) against one network while a seeded FaultSchedule
 * degrades it: laser droop, ring drift, waveguide creep, receiver
 * degradation, hard channel/site kills, and paired repairs. The
 * network runs under a bounded-retry policy, so packets that hit a
 * dead resource back off and re-route instead of dying; what cannot
 * be saved is counted as a drop. The table reports per-cell
 * availability (delivered / injected), achieved throughput as a
 * fraction of the per-site peak, the p99 latency (retries fatten the
 * tail), and the fault model's own counters.
 *
 * Determinism: each cell's simulator, injector and fault schedule
 * are seeded with deriveSeed(seed, "resilience-f<N>", network), so
 * the table is bit-identical for any --jobs value.
 *
 * Flags: --jobs N, --seed N, --smoke (reduced rates and window for
 * the CI smoke test), plus the shared telemetry flags.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hh"
#include "fault/injector.hh"
#include "harness.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sweep.hh"
#include "workloads/packet_injector.hh"
#include "workloads/patterns.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

struct Cell
{
    NetId id = NetId::PointToPoint;
    std::uint32_t faults = 0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t retried = 0;
    double availabilityPct = 0.0;
    double minMarginDb = 0.0;
    InjectorResult traffic;
};

Cell
runCell(NetId id, std::uint32_t faults, std::uint64_t seed,
        const TelemetryOptions &topt)
{
    const std::uint64_t cell_seed = deriveSeed(
        seed, "resilience-f" + std::to_string(faults), netName(id));

    Simulator sim(cell_seed);
    auto net = makeNetwork(id, sim, simulatedConfig());

    RetryPolicy retry;
    retry.backoffBase = 50 * tickNs;
    retry.maxAttempts = 4;
    net->setRetryPolicy(retry);

    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = 0.10;
    cfg.warmup = topt.smoke ? 500 * tickNs : 2000 * tickNs;
    cfg.window = topt.smoke ? 2500 * tickNs : 10000 * tickNs;
    cfg.seed = cell_seed;

    RandomFaultConfig fault_cfg;
    fault_cfg.events = faults;
    fault_cfg.horizon = cfg.warmup + cfg.window;
    FaultInjector injector(
        sim, *net,
        FaultSchedule::random(cell_seed, fault_cfg, *net));
    injector.arm();

    Cell cell;
    cell.id = id;
    cell.faults = faults;
    cell.traffic = runOpenLoop(sim, *net, cfg);
    cell.injected = net->stats().injected.value();
    cell.delivered = net->stats().delivered.value();
    cell.dropped = net->droppedPackets();
    cell.retried = net->retriedPackets();
    cell.availabilityPct = cell.injected > 0
        ? static_cast<double>(cell.delivered)
            / static_cast<double>(cell.injected) * 100.0
        : 100.0;
    cell.minMarginDb = injector.minMarginDb();

    if (simStatsEnabled()) {
        dumpSimStats(netName(id) + " @ " + std::to_string(faults)
                     + " faults", sim);
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchFlags flags = benchFlags(argc, argv, 1);
    const std::size_t jobs = flags.jobs;
    const std::uint64_t seed = flags.seed;
    const TelemetryOptions &topt = flags.telemetry;

    std::vector<std::uint32_t> rates = {0, 8, 16, 32};
    if (topt.smoke)
        rates = {0, 8};

    std::printf("Resilience: availability under fault injection "
                "(uniform traffic @ 10%% load, bounded retry)\n\n");
    std::printf("network,faults,injected,delivered,dropped,retried,"
                "availability_pct,throughput_pct,p99_ns,"
                "min_margin_db\n");

    std::vector<SweepJob<Cell>> sweep;
    for (const std::uint32_t faults : rates) {
        for (const NetId id : extendedNetworks) {
            sweep.push_back(SweepJob<Cell>{
                netName(id) + " @ " + std::to_string(faults)
                    + " faults",
                [id, faults, seed, &topt] {
                    return runCell(id, faults, seed, topt);
                }});
        }
    }

    const std::vector<Cell> cells =
        SweepRunner(jobs).run("resilience", std::move(sweep));
    if (sweepInterrupted())
        return sweepExitStatus();
    for (const Cell &c : cells) {
        std::printf("%s,%u,%llu,%llu,%llu,%llu,%.3f,%.2f,%.1f,"
                    "%.2f\n",
                    netName(c.id).c_str(), c.faults,
                    static_cast<unsigned long long>(c.injected),
                    static_cast<unsigned long long>(c.delivered),
                    static_cast<unsigned long long>(c.dropped),
                    static_cast<unsigned long long>(c.retried),
                    c.availabilityPct, c.traffic.deliveredPct,
                    c.traffic.p99LatencyNs, c.minMarginDb);
    }
    return sweepExitStatus();
}
