/**
 * @file
 * Extension bench: message-passing workloads (the paper's section 8
 * future work) — three collectives at cache-line and bulk message
 * sizes on all six networks.
 *
 * Finding: the paper's conclusion is message-size dependent. At
 * cache-line sizes (64 B) the point-to-point network's zero-overhead
 * channels win exactly as in figures 7/8. At bulk MPI sizes (4 KB)
 * the 2-bit point-to-point channels become serialization-bound
 * (4 KB at 5 GB/s is 819 ns) and the wide-datapath networks the
 * paper rejects for coherence traffic — the 320 GB/s token-ring
 * bundles and 80 GB/s circuits, whose arbitration/setup overheads
 * amortize over the payload — win instead. This is the quantitative
 * version of section 8's open question about message-passing
 * workloads.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"
#include "workloads/message_passing.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main()
{
    setQuiet(true);
    std::printf("Message-passing collectives: communication time per "
                "iteration (ns)\n\n");

    const struct
    {
        Collective collective;
        std::uint32_t bytes;
    } workloads[] = {
        {Collective::HaloExchange, 64},
        {Collective::HaloExchange, 4096},
        {Collective::AllToAll, 64},
        {Collective::AllToAll, 4096},
        {Collective::AllReduce, 64},
        {Collective::AllReduce, 4096},
    };

    std::printf("%-16s %8s", "collective", "bytes");
    for (const NetId id : allNetworks)
        std::printf(" %17s", netName(id).c_str());
    std::printf("\n");

    for (const auto &w : workloads) {
        std::printf("%-16s %8u",
                    std::string(to_string(w.collective)).c_str(),
                    w.bytes);
        for (const NetId id : allNetworks) {
            Simulator sim(5);
            auto net = makeNetwork(id, sim, simulatedConfig());
            MpiWorkloadSpec spec;
            spec.collective = w.collective;
            spec.messageBytes = w.bytes;
            spec.iterations = 5;
            spec.computeTime = 100 * tickNs;
            MessagePassingSystem mpi(sim, *net, spec);
            const MpiResult res = mpi.run();
            std::printf(" %17.1f",
                        res.commNsPerIteration(spec.computeTime));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
