/**
 * @file
 * Regenerates Figure 10: energy-delay product of every network,
 * normalized to the point-to-point network (log scale in the paper).
 *
 * Shape targets: the arbitrated and circuit-switched networks exceed
 * 100x the point-to-point EDP on most application kernels; the
 * limited point-to-point stays within ~26x.
 */

#include <cmath>
#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchFlags flags = benchFlags(argc, argv, 1);
    const std::size_t jobs = flags.jobs;
    const std::uint64_t seed = flags.seed;
    const TelemetryOptions &topt = flags.telemetry;
    const std::uint64_t instr =
        instructionsArg(argc, argv, topt.smoke ? 200 : 1200);
    const auto matrix =
        runWorkloadMatrixWithTelemetry(instr, seed, jobs, topt);
    if (sweepInterrupted())
        return sweepExitStatus();

    std::printf("Figure 10: Energy-Delay Product, Normalized to "
                "Point-to-Point\n\n");
    std::printf("%-14s", "workload");
    for (const NetId id : allNetworks)
        std::printf(" %16s", netName(id).c_str());
    std::printf("\n");

    for (const WorkloadSpec &spec : figureWorkloads(instr)) {
        const double p2p_edp =
            find(matrix, spec.name, NetId::PointToPoint).edp;
        std::printf("%-14s", spec.name.c_str());
        for (const NetId id : allNetworks) {
            const auto &r = find(matrix, spec.name, id);
            std::printf(" %16.1f", r.edp / p2p_edp);
        }
        std::printf("\n");
    }

    std::printf("\nlog10 of the same (the paper plots a log axis):\n");
    for (const WorkloadSpec &spec : figureWorkloads(instr)) {
        const double p2p_edp =
            find(matrix, spec.name, NetId::PointToPoint).edp;
        std::printf("%-14s", spec.name.c_str());
        for (const NetId id : allNetworks) {
            const auto &r = find(matrix, spec.name, id);
            std::printf(" %16.2f", std::log10(r.edp / p2p_edp));
        }
        std::printf("\n");
    }
    return sweepExitStatus();
}
