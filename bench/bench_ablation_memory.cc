/**
 * @file
 * Ablation: main-memory technology (the paper's section 8 future
 * work: "the performance impacts of different memory technologies").
 *
 * Sweeps the flat fiber-attached memory latency and re-measures the
 * swaptions kernel on the fastest and slowest networks. As memory
 * slows down, the memory term dominates every transaction equally
 * and the network speedup compresses — quantifying how much of the
 * paper's figure 7 spread is attributable to the network itself.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::uint64_t instr = instructionsArg(argc, argv, 1200);
    WorkloadSpec spec = workloadByName("swaptions");
    spec.instructionsPerCore = instr;

    std::printf("Memory-latency ablation (swaptions, %llu "
                "instr/core)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%10s %14s %14s %14s %12s\n", "mem (ns)",
                "p2p op (ns)", "CS op (ns)", "p2p rt (ns)",
                "p2p speedup");

    for (const Tick mem_ns : {Tick{0}, Tick{25}, Tick{50}, Tick{100},
                              Tick{200}}) {
        MacrochipConfig cfg = simulatedConfig();
        cfg.memoryLatency = mem_ns * tickNs;

        Simulator sim_a(3);
        PointToPointNetwork p2p(sim_a, cfg);
        const auto a = TraceCpuSystem(sim_a, p2p, spec, 7).run();

        Simulator sim_b(3);
        CircuitSwitchedTorus cs(sim_b, cfg);
        const auto b = TraceCpuSystem(sim_b, cs, spec, 7).run();

        std::printf("%10llu %14.1f %14.1f %14.0f %12.2f\n",
                    static_cast<unsigned long long>(mem_ns),
                    a.opLatencyNs, b.opLatencyNs, a.runtimeNs(),
                    static_cast<double>(b.runtime)
                        / static_cast<double>(a.runtime));
        std::fflush(stdout);
    }
    std::printf("\nSpeedup compresses as memory dominates: the "
                "figure 7 spread is a *network* effect.\n");
    return 0;
}
