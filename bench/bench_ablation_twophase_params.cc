/**
 * @file
 * Ablation: the two-phase network's open protocol parameters.
 *
 * The paper pins the 0.4 ns arbitration slot and the shared-channel
 * width but not the switch settling time, the sender-change guard,
 * or the notification message length. This sweep quantifies how the
 * figure 6 uniform saturation point moves with each: the
 * notification length is the first-order term (it sets the grant
 * rate per column manager), which is how DESIGN.md's 8 B choice
 * anchors the base design near the paper's 7.5%.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

double
sustainedUniform(const TwoPhaseParams &params)
{
    Simulator sim(3);
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig(), false,
                                  params);
    InjectorConfig cfg;
    cfg.load = 0.20; // deep overload for the base design
    cfg.warmup = 500 * tickNs;
    cfg.window = 2000 * tickNs;
    cfg.seed = 3;
    return runOpenLoop(sim, net, cfg).deliveredPct;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Two-phase protocol-parameter ablation "
                "(uniform, sustained %% of peak)\n\n");

    std::printf("notification bytes (grant rate):\n");
    for (const std::uint32_t bytes : {4u, 8u, 16u}) {
        TwoPhaseParams p;
        p.notificationBytes = bytes;
        std::printf("  %3u B -> %6.2f%%%s\n", bytes,
                    sustainedUniform(p),
                    bytes == 8 ? "   <- DESIGN.md default" : "");
        std::fflush(stdout);
    }

    std::printf("\nswitch settling time:\n");
    for (const Tick setup_ns : {Tick{0}, Tick{1}, Tick{2}, Tick{4}}) {
        TwoPhaseParams p;
        p.switchSetup = setup_ns * tickNs;
        std::printf("  %3llu ns -> %6.2f%%%s\n",
                    static_cast<unsigned long long>(setup_ns),
                    sustainedUniform(p),
                    setup_ns == 1 ? "   <- DESIGN.md default" : "");
        std::fflush(stdout);
    }

    std::printf("\nsender-change guard:\n");
    for (const Tick guard_ns : {Tick{0}, Tick{1}, Tick{2}}) {
        TwoPhaseParams p;
        p.senderGuard = guard_ns * tickNs;
        std::printf("  %3llu ns -> %6.2f%%%s\n",
                    static_cast<unsigned long long>(guard_ns),
                    sustainedUniform(p),
                    guard_ns == 1 ? "   <- DESIGN.md default" : "");
        std::fflush(stdout);
    }
    return 0;
}
