#include "harness.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sweep.hh"

namespace macrosim::bench
{

std::string
netName(NetId id)
{
    switch (id) {
      case NetId::TokenRing: return "Token Ring";
      case NetId::CircuitSwitched: return "Circuit-Switched";
      case NetId::PointToPoint: return "Point-to-Point";
      case NetId::LimitedPtToPt: return "Limited Point-to-Point";
      case NetId::TwoPhase: return "2-Phase Arb.";
      case NetId::TwoPhaseAlt: return "2-Phase Arb. ALT";
    }
    return "?";
}

std::unique_ptr<Network>
makeNetwork(NetId id, Simulator &sim, const MacrochipConfig &cfg)
{
    switch (id) {
      case NetId::TokenRing:
        return std::make_unique<TokenRingCrossbar>(sim, cfg);
      case NetId::CircuitSwitched:
        return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
      case NetId::PointToPoint:
        return std::make_unique<PointToPointNetwork>(sim, cfg);
      case NetId::LimitedPtToPt:
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
      case NetId::TwoPhase:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
      case NetId::TwoPhaseAlt:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                           true);
    }
    panic("makeNetwork: bad id");
}

std::vector<WorkloadSpec>
figureWorkloads(std::uint64_t instr_per_core)
{
    std::vector<WorkloadSpec> all = applicationWorkloads();
    const auto synth = syntheticWorkloads();
    all.insert(all.end(), synth.begin(), synth.end());
    for (auto &spec : all)
        spec.instructionsPerCore = instr_per_core;
    return all;
}

std::vector<TraceCpuResult>
runWorkloadMatrix(std::uint64_t instr_per_core, std::uint64_t seed,
                  std::size_t jobs, bool progress)
{
    std::vector<SweepJob<TraceCpuResult>> cells;
    for (const WorkloadSpec &spec : figureWorkloads(instr_per_core)) {
        for (const NetId id : allNetworks) {
            const std::string net_name = netName(id);
            // The cell's streams depend only on (root seed,
            // workload, network): bit-identical for any jobs value.
            const std::uint64_t cell_seed =
                deriveSeed(seed, spec.name, net_name);
            cells.push_back(SweepJob<TraceCpuResult>{
                spec.name + " on " + net_name,
                [spec, id, net_name, cell_seed, progress] {
                    Simulator sim(cell_seed);
                    auto net = makeNetwork(id, sim, simulatedConfig());
                    TraceCpuSystem cpu(sim, *net, spec,
                                       mix64(cell_seed));
                    TraceCpuResult r = cpu.run();
                    dumpSimStats(spec.name + " on " + net_name, sim);
                    if (progress) {
                        std::ostringstream line;
                        line << "  [matrix] " << spec.name << " on "
                             << netName(id) << ": runtime "
                             << r.runtimeNs() << " ns";
                        sweepLog(line.str());
                    }
                    return r;
                }});
        }
    }
    return SweepRunner(jobs, progress)
        .run("workload-matrix", std::move(cells));
}

const TraceCpuResult &
find(const std::vector<TraceCpuResult> &matrix,
     const std::string &workload, NetId net)
{
    const std::string wanted = netName(net);
    for (const auto &r : matrix) {
        if (r.workload == workload && r.network == wanted)
            return r;
    }
    panic("bench::find: no result for ", workload, " on ", wanted);
}

std::uint64_t
instructionsArg(int argc, char **argv, std::uint64_t fallback)
{
    if (argc > 1) {
        const long v = std::atol(argv[1]);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return fallback;
}

std::size_t
jobsArg(int &argc, char **argv)
{
    return stripJobsFlag(argc, argv);
}

namespace
{

/** Set by simStatsArg(); the env fallback is evaluated lazily. */
bool simStatsFlag = false;

bool
simStatsEnv()
{
    const char *env = std::getenv("MACROSIM_SIM_STATS");
    return env != nullptr && *env != '\0'
           && std::strcmp(env, "0") != 0;
}

} // namespace

bool
simStatsArg(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sim-stats") != 0)
            continue;
        for (int j = i; j + 1 <= argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        simStatsFlag = true;
        break;
    }
    return simStatsEnabled();
}

bool
simStatsEnabled()
{
    return simStatsFlag || simStatsEnv();
}

void
dumpSimStats(const std::string &label, const Simulator &sim)
{
    if (!simStatsEnabled())
        return;
    StatGroup group;
    sim.events().regStats(group);
    std::ostringstream os;
    group.dump(os);
    // Fold the "name value" lines into one stderr line per cell so
    // parallel sweeps stay greppable.
    std::string folded = os.str();
    for (char &c : folded) {
        if (c == '\n')
            c = ' ';
    }
    sweepLog("  [simstats] " + label + ": " + folded);
}

} // namespace macrosim::bench
