#include "harness.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/tracer.hh"
#include "sim/logging.hh"
#include "sim/telemetry/json.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sweep.hh"

namespace macrosim::bench
{

std::string
netName(NetId id)
{
    switch (id) {
      case NetId::TokenRing: return "Token Ring";
      case NetId::CircuitSwitched: return "Circuit-Switched";
      case NetId::PointToPoint: return "Point-to-Point";
      case NetId::LimitedPtToPt: return "Limited Point-to-Point";
      case NetId::TwoPhase: return "2-Phase Arb.";
      case NetId::TwoPhaseAlt: return "2-Phase Arb. ALT";
      case NetId::Hermes: return "Hermes";
    }
    return "?";
}

std::unique_ptr<Network>
makeNetwork(NetId id, Simulator &sim, const MacrochipConfig &cfg)
{
    switch (id) {
      case NetId::TokenRing:
        return std::make_unique<TokenRingCrossbar>(sim, cfg);
      case NetId::CircuitSwitched:
        return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
      case NetId::PointToPoint:
        return std::make_unique<PointToPointNetwork>(sim, cfg);
      case NetId::LimitedPtToPt:
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
      case NetId::TwoPhase:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
      case NetId::TwoPhaseAlt:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                           true);
      case NetId::Hermes:
        return std::make_unique<HermesNetwork>(sim, cfg);
    }
    panic("makeNetwork: bad id");
}

std::vector<WorkloadSpec>
figureWorkloads(std::uint64_t instr_per_core)
{
    std::vector<WorkloadSpec> all = applicationWorkloads();
    const auto synth = syntheticWorkloads();
    all.insert(all.end(), synth.begin(), synth.end());
    for (auto &spec : all)
        spec.instructionsPerCore = instr_per_core;
    return all;
}

std::vector<TraceCpuResult>
runWorkloadMatrix(std::uint64_t instr_per_core, std::uint64_t seed,
                  std::size_t jobs, bool progress,
                  const TelemetryOptions &opts,
                  MatrixTelemetry *telemetry_out)
{
    const std::vector<WorkloadSpec> workloads =
        figureWorkloads(instr_per_core);

    // One pre-sized slot per cell: workers fill their own slot, the
    // merge below walks the slots in submission order, so the
    // combined trace/CSV is bit-identical for any --jobs count.
    std::vector<CellTelemetry> slots(workloads.size()
                                     * allNetworks.size());

    std::vector<SweepJob<TraceCpuResult>> cells;
    std::uint32_t cell_idx = 0;
    for (const WorkloadSpec &spec : workloads) {
        for (const NetId id : allNetworks) {
            const std::string net_name = netName(id);
            // The cell's streams depend only on (root seed,
            // workload, network): bit-identical for any jobs value.
            const std::uint64_t cell_seed =
                deriveSeed(seed, spec.name, net_name);
            CellTelemetry *slot =
                telemetry_out ? &slots[cell_idx] : nullptr;
            const std::uint32_t pid = cell_idx++;
            cells.push_back(SweepJob<TraceCpuResult>{
                spec.name + " on " + net_name,
                [spec, id, net_name, cell_seed, progress, &opts,
                 slot, pid] {
                    const std::string label =
                        spec.name + " on " + net_name;
                    Simulator sim(cell_seed);
                    auto net = makeNetwork(id, sim, simulatedConfig());

                    const bool tracing = slot && opts.tracing();
                    std::unique_ptr<MessageTracer> tracer;
                    std::unique_ptr<PeriodicSampler> counters;
                    std::unique_ptr<SnapshotRecorder> snapshots;
                    if (tracing) {
                        tracer = std::make_unique<MessageTracer>(*net);
                        counters = occupancyCounterSampler(
                            sim, slot->trace, pid, opts.period());
                        sim.events().setProfiling(true);
                    }
                    if (slot && opts.metrics()) {
                        snapshots = std::make_unique<SnapshotRecorder>(
                            sim, opts.period());
                    }
                    if (opts.profile)
                        sim.events().setProfiling(true);

                    TraceCpuSystem cpu(sim, *net, spec,
                                       mix64(cell_seed));
                    TraceCpuResult r = cpu.run();

                    if (tracing) {
                        tracer->writeTrace(slot->trace, pid, label);
                        traceEventProfile(slot->trace, pid, sim);
                    }
                    if (snapshots) {
                        slot->metricsCsv = "# " + label + "\n"
                            + snapshots->csv();
                    }
                    if (opts.profile)
                        dumpEventProfile(label, sim);
                    dumpSimStats(label, sim);
                    if (progress) {
                        std::ostringstream line;
                        line << "  [matrix] " << spec.name << " on "
                             << netName(id) << ": runtime "
                             << r.runtimeNs() << " ns";
                        sweepLog(line.str());
                    }
                    return r;
                }});
        }
    }
    std::vector<TraceCpuResult> results =
        SweepRunner(jobs, progress)
            .run("workload-matrix", std::move(cells));

    if (telemetry_out) {
        for (CellTelemetry &slot : slots) {
            telemetry_out->trace.append(std::move(slot.trace));
            telemetry_out->metricsCsv += slot.metricsCsv;
        }
    }
    return results;
}

std::vector<TraceCpuResult>
runWorkloadMatrixWithTelemetry(std::uint64_t instr_per_core,
                               std::uint64_t seed, std::size_t jobs,
                               const TelemetryOptions &opts)
{
    const bool collect = opts.tracing() || opts.metrics();
    MatrixTelemetry telemetry;
    std::vector<TraceCpuResult> matrix = runWorkloadMatrix(
        instr_per_core, seed, jobs, true, opts,
        collect ? &telemetry : nullptr);

    if (opts.metrics() && !opts.metricsPath.empty())
        writeTextFile(opts.metricsPath, telemetry.metricsCsv);

    if (opts.tracing()) {
        std::ostringstream json;
        telemetry.trace.writeJson(json);
        writeTextFile(opts.tracePath, json.str());
        std::string error;
        if (!jsonValid(json.str(), &error)) {
            fatal("workload matrix trace '", opts.tracePath,
                  "' is not valid JSON: ", error);
        }
    }
    return matrix;
}

const TraceCpuResult &
find(const std::vector<TraceCpuResult> &matrix,
     const std::string &workload, NetId net)
{
    const std::string wanted = netName(net);
    for (const auto &r : matrix) {
        if (r.workload == workload && r.network == wanted)
            return r;
    }
    panic("bench::find: no result for ", workload, " on ", wanted);
}

std::uint64_t
instructionsArg(int argc, char **argv, std::uint64_t fallback)
{
    if (argc > 1) {
        const long v = std::atol(argv[1]);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return fallback;
}

std::size_t
jobsArg(int &argc, char **argv)
{
    return stripJobsFlag(argc, argv);
}

namespace
{

/** Set by simStatsArg(); the env fallback is evaluated lazily. */
bool simStatsFlag = false;

bool
simStatsEnv()
{
    const char *env = std::getenv("MACROSIM_SIM_STATS");
    return env != nullptr && *env != '\0'
           && std::strcmp(env, "0") != 0;
}

} // namespace

bool
simStatsArg(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sim-stats") != 0)
            continue;
        for (int j = i; j + 1 <= argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        simStatsFlag = true;
        break;
    }
    return simStatsEnabled();
}

bool
simStatsEnabled()
{
    return simStatsFlag || simStatsEnv();
}

namespace
{

/**
 * Strip "--<name>=<value>" (or "--<name> <value>") from argv.
 * @return Whether the flag was found; @p value receives the text.
 */
bool
stripValueFlag(int &argc, char **argv, const char *name,
               std::string *value)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        int consumed = 0;
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size())
            == 0) {
            *value = argv[i] + prefix.size();
            consumed = 1;
        } else if (std::strcmp(argv[i],
                               (std::string("--") + name).c_str())
                       == 0
                   && i + 1 < argc) {
            *value = argv[i + 1];
            consumed = 2;
        } else {
            continue;
        }
        for (int j = i; j + consumed <= argc; ++j)
            argv[j] = argv[j + consumed];
        argc -= consumed;
        return true;
    }
    return false;
}

/** Strip a bare "--<name>" switch; @return whether it was present. */
bool
stripSwitch(int &argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag.c_str()) != 0)
            continue;
        for (int j = i; j + 1 <= argc; ++j)
            argv[j] = argv[j + 1];
        --argc;
        return true;
    }
    return false;
}

} // namespace

std::uint64_t
seedArg(int &argc, char **argv, std::uint64_t fallback)
{
    std::string text;
    if (!stripValueFlag(argc, argv, "seed", &text)) {
        const char *env = std::getenv("MACROSIM_SEED");
        if (env == nullptr || *env == '\0')
            return fallback;
        text = env;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        fatal("seedArg: --seed / MACROSIM_SEED must be an unsigned "
              "integer, got '", text, "'");
    return static_cast<std::uint64_t>(v);
}

TelemetryOptions
telemetryArgs(int &argc, char **argv)
{
    TelemetryOptions opts;
    stripValueFlag(argc, argv, "trace", &opts.tracePath);
    stripValueFlag(argc, argv, "metrics", &opts.metricsPath);
    std::string period;
    if (stripValueFlag(argc, argv, "metrics-period", &period)) {
        const long long v = std::atoll(period.c_str());
        if (v <= 0)
            fatal("telemetryArgs: --metrics-period must be a "
                  "positive tick count, got '", period, "'");
        opts.metricsPeriod = static_cast<Tick>(v);
    }
    opts.profile = stripSwitch(argc, argv, "profile");
    opts.smoke = stripSwitch(argc, argv, "smoke");
    return opts;
}

void
dumpSimStats(const std::string &label, const Simulator &sim)
{
    if (!simStatsEnabled())
        return;
    std::ostringstream os;
    sim.telemetry().dump(os);
    // Fold the "name value" lines into one stderr line per cell so
    // parallel sweeps stay greppable.
    std::string folded = os.str();
    for (char &c : folded) {
        if (c == '\n')
            c = ' ';
    }
    sweepLog("  [simstats] " + label + ": " + folded);
}

void
dumpEventProfile(const std::string &label, const Simulator &sim)
{
    if (!sim.events().profiling())
        return;
    std::ostringstream os;
    os << "  [profile] " << label << "\n";
    sim.events().dumpProfile(os);
    std::string table = os.str();
    if (!table.empty() && table.back() == '\n')
        table.pop_back();
    sweepLog(table);
}

void
traceEventProfile(TraceSink &sink, std::uint32_t pid,
                  const Simulator &sim)
{
    if (!sim.events().profiling())
        return;
    constexpr std::uint32_t profileTid = 0xFFFF;
    sink.threadName(pid, profileTid, "event-loop profile");
    Tick at = 0;
    for (const EventProfileEntry &e : sim.events().profile()) {
        // Lay the tags end to end, 1 tick per wall-clock ns, so the
        // strip reads as a per-tag share of the loop's wall time.
        const Tick dur = std::max<Tick>(
            static_cast<Tick>(e.wallNs + 0.5), 1);
        sink.span(std::string(e.tag), "profile", pid, profileTid,
                  at, dur,
                  {{"count", std::to_string(e.count)},
                   {"wall_ns", jsonNumber(e.wallNs)}});
        at += dur;
    }
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("writeTextFile: cannot open '", path, "' for writing");
    os << text;
    os.close();
    if (!os)
        fatal("writeTextFile: write to '", path, "' failed");
}

std::unique_ptr<PeriodicSampler>
occupancyCounterSampler(Simulator &sim, TraceSink &sink,
                        std::uint32_t pid, Tick period)
{
    return std::make_unique<PeriodicSampler>(
        sim, period, [&sim, &sink, pid](Tick now) {
            sim.telemetry().forEach(
                [&sink, pid, now](const std::string &name, double v) {
                    if (name.ends_with("occupancy"))
                        sink.counter(name, pid, now, v);
                });
        });
}

} // namespace macrosim::bench
