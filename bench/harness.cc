#include "harness.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/tracer.hh"
#include "sim/logging.hh"
#include "sim/telemetry/json.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sweep.hh"

namespace macrosim::bench
{

std::string
netName(NetId id)
{
    return service::netDisplayName(id);
}

std::unique_ptr<Network>
makeNetwork(NetId id, Simulator &sim, const MacrochipConfig &cfg)
{
    return service::makeNetworkFor(id, sim, cfg);
}

std::vector<WorkloadSpec>
figureWorkloads(std::uint64_t instr_per_core)
{
    std::vector<WorkloadSpec> all = applicationWorkloads();
    const auto synth = syntheticWorkloads();
    all.insert(all.end(), synth.begin(), synth.end());
    for (auto &spec : all)
        spec.instructionsPerCore = instr_per_core;
    return all;
}

std::vector<TraceCpuResult>
runWorkloadMatrix(std::uint64_t instr_per_core, std::uint64_t seed,
                  std::size_t jobs, bool progress,
                  const TelemetryOptions &opts,
                  MatrixTelemetry *telemetry_out)
{
    const std::vector<WorkloadSpec> workloads =
        figureWorkloads(instr_per_core);

    // One pre-sized slot per cell: workers fill their own slot, the
    // merge below walks the slots in submission order, so the
    // combined trace/CSV is bit-identical for any --jobs count.
    std::vector<CellTelemetry> slots(workloads.size()
                                     * allNetworks.size());

    std::vector<SweepJob<TraceCpuResult>> cells;
    std::uint32_t cell_idx = 0;
    for (const WorkloadSpec &spec : workloads) {
        for (const NetId id : allNetworks) {
            const std::string net_name = netName(id);
            // The cell's streams depend only on (root seed,
            // workload, network): bit-identical for any jobs value.
            const std::uint64_t cell_seed =
                deriveSeed(seed, spec.name, net_name);
            CellTelemetry *slot =
                telemetry_out ? &slots[cell_idx] : nullptr;
            const std::uint32_t pid = cell_idx++;
            cells.push_back(SweepJob<TraceCpuResult>{
                spec.name + " on " + net_name,
                [spec, id, net_name, cell_seed, progress, &opts,
                 slot, pid] {
                    const std::string label =
                        spec.name + " on " + net_name;
                    Simulator sim(cell_seed);
                    auto net = makeNetwork(id, sim, simulatedConfig());

                    const bool tracing = slot && opts.tracing();
                    std::unique_ptr<MessageTracer> tracer;
                    std::unique_ptr<PeriodicSampler> counters;
                    std::unique_ptr<SnapshotRecorder> snapshots;
                    if (tracing) {
                        tracer = std::make_unique<MessageTracer>(*net);
                        counters = occupancyCounterSampler(
                            sim, slot->trace, pid, opts.period());
                        sim.events().setProfiling(true);
                    }
                    if (slot && opts.metrics()) {
                        snapshots = std::make_unique<SnapshotRecorder>(
                            sim, opts.period());
                    }
                    if (opts.profile)
                        sim.events().setProfiling(true);

                    TraceCpuSystem cpu(sim, *net, spec,
                                       mix64(cell_seed));
                    TraceCpuResult r = cpu.run();

                    if (tracing) {
                        tracer->writeTrace(slot->trace, pid, label);
                        traceEventProfile(slot->trace, pid, sim);
                    }
                    if (snapshots) {
                        slot->metricsCsv = "# " + label + "\n"
                            + snapshots->csv();
                    }
                    if (opts.profile)
                        dumpEventProfile(label, sim);
                    dumpSimStats(label, sim);
                    if (progress) {
                        std::ostringstream line;
                        line << "  [matrix] " << spec.name << " on "
                             << netName(id) << ": runtime "
                             << r.runtimeNs() << " ns";
                        sweepLog(line.str());
                    }
                    return r;
                }});
        }
    }
    std::vector<TraceCpuResult> results =
        SweepRunner(jobs, progress)
            .run("workload-matrix", std::move(cells));

    if (telemetry_out) {
        for (CellTelemetry &slot : slots) {
            telemetry_out->trace.append(std::move(slot.trace));
            telemetry_out->metricsCsv += slot.metricsCsv;
        }
    }
    return results;
}

std::vector<TraceCpuResult>
runWorkloadMatrixWithTelemetry(std::uint64_t instr_per_core,
                               std::uint64_t seed, std::size_t jobs,
                               const TelemetryOptions &opts)
{
    const bool collect = opts.tracing() || opts.metrics();
    MatrixTelemetry telemetry;
    std::vector<TraceCpuResult> matrix = runWorkloadMatrix(
        instr_per_core, seed, jobs, true, opts,
        collect ? &telemetry : nullptr);

    if (opts.metrics() && !opts.metricsPath.empty())
        writeTextFile(opts.metricsPath, telemetry.metricsCsv);

    if (opts.tracing()) {
        std::ostringstream json;
        telemetry.trace.writeJson(json);
        writeTextFile(opts.tracePath, json.str());
        std::string error;
        if (!jsonValid(json.str(), &error)) {
            fatal("workload matrix trace '", opts.tracePath,
                  "' is not valid JSON: ", error);
        }
    }
    return matrix;
}

const TraceCpuResult &
find(const std::vector<TraceCpuResult> &matrix,
     const std::string &workload, NetId net)
{
    const std::string wanted = netName(net);
    for (const auto &r : matrix) {
        if (r.workload == workload && r.network == wanted)
            return r;
    }
    panic("bench::find: no result for ", workload, " on ", wanted);
}

std::uint64_t
instructionsArg(int argc, char **argv, std::uint64_t fallback)
{
    if (argc > 1) {
        const long v = std::atol(argv[1]);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return fallback;
}

void
dumpSimStats(const std::string &label, const Simulator &sim)
{
    if (!simStatsEnabled())
        return;
    std::ostringstream os;
    sim.telemetry().dump(os);
    // Fold the "name value" lines into one stderr line per cell so
    // parallel sweeps stay greppable.
    std::string folded = os.str();
    for (char &c : folded) {
        if (c == '\n')
            c = ' ';
    }
    sweepLog("  [simstats] " + label + ": " + folded);
}

void
dumpEventProfile(const std::string &label, const Simulator &sim)
{
    if (!sim.events().profiling())
        return;
    std::ostringstream os;
    os << "  [profile] " << label << "\n";
    sim.events().dumpProfile(os);
    std::string table = os.str();
    if (!table.empty() && table.back() == '\n')
        table.pop_back();
    sweepLog(table);
}

void
traceEventProfile(TraceSink &sink, std::uint32_t pid,
                  const Simulator &sim)
{
    if (!sim.events().profiling())
        return;
    constexpr std::uint32_t profileTid = 0xFFFF;
    sink.threadName(pid, profileTid, "event-loop profile");
    Tick at = 0;
    for (const EventProfileEntry &e : sim.events().profile()) {
        // Lay the tags end to end, 1 tick per wall-clock ns, so the
        // strip reads as a per-tag share of the loop's wall time.
        const Tick dur = std::max<Tick>(
            static_cast<Tick>(e.wallNs + 0.5), 1);
        sink.span(std::string(e.tag), "profile", pid, profileTid,
                  at, dur,
                  {{"count", std::to_string(e.count)},
                   {"wall_ns", jsonNumber(e.wallNs)}});
        at += dur;
    }
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("writeTextFile: cannot open '", path, "' for writing");
    os << text;
    os.close();
    if (!os)
        fatal("writeTextFile: write to '", path, "' failed");
}

std::unique_ptr<PeriodicSampler>
occupancyCounterSampler(Simulator &sim, TraceSink &sink,
                        std::uint32_t pid, Tick period)
{
    return std::make_unique<PeriodicSampler>(
        sim, period, [&sim, &sink, pid](Tick now) {
            sim.telemetry().forEach(
                [&sink, pid, now](const std::string &name, double v) {
                    if (name.ends_with("occupancy"))
                        sink.counter(name, pid, now, v);
                });
        });
}

} // namespace macrosim::bench
