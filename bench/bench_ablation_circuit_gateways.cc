/**
 * @file
 * Ablation: circuit gateways per site in the circuit-switched torus.
 *
 * DESIGN.md fixes the number of concurrent circuits a site can
 * source at 4 ("host access points" — a parameter the paper leaves
 * open). This sweep shows the figure 6 saturation point's
 * sensitivity: with few gateways the source serializes circuits;
 * with many, the serial control routers become the bottleneck and
 * extra gateways stop helping — which is why the ~2.5% saturation
 * is robust to the exact choice.
 */

#include <cstdio>

#include "harness.hh"

#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

int
main()
{
    setQuiet(true);
    std::printf("Circuit-switched gateway ablation "
                "(uniform random, 64 B packets)\n\n");
    std::printf("%10s %14s %16s\n", "gateways",
                "zero-load (ns)", "sustained (%%)");

    for (const std::uint32_t gateways : {1u, 2u, 4u, 8u, 16u}) {
        // Zero-load latency at 0.2% offered.
        double zero_load = 0.0;
        {
            Simulator sim(3);
            CircuitSwitchedTorus net(sim, simulatedConfig(),
                                     gateways);
            InjectorConfig cfg;
            cfg.load = 0.002;
            cfg.warmup = 500 * tickNs;
            cfg.window = 2000 * tickNs;
            cfg.seed = 3;
            zero_load = runOpenLoop(sim, net, cfg).meanLatencyNs;
        }
        // Sustained bandwidth at deep overload (8% offered).
        double sustained = 0.0;
        {
            Simulator sim(3);
            CircuitSwitchedTorus net(sim, simulatedConfig(),
                                     gateways);
            InjectorConfig cfg;
            cfg.load = 0.08;
            cfg.warmup = 500 * tickNs;
            cfg.window = 2000 * tickNs;
            cfg.seed = 3;
            sustained = runOpenLoop(sim, net, cfg).deliveredPct;
        }
        std::printf("%10u %14.1f %15.2f%%\n", gateways, zero_load,
                    sustained);
        std::fflush(stdout);
    }
    return 0;
}
