/**
 * @file
 * Command-line flag parsing shared by every bench binary and the
 * macrosim service tools.
 *
 * All strippers remove the flag (and its value) from argv in place,
 * so each bench's positional arguments (e.g. instructions/core)
 * keep their historical position no matter which flags were given.
 *
 * The campaign option table (campaignArgs()) is the same one
 * macrosimctl uses to build a SubmitCampaign request, so an offline
 * bench invocation and a daemon submission describe identical work.
 */

#ifndef MACROSIM_BENCH_FLAGS_HH
#define MACROSIM_BENCH_FLAGS_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/campaign.hh"
#include "sim/sweep.hh"
#include "sim/ticks.hh"

namespace macrosim::bench
{

/**
 * Strip "--<name>=<value>" (or "--<name> <value>") from argv.
 * @return Whether the flag was found; @p value receives the text.
 */
bool stripValueFlag(int &argc, char **argv, const char *name,
                    std::string *value);

/** Strip a bare "--<name>" switch; @return whether it was present. */
bool stripSwitch(int &argc, char **argv, const char *name);

/**
 * Strip "--<name>=<N>" / "--<name> <N>" where N is an unsigned
 * integer (any strtoull base); fatal() on a malformed value.
 * @return Whether the flag was present.
 */
bool stripNumberFlag(int &argc, char **argv, const char *name,
                     std::uint64_t *value);

/**
 * Remove a "--jobs N" (or "--jobs=N") from argv and return N;
 * returns 0 when the flag is absent (SweepRunner then falls back to
 * MACROSIM_JOBS / hardware_concurrency()).
 */
std::size_t stripJobsFlag(int &argc, char **argv);

/**
 * Telemetry knobs shared by every bench binary, stripped from argv
 * by telemetryArgs():
 *   --trace=<file>           write a Perfetto trace-event JSON
 *   --metrics=<file>         write periodic StatRegistry snapshots
 *   --metrics-period=<ticks> snapshot period (default 1 us when
 *                            --metrics is given without it)
 *   --profile                dump the event-loop self-profile table
 *   --smoke                  reduced run for CI smoke tests
 */
struct TelemetryOptions
{
    std::string tracePath;
    std::string metricsPath;
    Tick metricsPeriod = 0;
    bool profile = false;
    bool smoke = false;

    bool tracing() const { return !tracePath.empty(); }
    bool metrics() const
    {
        return metricsPeriod > 0 || !metricsPath.empty();
    }

    /** The snapshot period to use: the flag, or 1 us unset. */
    Tick
    period() const
    {
        return metricsPeriod > 0 ? metricsPeriod : tickUs;
    }
};

/**
 * Strip the telemetry flags (see TelemetryOptions) from argv,
 * leaving positional arguments where the benches expect them.
 */
TelemetryOptions telemetryArgs(int &argc, char **argv);

/**
 * Worker-thread knob shared by every bench: strips "--jobs N" from
 * argv (so positional arguments keep their place) and returns N, or
 * 0 when unset — in which case SweepRunner falls back to
 * MACROSIM_JOBS and then hardware_concurrency().
 */
std::size_t jobsArg(int &argc, char **argv);

/**
 * Base-seed knob shared by every bench: strips "--seed N" /
 * "--seed=N" from argv (so positional arguments keep their place)
 * and returns N; falls back to the MACROSIM_SEED environment
 * variable, then to @p fallback — each bench's historical hard-coded
 * seed, so default outputs stay byte-identical. Per-cell seeds are
 * still derived from the base via deriveSeed(base, workload, network).
 */
std::uint64_t seedArg(int &argc, char **argv, std::uint64_t fallback);

/**
 * Event-core observability knob shared by every bench: strips
 * "--sim-stats" from argv and enables per-simulation EventQueueStats
 * reporting. The MACROSIM_SIM_STATS environment variable (any
 * non-empty value except "0") enables it too, flag or no flag.
 *
 * @return Whether stats reporting is now enabled.
 */
bool simStatsArg(int &argc, char **argv);

/** Whether --sim-stats / MACROSIM_SIM_STATS is in effect. */
bool simStatsEnabled();

/** The flags every bench strips, bundled. */
struct BenchFlags
{
    std::size_t jobs = 0;
    std::uint64_t seed = 0;
    bool simStats = false;
    TelemetryOptions telemetry;
};

/**
 * One-call bench setup: strips --jobs/--seed/--sim-stats and the
 * telemetry flags, and installs the cooperative SIGINT/SIGTERM
 * handlers (sim/sweep.hh) so an interrupted sweep drains in-flight
 * cells and the bench exits via sweepExitStatus().
 */
BenchFlags benchFlags(int &argc, char **argv,
                      std::uint64_t seed_fallback);

/**
 * Build a CampaignSpec from the shared campaign option table,
 * stripping the flags from argv (fatal() on malformed values):
 *
 *   --kind=injector|matrix   campaign kind (default injector)
 *   --patterns=a,b           injector traffic patterns
 *   --networks=a,b           short or display network names
 *   --loads=0.01,0.1         offered-load fractions
 *   --warmup-ns=N            injector warmup window
 *   --window-ns=N            injector measurement window
 *   --instr=N                matrix instructions per core
 *   --workloads=a,b          matrix workload names
 *   --cell-stats             snapshot each cell's StatRegistry
 *   --seed=N                 root seed (MACROSIM_SEED fallback)
 *   --smoke                  the smokeInjector() preset (other
 *                            campaign flags then refine it)
 */
service::CampaignSpec campaignArgs(int &argc, char **argv);

} // namespace macrosim::bench

#endif // MACROSIM_BENCH_FLAGS_HH
