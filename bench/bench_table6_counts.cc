/**
 * @file
 * Regenerates Table 6 (total optical component counts) from each
 * topology's constructive description.
 *
 * Paper reference values:
 *   Token-Ring         512K Tx   8192 Rx   32K wgs      0 switches
 *   Point-to-Point     8192      8192      3072         0
 *   Circuit-Switched   8192      8192      2048      1024 (4x4)
 *   Limited Pt-to-Pt   8192      8192      3072       128 routers
 *   Two-Phase data     8192      8192      4096       16K
 *   Two-Phase ALT     16384      8192      4096       15K
 *   Two-Phase arb.      128      1024        24         0
 */

#include <cstdio>

#include "harness.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

void
printRow(const char *name, const ComponentCounts &c)
{
    std::printf("%-26s %10llu %10llu %10llu %10llu %10llu\n", name,
                static_cast<unsigned long long>(c.transmitters),
                static_cast<unsigned long long>(c.receivers),
                static_cast<unsigned long long>(c.waveguides),
                static_cast<unsigned long long>(c.opticalSwitches),
                static_cast<unsigned long long>(c.electronicRouters));
}

} // namespace

int
main()
{
    std::printf("Table 6: Total Optical Component Counts\n");
    std::printf("%-26s %10s %10s %10s %10s %10s\n", "Network Type",
                "Tx", "Rx", "Wgs", "Switches", "Routers");

    Simulator sim;
    const MacrochipConfig cfg = simulatedConfig();
    for (const NetId id : allNetworks) {
        auto net = makeNetwork(id, sim, cfg);
        printRow(netName(id).c_str(), net->componentCounts());
    }
    // The two-phase arbitration subnetwork gets its own row in the
    // paper's table.
    TwoPhaseArbitratedNetwork two_phase(sim, cfg);
    printRow("Two-Phase arbitration", two_phase.arbitrationCounts());
    return 0;
}
