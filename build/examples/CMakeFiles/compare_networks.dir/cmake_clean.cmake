file(REMOVE_RECURSE
  "CMakeFiles/compare_networks.dir/compare_networks.cpp.o"
  "CMakeFiles/compare_networks.dir/compare_networks.cpp.o.d"
  "compare_networks"
  "compare_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
