# Empty dependencies file for compare_networks.
# This may be replaced when dependencies are built.
