file(REMOVE_RECURSE
  "CMakeFiles/link_budget_explorer.dir/link_budget_explorer.cpp.o"
  "CMakeFiles/link_budget_explorer.dir/link_budget_explorer.cpp.o.d"
  "link_budget_explorer"
  "link_budget_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_budget_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
