# Empty dependencies file for link_budget_explorer.
# This may be replaced when dependencies are built.
