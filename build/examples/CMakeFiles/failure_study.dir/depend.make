# Empty dependencies file for failure_study.
# This may be replaced when dependencies are built.
