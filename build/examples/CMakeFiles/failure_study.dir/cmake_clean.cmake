file(REMOVE_RECURSE
  "CMakeFiles/failure_study.dir/failure_study.cpp.o"
  "CMakeFiles/failure_study.dir/failure_study.cpp.o.d"
  "failure_study"
  "failure_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
