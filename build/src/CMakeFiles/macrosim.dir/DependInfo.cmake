
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cache.cc" "src/CMakeFiles/macrosim.dir/arch/cache.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/arch/cache.cc.o.d"
  "/root/repo/src/arch/directory.cc" "src/CMakeFiles/macrosim.dir/arch/directory.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/arch/directory.cc.o.d"
  "/root/repo/src/arch/geometry.cc" "src/CMakeFiles/macrosim.dir/arch/geometry.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/arch/geometry.cc.o.d"
  "/root/repo/src/arch/protocol.cc" "src/CMakeFiles/macrosim.dir/arch/protocol.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/arch/protocol.cc.o.d"
  "/root/repo/src/net/analysis.cc" "src/CMakeFiles/macrosim.dir/net/analysis.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/analysis.cc.o.d"
  "/root/repo/src/net/circuit_switched.cc" "src/CMakeFiles/macrosim.dir/net/circuit_switched.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/circuit_switched.cc.o.d"
  "/root/repo/src/net/limited_pt2pt.cc" "src/CMakeFiles/macrosim.dir/net/limited_pt2pt.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/limited_pt2pt.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/macrosim.dir/net/network.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/network.cc.o.d"
  "/root/repo/src/net/pt2pt.cc" "src/CMakeFiles/macrosim.dir/net/pt2pt.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/pt2pt.cc.o.d"
  "/root/repo/src/net/token_ring.cc" "src/CMakeFiles/macrosim.dir/net/token_ring.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/token_ring.cc.o.d"
  "/root/repo/src/net/tracer.cc" "src/CMakeFiles/macrosim.dir/net/tracer.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/tracer.cc.o.d"
  "/root/repo/src/net/two_phase.cc" "src/CMakeFiles/macrosim.dir/net/two_phase.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/net/two_phase.cc.o.d"
  "/root/repo/src/photonics/components.cc" "src/CMakeFiles/macrosim.dir/photonics/components.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/photonics/components.cc.o.d"
  "/root/repo/src/photonics/laser_power.cc" "src/CMakeFiles/macrosim.dir/photonics/laser_power.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/photonics/laser_power.cc.o.d"
  "/root/repo/src/photonics/link_budget.cc" "src/CMakeFiles/macrosim.dir/photonics/link_budget.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/photonics/link_budget.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/CMakeFiles/macrosim.dir/sim/event.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/sim/event.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/macrosim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/macrosim.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/macrosim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/sim/stats.cc.o.d"
  "/root/repo/src/workloads/coherence.cc" "src/CMakeFiles/macrosim.dir/workloads/coherence.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/workloads/coherence.cc.o.d"
  "/root/repo/src/workloads/message_passing.cc" "src/CMakeFiles/macrosim.dir/workloads/message_passing.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/workloads/message_passing.cc.o.d"
  "/root/repo/src/workloads/packet_injector.cc" "src/CMakeFiles/macrosim.dir/workloads/packet_injector.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/workloads/packet_injector.cc.o.d"
  "/root/repo/src/workloads/patterns.cc" "src/CMakeFiles/macrosim.dir/workloads/patterns.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/workloads/patterns.cc.o.d"
  "/root/repo/src/workloads/trace_cpu.cc" "src/CMakeFiles/macrosim.dir/workloads/trace_cpu.cc.o" "gcc" "src/CMakeFiles/macrosim.dir/workloads/trace_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
