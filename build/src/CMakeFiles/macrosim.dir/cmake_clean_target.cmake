file(REMOVE_RECURSE
  "libmacrosim.a"
)
