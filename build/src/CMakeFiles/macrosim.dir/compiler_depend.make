# Empty compiler generated dependencies file for macrosim.
# This may be replaced when dependencies are built.
