# Empty dependencies file for macrosim_tests.
# This may be replaced when dependencies are built.
