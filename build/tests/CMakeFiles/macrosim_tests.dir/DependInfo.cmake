
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alt_configs.cc" "tests/CMakeFiles/macrosim_tests.dir/test_alt_configs.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_alt_configs.cc.o.d"
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/macrosim_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/macrosim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_channel.cc" "tests/CMakeFiles/macrosim_tests.dir/test_channel.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_channel.cc.o.d"
  "/root/repo/tests/test_coalescing.cc" "tests/CMakeFiles/macrosim_tests.dir/test_coalescing.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_coalescing.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/macrosim_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_directory.cc" "tests/CMakeFiles/macrosim_tests.dir/test_directory.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_directory.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/macrosim_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_event.cc" "tests/CMakeFiles/macrosim_tests.dir/test_event.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_event.cc.o.d"
  "/root/repo/tests/test_fairness.cc" "tests/CMakeFiles/macrosim_tests.dir/test_fairness.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_fairness.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/macrosim_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_injector.cc" "tests/CMakeFiles/macrosim_tests.dir/test_injector.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_injector.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/macrosim_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_memory_ports.cc" "tests/CMakeFiles/macrosim_tests.dir/test_memory_ports.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_memory_ports.cc.o.d"
  "/root/repo/tests/test_message_passing.cc" "tests/CMakeFiles/macrosim_tests.dir/test_message_passing.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_message_passing.cc.o.d"
  "/root/repo/tests/test_networks.cc" "tests/CMakeFiles/macrosim_tests.dir/test_networks.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_networks.cc.o.d"
  "/root/repo/tests/test_patterns.cc" "tests/CMakeFiles/macrosim_tests.dir/test_patterns.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_patterns.cc.o.d"
  "/root/repo/tests/test_photonics.cc" "tests/CMakeFiles/macrosim_tests.dir/test_photonics.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_photonics.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/macrosim_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/macrosim_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_resilience.cc" "tests/CMakeFiles/macrosim_tests.dir/test_resilience.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_resilience.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/macrosim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_trace_cpu.cc" "tests/CMakeFiles/macrosim_tests.dir/test_trace_cpu.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_trace_cpu.cc.o.d"
  "/root/repo/tests/test_tracer.cc" "tests/CMakeFiles/macrosim_tests.dir/test_tracer.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_tracer.cc.o.d"
  "/root/repo/tests/test_units.cc" "tests/CMakeFiles/macrosim_tests.dir/test_units.cc.o" "gcc" "tests/CMakeFiles/macrosim_tests.dir/test_units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/macrosim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
