# Empty dependencies file for bench_fig9_router_energy.
# This may be replaced when dependencies are built.
