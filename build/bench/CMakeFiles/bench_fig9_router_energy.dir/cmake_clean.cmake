file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_router_energy.dir/bench_fig9_router_energy.cc.o"
  "CMakeFiles/bench_fig9_router_energy.dir/bench_fig9_router_energy.cc.o.d"
  "CMakeFiles/bench_fig9_router_energy.dir/harness.cc.o"
  "CMakeFiles/bench_fig9_router_energy.dir/harness.cc.o.d"
  "bench_fig9_router_energy"
  "bench_fig9_router_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_router_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
