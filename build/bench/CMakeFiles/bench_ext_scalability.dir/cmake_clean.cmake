file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_scalability.dir/bench_ext_scalability.cc.o"
  "CMakeFiles/bench_ext_scalability.dir/bench_ext_scalability.cc.o.d"
  "CMakeFiles/bench_ext_scalability.dir/harness.cc.o"
  "CMakeFiles/bench_ext_scalability.dir/harness.cc.o.d"
  "bench_ext_scalability"
  "bench_ext_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
