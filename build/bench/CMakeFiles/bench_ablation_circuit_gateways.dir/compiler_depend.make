# Empty compiler generated dependencies file for bench_ablation_circuit_gateways.
# This may be replaced when dependencies are built.
