file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_circuit_gateways.dir/bench_ablation_circuit_gateways.cc.o"
  "CMakeFiles/bench_ablation_circuit_gateways.dir/bench_ablation_circuit_gateways.cc.o.d"
  "CMakeFiles/bench_ablation_circuit_gateways.dir/harness.cc.o"
  "CMakeFiles/bench_ablation_circuit_gateways.dir/harness.cc.o.d"
  "bench_ablation_circuit_gateways"
  "bench_ablation_circuit_gateways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_circuit_gateways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
