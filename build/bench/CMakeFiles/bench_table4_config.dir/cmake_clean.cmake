file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_config.dir/bench_table4_config.cc.o"
  "CMakeFiles/bench_table4_config.dir/bench_table4_config.cc.o.d"
  "CMakeFiles/bench_table4_config.dir/harness.cc.o"
  "CMakeFiles/bench_table4_config.dir/harness.cc.o.d"
  "bench_table4_config"
  "bench_table4_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
