# Empty compiler generated dependencies file for bench_ablation_twophase_params.
# This may be replaced when dependencies are built.
