file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mshr.dir/bench_ablation_mshr.cc.o"
  "CMakeFiles/bench_ablation_mshr.dir/bench_ablation_mshr.cc.o.d"
  "CMakeFiles/bench_ablation_mshr.dir/harness.cc.o"
  "CMakeFiles/bench_ablation_mshr.dir/harness.cc.o.d"
  "bench_ablation_mshr"
  "bench_ablation_mshr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
