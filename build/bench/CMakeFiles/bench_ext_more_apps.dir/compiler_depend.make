# Empty compiler generated dependencies file for bench_ext_more_apps.
# This may be replaced when dependencies are built.
