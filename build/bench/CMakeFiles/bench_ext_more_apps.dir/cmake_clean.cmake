file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_more_apps.dir/bench_ext_more_apps.cc.o"
  "CMakeFiles/bench_ext_more_apps.dir/bench_ext_more_apps.cc.o.d"
  "CMakeFiles/bench_ext_more_apps.dir/harness.cc.o"
  "CMakeFiles/bench_ext_more_apps.dir/harness.cc.o.d"
  "bench_ext_more_apps"
  "bench_ext_more_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_more_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
