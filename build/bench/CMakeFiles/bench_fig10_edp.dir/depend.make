# Empty dependencies file for bench_fig10_edp.
# This may be replaced when dependencies are built.
