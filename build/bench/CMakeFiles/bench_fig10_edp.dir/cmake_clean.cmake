file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_edp.dir/bench_fig10_edp.cc.o"
  "CMakeFiles/bench_fig10_edp.dir/bench_fig10_edp.cc.o.d"
  "CMakeFiles/bench_fig10_edp.dir/harness.cc.o"
  "CMakeFiles/bench_fig10_edp.dir/harness.cc.o.d"
  "bench_fig10_edp"
  "bench_fig10_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
