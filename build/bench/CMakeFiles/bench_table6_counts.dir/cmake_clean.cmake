file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_counts.dir/bench_table6_counts.cc.o"
  "CMakeFiles/bench_table6_counts.dir/bench_table6_counts.cc.o.d"
  "CMakeFiles/bench_table6_counts.dir/harness.cc.o"
  "CMakeFiles/bench_table6_counts.dir/harness.cc.o.d"
  "bench_table6_counts"
  "bench_table6_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
