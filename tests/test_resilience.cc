/**
 * @file
 * Failure-resilience tests for the limited point-to-point network:
 * the macrochip exists to tolerate imperfect silicon (section 1), so
 * the one topology with active electronics must survive router
 * failures by rerouting through the alternate intersection site.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/limited_pt2pt.hh"
#include "sim/logging.hh"
#include "workloads/patterns.hh"

namespace
{

using namespace macrosim;

TEST(Resilience, AlternateForwarderIsTheOtherIntersection)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    // (0,0) -> (1,1): primary (0,1)=1, alternate (1,0)=8.
    EXPECT_EQ(net.forwarderFor(0, 9), 1u);
    EXPECT_EQ(net.alternateForwarderFor(0, 9), 8u);
    // Both are peers of both endpoints.
    for (SiteId s : {SiteId{3}, SiteId{20}, SiteId{45}}) {
        for (SiteId d : {SiteId{10}, SiteId{33}, SiteId{61}}) {
            if (s == d || net.arePeers(s, d))
                continue;
            const SiteId alt = net.alternateForwarderFor(s, d);
            EXPECT_TRUE(net.arePeers(s, alt));
            EXPECT_TRUE(net.arePeers(alt, d));
            EXPECT_NE(alt, net.forwarderFor(s, d));
        }
    }
}

TEST(Resilience, FailedForwarderIsRoutedAround)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.failSiteRouters(1); // the primary forwarder for 0 -> 9
    int delivered = 0;
    net.setDefaultHandler([&](const Message &) { ++delivered; });
    Message m;
    m.src = 0;
    m.dst = 9;
    net.inject(m);
    sim.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(net.reroutedPackets(), 1u);
}

TEST(Resilience, DirectTrafficUnaffectedByRouterFailure)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.failSiteRouters(1);
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    // 0 -> 1 is a direct row link; site 1's ROUTERS being dead does
    // not affect its optical receivers.
    Message m;
    m.src = 0;
    m.dst = 1;
    net.inject(m);
    sim.run();
    EXPECT_EQ(delivered, 200u + 3200u + 250u + 200u);
    EXPECT_EQ(net.reroutedPackets(), 0u);
}

TEST(Resilience, FullTrafficSurvivesScatteredFailures)
{
    Simulator sim(3);
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    // Fail half of row 0's routers. Failures confined to one row are
    // always survivable: a pair's two candidate forwarders lie in
    // the source's row and the destination's row respectively, and
    // when those coincide the endpoints are peers and need no
    // forwarder at all. (Two failures in distinct rows AND distinct
    // columns, by contrast, are exactly the forwarder pair of some
    // site pair — see BothForwardersDeadIsAnError.)
    for (SiteId s : {SiteId{0}, SiteId{1}, SiteId{2}, SiteId{3}})
        net.failSiteRouters(s);

    int delivered = 0;
    net.setDefaultHandler([&](const Message &) { ++delivered; });
    int expected = 0;
    for (SiteId s = 0; s < 64; ++s) {
        for (SiteId d = 0; d < 64; ++d) {
            if (s == d)
                continue;
            Message m;
            m.src = s;
            m.dst = d;
            net.inject(m);
            ++expected;
        }
    }
    sim.run();
    EXPECT_EQ(delivered, expected);
    EXPECT_GT(net.reroutedPackets(), 0u);
}

TEST(Resilience, BothForwardersDeadIsAnError)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.failSiteRouters(1); // (0,1): primary for 0 -> 9
    net.failSiteRouters(8); // (1,0): alternate for 0 -> 9
    Message m;
    m.src = 0;
    m.dst = 9;
    EXPECT_THROW(net.inject(m), FatalError);
}

TEST(Resilience, ReroutedPathStillCostsOneRouterHop)
{
    Simulator sim;
    LimitedPointToPointNetwork ok(sim, simulatedConfig());
    Tick normal = 0;
    ok.setDefaultHandler([&](const Message &m) {
        normal = m.delivered - m.injected;
    });
    Message a;
    a.src = 0;
    a.dst = 9;
    ok.inject(a);
    sim.run();

    Simulator sim2;
    LimitedPointToPointNetwork degraded(sim2, simulatedConfig());
    degraded.failSiteRouters(1);
    Tick rerouted = 0;
    degraded.setDefaultHandler([&](const Message &m) {
        rerouted = m.delivered - m.injected;
    });
    Message b;
    b.src = 0;
    b.dst = 9;
    degraded.inject(b);
    sim2.run();

    // The alternate path has the same hop structure; for this
    // symmetric pair the latency is identical.
    EXPECT_EQ(rerouted, normal);
    EXPECT_EQ(degraded.energy().routerBytes(), 64u);
}

TEST(Resilience, FailingAnInvalidSiteIsAnError)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    EXPECT_THROW(net.failSiteRouters(64), FatalError);
}

TEST(Resilience, BothForwardersDeadDropsWhenHandlerInstalled)
{
    // The same double failure that is fatal by default becomes a
    // counted, surfaced drop once a drop handler opts the workload
    // into loss tolerance.
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.failSiteRouters(1); // (0,1): primary for 0 -> 9
    net.failSiteRouters(8); // (1,0): alternate for 0 -> 9
    int dropped = 0;
    Message last;
    net.setDropHandler([&](const Message &m) {
        ++dropped;
        last = m;
    });
    int delivered = 0;
    net.setDefaultHandler([&](const Message &) { ++delivered; });
    Message m;
    m.src = 0;
    m.dst = 9;
    EXPECT_NO_THROW(net.inject(m));
    sim.run();
    EXPECT_EQ(dropped, 1);
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(last.src, 0u);
    EXPECT_EQ(last.dst, 9u);
    EXPECT_EQ(net.droppedPackets(), 1u);
    EXPECT_EQ(net.retriedPackets(), 0u);
}

TEST(Resilience, RetryExhaustionIsACountedNonFatalDrop)
{
    // With a retry policy the packet backs off and re-attempts the
    // route; against a permanently dead forwarder pair it burns every
    // attempt, then surfaces as one drop (not one per attempt).
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.failSiteRouters(1);
    net.failSiteRouters(8);
    RetryPolicy retry;
    retry.backoffBase = 10 * tickNs;
    retry.maxAttempts = 4;
    net.setRetryPolicy(retry);
    int dropped = 0;
    net.setDropHandler([&](const Message &) { ++dropped; });
    Message m;
    m.src = 0;
    m.dst = 9;
    net.inject(m);
    sim.run();
    EXPECT_EQ(dropped, 1);
    EXPECT_EQ(net.droppedPackets(), 1u);
    // maxAttempts = 4 total attempts: the first plus three retries.
    EXPECT_EQ(net.retriedPackets(), 3u);
    // Exponential backoff: 10 + 20 + 40 ns of re-queueing delay
    // elapsed before the final attempt gave up.
    EXPECT_GE(sim.now(), 70 * tickNs);
}

TEST(Resilience, RetryDeliversAfterRepair)
{
    // A packet caught by a dead router pair survives if the routers
    // come back before its retries are exhausted.
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.applySiteHealth(1, true);
    net.applySiteHealth(8, true);
    RetryPolicy retry;
    retry.backoffBase = 100 * tickNs;
    retry.maxAttempts = 4;
    net.setRetryPolicy(retry);
    int delivered = 0;
    net.setDefaultHandler([&](const Message &) { ++delivered; });
    int dropped = 0;
    net.setDropHandler([&](const Message &) { ++dropped; });
    // Repair the primary forwarder between the first and second
    // routing attempt.
    sim.events().schedule(50 * tickNs, [&net] {
        net.applySiteHealth(1, false);
    }, "test.repair");
    Message m;
    m.src = 0;
    m.dst = 9;
    net.inject(m);
    sim.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(dropped, 0);
    EXPECT_EQ(net.retriedPackets(), 1u);
    EXPECT_EQ(net.droppedPackets(), 0u);
}

} // namespace
