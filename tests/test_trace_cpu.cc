/**
 * @file
 * Tests for the closed-loop trace-CPU system: completion, MSHR
 * back-pressure, and the latency-to-runtime feedback that produces
 * the paper's speedups.
 */

#include <gtest/gtest.h>

#include "net/circuit_switched.hh"
#include "net/pt2pt.hh"
#include "sim/logging.hh"
#include "workloads/trace_cpu.hh"

namespace
{

using namespace macrosim;

WorkloadSpec
tinySynthetic(TrafficPattern pattern, SharerMix mix)
{
    WorkloadSpec spec;
    spec.name = "test";
    spec.mode = HomeMode::Pattern;
    spec.pattern = pattern;
    spec.mix = mix;
    spec.missRatePerInstr = 0.04;
    spec.instructionsPerCore = 800;
    return spec;
}

TEST(TraceCpu, RunsToCompletionAndRetiresEverything)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    TraceCpuSystem cpu(sim, net,
                       tinySynthetic(TrafficPattern::Uniform,
                                     SharerMix::lessSharing()));
    const TraceCpuResult res = cpu.run();
    EXPECT_EQ(res.instructions, 800u * 512u);
    EXPECT_GT(res.coherenceOps, 0u);
    EXPECT_GT(res.runtime, 0u);
    EXPECT_EQ(cpu.engine().inFlight(), 0u);
    // ~4% of instructions miss.
    const double miss_rate = static_cast<double>(res.coherenceOps)
        / static_cast<double>(res.instructions);
    EXPECT_NEAR(miss_rate, 0.04, 0.005);
}

TEST(TraceCpu, RuntimeIsAtLeastTheIdealExecutionTime)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    TraceCpuSystem cpu(sim, net,
                       tinySynthetic(TrafficPattern::Uniform,
                                     SharerMix::lessSharing()));
    const TraceCpuResult res = cpu.run();
    // 800 instructions at 0.2 ns each = 160 ns minimum.
    EXPECT_GE(res.runtime, 800u * 200u);
}

TEST(TraceCpu, SlowerNetworkMeansLongerRuntime)
{
    // The MSHR feedback loop: higher coherence latency throttles the
    // cores. This is the mechanism behind every figure 7 speedup.
    const WorkloadSpec spec =
        tinySynthetic(TrafficPattern::Uniform,
                      SharerMix::lessSharing());

    Simulator sim_fast(7);
    PointToPointNetwork fast(sim_fast, simulatedConfig());
    const TraceCpuResult fast_res =
        TraceCpuSystem(sim_fast, fast, spec, 99).run();

    Simulator sim_slow(7);
    CircuitSwitchedTorus slow(sim_slow, simulatedConfig());
    const TraceCpuResult slow_res =
        TraceCpuSystem(sim_slow, slow, spec, 99).run();

    EXPECT_GT(slow_res.runtime, fast_res.runtime);
    EXPECT_GT(slow_res.opLatencyNs, fast_res.opLatencyNs);
}

TEST(TraceCpu, MoreSharingMeansMoreMessages)
{
    const WorkloadSpec ls = tinySynthetic(TrafficPattern::Uniform,
                                          SharerMix::lessSharing());
    WorkloadSpec ms = ls;
    ms.mix = SharerMix::moreSharing();

    Simulator sim_ls(5);
    PointToPointNetwork net_ls(sim_ls, simulatedConfig());
    TraceCpuSystem cpu_ls(sim_ls, net_ls, ls, 42);
    cpu_ls.run();

    Simulator sim_ms(5);
    PointToPointNetwork net_ms(sim_ms, simulatedConfig());
    TraceCpuSystem cpu_ms(sim_ms, net_ms, ms, 42);
    cpu_ms.run();

    const double ls_per_op =
        static_cast<double>(cpu_ls.engine().messagesSent())
        / static_cast<double>(cpu_ls.engine().transactionsCompleted());
    const double ms_per_op =
        static_cast<double>(cpu_ms.engine().messagesSent())
        / static_cast<double>(cpu_ms.engine().transactionsCompleted());
    EXPECT_GT(ms_per_op, ls_per_op);
}

TEST(TraceCpu, DirectoryModeWorkloadCompletes)
{
    Simulator sim(3);
    PointToPointNetwork net(sim, simulatedConfig());
    WorkloadSpec spec = workloadByName("swaptions");
    spec.instructionsPerCore = 500;
    const TraceCpuResult res = TraceCpuSystem(sim, net, spec).run();
    EXPECT_EQ(res.instructions, 500u * 512u);
    EXPECT_GT(res.coherenceOps, 0u);
    EXPECT_GT(res.opLatencyNs, 0.0);
    EXPECT_GT(res.totalJoules, 0.0);
    EXPECT_GT(res.edp, 0.0);
}

TEST(TraceCpu, BarnesHasFarFewerMissesThanSwaptions)
{
    // Section 6.2: Barnes' low L2 miss rate means it does not stress
    // any network.
    WorkloadSpec barnes = workloadByName("barnes");
    barnes.instructionsPerCore = 500;
    WorkloadSpec swaptions = workloadByName("swaptions");
    swaptions.instructionsPerCore = 500;

    Simulator sim_b(3);
    PointToPointNetwork net_b(sim_b, simulatedConfig());
    const auto barnes_res =
        TraceCpuSystem(sim_b, net_b, barnes).run();

    Simulator sim_s(3);
    PointToPointNetwork net_s(sim_s, simulatedConfig());
    const auto swaptions_res =
        TraceCpuSystem(sim_s, net_s, swaptions).run();

    EXPECT_LT(barnes_res.coherenceOps * 5, swaptions_res.coherenceOps);
}

TEST(TraceCpu, WorkloadCataloguesAreComplete)
{
    EXPECT_EQ(applicationWorkloads().size(), 6u);
    EXPECT_EQ(syntheticWorkloads().size(), 5u);
    EXPECT_EQ(extendedWorkloads().size(), 3u);
    EXPECT_EQ(workloadByName("radix").name, "radix");
    EXPECT_EQ(workloadByName("transpose-MS").mix.sharerCount, 3u);
    EXPECT_EQ(workloadByName("ocean").neighborFraction, 0.85);
    EXPECT_THROW(workloadByName("doom"), FatalError);
}

TEST(TraceCpu, ExtendedWorkloadRuns)
{
    Simulator sim(3);
    PointToPointNetwork net(sim, simulatedConfig());
    WorkloadSpec spec = workloadByName("fft");
    spec.instructionsPerCore = 400;
    const TraceCpuResult res = TraceCpuSystem(sim, net, spec).run();
    EXPECT_GT(res.coherenceOps, 0u);
    EXPECT_GT(res.runtime, 0u);
}

TEST(TraceCpu, RejectsInvalidMissRate)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    WorkloadSpec spec = tinySynthetic(TrafficPattern::Uniform,
                                      SharerMix::lessSharing());
    spec.missRatePerInstr = 0.0;
    EXPECT_THROW(TraceCpuSystem(sim, net, spec), FatalError);
}

} // namespace
