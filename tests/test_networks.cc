/**
 * @file
 * Unit and property tests for the five network architectures:
 * delivery correctness, zero-load latency arithmetic, Table 5/6
 * descriptors, and topology-specific mechanics.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "net/circuit_switched.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"

namespace
{

using namespace macrosim;

enum class NetKind
{
    PointToPoint,
    LimitedPointToPoint,
    TokenRing,
    CircuitSwitched,
    TwoPhase,
    TwoPhaseAlt,
};

std::unique_ptr<Network>
makeNetwork(NetKind kind, Simulator &sim, const MacrochipConfig &cfg)
{
    switch (kind) {
      case NetKind::PointToPoint:
        return std::make_unique<PointToPointNetwork>(sim, cfg);
      case NetKind::LimitedPointToPoint:
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
      case NetKind::TokenRing:
        return std::make_unique<TokenRingCrossbar>(sim, cfg);
      case NetKind::CircuitSwitched:
        return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
      case NetKind::TwoPhase:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
      case NetKind::TwoPhaseAlt:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                           true);
    }
    return nullptr;
}

class AllNetworks : public ::testing::TestWithParam<NetKind>
{
};

TEST_P(AllNetworks, DeliversEveryPacketExactlyOnce)
{
    Simulator sim(11);
    const MacrochipConfig cfg = simulatedConfig();
    auto net = makeNetwork(GetParam(), sim, cfg);

    std::map<std::uint64_t, int> seen;
    net->setDefaultHandler([&](const Message &m) {
        ++seen[m.cookie];
        EXPECT_GE(m.delivered, m.injected);
        EXPECT_GE(m.injected, m.created);
    });

    int expected = 0;
    for (SiteId src = 0; src < 64; src += 7) {
        for (SiteId dst = 0; dst < 64; dst += 5) {
            Message m;
            m.src = src;
            m.dst = dst;
            m.bytes = 64;
            m.cookie = static_cast<std::uint64_t>(src) * 100 + dst;
            net->inject(m);
            ++expected;
        }
    }
    sim.run();
    EXPECT_EQ(static_cast<int>(seen.size()), expected);
    for (const auto &[cookie, count] : seen)
        EXPECT_EQ(count, 1) << "cookie " << cookie;
    EXPECT_EQ(net->stats().delivered.value(),
              static_cast<std::uint64_t>(expected));
}

TEST_P(AllNetworks, LoopbackTakesOneCycle)
{
    Simulator sim;
    auto net = makeNetwork(GetParam(), sim, simulatedConfig());
    Tick delivered = 0;
    net->setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 5;
    m.dst = 5;
    net->inject(m);
    sim.run();
    EXPECT_EQ(delivered, 200u); // one 5 GHz cycle
}

TEST_P(AllNetworks, PerSiteHandlerOverridesDefault)
{
    Simulator sim;
    auto net = makeNetwork(GetParam(), sim, simulatedConfig());
    int site3 = 0, fallback = 0;
    net->setDeliveryHandler(3, [&](const Message &) { ++site3; });
    net->setDefaultHandler([&](const Message &) { ++fallback; });
    Message a;
    a.src = 0;
    a.dst = 3;
    net->inject(a);
    Message b;
    b.src = 0;
    b.dst = 4;
    net->inject(b);
    sim.run();
    EXPECT_EQ(site3, 1);
    EXPECT_EQ(fallback, 1);
}

TEST_P(AllNetworks, StatsRegistrationPullsLiveValues)
{
    Simulator sim;
    auto net = makeNetwork(GetParam(), sim, simulatedConfig());
    net->setDefaultHandler([](const Message &) {});
    StatGroup group;
    net->registerStats(group, "net");

    Message m;
    m.src = 0;
    m.dst = 1;
    net->inject(m);
    sim.run();

    std::ostringstream os;
    group.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("net.injected 1"), std::string::npos);
    EXPECT_NE(text.find("net.delivered 1"), std::string::npos);
    EXPECT_NE(text.find("net.bytes 64"), std::string::npos);
}

TEST_P(AllNetworks, StaticPowerIsPositiveAndDominatedByLasers)
{
    Simulator sim;
    auto net = makeNetwork(GetParam(), sim, simulatedConfig());
    EXPECT_GT(net->laserWatts(), 0.0);
    EXPECT_GE(net->staticWatts(), net->laserWatts());
    EXPECT_DOUBLE_EQ(net->energy().staticWatts(), net->staticWatts());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AllNetworks,
    ::testing::Values(NetKind::PointToPoint,
                      NetKind::LimitedPointToPoint, NetKind::TokenRing,
                      NetKind::CircuitSwitched, NetKind::TwoPhase,
                      NetKind::TwoPhaseAlt),
    [](const ::testing::TestParamInfo<NetKind> &param_info) {
        switch (param_info.param) {
          case NetKind::PointToPoint: return "PointToPoint";
          case NetKind::LimitedPointToPoint: return "LimitedP2P";
          case NetKind::TokenRing: return "TokenRing";
          case NetKind::CircuitSwitched: return "CircuitSwitched";
          case NetKind::TwoPhase: return "TwoPhase";
          case NetKind::TwoPhaseAlt: return "TwoPhaseAlt";
        }
        return "Unknown";
    });

// ---------------------------------------------------------------------
// Point-to-point specifics (section 4.2).

TEST(PointToPoint, ChannelWidthIsTwoWavelengths)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    EXPECT_EQ(net.wavelengthsPerChannel(), 2u);
    EXPECT_DOUBLE_EQ(net.channel(0, 1).bandwidthBytesPerNs(), 5.0);
}

TEST(PointToPoint, ZeroLoadLatencyArithmetic)
{
    // 1 cycle E-O + 12.8 ns serialization (64 B at 5 B/ns) + 0.25 ns
    // flight (adjacent sites) + 1 cycle O-E = 13.45 ns.
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 1;
    m.bytes = 64;
    net.inject(m);
    sim.run();
    EXPECT_EQ(delivered, 200u + 12800u + 250u + 200u);
}

TEST(PointToPoint, BackToBackPacketsQueueOnTheirChannel)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    std::vector<Tick> times;
    net.setDefaultHandler([&](const Message &m) {
        times.push_back(m.delivered);
    });
    for (int i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        net.inject(m);
    }
    sim.run();
    ASSERT_EQ(times.size(), 3u);
    // Each successive packet waits one extra serialization time.
    EXPECT_EQ(times[1] - times[0], 12800u);
    EXPECT_EQ(times[2] - times[1], 12800u);
}

TEST(PointToPoint, DisjointPairsDoNotInterfere)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    std::vector<Tick> lat;
    net.setDefaultHandler([&](const Message &m) {
        lat.push_back(m.delivered - m.injected);
    });
    Message a;
    a.src = 0;
    a.dst = 1;
    net.inject(a);
    Message b;
    b.src = 2;
    b.dst = 3;
    net.inject(b);
    sim.run();
    ASSERT_EQ(lat.size(), 2u);
    EXPECT_EQ(lat[0], lat[1]); // same distance, independent channels
}

TEST(PointToPoint, Table6Counts)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    const ComponentCounts c = net.componentCounts();
    EXPECT_EQ(c.transmitters, 8192u);
    EXPECT_EQ(c.receivers, 8192u);
    EXPECT_EQ(c.waveguides, 3072u);
    EXPECT_EQ(c.opticalSwitches, 0u);
    EXPECT_EQ(c.electronicRouters, 0u);
}

TEST(PointToPoint, Table5Power)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    const auto specs = net.opticalPower();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].wavelengths, 8192u);
    EXPECT_DOUBLE_EQ(specs[0].lossFactor, 1.0);
    EXPECT_NEAR(net.laserWatts(), 8.19, 0.01);
}

// ---------------------------------------------------------------------
// Limited point-to-point specifics (section 4.6).

TEST(LimitedP2P, PeersAndForwarders)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    EXPECT_TRUE(net.arePeers(0, 7));   // same row
    EXPECT_TRUE(net.arePeers(0, 56));  // same column
    EXPECT_FALSE(net.arePeers(0, 9));
    // Forwarder sits at (src row, dst col).
    EXPECT_EQ(net.forwarderFor(0, 9), 1u);
    EXPECT_EQ(net.forwarderFor(63, 0), 56u);
    // The forwarder is a peer of both endpoints.
    for (SiteId s : {SiteId{0}, SiteId{13}, SiteId{42}}) {
        for (SiteId d : {SiteId{9}, SiteId{27}, SiteId{62}}) {
            if (s == d || net.arePeers(s, d))
                continue;
            const SiteId f = net.forwarderFor(s, d);
            EXPECT_TRUE(net.arePeers(s, f));
            EXPECT_TRUE(net.arePeers(f, d));
        }
    }
}

TEST(LimitedP2P, DirectChannelLatency)
{
    // 1 cycle + 3.2 ns (64 B at 20 B/ns) + 0.25 ns + 1 cycle.
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 1;
    net.inject(m);
    sim.run();
    EXPECT_EQ(delivered, 200u + 3200u + 250u + 200u);
    EXPECT_EQ(net.forwardedPackets(), 0u);
}

TEST(LimitedP2P, ForwardedPacketTakesOneElectronicHop)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 9; // (1,1): not a peer of (0,0)
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // Leg 1 to site 1: 200+3200+250+200 = 3850; router: 200;
    // leg 2: 200 E-O + 3200 + 250 + 200 O-E.
    EXPECT_EQ(delivered, 3850u + 200u + 200u + 3200u + 250u + 200u);
    EXPECT_EQ(net.forwardedPackets(), 1u);
    EXPECT_EQ(net.energy().routerBytes(), 64u);
}

TEST(LimitedP2P, RouterEnergyOnlyForForwardedTraffic)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    net.setDefaultHandler([](const Message &) {});
    Message direct;
    direct.src = 0;
    direct.dst = 5;
    net.inject(direct);
    sim.run();
    EXPECT_EQ(net.energy().routerBytes(), 0u);
    Message fwd;
    fwd.src = 0;
    fwd.dst = 9;
    fwd.bytes = 72;
    net.inject(fwd);
    sim.run();
    EXPECT_EQ(net.energy().routerBytes(), 72u);
    // 60 pJ/byte.
    EXPECT_NEAR(net.energy().routerJoules(), 72.0 * 60e-12, 1e-15);
}

TEST(LimitedP2P, Table6Counts)
{
    Simulator sim;
    LimitedPointToPointNetwork net(sim, simulatedConfig());
    const ComponentCounts c = net.componentCounts();
    EXPECT_EQ(c.transmitters, 8192u);
    EXPECT_EQ(c.receivers, 8192u);
    EXPECT_EQ(c.waveguides, 3072u);
    EXPECT_EQ(c.opticalSwitches, 0u);
    EXPECT_EQ(c.electronicRouters, 128u);
}

// ---------------------------------------------------------------------
// Token-ring crossbar specifics (section 4.4).

TEST(TokenRing, RingPositionsAreSerpentine)
{
    Simulator sim;
    TokenRingCrossbar net(sim, simulatedConfig());
    // Row 0 runs left to right, row 1 right to left.
    EXPECT_EQ(net.ringPosition(0), 0u);
    EXPECT_EQ(net.ringPosition(7), 7u);
    EXPECT_EQ(net.ringPosition(15), 8u); // (1,7) follows (0,7)
    EXPECT_EQ(net.ringPosition(8), 15u);
    // All positions distinct.
    std::vector<bool> used(64, false);
    for (SiteId s = 0; s < 64; ++s) {
        EXPECT_FALSE(used[net.ringPosition(s)]);
        used[net.ringPosition(s)] = true;
    }
}

TEST(TokenRing, RoundTripIs80Cycles)
{
    Simulator sim;
    TokenRingCrossbar net(sim, simulatedConfig());
    EXPECT_EQ(net.tokenRoundTrip(), 16 * tickNs);
    EXPECT_EQ(systemClock.ticksToCycles(net.tokenRoundTrip()).count(),
              80u);
}

TEST(TokenRing, SingleSenderPaysFullRoundTripBetweenPackets)
{
    Simulator sim;
    TokenRingCrossbar net(sim, simulatedConfig());
    std::vector<Tick> times;
    net.setDefaultHandler([&](const Message &m) {
        times.push_back(m.delivered);
    });
    for (int i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        m.bytes = 64;
        net.inject(m);
    }
    sim.run();
    ASSERT_EQ(times.size(), 3u);
    // One 64 B packet per token round trip (16 ns) + 0.2 ns hold:
    // this is the one-to-one throughput collapse of section 6.1.
    EXPECT_EQ(times[1] - times[0], 16200u);
    EXPECT_EQ(times[2] - times[1], 16200u);
}

TEST(TokenRing, TokenVisitsWaitersInRingOrder)
{
    Simulator sim;
    TokenRingCrossbar net(sim, simulatedConfig());
    std::vector<SiteId> order;
    net.setDefaultHandler([&](const Message &m) {
        order.push_back(m.src);
    });
    // Three senders to destination 9, all queued at t=0. After the
    // first grant the token is at the granted sender; the next waiter
    // downstream in serpentine order wins next.
    for (SiteId src : {SiteId{4}, SiteId{2}, SiteId{6}}) {
        Message m;
        m.src = src;
        m.dst = 9;
        net.inject(m);
    }
    sim.run();
    ASSERT_EQ(order.size(), 3u);
    // Token starts conceptually at position 0: first pass reaches
    // site 2 first, then 4, then 6.
    EXPECT_EQ(order, (std::vector<SiteId>{2, 4, 6}));
}

TEST(TokenRing, Table6Counts)
{
    Simulator sim;
    TokenRingCrossbar net(sim, simulatedConfig());
    const ComponentCounts c = net.componentCounts();
    EXPECT_EQ(c.transmitters, 512u * 1024u);
    EXPECT_EQ(c.receivers, 8192u);
    EXPECT_EQ(net.physicalWaveguides(), 8192u);
    EXPECT_EQ(c.waveguides, 32u * 1024u);
    EXPECT_EQ(c.opticalSwitches, 0u);
}

TEST(TokenRing, Table5Power)
{
    Simulator sim;
    TokenRingCrossbar net(sim, simulatedConfig());
    const auto specs = net.opticalPower();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].wavelengths, 8192u);
    EXPECT_NEAR(specs[0].lossFactor, 19.05, 0.01);
    EXPECT_NEAR(net.laserWatts(), 156.1, 0.5);
}

// ---------------------------------------------------------------------
// Circuit-switched torus specifics (section 4.5).

TEST(CircuitSwitched, TorusPathUsesWraparound)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig());
    // Adjacent via wrap: no intermediate switch points.
    EXPECT_TRUE(net.torusPath(0, 7).empty());
    EXPECT_TRUE(net.torusPath(0, 1).empty());
    // (0,0) -> (0,2): one intermediate at (0,1).
    EXPECT_EQ(net.torusPath(0, 2), (std::vector<SiteId>{1}));
    // (0,0) -> (1,1): X first through (0,1).
    EXPECT_EQ(net.torusPath(0, 9), (std::vector<SiteId>{1}));
    // Worst case on an 8x8 torus: 4+4 hops -> 7 intermediates.
    EXPECT_EQ(net.torusPath(0, 36).size(), 7u); // (0,0)->(4,4)
}

TEST(CircuitSwitched, ZeroLoadLatencyIsSetupDominated)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 1;
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // setup 1.6 ns (8 B on the 2-lambda control network) + 0.25
    // flight; ack 0.25 + 0.4; data 0.8 ns serialization at 80 B/ns
    // + 0.25 flight.
    EXPECT_EQ(delivered, 1600u + 250u + 250u + 400u + 800u + 250u);
    // The 64 B transfer itself is only 0.8 ns of the ~3.5 ns total.
    EXPECT_EQ(net.circuitsCompleted(), 1u);
}

TEST(CircuitSwitched, LatencyGrowsWithHopCount)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig());
    std::map<SiteId, Tick> lat;
    net.setDefaultHandler([&](const Message &m) {
        lat[m.dst] = m.delivered - m.injected;
    });
    for (SiteId dst : {SiteId{1}, SiteId{2}, SiteId{36}}) {
        Message m;
        m.src = 0;
        m.dst = dst;
        net.inject(m);
    }
    sim.run();
    EXPECT_LT(lat[1], lat[2]);
    EXPECT_LT(lat[2], lat[36]);
}

TEST(CircuitSwitched, GatewaysLimitConcurrentCircuits)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig(), 1);
    std::vector<Tick> times;
    net.setDefaultHandler([&](const Message &m) {
        times.push_back(m.delivered);
    });
    // Two circuits from the same source serialize on its only
    // gateway even though destinations differ.
    Message a;
    a.src = 0;
    a.dst = 1;
    net.inject(a);
    Message b;
    b.src = 0;
    b.dst = 2;
    net.inject(b);
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_GT(times[1] - times[0], 3000u); // second waits for gateway
}

TEST(CircuitSwitched, Table6Counts)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig());
    const ComponentCounts c = net.componentCounts();
    EXPECT_EQ(c.transmitters, 8192u);
    EXPECT_EQ(c.receivers, 8192u);
    EXPECT_EQ(c.waveguides, 2048u);
    EXPECT_EQ(c.opticalSwitches, 1024u);
}

TEST(CircuitSwitched, Table5Power)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig());
    const auto specs = net.opticalPower();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_DOUBLE_EQ(specs[0].lossFactor, 30.0);
    EXPECT_NEAR(net.laserWatts(), 245.76, 0.01);
}

// ---------------------------------------------------------------------
// Two-phase arbitrated network specifics (section 4.3).

TEST(TwoPhase, ChannelWidthIs16Wavelengths)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    EXPECT_EQ(net.channelLambdas(), 16u);
}

TEST(TwoPhase, ZeroLoadLatencyIncludesBothPhases)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 1;
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // slot 0.4 + row 1.75 + notification 3.2 + column 1.75 + switch
    // 1.0 + sender guard 1.0 + ser 1.6 + flight 0.25 + 1 cycle.
    EXPECT_EQ(delivered,
              400u + 1750u + 3200u + 1750u + 1000u + 1000u + 1600u
                  + 250u + 200u);
    EXPECT_EQ(net.wastedSlots(), 0u);
}

TEST(TwoPhase, NotificationWaveguideSerializesSameColumnGrants)
{
    // Two transfers from one site into the same column must wait for
    // consecutive 3.2 ns switch requests on the column manager's
    // notification wavelength; a different column is independent.
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    std::map<SiteId, Tick> delivered;
    net.setDefaultHandler([&](const Message &m) {
        delivered[m.dst] = m.delivered;
    });
    Message a;
    a.src = 0;
    a.dst = 9;  // (1,1): column 1
    net.inject(a);
    Message b;
    b.src = 0;
    b.dst = 17; // (2,1): column 1 again
    net.inject(b);
    Message c;
    c.src = 0;
    c.dst = 18; // (2,2): column 2
    net.inject(c);
    sim.run();
    ASSERT_EQ(delivered.size(), 3u);
    // Same column: second grant is pushed a full notification slot
    // later. Different column: unaffected by the first two.
    EXPECT_GE(delivered[17], delivered[9] + 3200u);
    EXPECT_LT(delivered[18], delivered[17]);
}

TEST(TwoPhaseAlt, LessContentionThanBaseUnderLoad)
{
    // Section 6.2: the ALT variant's doubled trees and transmitters
    // reduce slot waste and latency under all-to-all-style load.
    auto run = [](bool alt) {
        Simulator sim(31);
        TwoPhaseArbitratedNetwork net(sim, simulatedConfig(), alt);
        Rng rng(5);
        net.setDefaultHandler([](const Message &) {});
        // A burst: every site fires 24 packets at random targets.
        for (SiteId src = 0; src < 64; ++src) {
            for (int i = 0; i < 24; ++i) {
                Message m;
                m.src = src;
                m.dst = static_cast<SiteId>(rng.below(64));
                net.inject(m);
            }
        }
        sim.run();
        return net.stats().latencyNs.mean();
    };
    const double base_lat = run(false);
    const double alt_lat = run(true);
    // ALT may waste the odd slot on a tree collision (its doubled
    // notification wavelengths allow overlapping grants), but its
    // extra parallelism must win on latency overall.
    EXPECT_LT(alt_lat, base_lat);
}

TEST(TwoPhase, DifferentColumnsNeverCollide)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    int delivered = 0;
    net.setDefaultHandler([&](const Message &) { ++delivered; });
    Message a;
    a.src = 0;
    a.dst = 9;  // column 1
    net.inject(a);
    Message b;
    b.src = 0;
    b.dst = 18; // column 2
    net.inject(b);
    sim.run();
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(net.wastedSlots(), 0u);
}

TEST(TwoPhase, Table6Counts)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork base(sim, simulatedConfig());
    const ComponentCounts c = base.componentCounts();
    EXPECT_EQ(c.transmitters, 8192u);
    EXPECT_EQ(c.receivers, 8192u);
    EXPECT_EQ(c.waveguides, 4096u);
    EXPECT_NEAR(static_cast<double>(c.opticalSwitches), 16000.0,
                1000.0); // "16K"

    TwoPhaseArbitratedNetwork alt(sim, simulatedConfig(), true);
    const ComponentCounts a = alt.componentCounts();
    EXPECT_EQ(a.transmitters, 16384u);
    EXPECT_NEAR(static_cast<double>(a.opticalSwitches), 15000.0,
                1000.0); // "15K"

    const ComponentCounts arb = base.arbitrationCounts();
    EXPECT_EQ(arb.transmitters, 128u);
    EXPECT_EQ(arb.receivers, 1024u);
    EXPECT_EQ(arb.waveguides, 24u);
}

TEST(TwoPhase, Table5Power)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork base(sim, simulatedConfig());
    auto specs = base.opticalPower();
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_NEAR(specs[0].lossFactor, 5.01, 0.01);
    EXPECT_NEAR(specs[0].watts(), 41.0, 0.2);
    EXPECT_DOUBLE_EQ(specs[1].lossFactor, 8.0);
    EXPECT_NEAR(specs[1].watts(), 1.02, 0.01);

    TwoPhaseArbitratedNetwork alt(sim, simulatedConfig(), true);
    specs = alt.opticalPower();
    EXPECT_NEAR(specs[0].lossFactor, 3.98, 0.01);
    EXPECT_NEAR(specs[0].watts(), 65.2, 0.3);
}

} // namespace
