/**
 * @file
 * Tests for component properties, link budgets and laser power,
 * pinned to the paper's section 2 / Table 1 / Table 5 numbers.
 */

#include <gtest/gtest.h>

#include "photonics/components.hh"
#include "photonics/laser_power.hh"
#include "photonics/link_budget.hh"

namespace
{

using namespace macrosim;

TEST(Components, Table1Values)
{
    EXPECT_DOUBLE_EQ(properties(Component::Modulator).dynamicEnergy.value,
                     35.0);
    EXPECT_DOUBLE_EQ(properties(Component::Modulator).insertionLoss
                         .value(), 4.0);
    EXPECT_DOUBLE_EQ(properties(Component::OpxcCoupler).insertionLoss
                         .value(), 1.2);
    EXPECT_DOUBLE_EQ(properties(Component::WaveguideLocal).insertionLoss
                         .value(), 0.5);
    EXPECT_DOUBLE_EQ(properties(Component::WaveguideGlobal).insertionLoss
                         .value(), 0.1);
    EXPECT_DOUBLE_EQ(properties(Component::DropFilterPass).insertionLoss
                         .value(), 0.1);
    EXPECT_DOUBLE_EQ(properties(Component::DropFilterDrop).insertionLoss
                         .value(), 1.5);
    EXPECT_DOUBLE_EQ(properties(Component::Receiver).dynamicEnergy.value,
                     65.0);
    EXPECT_DOUBLE_EQ(properties(Component::Receiver).staticPower.value,
                     1.3);
    EXPECT_DOUBLE_EQ(properties(Component::Switch).insertionLoss.value(),
                     1.0);
    EXPECT_DOUBLE_EQ(properties(Component::Switch).staticPower.value,
                     0.5);
    EXPECT_DOUBLE_EQ(properties(Component::Laser).dynamicEnergy.value,
                     50.0);
    EXPECT_DOUBLE_EQ(properties(Component::ModulatorOff).insertionLoss
                         .value(), 0.1);
    EXPECT_DOUBLE_EQ(properties(Component::Multiplexer).insertionLoss
                         .value(), 2.5);
}

TEST(Components, LinkRateConstants)
{
    EXPECT_DOUBLE_EQ(bitRateGbps, 20.0);
    EXPECT_DOUBLE_EQ(bytesPerNsPerWavelength, 2.5);
    EXPECT_DOUBLE_EQ(receiverSensitivity.value(), -21.0);
    EXPECT_DOUBLE_EQ(propagationNsPerCm, 0.1);
}

TEST(LinkBudget, EmptyPathIsLossless)
{
    OpticalPath p;
    EXPECT_DOUBLE_EQ(p.totalLoss().value(), 0.0);
    EXPECT_DOUBLE_EQ(p.receivedPower().value(), 0.0);
}

TEST(LinkBudget, CanonicalUnswitchedLinkIs17dB)
{
    const OpticalPath link = canonicalUnswitchedLink();
    EXPECT_NEAR(link.totalLoss().value(),
                unswitchedLinkBudget.value(), 1e-9);
}

TEST(LinkBudget, CanonicalLinkClosesWith4dBMargin)
{
    const OpticalPath link = canonicalUnswitchedLink();
    EXPECT_NEAR(link.margin().value(), 4.0, 1e-9);
    EXPECT_TRUE(link.closes());
}

TEST(LinkBudget, LinkFailsBelowSensitivity)
{
    OpticalPath p = canonicalUnswitchedLink();
    p.add(Component::Switch, 5.0); // +5 dB pushes margin to -1 dB
    EXPECT_FALSE(p.closes());
    EXPECT_NEAR(p.margin().value(), -1.0, 1e-9);
    // Raising launch power recovers the link.
    EXPECT_TRUE(p.closes(PowerDbm(1.0)));
}

TEST(LinkBudget, DeratedPathErodesThe4dBMargin)
{
    // The fault model's arithmetic: added loss on top of the section 2
    // canonical link (17 dB loss, 4 dB margin) comes straight off the
    // margin, and the original path is untouched.
    const OpticalPath link = canonicalUnswitchedLink();
    const OpticalPath mild = link.deratedPath(Decibel(3.0));
    EXPECT_NEAR(mild.totalLoss().value(), 20.0, 1e-9);
    EXPECT_NEAR(mild.margin().value(), 1.0, 1e-9);
    EXPECT_TRUE(mild.closes());

    const OpticalPath dead = link.deratedPath(Decibel(5.0));
    EXPECT_NEAR(dead.margin().value(), -1.0, 1e-9);
    EXPECT_FALSE(dead.closes());

    // Derates stack, and the source path keeps its full margin.
    EXPECT_NEAR(mild.deratedPath(Decibel(2.0)).extraLoss().value(),
                5.0, 1e-9);
    EXPECT_NEAR(link.margin().value(), 4.0, 1e-9);
}

TEST(LinkBudget, WaveguideLossScalesWithLength)
{
    OpticalPath p;
    p.addGlobalWaveguide(60.0);
    EXPECT_NEAR(p.totalLoss().value(), 6.0, 1e-12);
    OpticalPath q;
    q.addLocalWaveguide(2.0);
    EXPECT_NEAR(q.totalLoss().value(), 1.0, 1e-12);
}

TEST(LinkBudget, LossFactorBeyondBudget)
{
    OpticalPath p = canonicalUnswitchedLink();
    // Within budget: no scaling needed.
    EXPECT_DOUBLE_EQ(p.lossFactorBeyond(unswitchedLinkBudget), 1.0);
    // 7 switch hops (two-phase worst case): 7 dB -> ~5x laser power.
    p.add(Component::Switch, 7.0);
    EXPECT_NEAR(p.lossFactorBeyond(unswitchedLinkBudget), 5.01, 0.01);
}

TEST(LinkBudget, GeneralizedLinkAnchorsToTheCanonicalBudget)
{
    // The R x C worst-case link at the paper's 8x8 grid is exactly
    // the section 2 canonical 17 dB link: same fixed components,
    // 60 cm global waveguide (35 cm Manhattan x the routing detour),
    // six drop-filter passes.
    EXPECT_NEAR(unswitchedLinkFor(8, 8).totalLoss().value(),
                unswitchedLinkBudget.value(), 1e-9);
    EXPECT_NEAR(routingDetourFactor, 60.0 / 35.0, 1e-12);
    // Known grown points (the scaling study's grid ladder).
    EXPECT_NEAR(unswitchedLinkFor(16, 16).totalLoss().value(),
                24.657143, 1e-4);
    EXPECT_NEAR(unswitchedLinkFor(24, 24).totalLoss().value(),
                32.314286, 1e-4);
}

TEST(LinkBudget, AssessLinkArithmetic)
{
    // Required launch = sensitivity + loss; margin is measured
    // against the nonlinearity launch ceiling, not the 0 dBm source.
    EXPECT_DOUBLE_EQ(maxLaunchPower.value(), 13.0);
    const LinkFeasibility f = assessLink(canonicalUnswitchedLink());
    EXPECT_NEAR(f.totalLoss.value(), 17.0, 1e-9);
    EXPECT_NEAR(f.requiredLaunch.value(), -4.0, 1e-9);
    EXPECT_NEAR(f.margin.value(), 17.0, 1e-9);
    EXPECT_TRUE(f.feasible);
    // A custom ceiling shifts only the margin.
    const LinkFeasibility tight =
        assessLink(canonicalUnswitchedLink(), PowerDbm(-4.0));
    EXPECT_NEAR(tight.margin.value(), 0.0, 1e-9);
    EXPECT_TRUE(tight.feasible); // boundary closes
    EXPECT_FALSE(
        assessLink(canonicalUnswitchedLink(), PowerDbm(-4.1))
            .feasible);
}

TEST(LinkBudget, MarginGoesNegativeAtScale)
{
    // The Al-Qadasi-style ceiling argument: un-switched links still
    // close (barely) at 24x24, but any loss that grows with the site
    // count — a flat broadcast ring's per-site taps, a torus's
    // per-hop switches — blows through the launch ceiling well
    // before that scale.
    const LinkFeasibility plain = assessLink(unswitchedLinkFor(24, 24));
    EXPECT_TRUE(plain.feasible);
    EXPECT_NEAR(plain.margin.value(), 1.686, 0.01);
    EXPECT_FALSE(
        assessLink(unswitchedLinkFor(24, 24).deratedPath(Decibel(2.0)))
            .feasible);

    // Flat 576-site broadcast: 0.1 dB per tap plus the 1:576 power
    // split is ~85 dB of extra loss — infeasible by tens of dB, and
    // monotonically worse as the ring grows.
    const double ring_extra =
        0.1 * 576.0 + Decibel::fromLinear(576.0).value();
    const LinkFeasibility ring = assessLink(
        unswitchedLinkFor(24, 24).deratedPath(Decibel(ring_extra)));
    EXPECT_FALSE(ring.feasible);
    EXPECT_LT(ring.margin.value(), -80.0);
    for (std::uint32_t dim = 9; dim <= 24; dim += 5) {
        const double n = static_cast<double>(dim * dim);
        const double extra = 0.1 * n + Decibel::fromLinear(n).value();
        const LinkFeasibility f = assessLink(
            unswitchedLinkFor(dim, dim).deratedPath(Decibel(extra)));
        EXPECT_LT(f.margin.value(),
                  assessLink(unswitchedLinkFor(dim, dim))
                      .margin.value());
    }
}

TEST(LaserPower, FactorFromExtraLoss)
{
    EXPECT_DOUBLE_EQ(lossFactorFromExtraLoss(Decibel(0.0)), 1.0);
    EXPECT_DOUBLE_EQ(lossFactorFromExtraLoss(Decibel(-3.0)), 1.0);
    EXPECT_NEAR(lossFactorFromExtraLoss(Decibel(12.8)), 19.05, 0.01);
    EXPECT_NEAR(lossFactorFromExtraLoss(Decibel(7.0)), 5.01, 0.01);
    EXPECT_NEAR(lossFactorFromExtraLoss(Decibel(6.0)), 3.98, 0.01);
}

TEST(LaserPower, SpecWattsMatchesFormula)
{
    // Point-to-point row of Table 5: 8192 wavelengths at 1x -> ~8 W.
    LaserPowerSpec p2p{"pt-to-pt", 8192, 1.0};
    EXPECT_NEAR(p2p.watts(), 8.19, 0.01);

    // Token ring: 8192 wavelengths at 19x -> ~155 W.
    LaserPowerSpec token{"token", 8192,
                         lossFactorFromExtraLoss(Decibel(12.8))};
    EXPECT_NEAR(token.watts(), 156.0, 1.0);
}

TEST(LaserPower, SourceCountRoundsUp)
{
    LaserPowerSpec s{"x", 8192, 1.0};
    // 8.192 W = 8192 mW -> 820 ten-mW sources.
    EXPECT_EQ(s.laserSources(), 820u);
}

} // namespace
