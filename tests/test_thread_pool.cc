/**
 * @file
 * Tests for the fixed-size ThreadPool behind the sweep engine:
 * concurrency bounds, drain-on-destruction, exception propagation,
 * and the FIFO guarantee a 1-thread pool gives.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/thread_pool.hh"

namespace
{

using namespace macrosim;

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([i, &ran] {
            ++ran;
            return i * i;
        }));
    }
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, UsesAtMostRequestedThreads)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);

    std::mutex mutex;
    std::set<std::thread::id> ids;
    std::atomic<int> live{0};
    std::atomic<int> peak{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&] {
            const int now = ++live;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now))
                ;
            {
                std::lock_guard<std::mutex> lock(mutex);
                ids.insert(std::this_thread::get_id());
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            --live;
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_LE(ids.size(), 3u);
    EXPECT_LE(peak.load(), 3);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, DrainsOnDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            // Futures dropped on the floor: the destructor alone
            // must guarantee completion.
            pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++ran;
            });
        }
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, PropagatesExceptionsToCaller)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 1; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("job failed");
    });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);

    // A thrown task must not take its worker down with it.
    EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([i, &order] {
            order.push_back(i);
        }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

} // namespace
