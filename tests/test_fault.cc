/**
 * @file
 * Fault-injection subsystem tests: deterministic schedules, link
 * margin re-evaluation through the section 2 budget arithmetic,
 * fault.* telemetry, protocol retry/timeout behaviour, and sweep
 * determinism across worker-thread counts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fault/injector.hh"
#include "harness.hh"
#include "net/pt2pt.hh"
#include "sim/random.hh"
#include "sim/telemetry/trace.hh"
#include "sweep.hh"
#include "workloads/coherence.hh"
#include "workloads/message_passing.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

bool
sameEvents(const std::vector<FaultEvent> &a,
           const std::vector<FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].at != b[i].at || a[i].kind != b[i].kind
            || !(a[i].target == b[i].target)
            || a[i].magnitudeDb != b[i].magnitudeDb) {
            return false;
        }
    }
    return true;
}

TEST(FaultSchedule, RandomIsAPureFunctionOfSeed)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    RandomFaultConfig cfg;
    cfg.events = 24;

    const FaultSchedule a = FaultSchedule::random(42, cfg, net);
    const FaultSchedule b = FaultSchedule::random(42, cfg, net);
    const FaultSchedule c = FaultSchedule::random(43, cfg, net);
    EXPECT_FALSE(a.empty());
    EXPECT_TRUE(sameEvents(a.events(), b.events()));
    EXPECT_FALSE(sameEvents(a.events(), c.events()));

    // Every generated channel target is a published faultable link,
    // every site target a valid site.
    const auto links = net.faultableLinks();
    for (const FaultEvent &ev : a.events()) {
        if (ev.target.scope == FaultTarget::Scope::Site) {
            EXPECT_LT(ev.target.a, net.config().siteCount());
            continue;
        }
        bool found = false;
        for (const auto &[s, d] : links)
            found = found || (s == ev.target.a && d == ev.target.b);
        EXPECT_TRUE(found);
    }
}

TEST(FaultSchedule, OrderedReplaysByTimeStably)
{
    FaultSchedule s;
    const FaultTarget t = FaultTarget::channel(0, 1);
    s.add(30, FaultKind::Repair, t);
    s.add(10, FaultKind::RingDrift, t, 1.0);
    s.add(10, FaultKind::WaveguideCreep, t, 2.0);
    const std::vector<FaultEvent> ordered = s.ordered();
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(ordered[0].kind, FaultKind::RingDrift);
    EXPECT_EQ(ordered[1].kind, FaultKind::WaveguideCreep);
    EXPECT_EQ(ordered[2].kind, FaultKind::Repair);
}

TEST(FaultInjector, SoftDegradationDeratesThenKillsThenRepairs)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    FaultInjector inj(sim, net, FaultSchedule{});
    const FaultTarget t = FaultTarget::channel(0, 1);
    const std::uint32_t full =
        net.channel(0, 1).activeWavelengths();

    // 3 dB of ring drift: margin 1 dB, inside the 2 dB derate
    // threshold -> half the wavelengths masked, still up.
    inj.apply({0, FaultKind::RingDrift, t, 3.0});
    EXPECT_NEAR(inj.marginDbOf(t), 1.0, 1e-9);
    EXPECT_EQ(inj.linksDerated(), 1u);
    EXPECT_EQ(inj.linksDown(), 0u);
    EXPECT_FALSE(net.channel(0, 1).down());
    EXPECT_EQ(net.channel(0, 1).activeWavelengths(), full / 2);

    // 2 dB more of waveguide creep: margin -1 dB -> link down.
    inj.apply({0, FaultKind::WaveguideCreep, t, 2.0});
    EXPECT_NEAR(inj.marginDbOf(t), -1.0, 1e-9);
    EXPECT_EQ(inj.linksDown(), 1u);
    EXPECT_EQ(inj.linksDerated(), 0u);
    EXPECT_TRUE(net.channel(0, 1).down());
    EXPECT_NEAR(inj.minMarginDb(), -1.0, 1e-9);

    // Repair clears all accumulated degradation.
    inj.apply({0, FaultKind::Repair, t});
    EXPECT_NEAR(inj.marginDbOf(t), 4.0, 1e-9);
    EXPECT_EQ(inj.linksDown(), 0u);
    EXPECT_FALSE(net.channel(0, 1).down());
    EXPECT_EQ(net.channel(0, 1).activeWavelengths(), full);
    EXPECT_EQ(inj.repairs(), 1u);
    EXPECT_EQ(inj.injectedFaults(), 2u);
    // The historical minimum survives the repair.
    EXPECT_NEAR(inj.minMarginDb(), -1.0, 1e-9);
}

TEST(FaultInjector, LaserAndReceiverDegradationErodeMargin)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    FaultInjector inj(sim, net, FaultSchedule{});
    const FaultTarget t = FaultTarget::channel(2, 3);
    inj.apply({0, FaultKind::LaserDroop, t, 2.5});
    EXPECT_NEAR(inj.marginDbOf(t), 1.5, 1e-9);
    inj.apply({0, FaultKind::ReceiverDegrade, t, 2.5});
    EXPECT_NEAR(inj.marginDbOf(t), -1.0, 1e-9);
    EXPECT_TRUE(net.channel(2, 3).down());
}

TEST(FaultInjector, StatsAndTraceInstantEventsSurface)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    TraceSink trace;
    FaultSchedule sched;
    const FaultTarget t = FaultTarget::channel(0, 1);
    sched.add(100, FaultKind::ChannelKill, t);
    sched.add(200, FaultKind::Repair, t);
    FaultInjector inj(sim, net, sched, {}, &trace, 7);
    inj.arm();

    net.setRetryPolicy({10 * tickNs, 2});
    int dropped = 0;
    net.setDropHandler([&](const Message &) { ++dropped; });
    sim.events().schedule(150, [&net] {
        Message m;
        m.src = 0;
        m.dst = 1;
        net.inject(m);
    }, "test.inject");
    sim.run();

    // The packet hit the killed channel, backed off 10 ns, and the
    // repair at t=200 let the retry through.
    EXPECT_EQ(dropped, 0);
    EXPECT_EQ(net.retriedPackets(), 1u);
    EXPECT_EQ(net.stats().delivered.value(), 1u);

    const StatRegistry &reg = sim.telemetry();
    ASSERT_TRUE(reg.has("fault.injected"));
    EXPECT_DOUBLE_EQ(reg.value("fault.injected"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("fault.repairs"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("fault.links_down"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("fault.min_margin_db"), 4.0);

    ASSERT_EQ(trace.size(), 2u);
    for (const TraceEvent &ev : trace.events()) {
        EXPECT_EQ(ev.ph, TraceEvent::Phase::Instant);
        EXPECT_EQ(ev.cat, "fault");
        EXPECT_EQ(ev.pid, 7u);
        EXPECT_NE(ev.name.find("net.pt2pt.ch0_1"), std::string::npos);
    }
    EXPECT_EQ(trace.events()[0].ts, 100u);
    EXPECT_EQ(trace.events()[1].ts, 200u);
}

TEST(FaultInjector, CoherenceRetriesThenCompletesAfterRepair)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    net.setDropHandler([](const Message &) {});
    net.applyLinkHealth(0, 1, {true, 1.0});

    CoherenceEngine eng(sim, net, false);
    eng.setResilience({true, 500 * tickNs, 3});

    int completions = 0;
    eng.startSynthetic(0, 1, CoherenceOp::GetS, {},
                       [&](TxnId, Tick) { ++completions; });
    // Repair the requester->home channel before the first timeout
    // fires at t=500 ns, so the one retry sails through.
    sim.events().schedule(300 * tickNs, [&net] {
        net.applyLinkHealth(0, 1, {false, 1.0});
    }, "test.repair");
    sim.run();

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(eng.retriedTransactions(), 1u);
    EXPECT_EQ(eng.abortedTransactions(), 0u);
    EXPECT_EQ(eng.inFlight(), 0u);
}

TEST(FaultInjector, CoherenceAbortsAfterRetryExhaustion)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    net.setDropHandler([](const Message &) {});
    net.applyLinkHealth(0, 1, {true, 1.0}); // permanently dead

    CoherenceEngine eng(sim, net, false);
    eng.setResilience({true, 100 * tickNs, 2});

    int completions = 0;
    eng.startSynthetic(0, 1, CoherenceOp::GetS, {},
                       [&](TxnId, Tick) { ++completions; });
    sim.run();

    // The abort still fires the completion callback so closed-loop
    // drivers drain, but counts as aborted, not completed.
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(eng.retriedTransactions(), 2u);
    EXPECT_EQ(eng.abortedTransactions(), 1u);
    EXPECT_EQ(eng.transactionsCompleted(), 0u);
    EXPECT_EQ(eng.inFlight(), 0u);
}

TEST(FaultInjector, MessagePassingToleratesLoss)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    net.applyLinkHealth(0, 1, {true, 1.0});

    MpiWorkloadSpec spec;
    spec.collective = Collective::HaloExchange;
    spec.iterations = 3;
    spec.tolerateLoss = true;
    MessagePassingSystem mpi(sim, net, spec);
    const MpiResult res = mpi.run();

    // Site 0 -> 1 is a halo neighbour pair; its message is lost every
    // iteration, yet every iteration still completes.
    EXPECT_EQ(res.iterations, 3u);
    EXPECT_EQ(res.lost, 3u);
    EXPECT_GT(res.runtime, 0u);
    EXPECT_EQ(net.droppedPackets(), 3u);
}

/** One availability cell of the resilience sweep, as a fingerprint. */
struct CellPrint
{
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t retried = 0;
    double minMargin = 0.0;

    bool
    operator==(const CellPrint &o) const
    {
        return delivered == o.delivered && dropped == o.dropped
            && retried == o.retried && minMargin == o.minMargin;
    }
};

std::vector<CellPrint>
runFaultSweep(std::size_t jobs)
{
    std::vector<SweepJob<CellPrint>> sweep;
    for (int cell = 0; cell < 4; ++cell) {
        sweep.push_back(SweepJob<CellPrint>{
            "cell" + std::to_string(cell), [cell] {
                const std::uint64_t seed = deriveSeed(
                    7, "fault-sweep", std::to_string(cell));
                Simulator sim(seed);
                PointToPointNetwork net(sim, simulatedConfig());
                net.setRetryPolicy({50 * tickNs, 4});
                RandomFaultConfig cfg;
                cfg.events = 12;
                cfg.horizon = 3000 * tickNs;
                FaultInjector inj(
                    sim, net,
                    FaultSchedule::random(seed, cfg, net));
                inj.arm();
                InjectorConfig traffic;
                traffic.load = 0.05;
                traffic.warmup = 500 * tickNs;
                traffic.window = 2500 * tickNs;
                traffic.seed = seed;
                runOpenLoop(sim, net, traffic);
                return CellPrint{net.stats().delivered.value(),
                                 net.droppedPackets(),
                                 net.retriedPackets(),
                                 inj.minMarginDb()};
            }});
    }
    return SweepRunner(jobs, false).run("fault-sweep",
                                        std::move(sweep));
}

TEST(FaultSweep, BitIdenticalForAnyJobsCount)
{
    const std::vector<CellPrint> serial = runFaultSweep(1);
    const std::vector<CellPrint> parallel = runFaultSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    // Faults actually bit: something was dropped or retried, or a
    // margin dipped below the healthy 4 dB, in at least one cell.
    bool bit = false;
    for (const CellPrint &c : serial)
        bit = bit || c.dropped > 0 || c.retried > 0
            || c.minMargin < 4.0;
    EXPECT_TRUE(bit);
}

} // namespace
