/**
 * @file
 * Tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "arch/cache.hh"
#include "sim/logging.hh"

namespace
{

using namespace macrosim;

constexpr std::uint32_t kLine = 64;

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache(1000, 8, 64), FatalError);
    EXPECT_THROW(SetAssocCache(1024, 0, 64), FatalError);
    EXPECT_THROW(SetAssocCache(1024, 8, 0), FatalError);
}

TEST(Cache, GeometryDerivation)
{
    SetAssocCache c(256 * 1024, 8, kLine);
    EXPECT_EQ(c.sets(), 512u);
    EXPECT_EQ(c.ways(), 8u);
    EXPECT_EQ(c.lineBytes(), kLine);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(8 * 1024, 4, kLine);
    EXPECT_FALSE(c.probe(0x1000).has_value());
    EXPECT_FALSE(c.touch(0x1000));
    c.install(0x1000, CacheState::Shared);
    EXPECT_TRUE(c.touch(0x1000));
    EXPECT_EQ(c.probe(0x1000), CacheState::Shared);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    SetAssocCache c(8 * 1024, 4, kLine);
    c.install(0x1000, CacheState::Exclusive);
    EXPECT_TRUE(c.touch(0x1004));
    EXPECT_TRUE(c.touch(0x103F));
    EXPECT_FALSE(c.touch(0x1040)); // next line
}

TEST(Cache, LruEviction)
{
    // 2-way, 2-set cache: lines 0x000, 0x100, 0x200 map to set 0
    // (line 64B, 2 sets -> set stride 128B).
    SetAssocCache c(256, 2, kLine);
    ASSERT_EQ(c.sets(), 2u);
    c.install(0x000, CacheState::Shared);
    c.install(0x100, CacheState::Shared);
    c.touch(0x000); // make 0x100 the LRU
    auto res = c.install(0x200, CacheState::Shared);
    ASSERT_TRUE(res.evicted.has_value());
    EXPECT_EQ(*res.evicted, 0x100u);
    EXPECT_FALSE(res.writeback.has_value()); // clean eviction
    EXPECT_TRUE(c.probe(0x000).has_value());
    EXPECT_FALSE(c.probe(0x100).has_value());
}

TEST(Cache, DirtyEvictionRequestsWriteback)
{
    SetAssocCache c(256, 2, kLine);
    c.install(0x000, CacheState::Modified);
    c.install(0x100, CacheState::Owned);
    auto res = c.install(0x200, CacheState::Shared);
    ASSERT_TRUE(res.writeback.has_value());
    EXPECT_EQ(*res.writeback, 0x000u); // LRU was the Modified line
}

TEST(Cache, InstallOverResidentLineUpdatesState)
{
    SetAssocCache c(8 * 1024, 4, kLine);
    c.install(0x1000, CacheState::Shared);
    auto res = c.install(0x1000, CacheState::Modified);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.evicted.has_value());
    EXPECT_EQ(c.probe(0x1000), CacheState::Modified);
}

TEST(Cache, SetStateAndInvalidate)
{
    SetAssocCache c(8 * 1024, 4, kLine);
    EXPECT_FALSE(c.setState(0x1000, CacheState::Shared));
    c.install(0x1000, CacheState::Exclusive);
    EXPECT_TRUE(c.setState(0x1000, CacheState::Owned));
    auto prev = c.invalidate(0x1000);
    EXPECT_EQ(prev, CacheState::Owned);
    EXPECT_FALSE(c.probe(0x1000).has_value());
    EXPECT_FALSE(c.invalidate(0x1000).has_value());
}

TEST(Cache, InvalidLinesPreferredOverEviction)
{
    SetAssocCache c(256, 2, kLine);
    c.install(0x000, CacheState::Modified);
    auto res = c.install(0x200, CacheState::Shared);
    // Second way was free; nothing evicted.
    EXPECT_FALSE(res.evicted.has_value());
    EXPECT_TRUE(c.probe(0x000).has_value());
    EXPECT_TRUE(c.probe(0x200).has_value());
}

TEST(Cache, DistinctSetsDoNotInterfere)
{
    SetAssocCache c(256, 2, kLine);
    c.install(0x000, CacheState::Shared); // set 0
    c.install(0x040, CacheState::Shared); // set 1
    c.install(0x0C0, CacheState::Shared); // set 1
    c.install(0x140, CacheState::Shared); // set 1: evicts from set 1
    EXPECT_TRUE(c.probe(0x000).has_value());
}

TEST(CacheStateHelpers, Predicates)
{
    EXPECT_TRUE(isDirty(CacheState::Modified));
    EXPECT_TRUE(isDirty(CacheState::Owned));
    EXPECT_FALSE(isDirty(CacheState::Shared));
    EXPECT_TRUE(canWrite(CacheState::Exclusive));
    EXPECT_FALSE(canWrite(CacheState::Owned));
    EXPECT_TRUE(canRead(CacheState::Shared));
    EXPECT_FALSE(canRead(CacheState::Invalid));
}

} // namespace
