/**
 * @file
 * Tests for the message tracer and the delivery-observer hook.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "net/pt2pt.hh"
#include "net/tracer.hh"
#include "workloads/coherence.hh"

namespace
{

using namespace macrosim;

TEST(Tracer, RecordsEveryDelivery)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessageTracer tracer(net);
    net.setDefaultHandler([](const Message &) {});
    for (SiteId d = 1; d <= 5; ++d) {
        Message m;
        m.src = 0;
        m.dst = d;
        net.inject(m);
    }
    sim.run();
    ASSERT_EQ(tracer.count(), 5u);
    for (const auto &r : tracer.records()) {
        EXPECT_EQ(r.src, 0u);
        EXPECT_GE(r.delivered, r.injected);
        EXPECT_GT(r.latency(), 0u);
    }
    EXPECT_GT(tracer.meanLatencyNs(), 10.0);
}

TEST(Tracer, ObserverDoesNotStealTheHandler)
{
    // The tracer and a workload's handlers must compose: here the
    // coherence engine owns all per-site handlers while the tracer
    // observes every protocol message.
    Simulator sim(2);
    PointToPointNetwork net(sim, simulatedConfig());
    CoherenceEngine eng(sim, net, false);
    MessageTracer tracer(net);
    bool done = false;
    eng.startSynthetic(0, 9, CoherenceOp::GetM, {20, 30},
                       [&](TxnId, Tick) { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    // Request + fwd + inv + ack + data = 5 protocol messages.
    EXPECT_EQ(tracer.count(), eng.messagesSent());
    // Transaction ids are preserved in the trace.
    for (const auto &r : tracer.records())
        EXPECT_NE(r.txn, 0u);
}

TEST(Tracer, EnableDisableAndClear)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessageTracer tracer(net);
    net.setDefaultHandler([](const Message &) {});

    Message a;
    a.src = 0;
    a.dst = 1;
    net.inject(a);
    sim.run();
    EXPECT_EQ(tracer.count(), 1u);

    tracer.setEnabled(false);
    Message b;
    b.src = 0;
    b.dst = 2;
    net.inject(b);
    sim.run();
    EXPECT_EQ(tracer.count(), 1u);

    tracer.clear();
    EXPECT_EQ(tracer.count(), 0u);
}

TEST(Tracer, CsvHasHeaderAndOneRowPerRecord)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessageTracer tracer(net);
    net.setDefaultHandler([](const Message &) {});
    for (int i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 7;
        net.inject(m);
    }
    sim.run();

    std::ostringstream os;
    tracer.writeCsv(os);
    const std::string csv = os.str();
    // Header + 3 rows = 4 newline-terminated lines.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
    EXPECT_NE(csv.find("id,src,dst"), std::string::npos);
    EXPECT_NE(csv.find("0,7,64"), std::string::npos);
}

} // namespace
